// Unit tests for the daemon-side module-result cache (ISSUE 8): key
// equality through the canonical parameter serialisation, fingerprints
// from on-disk identity, bounded-bytes LRU eviction, invalidation when
// an input file changes underneath an entry, and 8-thread concurrent
// get/put (this binary runs under TSan in CI).
#include "cache/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/io.hpp"
#include "storage/identity.hpp"

namespace mcsd::cache {
namespace {

KeyValueMap result_of(std::string_view value) {
  KeyValueMap map;
  map.set("answer", std::string{value});
  return map;
}

TEST(Fingerprint, StableForUnchangedFiles) {
  TempDir dir{"cache"};
  const auto a = dir / "a.txt";
  const auto b = dir / "b.txt";
  ASSERT_TRUE(write_file(a, "alpha").is_ok());
  ASSERT_TRUE(write_file(b, "bravo!").is_ok());

  const auto first = fingerprint_inputs({a, b});
  const auto second = fingerprint_inputs({a, b});
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST(Fingerprint, OrderSensitive) {
  TempDir dir{"cache"};
  const auto a = dir / "a.txt";
  const auto b = dir / "b.txt";
  ASSERT_TRUE(write_file(a, "alpha").is_ok());
  ASSERT_TRUE(write_file(b, "bravo!").is_ok());

  const auto ab = fingerprint_inputs({a, b});
  const auto ba = fingerprint_inputs({b, a});
  ASSERT_TRUE(ab.is_ok());
  ASSERT_TRUE(ba.is_ok());
  EXPECT_NE(ab.value(), ba.value());
}

TEST(Fingerprint, ChangesWhenFileRewritten) {
  TempDir dir{"cache"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, "original bytes").is_ok());
  const auto before = fingerprint_inputs({path});
  ASSERT_TRUE(before.is_ok());

  // Different size guarantees a different identity even if the rewrite
  // lands within the filesystem's mtime granularity.
  ASSERT_TRUE(write_file(path, "rewritten, longer bytes").is_ok());
  const auto after = fingerprint_inputs({path});
  ASSERT_TRUE(after.is_ok());
  EXPECT_NE(before.value(), after.value());
}

TEST(Fingerprint, FailsOnMissingInput) {
  TempDir dir{"cache"};
  const auto result = fingerprint_inputs({dir / "nope.txt"});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST(ResultCache, HitRequiresModuleParamsAndFingerprint) {
  ResultCache cache;
  KeyValueMap params;
  params.set("input", "/data/a.txt");
  params.set_uint("workers", 4);
  const std::string canon = params.serialize();

  EXPECT_NE(cache.put("wordcount", canon, 11, result_of("w")), 0u);

  // Exact key: hit.
  auto hit = cache.get("wordcount", canon, 11);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.get("answer"), "w");

  // Any component off: miss.
  EXPECT_FALSE(cache.get("stringmatch", canon, 11).has_value());
  KeyValueMap other = params;
  other.set_uint("workers", 8);
  EXPECT_FALSE(cache.get("wordcount", other.serialize(), 11).has_value());
}

TEST(ResultCache, CanonicalSerializationIgnoresInsertionOrder) {
  ResultCache cache;
  KeyValueMap forward;
  forward.set("input", "/data/a.txt");
  forward.set_uint("workers", 4);
  KeyValueMap backward;
  backward.set_uint("workers", 4);
  backward.set("input", "/data/a.txt");

  ASSERT_NE(cache.put("wordcount", forward.serialize(), 5, result_of("x")),
            0u);
  EXPECT_TRUE(cache.get("wordcount", backward.serialize(), 5).has_value());
}

TEST(ResultCache, FingerprintMismatchInvalidatesEagerly) {
  ResultCache cache;
  ASSERT_NE(cache.put("wordcount", "p", 1, result_of("stale")), 0u);

  // The input file changed: same slot, new fingerprint.  The stale entry
  // must be erased, not merely skipped — a later probe with the *old*
  // fingerprint must not resurrect it.
  EXPECT_FALSE(cache.get("wordcount", "p", 2).has_value());
  EXPECT_FALSE(cache.get("wordcount", "p", 1).has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(ResultCache, EpochGrowsAcrossInvalidationAndRefill) {
  ResultCache cache;
  const std::uint64_t first = cache.put("wordcount", "p", 1, result_of("v1"));
  ASSERT_NE(first, 0u);
  EXPECT_FALSE(cache.get("wordcount", "p", 2).has_value());
  const std::uint64_t second = cache.put("wordcount", "p", 2, result_of("v2"));
  EXPECT_GT(second, first);

  auto hit = cache.get("wordcount", "p", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->epoch, second);
  EXPECT_EQ(hit->result.get("answer"), "v2");
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  CacheOptions options;
  options.capacity_bytes = 1024;
  ResultCache cache{options};

  // Each entry costs ~200 bytes, so ~5 fit.  Insert 8 and keep entry "0"
  // hot with a read between inserts: "0" must survive, the coldest of
  // the rest must not.
  const std::string payload(32, 'x');
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(cache.put("m", "params-" + std::to_string(i), 7,
                        result_of(payload)),
              0u);
    EXPECT_TRUE(cache.get("m", "params-0", 7).has_value());
  }
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 1024u);
  EXPECT_TRUE(cache.get("m", "params-0", 7).has_value());
  EXPECT_FALSE(cache.get("m", "params-1", 7).has_value());
}

TEST(ResultCache, RejectsEntriesLargerThanCapacity) {
  CacheOptions options;
  options.capacity_bytes = 256;
  ResultCache cache{options};

  EXPECT_EQ(cache.put("m", "p", 1, result_of(std::string(4096, 'y'))), 0u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.oversize_rejects, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCache, ClearDropsEntriesKeepsMonotoneStats) {
  ResultCache cache;
  ASSERT_NE(cache.put("m", "p", 1, result_of("v")), 0u);
  ASSERT_TRUE(cache.get("m", "p", 1).has_value());
  cache.clear();
  EXPECT_FALSE(cache.get("m", "p", 1).has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(ResultCache, ConcurrentGetPutFromEightThreads) {
  CacheOptions options;
  options.capacity_bytes = 8 * 1024;  // small enough to force evictions
  ResultCache cache{options};

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      for (int i = 0; i < kIters; ++i) {
        // 16 shared slots; fingerprint flips occasionally so the
        // invalidation path races with hits, puts, and evictions.
        const std::string params = "slot-" + std::to_string((t + i) % 16);
        const std::uint64_t fp = 1 + (i % 50 == 0 ? 1u : 0u);
        if (auto hit = cache.get("m", params, fp)) {
          observed_hits.fetch_add(1, std::memory_order_relaxed);
          ASSERT_TRUE(hit->result.get("answer").has_value());
        } else {
          cache.put("m", params, fp, result_of("thread-" + std::to_string(t)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace mcsd::cache
