#include "apps/wordcount.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/datagen.hpp"
#include "mapreduce/engine.hpp"

namespace mcsd::apps {
namespace {

std::map<std::string, std::uint64_t> count_map(std::string_view text) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& kv : wordcount_sequential(text)) m[kv.key] = kv.value;
  return m;
}

TEST(WordCountSequential, Basics) {
  const auto m = count_map("the cat and the dog and the bird");
  EXPECT_EQ(m.at("the"), 3u);
  EXPECT_EQ(m.at("and"), 2u);
  EXPECT_EQ(m.at("cat"), 1u);
  EXPECT_EQ(m.size(), 5u);
}

TEST(WordCountSequential, CaseInsensitive) {
  const auto m = count_map("Word word WORD WoRd");
  EXPECT_EQ(m.at("word"), 4u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(WordCountSequential, DigitsAreWordChars) {
  const auto m = count_map("x1 x1 42");
  EXPECT_EQ(m.at("x1"), 2u);
  EXPECT_EQ(m.at("42"), 1u);
}

TEST(WordCountSequential, PunctuationSplitsWords) {
  const auto m = count_map("one,two;three.one!two");
  EXPECT_EQ(m.at("one"), 2u);
  EXPECT_EQ(m.at("two"), 2u);
  EXPECT_EQ(m.at("three"), 1u);
}

TEST(WordCountSequential, EmptyAndDelimiterOnly) {
  EXPECT_TRUE(wordcount_sequential("").empty());
  EXPECT_TRUE(wordcount_sequential("  \n\t ...,;  ").empty());
}

TEST(WordCountSequential, OutputSortedByKey) {
  const auto counts = wordcount_sequential("b a c a");
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].key, "a");
  EXPECT_EQ(counts[1].key, "b");
  EXPECT_EQ(counts[2].key, "c");
}

TEST(WordCountSpec, MapEmitsOnePairPerWord) {
  WordCountSpec spec;
  mr::Emitter<std::string, std::uint64_t> emitter{4};
  spec.map(mr::TextChunk{"alpha beta alpha", 0}, emitter);
  EXPECT_EQ(emitter.count(), 3u);
}

TEST(WordCountSpec, CombineAndReduceSum) {
  WordCountSpec spec;
  const std::uint64_t values[] = {1, 2, 3};
  EXPECT_EQ(spec.combine("w", values), 6u);
  EXPECT_EQ(spec.reduce("w", values), 6u);
}

TEST(SortByFrequencyDesc, PaperOutputOrder) {
  std::vector<WordCount> counts{{"rare", 1}, {"common", 9}, {"mid", 4},
                                {"alpha", 4}};
  sort_by_frequency_desc(counts);
  EXPECT_EQ(counts[0].key, "common");
  // Ties break by word ascending.
  EXPECT_EQ(counts[1].key, "alpha");
  EXPECT_EQ(counts[2].key, "mid");
  EXPECT_EQ(counts[3].key, "rare");
}

TEST(TotalOccurrences, SumsValues) {
  std::vector<WordCount> counts{{"a", 2}, {"b", 3}};
  EXPECT_EQ(total_occurrences(counts), 5u);
  EXPECT_EQ(total_occurrences({}), 0u);
}

TEST(WordCount, TotalOccurrencesConservedAcrossEngine) {
  // Total word occurrences is an invariant between sequential and
  // MapReduce paths, whatever the worker count.
  CorpusOptions corpus;
  corpus.bytes = 128 * 1024;
  const std::string text = generate_corpus(corpus);
  const auto seq_total = total_occurrences(wordcount_sequential(text));

  mr::Options opts;
  opts.num_workers = 4;
  mr::Engine<WordCountSpec> engine{opts};
  auto out = engine.run(WordCountSpec{}, mr::split_text(text, 8 * 1024));
  std::uint64_t mr_total = 0;
  for (const auto& kv : out) mr_total += kv.value;
  EXPECT_EQ(mr_total, seq_total);
  EXPECT_GT(seq_total, 0u);
}

}  // namespace
}  // namespace mcsd::apps
