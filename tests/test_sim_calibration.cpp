#include "cluster/calibration.hpp"

#include <gtest/gtest.h>

namespace mcsd::sim {
namespace {

CalibrationOptions fast_options() {
  CalibrationOptions opts;
  opts.text_bytes = 256 * 1024;  // keep the test quick
  opts.matrix_dim = 48;
  opts.repetitions = 1;
  return opts;
}

TEST(Calibration, MeasuresPositiveRates) {
  const CalibrationResult r = calibrate(fast_options());
  EXPECT_GT(r.wordcount_mibps, 0.0);
  EXPECT_GT(r.stringmatch_mibps, 0.0);
  EXPECT_GT(r.matmul_mibps, 0.0);
  EXPECT_GT(r.measure_seconds, 0.0);
}

TEST(Calibration, StringMatchFasterThanWordCount) {
  // SM is a scan; WC allocates and hashes.  Any machine should order
  // them this way — the same ordering the fixed profiles encode.
  const CalibrationResult r = calibrate(fast_options());
  EXPECT_GT(r.stringmatch_mibps, r.wordcount_mibps);
}

TEST(Calibration, ProfilesInheritAlgorithmicConstants) {
  CalibrationResult r;
  r.wordcount_mibps = 100.0;
  r.stringmatch_mibps = 200.0;
  r.matmul_mibps = 10.0;
  const AppProfile wc = calibrated_wordcount_profile(r);
  EXPECT_DOUBLE_EQ(wc.seconds_per_mib, 0.01);
  EXPECT_DOUBLE_EQ(wc.footprint_factor, wordcount_profile().footprint_factor);
  EXPECT_DOUBLE_EQ(wc.parallel_fraction,
                   wordcount_profile().parallel_fraction);

  const AppProfile sm = calibrated_stringmatch_profile(r);
  EXPECT_DOUBLE_EQ(sm.seconds_per_mib, 0.005);
  EXPECT_DOUBLE_EQ(sm.dirty_footprint_factor,
                   stringmatch_profile().dirty_footprint_factor);

  const AppProfile mm = calibrated_matmul_profile(r);
  EXPECT_DOUBLE_EQ(mm.seconds_per_mib, 0.1);
  EXPECT_FALSE(mm.partitionable);
}

TEST(Calibration, ZeroRateKeepsDefault) {
  const CalibrationResult zeros{};
  const AppProfile wc = calibrated_wordcount_profile(zeros);
  EXPECT_DOUBLE_EQ(wc.seconds_per_mib, wordcount_profile().seconds_per_mib);
}

}  // namespace
}  // namespace mcsd::sim
