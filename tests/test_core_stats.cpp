#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "core/table.hpp"

namespace mcsd {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, ClampsQ) {
  std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bucket 0
  h.add(9.9);    // bucket 4
  h.add(-100);   // clamps to 0
  h.add(100);    // clamps to 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.count_in(2), 1u);
  EXPECT_EQ(h.count_in(4), 2u);
}

TEST(Histogram, BucketRange) {
  Histogram h{0.0, 10.0, 5};
  const auto [lo, hi] = h.bucket_range(2);
  EXPECT_DOUBLE_EQ(lo, 4.0);
  EXPECT_DOUBLE_EQ(hi, 6.0);
  EXPECT_THROW((void)h.bucket_range(5), std::out_of_range);
}

TEST(Histogram, RejectsDegenerate) {
  EXPECT_THROW((Histogram{0.0, 0.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(Table, RendersAlignedBox) {
  Table t{{"name", "value"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t{{"a", "b"}};
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"y", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"y\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace mcsd
