#include "mapreduce/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "apps/datagen.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/units.hpp"

namespace mcsd::mr {
namespace {

using apps::WordCountSpec;
using namespace mcsd::literals;

std::map<std::string, std::uint64_t> to_map(
    const std::vector<KV<std::string, std::uint64_t>>& pairs) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& kv : pairs) m[kv.key] += kv.value;
  return m;
}

TEST(Engine, WordCountMatchesSequentialReference) {
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  corpus.vocabulary = 500;
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 3;
  Engine<WordCountSpec> engine{opts};
  const auto chunks = split_text(text, 16 * 1024);
  const auto parallel = engine.run(WordCountSpec{}, chunks);
  const auto reference = apps::wordcount_sequential(text);

  EXPECT_EQ(to_map(parallel), to_map(reference));
}

TEST(Engine, EmptyInputYieldsEmptyOutput) {
  Engine<WordCountSpec> engine{Options{}};
  const std::vector<TextChunk> none;
  EXPECT_TRUE(engine.run(WordCountSpec{}, none).empty());
}

TEST(Engine, SortedOutputIsSortedByKey) {
  Options opts;
  opts.num_workers = 2;
  opts.sort_output_by_key = true;
  Engine<WordCountSpec> engine{opts};
  const std::string text = "pear apple mango apple pear apple";
  const auto out = engine.run(WordCountSpec{}, split_text(text, 8));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, "apple");
  EXPECT_EQ(out[0].value, 3u);
  EXPECT_EQ(out[1].key, "mango");
  EXPECT_EQ(out[2].key, "pear");
  EXPECT_EQ(out[2].value, 2u);
}

TEST(Engine, MetricsArePopulated) {
  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  const std::string text = "one two two three three three";
  Metrics metrics;
  engine.run(WordCountSpec{}, split_text(text, 8), 0, &metrics);
  EXPECT_GT(metrics.chunks, 0u);
  EXPECT_GT(metrics.map_emits, 0u);
  EXPECT_EQ(metrics.unique_keys, 3u);
  EXPECT_GT(metrics.peak_intermediate_bytes, 0u);
}

TEST(Engine, OptionsValidation) {
  Options bad;
  bad.num_workers = 0;
  EXPECT_THROW(Engine<WordCountSpec>{bad}, std::invalid_argument);

  Options bad_fraction;
  bad_fraction.usable_memory_fraction = 0.0;
  EXPECT_THROW(Engine<WordCountSpec>{bad_fraction}, std::invalid_argument);
}

TEST(Engine, ReduceBucketsDefaultScalesWithWorkers) {
  Options opts;
  opts.num_workers = 3;
  EXPECT_EQ(opts.effective_reduce_buckets(), 12u);
  opts.num_reduce_buckets = 5;
  EXPECT_EQ(opts.effective_reduce_buckets(), 5u);
}

TEST(Engine, MemoryOverflowWhenInputExceedsUsableBudget) {
  Options opts;
  opts.num_workers = 2;
  opts.memory_budget_bytes = 1_MiB;
  opts.usable_memory_fraction = 0.6;  // 614 KiB usable
  Engine<WordCountSpec> engine{opts};

  apps::CorpusOptions corpus;
  corpus.bytes = 700 * 1024;  // > usable
  const std::string text = apps::generate_corpus(corpus);
  EXPECT_THROW(engine.run(WordCountSpec{}, split_text(text, 32 * 1024)),
               MemoryOverflowError);
}

TEST(Engine, MemoryOverflowReportsRequiredAndBudget) {
  Options opts;
  opts.memory_budget_bytes = 1_MiB;
  Engine<WordCountSpec> engine{opts};
  const std::string text(800 * 1024, 'a');
  try {
    engine.run(WordCountSpec{}, split_text(text, 64 * 1024));
    FAIL() << "expected MemoryOverflowError";
  } catch (const MemoryOverflowError& e) {
    EXPECT_GT(e.required_bytes(), e.budget_bytes());
    EXPECT_EQ(e.budget_bytes(),
              static_cast<std::uint64_t>(0.6 * 1_MiB));
  }
}

TEST(Engine, IntermediateGrowthTriggersOverflow) {
  // Input fits the usable budget, but WC's emitted pairs push the
  // footprint past it mid-map: the engine must notice and throw — the
  // exact Phoenix behaviour the paper's partition module works around.
  Options opts;
  opts.num_workers = 2;
  opts.memory_budget_bytes = 600 * 1024;
  opts.usable_memory_fraction = 0.6;  // 360 KiB usable
  Engine<WordCountSpec> engine{opts};

  apps::CorpusOptions corpus;
  corpus.bytes = 300 * 1024;  // fits, until intermediates pile on
  corpus.vocabulary = 40'000; // high-entropy keys defeat combining
  corpus.seed = 9;
  const std::string text = apps::generate_corpus(corpus);
  EXPECT_THROW(engine.run(WordCountSpec{}, split_text(text, 16 * 1024)),
               MemoryOverflowError);
}

TEST(Engine, UnlimitedBudgetNeverOverflows) {
  Options opts;
  opts.memory_budget_bytes = 0;
  Engine<WordCountSpec> engine{opts};
  const std::string text(128 * 1024, 'x');  // one giant "word"
  EXPECT_NO_THROW(engine.run(WordCountSpec{}, split_text(text, 8 * 1024)));
}

TEST(Engine, IdentityReduceWhenSpecHasNone) {
  // StringMatchSpec has no reduce: every emitted pair must pass through.
  apps::LineFileOptions lf;
  lf.bytes = 64 * 1024;
  std::string text = apps::generate_line_file(lf);
  apps::KeysOptions ko;
  ko.plant_rate = 0.05;
  const auto keys = apps::generate_and_plant_keys(text, ko);

  apps::StringMatchSpec spec;
  spec.keys = keys;
  Options opts;
  opts.num_workers = 2;
  Engine<apps::StringMatchSpec> engine{opts};
  const auto pairs = engine.run(spec, split_lines(text, 8 * 1024));
  const auto expected = apps::stringmatch_sequential(text, keys);
  EXPECT_EQ(apps::to_sorted_matches(pairs), expected);
  EXPECT_FALSE(expected.empty());
}

// ---------------------------------------------------------------------------
// Emitter: emit-time hash combining and byte accounting.
// ---------------------------------------------------------------------------

// Combiners receive the emitter's *stored* key: a string_view into the
// worker arena for std::string keys.
std::uint64_t sum_combiner(const void*, const std::string_view&,
                           const std::uint64_t& acc,
                           const std::uint64_t& incoming) {
  return acc + incoming;
}

std::map<std::string, std::uint64_t> emitter_contents(
    Emitter<std::string, std::uint64_t>& emitter) {
  std::map<std::string, std::uint64_t> m;
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    for (const auto& p : emitter.bucket(b)) m[std::string(p.key)] += p.value;
  }
  return m;
}

TEST(Emitter, EmitTimeCombineFoldsDuplicates) {
  Emitter<std::string, std::uint64_t> emitter{4};
  emitter.set_combiner(nullptr, sum_combiner);
  emitter.emit(std::string{"apple"}, 1);
  emitter.emit(std::string_view{"apple"}, 2);
  emitter.emit(std::string_view{"pear"}, 5);
  emitter.emit(std::string{"apple"}, 4);

  EXPECT_EQ(emitter.count(), 4u);   // raw emits
  EXPECT_EQ(emitter.stored(), 2u);  // combined pairs
  const auto m = emitter_contents(emitter);
  EXPECT_EQ(m.at("apple"), 7u);
  EXPECT_EQ(m.at("pear"), 5u);
}

TEST(Emitter, ViewKeysAreMaterialisedOnInsert) {
  // The emitter must own its keys: emitting views into a buffer that is
  // rewritten between emits must not corrupt stored pairs.
  Emitter<std::string, std::uint64_t> emitter{2};
  emitter.set_combiner(nullptr, sum_combiner);
  std::string buffer;
  for (const char* word : {"alpha", "beta", "alpha", "gamma", "beta"}) {
    buffer.assign(word);
    emitter.emit(std::string_view{buffer}, 1);
    buffer.assign(buffer.size(), '#');  // scribble over the emitted bytes
  }
  const auto m = emitter_contents(emitter);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("alpha"), 2u);
  EXPECT_EQ(m.at("beta"), 2u);
  EXPECT_EQ(m.at("gamma"), 1u);
}

TEST(Emitter, BytesTrackStoredPairsNotRawEmits) {
  Emitter<std::string, std::uint64_t> emitter{4};
  emitter.set_combiner(nullptr, sum_combiner);
  emitter.emit(std::string_view{"word"}, 1);
  const std::uint64_t after_first = emitter.bytes();
  EXPECT_GT(after_first, 0u);
  for (int i = 0; i < 100; ++i) emitter.emit(std::string_view{"word"}, 1);
  // Re-emits of a known key fold in place: no byte growth.
  EXPECT_EQ(emitter.bytes(), after_first);

  // Byte meter equals the sum of per-pair footprints: the pair itself
  // plus the arena bytes its key copy consumed.
  std::uint64_t expected = 0;
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    for (const auto& p : emitter.bucket(b)) {
      expected += sizeof(p) + p.key.size();
    }
  }
  EXPECT_EQ(emitter.bytes(), expected);
}

TEST(Emitter, TableGrowthPreservesAllPairs) {
  // Push one bucket far past the initial table size to force rehashes.
  Emitter<std::string, std::uint64_t> emitter{1};
  emitter.set_combiner(nullptr, sum_combiner);
  constexpr int kKeys = 10'000;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      emitter.emit(std::string_view{"key-" + std::to_string(i)}, 1);
    }
  }
  EXPECT_EQ(emitter.stored(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(emitter.count(), static_cast<std::size_t>(2 * kKeys));
  const auto m = emitter_contents(emitter);
  ASSERT_EQ(m.size(), static_cast<std::size_t>(kKeys));
  for (const auto& [key, value] : m) EXPECT_EQ(value, 2u) << key;
}

TEST(Emitter, WithoutCombinerEveryEmitIsStored) {
  Emitter<std::string, std::uint64_t> emitter{2};
  for (int i = 0; i < 5; ++i) emitter.emit(std::string_view{"same"}, 1);
  EXPECT_EQ(emitter.stored(), 5u);
  EXPECT_EQ(emitter.count(), 5u);
}

TEST(Emitter, ResetAndReuseProducesIdenticalContents) {
  // The reuse lifecycle the engine relies on: reset() rewinds the arena
  // and clears the buckets; a second, identical round of emits must
  // produce identical contents and identical byte accounting.
  Emitter<std::string, std::uint64_t> emitter{4};
  const auto feed = [&] {
    emitter.set_combiner(nullptr, sum_combiner);
    for (const char* word :
         {"delta", "echo", "delta", "fox", "echo", "delta"}) {
      emitter.emit(std::string_view{word}, 1);
    }
  };
  feed();
  const auto first = emitter_contents(emitter);
  const std::uint64_t first_bytes = emitter.bytes();
  const std::size_t first_stored = emitter.stored();
  ASSERT_EQ(first.at("delta"), 3u);

  emitter.reset();
  EXPECT_EQ(emitter.count(), 0u);
  EXPECT_EQ(emitter.bytes(), 0u);
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    EXPECT_TRUE(emitter.bucket(b).empty());
  }

  feed();
  EXPECT_EQ(emitter_contents(emitter), first);
  EXPECT_EQ(emitter.bytes(), first_bytes);
  EXPECT_EQ(emitter.stored(), first_stored);
}

TEST(Emitter, BudgetMetersArenaBytesNotStringCapacity) {
  // Arena accounting: the meter charges exactly the key bytes copied into
  // the arena (plus the pair), never std::string header/capacity, and the
  // arena's own usage must cover every charged key byte.
  Emitter<std::string, std::uint64_t> emitter{2};
  emitter.set_combiner(nullptr, sum_combiner);
  const std::string long_key(200, 'k');  // would round up under capacity()
  emitter.emit(std::string_view{long_key}, 1);
  emitter.emit(std::string_view{"ab"}, 1);
  emitter.emit(std::string_view{long_key}, 1);  // combine hit: no growth

  using P = Emitter<std::string, std::uint64_t>::Pair;
  EXPECT_EQ(emitter.bytes(), 2 * sizeof(P) + long_key.size() + 2);
}

// ---------------------------------------------------------------------------
// DynamicScheduler: batched claiming.
// ---------------------------------------------------------------------------

TEST(DynamicScheduler, BatchesPartitionTheIndexSpaceExactlyOnce) {
  DynamicScheduler sched{103};
  std::vector<int> seen(103, 0);
  while (auto b = sched.next_batch(8)) {
    EXPECT_LT(b->begin, b->end);
    EXPECT_LE(b->end, 103u);
    for (std::size_t i = b->begin; i < b->end; ++i) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_FALSE(sched.next_batch(8).has_value());
  EXPECT_FALSE(sched.next().has_value());
}

TEST(DynamicScheduler, ZeroBatchSizeClaimsOne) {
  DynamicScheduler sched{2};
  const auto b = sched.next_batch(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->end - b->begin, 1u);
}

TEST(DynamicScheduler, SuggestedBatchKeepsStealingGranularity) {
  // ~8 batches per worker; never below one task.
  EXPECT_EQ(DynamicScheduler::suggested_batch(0, 4), 1u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(10, 4), 1u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(64, 4), 2u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(1024, 4), 32u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(1024, 0), 128u);
}

// ---------------------------------------------------------------------------
// Engine worker-state reuse.
// ---------------------------------------------------------------------------

TEST(Engine, ReusedWorkerStateProducesIdenticalOutputAcrossRuns) {
  // The out-of-core driver calls run() once per fragment on one engine;
  // run N+1 must be byte-identical to a fresh engine's run, for both the
  // same input (reset correctness) and different inputs (no leakage).
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  corpus.vocabulary = 250;
  const std::string text_a = apps::generate_corpus(corpus);
  corpus.seed = 17;
  const std::string text_b = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 3;
  opts.sort_output_by_key = true;
  Engine<WordCountSpec> engine{opts};
  const auto chunks_a = split_text(text_a, 4 * 1024);
  const auto chunks_b = split_text(text_b, 4 * 1024);

  const auto first_a = engine.run(WordCountSpec{}, chunks_a);
  const auto first_b = engine.run(WordCountSpec{}, chunks_b);  // reused state
  const auto second_a = engine.run(WordCountSpec{}, chunks_a);

  Engine<WordCountSpec> fresh{opts};
  const auto fresh_b = fresh.run(WordCountSpec{}, chunks_b);

  EXPECT_EQ(to_map(second_a), to_map(first_a));
  EXPECT_EQ(to_map(first_b), to_map(fresh_b));
  EXPECT_EQ(to_map(first_a), to_map(apps::wordcount_sequential(text_a)));
}

TEST(Engine, ReleaseWorkerStateKeepsResultsCorrect) {
  apps::CorpusOptions corpus;
  corpus.bytes = 32 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  const auto chunks = split_text(text, 4 * 1024);
  const auto reference = to_map(engine.run(WordCountSpec{}, chunks));
  engine.release_worker_state();
  EXPECT_EQ(to_map(engine.run(WordCountSpec{}, chunks)), reference);
}

TEST(Engine, BudgetObservesCombinedVolume) {
  // Low-entropy input: raw emits dwarf unique keys, and the byte meter
  // must see only the combined (unique-key) volume.
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  corpus.vocabulary = 50;
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  Metrics metrics;
  engine.run(WordCountSpec{}, split_text(text, 16 * 1024), 0, &metrics);

  ASSERT_GT(metrics.map_emits, 10'000u);
  const std::uint64_t intermediate =
      metrics.peak_intermediate_bytes - text.size();
  // Raw (uncombined) volume would be ~map_emits * sizeof(pair); combined
  // volume is bounded by unique keys per worker.
  EXPECT_LT(intermediate, 64 * 1024u);
  EXPECT_LT(intermediate,
            metrics.map_emits * sizeof(HKV<std::string, std::uint64_t>) / 8);
}

// Cross-product sweep: engine output equals the sequential reference for
// any worker count x bucket count x chunk size combination.
TEST(Engine, WordCountInvariantAcrossWorkersBucketsChunks) {
  apps::CorpusOptions corpus;
  corpus.bytes = 48 * 1024;
  corpus.vocabulary = 150;
  const std::string text = apps::generate_corpus(corpus);
  const auto reference = to_map(apps::wordcount_sequential(text));

  for (std::size_t workers : {1u, 2u, 5u}) {
    for (std::size_t buckets : {1u, 2u, 7u, 32u}) {
      for (std::size_t chunk : {512u, 16u * 1024u}) {
        Options opts;
        opts.num_workers = workers;
        opts.num_reduce_buckets = buckets;
        Engine<WordCountSpec> engine{opts};
        const auto out = engine.run(WordCountSpec{}, split_text(text, chunk));
        EXPECT_EQ(to_map(out), reference)
            << "workers=" << workers << " buckets=" << buckets
            << " chunk=" << chunk;
      }
    }
  }
}

// Worker-count sweep: output must be identical for any parallelism level.
class EngineWorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineWorkerSweep, WordCountInvariantUnderParallelism) {
  apps::CorpusOptions corpus;
  corpus.bytes = 96 * 1024;
  corpus.vocabulary = 300;
  corpus.seed = GetParam();  // vary data with workers too
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = GetParam();
  opts.sort_output_by_key = true;
  Engine<WordCountSpec> engine{opts};
  const auto out = engine.run(WordCountSpec{}, split_text(text, 4 * 1024));
  const auto reference = apps::wordcount_sequential(text);
  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, reference[i].key);
    EXPECT_EQ(out[i].value, reference[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, EngineWorkerSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

// Chunk-size sweep: result independent of map granularity.
class EngineChunkSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineChunkSweep, ResultIndependentOfChunkSize) {
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  corpus.vocabulary = 200;
  const std::string text = apps::generate_corpus(corpus);
  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  const auto out = engine.run(WordCountSpec{}, split_text(text, GetParam()));
  EXPECT_EQ(to_map(out), to_map(apps::wordcount_sequential(text)));
}

INSTANTIATE_TEST_SUITE_P(ChunkBytes, EngineChunkSweep,
                         ::testing::Values(128, 1024, 8192, 65536, 1 << 20));

}  // namespace
}  // namespace mcsd::mr
