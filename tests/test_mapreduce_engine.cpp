#include "mapreduce/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <string>

#include "apps/datagen.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/units.hpp"

namespace mcsd::mr {
namespace {

using apps::WordCountSpec;
using namespace mcsd::literals;

std::map<std::string, std::uint64_t> to_map(
    const std::vector<KV<std::string, std::uint64_t>>& pairs) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& kv : pairs) m[kv.key] += kv.value;
  return m;
}

TEST(Engine, WordCountMatchesSequentialReference) {
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  corpus.vocabulary = 500;
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 3;
  Engine<WordCountSpec> engine{opts};
  const auto chunks = split_text(text, 16 * 1024);
  const auto parallel = engine.run(WordCountSpec{}, chunks);
  const auto reference = apps::wordcount_sequential(text);

  EXPECT_EQ(to_map(parallel), to_map(reference));
}

TEST(Engine, EmptyInputYieldsEmptyOutput) {
  Engine<WordCountSpec> engine{Options{}};
  const std::vector<TextChunk> none;
  EXPECT_TRUE(engine.run(WordCountSpec{}, none).empty());
}

TEST(Engine, SortedOutputIsSortedByKey) {
  Options opts;
  opts.num_workers = 2;
  opts.sort_output_by_key = true;
  Engine<WordCountSpec> engine{opts};
  const std::string text = "pear apple mango apple pear apple";
  const auto out = engine.run(WordCountSpec{}, split_text(text, 8));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, "apple");
  EXPECT_EQ(out[0].value, 3u);
  EXPECT_EQ(out[1].key, "mango");
  EXPECT_EQ(out[2].key, "pear");
  EXPECT_EQ(out[2].value, 2u);
}

TEST(Engine, MetricsArePopulated) {
  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  const std::string text = "one two two three three three";
  Metrics metrics;
  engine.run(WordCountSpec{}, split_text(text, 8), 0, &metrics);
  EXPECT_GT(metrics.chunks, 0u);
  EXPECT_GT(metrics.map_emits, 0u);
  EXPECT_EQ(metrics.unique_keys, 3u);
  EXPECT_GT(metrics.peak_intermediate_bytes, 0u);
}

TEST(Engine, OptionsValidation) {
  Options bad;
  bad.num_workers = 0;
  EXPECT_THROW(Engine<WordCountSpec>{bad}, std::invalid_argument);

  Options bad_fraction;
  bad_fraction.usable_memory_fraction = 0.0;
  EXPECT_THROW(Engine<WordCountSpec>{bad_fraction}, std::invalid_argument);
}

TEST(Engine, ReduceBucketsDefaultIsWorkerCountIndependent) {
  // A fixed default keyspace split keeps bucket geometry — and therefore
  // bucket-order output — identical at any parallelism level, and stops
  // per-job reduce work from growing as workers are added.
  Options opts;
  opts.num_workers = 3;
  EXPECT_EQ(opts.effective_reduce_buckets(), Options::kDefaultReduceBuckets);
  opts.num_workers = 8;
  EXPECT_EQ(opts.effective_reduce_buckets(), Options::kDefaultReduceBuckets);
  opts.num_reduce_buckets = 5;
  EXPECT_EQ(opts.effective_reduce_buckets(), 5u);
}

TEST(Engine, MemoryOverflowWhenInputExceedsUsableBudget) {
  Options opts;
  opts.num_workers = 2;
  opts.memory_budget_bytes = 1_MiB;
  opts.usable_memory_fraction = 0.6;  // 614 KiB usable
  Engine<WordCountSpec> engine{opts};

  apps::CorpusOptions corpus;
  corpus.bytes = 700 * 1024;  // > usable
  const std::string text = apps::generate_corpus(corpus);
  EXPECT_THROW(engine.run(WordCountSpec{}, split_text(text, 32 * 1024)),
               MemoryOverflowError);
}

TEST(Engine, MemoryOverflowReportsRequiredAndBudget) {
  Options opts;
  opts.memory_budget_bytes = 1_MiB;
  Engine<WordCountSpec> engine{opts};
  const std::string text(800 * 1024, 'a');
  try {
    engine.run(WordCountSpec{}, split_text(text, 64 * 1024));
    FAIL() << "expected MemoryOverflowError";
  } catch (const MemoryOverflowError& e) {
    EXPECT_GT(e.required_bytes(), e.budget_bytes());
    EXPECT_EQ(e.budget_bytes(),
              static_cast<std::uint64_t>(0.6 * 1_MiB));
  }
}

TEST(Engine, IntermediateGrowthTriggersOverflow) {
  // Input fits the usable budget, but WC's emitted pairs push the
  // footprint past it mid-map: the engine must notice and throw — the
  // exact Phoenix behaviour the paper's partition module works around.
  Options opts;
  opts.num_workers = 2;
  opts.memory_budget_bytes = 600 * 1024;
  opts.usable_memory_fraction = 0.6;  // 360 KiB usable
  Engine<WordCountSpec> engine{opts};

  apps::CorpusOptions corpus;
  corpus.bytes = 300 * 1024;  // fits, until intermediates pile on
  corpus.vocabulary = 40'000; // high-entropy keys defeat combining
  corpus.seed = 9;
  const std::string text = apps::generate_corpus(corpus);
  EXPECT_THROW(engine.run(WordCountSpec{}, split_text(text, 16 * 1024)),
               MemoryOverflowError);
}

TEST(Engine, UnlimitedBudgetNeverOverflows) {
  Options opts;
  opts.memory_budget_bytes = 0;
  Engine<WordCountSpec> engine{opts};
  const std::string text(128 * 1024, 'x');  // one giant "word"
  EXPECT_NO_THROW(engine.run(WordCountSpec{}, split_text(text, 8 * 1024)));
}

TEST(Engine, IdentityReduceWhenSpecHasNone) {
  // StringMatchSpec has no reduce: every emitted pair must pass through.
  apps::LineFileOptions lf;
  lf.bytes = 64 * 1024;
  std::string text = apps::generate_line_file(lf);
  apps::KeysOptions ko;
  ko.plant_rate = 0.05;
  const auto keys = apps::generate_and_plant_keys(text, ko);

  apps::StringMatchSpec spec;
  spec.keys = keys;
  Options opts;
  opts.num_workers = 2;
  Engine<apps::StringMatchSpec> engine{opts};
  const auto pairs = engine.run(spec, split_lines(text, 8 * 1024));
  const auto expected = apps::stringmatch_sequential(text, keys);
  EXPECT_EQ(apps::to_sorted_matches(pairs), expected);
  EXPECT_FALSE(expected.empty());
}

// ---------------------------------------------------------------------------
// Emitter: emit-time hash combining and byte accounting.
// ---------------------------------------------------------------------------

// Combiners receive the emitter's *stored* key: a string_view into the
// worker arena for std::string keys.
std::uint64_t sum_combiner(const void*, const std::string_view&,
                           const std::uint64_t& acc,
                           const std::uint64_t& incoming) {
  return acc + incoming;
}

std::map<std::string, std::uint64_t> emitter_contents(
    Emitter<std::string, std::uint64_t>& emitter) {
  std::map<std::string, std::uint64_t> m;
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    for (const auto& p : emitter.bucket(b)) m[std::string(p.key)] += p.value;
  }
  return m;
}

TEST(Emitter, EmitTimeCombineFoldsDuplicates) {
  Emitter<std::string, std::uint64_t> emitter{4};
  emitter.set_combiner(nullptr, sum_combiner);
  emitter.emit(std::string{"apple"}, 1);
  emitter.emit(std::string_view{"apple"}, 2);
  emitter.emit(std::string_view{"pear"}, 5);
  emitter.emit(std::string{"apple"}, 4);

  EXPECT_EQ(emitter.count(), 4u);   // raw emits
  EXPECT_EQ(emitter.stored(), 2u);  // combined pairs
  const auto m = emitter_contents(emitter);
  EXPECT_EQ(m.at("apple"), 7u);
  EXPECT_EQ(m.at("pear"), 5u);
}

TEST(Emitter, ViewKeysAreMaterialisedOnInsert) {
  // The emitter must own its keys: emitting views into a buffer that is
  // rewritten between emits must not corrupt stored pairs.
  Emitter<std::string, std::uint64_t> emitter{2};
  emitter.set_combiner(nullptr, sum_combiner);
  std::string buffer;
  for (const char* word : {"alpha", "beta", "alpha", "gamma", "beta"}) {
    buffer.assign(word);
    emitter.emit(std::string_view{buffer}, 1);
    buffer.assign(buffer.size(), '#');  // scribble over the emitted bytes
  }
  const auto m = emitter_contents(emitter);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("alpha"), 2u);
  EXPECT_EQ(m.at("beta"), 2u);
  EXPECT_EQ(m.at("gamma"), 1u);
}

TEST(Emitter, BytesTrackStoredPairsNotRawEmits) {
  Emitter<std::string, std::uint64_t> emitter{4};
  emitter.set_combiner(nullptr, sum_combiner);
  emitter.emit(std::string_view{"word"}, 1);
  const std::uint64_t after_first = emitter.bytes();
  EXPECT_GT(after_first, 0u);
  for (int i = 0; i < 100; ++i) emitter.emit(std::string_view{"word"}, 1);
  // Re-emits of a known key fold in place: no byte growth.
  EXPECT_EQ(emitter.bytes(), after_first);

  // Byte meter equals the sum of per-pair footprints: the pair itself
  // plus the arena bytes its key copy consumed.
  std::uint64_t expected = 0;
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    for (const auto& p : emitter.bucket(b)) {
      expected += sizeof(p) + p.key.size();
    }
  }
  EXPECT_EQ(emitter.bytes(), expected);
}

TEST(Emitter, TableGrowthPreservesAllPairs) {
  // Push one bucket far past the initial table size to force rehashes.
  Emitter<std::string, std::uint64_t> emitter{1};
  emitter.set_combiner(nullptr, sum_combiner);
  constexpr int kKeys = 10'000;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      emitter.emit(std::string_view{"key-" + std::to_string(i)}, 1);
    }
  }
  EXPECT_EQ(emitter.stored(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(emitter.count(), static_cast<std::size_t>(2 * kKeys));
  const auto m = emitter_contents(emitter);
  ASSERT_EQ(m.size(), static_cast<std::size_t>(kKeys));
  for (const auto& [key, value] : m) EXPECT_EQ(value, 2u) << key;
}

TEST(Emitter, WithoutCombinerEveryEmitIsStored) {
  Emitter<std::string, std::uint64_t> emitter{2};
  for (int i = 0; i < 5; ++i) emitter.emit(std::string_view{"same"}, 1);
  EXPECT_EQ(emitter.stored(), 5u);
  EXPECT_EQ(emitter.count(), 5u);
}

TEST(Emitter, ResetAndReuseProducesIdenticalContents) {
  // The reuse lifecycle the engine relies on: reset() rewinds the arena
  // and clears the buckets; a second, identical round of emits must
  // produce identical contents and identical byte accounting.
  Emitter<std::string, std::uint64_t> emitter{4};
  const auto feed = [&] {
    emitter.set_combiner(nullptr, sum_combiner);
    for (const char* word :
         {"delta", "echo", "delta", "fox", "echo", "delta"}) {
      emitter.emit(std::string_view{word}, 1);
    }
  };
  feed();
  const auto first = emitter_contents(emitter);
  const std::uint64_t first_bytes = emitter.bytes();
  const std::size_t first_stored = emitter.stored();
  ASSERT_EQ(first.at("delta"), 3u);

  emitter.reset();
  EXPECT_EQ(emitter.count(), 0u);
  EXPECT_EQ(emitter.bytes(), 0u);
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    EXPECT_TRUE(emitter.bucket(b).empty());
  }

  feed();
  EXPECT_EQ(emitter_contents(emitter), first);
  EXPECT_EQ(emitter.bytes(), first_bytes);
  EXPECT_EQ(emitter.stored(), first_stored);
}

TEST(Emitter, BatchedEmitMatchesPerTokenEmit) {
  // emit_batch must be observationally identical to per-token emit():
  // same contents, same counters, same byte accounting — it only changes
  // how hashing and probing are scheduled.
  std::vector<std::string> corpus;
  for (int i = 0; i < 300; ++i) {
    corpus.push_back("tok-" + std::to_string(i % 37));
  }
  std::vector<std::string_view> views{corpus.begin(), corpus.end()};

  Emitter<std::string, std::uint64_t> scalar{8};
  scalar.set_combiner(nullptr, sum_combiner);
  for (const auto& v : views) scalar.emit(v, 1);

  Emitter<std::string, std::uint64_t> batched{8};
  batched.set_combiner(nullptr, sum_combiner);
  std::size_t i = 0;
  while (i < views.size()) {
    const std::size_t n = std::min<std::size_t>(
        Emitter<std::string, std::uint64_t>::kMaxBatch, views.size() - i);
    batched.emit_batch(std::span<const std::string_view>{&views[i], n}, 1);
    i += n;
  }

  EXPECT_EQ(batched.count(), scalar.count());
  EXPECT_EQ(batched.stored(), scalar.stored());
  EXPECT_EQ(batched.bytes(), scalar.bytes());
  EXPECT_EQ(emitter_contents(batched), emitter_contents(scalar));
}

TEST(Emitter, AbsorbBucketFoldsAcrossEmitters) {
  // The reduce phase's cross-worker merge: absorbing src's bucket must
  // yield the same per-key sums as emitting everything into one emitter.
  Emitter<std::string, std::uint64_t> a{4};
  Emitter<std::string, std::uint64_t> b{4};
  a.set_combiner(nullptr, sum_combiner);
  b.set_combiner(nullptr, sum_combiner);
  for (int i = 0; i < 500; ++i) {
    a.emit(std::string_view{"key-" + std::to_string(i % 60)}, 1);
    b.emit(std::string_view{"key-" + std::to_string(i % 90)}, 2);
  }
  std::map<std::string, std::uint64_t> expected = emitter_contents(a);
  for (const auto& [key, value] : emitter_contents(b)) expected[key] += value;

  for (std::size_t bucket = 0; bucket < a.bucket_count(); ++bucket) {
    a.absorb_bucket(bucket, b);
  }
  EXPECT_EQ(emitter_contents(a), expected);
}

TEST(Emitter, BudgetMetersArenaBytesNotStringCapacity) {
  // Arena accounting: the meter charges exactly the key bytes copied into
  // the arena (plus the pair), never std::string header/capacity, and the
  // arena's own usage must cover every charged key byte.
  Emitter<std::string, std::uint64_t> emitter{2};
  emitter.set_combiner(nullptr, sum_combiner);
  const std::string long_key(200, 'k');  // would round up under capacity()
  emitter.emit(std::string_view{long_key}, 1);
  emitter.emit(std::string_view{"ab"}, 1);
  emitter.emit(std::string_view{long_key}, 1);  // combine hit: no growth

  using P = Emitter<std::string, std::uint64_t>::Pair;
  EXPECT_EQ(emitter.bytes(), 2 * sizeof(P) + long_key.size() + 2);
}

// ---------------------------------------------------------------------------
// DynamicScheduler: batched claiming.
// ---------------------------------------------------------------------------

TEST(DynamicScheduler, BatchesPartitionTheIndexSpaceExactlyOnce) {
  DynamicScheduler sched{103};
  std::vector<int> seen(103, 0);
  while (auto b = sched.next_batch(8)) {
    EXPECT_LT(b->begin, b->end);
    EXPECT_LE(b->end, 103u);
    for (std::size_t i = b->begin; i < b->end; ++i) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_FALSE(sched.next_batch(8).has_value());
  EXPECT_FALSE(sched.next().has_value());
}

TEST(DynamicScheduler, ZeroBatchSizeClaimsOne) {
  DynamicScheduler sched{2};
  const auto b = sched.next_batch(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->end - b->begin, 1u);
}

TEST(DynamicScheduler, SuggestedBatchKeepsStealingGranularity) {
  // ~8 batches per worker; never below one task.
  EXPECT_EQ(DynamicScheduler::suggested_batch(0, 4), 1u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(10, 4), 1u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(64, 4), 2u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(1024, 4), 32u);
  EXPECT_EQ(DynamicScheduler::suggested_batch(1024, 0), 128u);
}

// ---------------------------------------------------------------------------
// LocalityScheduler: contiguous slabs, owner-front claims, thief-back
// steals.
// ---------------------------------------------------------------------------

TEST(LocalityScheduler, EveryIndexClaimedExactlyOnce) {
  LocalityScheduler sched{103, 4};
  std::vector<int> seen(103, 0);
  // Round-robin the workers so everyone both drains its slab and steals.
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t w = 0; w < 4; ++w) {
      bool stolen = false;
      if (auto b = sched.claim(w, 5, &stolen)) {
        any = true;
        EXPECT_LT(b->begin, b->end);
        EXPECT_LE(b->end, 103u);
        for (std::size_t i = b->begin; i < b->end; ++i) ++seen[i];
      }
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  bool stolen = false;
  EXPECT_FALSE(sched.claim(0, 5, &stolen).has_value());
}

TEST(LocalityScheduler, OwnSlabClaimsAreContiguousAndFrontToBack) {
  // 40 tasks, 4 workers: worker 1 owns [10, 20) and must walk it in
  // order — the sequential-streaming property the map phase relies on.
  LocalityScheduler sched{40, 4};
  std::size_t expected = 10;
  bool stolen = true;
  while (expected < 20) {
    const auto b = sched.claim(1, 3, &stolen);
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(stolen);
    EXPECT_EQ(b->begin, expected);
    expected = b->end;
    ASSERT_LE(expected, 20u);
  }
  EXPECT_EQ(expected, 20u);
}

TEST(LocalityScheduler, DrySlabStealsFromBackOfFullestVictim) {
  LocalityScheduler sched{32, 2};  // worker 0: [0,16), worker 1: [16,32)
  // Drain worker 1's slab: four claims of four tasks each.
  bool stolen = false;
  for (int i = 0; i < 4; ++i) {
    const auto b = sched.claim(1, 4, &stolen);
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(stolen);
  }
  // Worker 1's next claims must be steals from the *back* of worker 0's
  // untouched slab, at most half the remainder at a time.
  stolen = false;
  const auto theft = sched.claim(1, 4, &stolen);
  ASSERT_TRUE(theft.has_value());
  EXPECT_TRUE(stolen);
  EXPECT_EQ(theft->end, 16u);  // back end of victim's slab
  EXPECT_LE(theft->end - theft->begin, 8u);  // at most half of 16 left
  // The owner still claims its front unperturbed.
  const auto own = sched.claim(0, 4, &stolen);
  ASSERT_TRUE(own.has_value());
  EXPECT_FALSE(stolen);
  EXPECT_EQ(own->begin, 0u);
}

TEST(LocalityScheduler, HandlesFewerTasksThanWorkers) {
  LocalityScheduler sched{3, 8};
  std::vector<int> seen(3, 0);
  for (std::size_t w = 0; w < 8; ++w) {
    while (auto b = sched.claim(w, 2)) {
      for (std::size_t i = b->begin; i < b->end; ++i) ++seen[i];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(LocalityScheduler, EmptyTaskSpaceYieldsNothing) {
  LocalityScheduler sched{0, 4};
  EXPECT_FALSE(sched.claim(0, 8).has_value());
  EXPECT_FALSE(sched.claim(3, 8).has_value());
}

// ---------------------------------------------------------------------------
// Engine worker-state reuse.
// ---------------------------------------------------------------------------

TEST(Engine, ReusedWorkerStateProducesIdenticalOutputAcrossRuns) {
  // The out-of-core driver calls run() once per fragment on one engine;
  // run N+1 must be byte-identical to a fresh engine's run, for both the
  // same input (reset correctness) and different inputs (no leakage).
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  corpus.vocabulary = 250;
  const std::string text_a = apps::generate_corpus(corpus);
  corpus.seed = 17;
  const std::string text_b = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 3;
  opts.sort_output_by_key = true;
  Engine<WordCountSpec> engine{opts};
  const auto chunks_a = split_text(text_a, 4 * 1024);
  const auto chunks_b = split_text(text_b, 4 * 1024);

  const auto first_a = engine.run(WordCountSpec{}, chunks_a);
  const auto first_b = engine.run(WordCountSpec{}, chunks_b);  // reused state
  const auto second_a = engine.run(WordCountSpec{}, chunks_a);

  Engine<WordCountSpec> fresh{opts};
  const auto fresh_b = fresh.run(WordCountSpec{}, chunks_b);

  EXPECT_EQ(to_map(second_a), to_map(first_a));
  EXPECT_EQ(to_map(first_b), to_map(fresh_b));
  EXPECT_EQ(to_map(first_a), to_map(apps::wordcount_sequential(text_a)));
}

TEST(Engine, OutputByteIdenticalAcrossWorkerCounts) {
  // Acceptance property: with the default (fixed) bucket geometry, the
  // engine's bucket-order output — not just its key->count map — must be
  // identical at 1, 2 and 4 workers, and stable across runs on a reused
  // engine.
  apps::CorpusOptions corpus;
  corpus.bytes = 128 * 1024;
  corpus.vocabulary = 400;
  const std::string text = apps::generate_corpus(corpus);
  const auto chunks = split_text(text, 8 * 1024);

  std::vector<std::vector<KV<std::string, std::uint64_t>>> outputs;
  for (std::size_t workers : {1u, 2u, 4u}) {
    Options opts;
    opts.num_workers = workers;
    Engine<WordCountSpec> engine{opts};
    auto first = engine.run(WordCountSpec{}, chunks);
    const auto second = engine.run(WordCountSpec{}, chunks);  // reused state
    EXPECT_EQ(first, second) << "reused-engine drift at workers=" << workers;
    outputs.push_back(std::move(first));
  }
  EXPECT_EQ(outputs[1], outputs[0]) << "2 workers != 1 worker";
  EXPECT_EQ(outputs[2], outputs[0]) << "4 workers != 1 worker";
}

TEST(Engine, MapWorkerStatsAttributeTheMapPhase) {
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  corpus.vocabulary = 500;
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 2;
  opts.attribute_map_cycles = true;
  Engine<WordCountSpec> engine{opts};
  Metrics metrics;
  engine.run(WordCountSpec{}, split_text(text, 8 * 1024), 0, &metrics);

  ASSERT_EQ(metrics.map_workers.size(), 2u);
  std::size_t chunks = 0, emits = 0;
  double attributed = 0.0;
  for (const auto& w : metrics.map_workers) {
    chunks += w.chunks;
    emits += w.emits;
    attributed += w.tokenize_seconds + w.hash_seconds + w.probe_seconds;
    EXPECT_GE(w.wall_seconds, 0.0);
  }
  EXPECT_EQ(chunks, metrics.chunks);
  EXPECT_EQ(emits, metrics.map_emits);
  EXPECT_GT(attributed, 0.0);
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(metrics.map_cpu_seconds(), 0.0);
#endif
  // Attribution is strictly opt-in: without the flag the split stays 0.
  Options plain = opts;
  plain.attribute_map_cycles = false;
  Engine<WordCountSpec> plain_engine{plain};
  Metrics plain_metrics;
  plain_engine.run(WordCountSpec{}, split_text(text, 8 * 1024), 0,
                   &plain_metrics);
  double plain_attributed = 0.0;
  for (const auto& w : plain_metrics.map_workers) {
    plain_attributed += w.tokenize_seconds + w.hash_seconds + w.probe_seconds +
                        w.claim_seconds;
  }
  EXPECT_EQ(plain_attributed, 0.0);
}

TEST(Engine, ReleaseWorkerStateKeepsResultsCorrect) {
  apps::CorpusOptions corpus;
  corpus.bytes = 32 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  const auto chunks = split_text(text, 4 * 1024);
  const auto reference = to_map(engine.run(WordCountSpec{}, chunks));
  engine.release_worker_state();
  EXPECT_EQ(to_map(engine.run(WordCountSpec{}, chunks)), reference);
}

TEST(Engine, BudgetObservesCombinedVolume) {
  // Low-entropy input: raw emits dwarf unique keys, and the byte meter
  // must see only the combined (unique-key) volume.
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  corpus.vocabulary = 50;
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  Metrics metrics;
  engine.run(WordCountSpec{}, split_text(text, 16 * 1024), 0, &metrics);

  ASSERT_GT(metrics.map_emits, 10'000u);
  const std::uint64_t intermediate =
      metrics.peak_intermediate_bytes - text.size();
  // Raw (uncombined) volume would be ~map_emits * sizeof(pair); combined
  // volume is bounded by unique keys per worker.
  EXPECT_LT(intermediate, 64 * 1024u);
  EXPECT_LT(intermediate,
            metrics.map_emits * sizeof(HKV<std::string, std::uint64_t>) / 8);
}

// Cross-product sweep: engine output equals the sequential reference for
// any worker count x bucket count x chunk size combination.
TEST(Engine, WordCountInvariantAcrossWorkersBucketsChunks) {
  apps::CorpusOptions corpus;
  corpus.bytes = 48 * 1024;
  corpus.vocabulary = 150;
  const std::string text = apps::generate_corpus(corpus);
  const auto reference = to_map(apps::wordcount_sequential(text));

  for (std::size_t workers : {1u, 2u, 5u}) {
    for (std::size_t buckets : {1u, 2u, 7u, 32u}) {
      for (std::size_t chunk : {512u, 16u * 1024u}) {
        Options opts;
        opts.num_workers = workers;
        opts.num_reduce_buckets = buckets;
        Engine<WordCountSpec> engine{opts};
        const auto out = engine.run(WordCountSpec{}, split_text(text, chunk));
        EXPECT_EQ(to_map(out), reference)
            << "workers=" << workers << " buckets=" << buckets
            << " chunk=" << chunk;
      }
    }
  }
}

// Worker-count sweep: output must be identical for any parallelism level.
class EngineWorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineWorkerSweep, WordCountInvariantUnderParallelism) {
  apps::CorpusOptions corpus;
  corpus.bytes = 96 * 1024;
  corpus.vocabulary = 300;
  corpus.seed = GetParam();  // vary data with workers too
  const std::string text = apps::generate_corpus(corpus);

  Options opts;
  opts.num_workers = GetParam();
  opts.sort_output_by_key = true;
  Engine<WordCountSpec> engine{opts};
  const auto out = engine.run(WordCountSpec{}, split_text(text, 4 * 1024));
  const auto reference = apps::wordcount_sequential(text);
  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, reference[i].key);
    EXPECT_EQ(out[i].value, reference[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, EngineWorkerSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

// Chunk-size sweep: result independent of map granularity.
class EngineChunkSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineChunkSweep, ResultIndependentOfChunkSize) {
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  corpus.vocabulary = 200;
  const std::string text = apps::generate_corpus(corpus);
  Options opts;
  opts.num_workers = 2;
  Engine<WordCountSpec> engine{opts};
  const auto out = engine.run(WordCountSpec{}, split_text(text, GetParam()));
  EXPECT_EQ(to_map(out), to_map(apps::wordcount_sequential(text)));
}

INSTANTIATE_TEST_SUITE_P(ChunkBytes, EngineChunkSweep,
                         ::testing::Values(128, 1024, 8192, 65536, 1 << 20));

}  // namespace
}  // namespace mcsd::mr
