#include "core/units.hpp"

#include <gtest/gtest.h>

namespace mcsd {
namespace {

using namespace mcsd::literals;

TEST(Units, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(FormatBytes, PaperLabels) {
  EXPECT_EQ(format_bytes(500_MiB), "500M");
  EXPECT_EQ(format_bytes(750_MiB), "750M");
  EXPECT_EQ(format_bytes(1_GiB), "1G");
  EXPECT_EQ(format_bytes(1_GiB + 256_MiB), "1.25G");
  EXPECT_EQ(format_bytes(2_GiB), "2G");
}

TEST(FormatBytes, SmallSizes) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(4096), "4K");
}

TEST(FormatBytes, TrimsTrailingZeros) {
  EXPECT_EQ(format_bytes(1_GiB + 512_MiB), "1.5G");
}

TEST(ParseBytes, PlainAndSuffixed) {
  EXPECT_EQ(parse_bytes("512").value(), 512u);
  EXPECT_EQ(parse_bytes("64K").value(), 64_KiB);
  EXPECT_EQ(parse_bytes("500M").value(), 500_MiB);
  EXPECT_EQ(parse_bytes("1G").value(), 1_GiB);
  EXPECT_EQ(parse_bytes("1.25G").value(), 1_GiB + 256_MiB);
}

TEST(ParseBytes, CaseAndSuffixVariants) {
  EXPECT_EQ(parse_bytes("500m").value(), 500_MiB);
  EXPECT_EQ(parse_bytes("500MB").value(), 500_MiB);
  EXPECT_EQ(parse_bytes("500MiB").value(), 500_MiB);
  EXPECT_EQ(parse_bytes("2g").value(), 2_GiB);
}

TEST(ParseBytes, RoundTripsFormat) {
  for (const std::uint64_t v :
       {500_MiB, 750_MiB, 1_GiB, 1_GiB + 256_MiB, 2_GiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)).value(), v) << format_bytes(v);
  }
}

TEST(ParseBytes, Rejections) {
  EXPECT_FALSE(parse_bytes("").is_ok());
  EXPECT_FALSE(parse_bytes("abc").is_ok());
  EXPECT_FALSE(parse_bytes("10T").is_ok());
  EXPECT_FALSE(parse_bytes("-5M").is_ok());
}

}  // namespace
}  // namespace mcsd
