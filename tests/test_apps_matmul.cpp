#include "apps/matmul.hpp"

#include <gtest/gtest.h>

#include "apps/datagen.hpp"
#include "mapreduce/engine.hpp"

namespace mcsd::apps {
namespace {

TEST(Matrix, Accessors) {
  Matrix m{2, 3};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 7.5;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(PackCoord, RoundTrips) {
  const auto key = pack_coord(123456, 654321);
  EXPECT_EQ(coord_row(key), 123456u);
  EXPECT_EQ(coord_col(key), 654321u);
}

TEST(MatmulSequential, KnownProduct) {
  Matrix a{2, 2};
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b{2, 2};
  b.at(0, 0) = 5; b.at(0, 1) = 6;
  b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = matmul_sequential(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(MatmulSequential, IdentityIsNeutral) {
  Matrix a = generate_matrix(5, 5, 77);
  Matrix eye{5, 5};
  for (std::size_t i = 0; i < 5; ++i) eye.at(i, i) = 1.0;
  EXPECT_EQ(matmul_sequential(a, eye), a);
}

TEST(MatmulSequential, DimensionMismatchThrows) {
  Matrix a{2, 3};
  Matrix b{2, 3};
  EXPECT_THROW(matmul_sequential(a, b), std::invalid_argument);
}

TEST(MatMulSpec, MissingOperandsThrow) {
  MatMulSpec spec;
  mr::Emitter<std::uint64_t, double> emitter{2};
  EXPECT_THROW(spec.map(mr::IndexChunk{0, 1}, emitter), std::invalid_argument);
}

TEST(MatMul, EngineMatchesSequential) {
  const Matrix a = generate_matrix(17, 23, 1);
  const Matrix b = generate_matrix(23, 11, 2);
  MatMulSpec spec;
  spec.a = &a;
  spec.b = &b;
  mr::Options opts;
  opts.num_workers = 3;
  mr::Engine<MatMulSpec> engine{opts};
  const auto cells = engine.run(spec, mr::split_index(a.rows(), 8));
  const Matrix assembled = assemble_matrix(cells, a.rows(), b.cols());
  const Matrix expected = matmul_sequential(a, b);
  ASSERT_EQ(assembled.rows(), expected.rows());
  for (std::size_t i = 0; i < expected.rows(); ++i) {
    for (std::size_t j = 0; j < expected.cols(); ++j) {
      EXPECT_NEAR(assembled.at(i, j), expected.at(i, j), 1e-9)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(MatMul, EveryCellEmittedExactlyOnce) {
  const Matrix a = generate_matrix(9, 4, 3);
  const Matrix b = generate_matrix(4, 6, 4);
  MatMulSpec spec;
  spec.a = &a;
  spec.b = &b;
  mr::Engine<MatMulSpec> engine{mr::Options{}};
  const auto cells = engine.run(spec, mr::split_index(a.rows(), 3));
  EXPECT_EQ(cells.size(), 9u * 6u);
  // assemble_matrix throws on duplicates, so success implies uniqueness.
  EXPECT_NO_THROW(assemble_matrix(cells, 9, 6));
}

TEST(AssembleMatrix, RejectsOutOfRange) {
  std::vector<CellPair> cells{{pack_coord(5, 0), 1.0}};
  EXPECT_THROW(assemble_matrix(cells, 2, 2), std::invalid_argument);
}

TEST(AssembleMatrix, RejectsDuplicates) {
  std::vector<CellPair> cells{{pack_coord(0, 0), 1.0},
                              {pack_coord(0, 0), 2.0}};
  EXPECT_THROW(assemble_matrix(cells, 1, 1), std::invalid_argument);
}

// Parameterised shape sweep.
struct MmShape {
  std::size_t m, k, n;
};

class MatMulShapes : public ::testing::TestWithParam<MmShape> {};

TEST_P(MatMulShapes, EngineMatchesSequential) {
  const auto [m, k, n] = GetParam();
  const Matrix a = generate_matrix(m, k, m * 100 + k);
  const Matrix b = generate_matrix(k, n, k * 100 + n);
  MatMulSpec spec;
  spec.a = &a;
  spec.b = &b;
  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<MatMulSpec> engine{opts};
  const auto cells = engine.run(spec, mr::split_index(m, 4));
  const Matrix got = assemble_matrix(cells, m, n);
  const Matrix expected = matmul_sequential(a, b);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(got.at(i, j), expected.at(i, j), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapes,
                         ::testing::Values(MmShape{1, 1, 1}, MmShape{1, 8, 1},
                                           MmShape{8, 1, 8}, MmShape{13, 7, 5},
                                           MmShape{32, 32, 32}));

}  // namespace
}  // namespace mcsd::apps
