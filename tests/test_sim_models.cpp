#include "cluster/models.hpp"

#include <gtest/gtest.h>

#include "cluster/profiles.hpp"
#include "cluster/smb.hpp"
#include "cluster/testbed.hpp"
#include "core/units.hpp"

namespace mcsd::sim {
namespace {

using namespace mcsd::literals;

TEST(DiskModel, ReadScalesLinearly) {
  DiskModel disk;
  const double t1 = disk.read_seconds(100_MiB);
  const double t2 = disk.read_seconds(200_MiB);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR((t2 - disk.seek_seconds) / (t1 - disk.seek_seconds), 2.0, 1e-9);
}

TEST(DiskModel, WriteSlowerThanRead) {
  DiskModel disk;
  EXPECT_GT(disk.write_seconds(1_GiB), disk.read_seconds(1_GiB));
}

TEST(NicModel, GigabitIsAbout119MiBps) {
  NicModel nic;
  EXPECT_NEAR(nic.raw_mibps(), 119.2, 0.2);
}

TEST(NfsModel, TransferBoundedBySlowerNicAndEfficiency) {
  NfsModel nfs;
  NicModel fast;
  NicModel slow;
  slow.bandwidth_mbps = 100.0;
  const double t = nfs.transfer_seconds(100_MiB, fast, slow, 0.0);
  // 100 Mbps * 0.8 efficiency ≈ 9.54 MiB/s → ≈ 10.5 s.
  EXPECT_GT(t, 10.0);
  EXPECT_LT(t, 11.0);
}

TEST(NfsModel, BackgroundUtilizationSlowsTransfer) {
  NfsModel nfs;
  NicModel nic;
  const double quiet = nfs.transfer_seconds(500_MiB, nic, nic, 0.0);
  const double busy = nfs.transfer_seconds(500_MiB, nic, nic, 0.5);
  EXPECT_NEAR(busy / quiet, 2.0, 0.05);
}

TEST(SwapModel, NoThrashWhenFits) {
  SwapModel swap;
  DiskModel disk;
  EXPECT_DOUBLE_EQ(swap.thrash_seconds(1_GiB, 2_GiB, disk), 0.0);
  EXPECT_DOUBLE_EQ(swap.thrash_seconds(2_GiB, 2_GiB, disk), 0.0);
}

TEST(SwapModel, ThrashGrowsSuperlinearlyWithOverflow) {
  SwapModel swap;
  DiskModel disk;
  const double t2 = swap.thrash_seconds(2_GiB, 1_GiB, disk);   // 2x over
  const double t3 = swap.thrash_seconds(3_GiB, 1_GiB, disk);   // 3x over
  EXPECT_GT(t2, 0.0);
  // Superlinear: tripling footprint more than triples the penalty.
  EXPECT_GT(t3, 3.0 * t2 * 0.99);
}

TEST(SwapModel, ZeroAvailableMemoryIsGuarded) {
  SwapModel swap;
  DiskModel disk;
  EXPECT_DOUBLE_EQ(swap.thrash_seconds(1_GiB, 0, disk), 0.0);
}

TEST(CpuModel, PerfectSerialJobIgnoresCores) {
  CpuModel cpu{4, 1.0};
  EXPECT_DOUBLE_EQ(cpu.compute_seconds(10.0, 4, 0.0), 10.0);
}

TEST(CpuModel, AmdahlSpeedup) {
  CpuModel cpu{2, 1.0};
  const double t1 = cpu.compute_seconds(10.0, 1, 0.95);
  const double t2 = cpu.compute_seconds(10.0, 2, 0.95);
  EXPECT_NEAR(t1 / t2, 1.0 / (0.05 + 0.95 / 2), 1e-9);
}

TEST(CpuModel, ThreadsCappedByCores) {
  CpuModel cpu{2, 1.0};
  EXPECT_DOUBLE_EQ(cpu.compute_seconds(10.0, 8, 1.0),
                   cpu.compute_seconds(10.0, 2, 1.0));
}

TEST(CpuModel, CoreSpeedScales) {
  CpuModel slow{1, 1.0};
  CpuModel fast{1, 2.0};
  EXPECT_DOUBLE_EQ(slow.compute_seconds(10.0, 1, 0.5),
                   2.0 * fast.compute_seconds(10.0, 1, 0.5));
}

TEST(NodeSpec, UsableMemorySubtractsReserve) {
  NodeSpec node;
  node.memory_bytes = 2_GiB;
  node.os_reserve_bytes = 200_MiB;
  EXPECT_EQ(node.usable_memory(), 2_GiB - 200_MiB);
  node.os_reserve_bytes = 3_GiB;
  EXPECT_EQ(node.usable_memory(), 0u);
}

TEST(Testbed, Table1Configuration) {
  const Testbed tb = table1_testbed();
  EXPECT_EQ(tb.host.cpu.cores, 4u);         // Core2 Quad Q9400
  EXPECT_EQ(tb.sd_duo.cpu.cores, 2u);       // Core2 Duo E4400
  EXPECT_EQ(tb.sd_single.cpu.cores, 1u);    // traditional SD baseline
  EXPECT_EQ(tb.compute.size(), 3u);         // 3x Celeron 450
  EXPECT_EQ(tb.compute[0].cpu.cores, 1u);
  EXPECT_EQ(tb.host.memory_bytes, 2_GiB);   // 2 GB per Table I
  EXPECT_EQ(tb.sd_duo.memory_bytes, 2_GiB);
  EXPECT_DOUBLE_EQ(tb.host.nic.bandwidth_mbps, 1000.0);  // 1 GbE
  EXPECT_GT(tb.host.cpu.core_speed, tb.sd_duo.cpu.core_speed);
}

TEST(Profiles, PaperFootprintFactors) {
  EXPECT_DOUBLE_EQ(wordcount_profile().footprint_factor, 3.0);
  EXPECT_DOUBLE_EQ(stringmatch_profile().footprint_factor, 2.0);
  EXPECT_TRUE(wordcount_profile().partitionable);
  EXPECT_TRUE(stringmatch_profile().partitionable);
  EXPECT_FALSE(matmul_profile().partitionable);
}

TEST(Profiles, MatmulIsComputeBound) {
  EXPECT_GT(matmul_profile().seconds_per_mib,
            wordcount_profile().seconds_per_mib);
  EXPECT_GT(wordcount_profile().seconds_per_mib,
            stringmatch_profile().seconds_per_mib);
}

TEST(Smb, UtilizationOnlyOnParticipatingLinks) {
  SmbTraffic smb{SmbConfig{}};
  NicModel nic;
  EXPECT_DOUBLE_EQ(smb.utilization_for(false, false, nic), 0.0);
  EXPECT_GT(smb.utilization_for(true, false, nic), 0.0);
  EXPECT_EQ(smb.utilization_for(true, false, nic),
            smb.utilization_for(true, true, nic));
}

TEST(Smb, UtilizationClampedBelow09) {
  SmbConfig cfg;
  cfg.messages_per_second = 1e9;  // absurd offered load
  SmbTraffic smb{cfg};
  EXPECT_DOUBLE_EQ(smb.link_utilization(NicModel{}), 0.9);
}

TEST(Smb, OfferedLoadScalesWithMessageRate) {
  SmbConfig slow_cfg;
  slow_cfg.messages_per_second = 100;
  SmbConfig fast_cfg;
  fast_cfg.messages_per_second = 200;
  EXPECT_NEAR(SmbTraffic{fast_cfg}.offered_mibps_per_node() /
                  SmbTraffic{slow_cfg}.offered_mibps_per_node(),
              2.0, 1e-9);
}

}  // namespace
}  // namespace mcsd::sim
