#!/bin/sh
# Smoke test of the figure-bench harnesses: every binary must run, exit 0,
# and emit the expected CSV header under --csv (bit-stable output is a
# documented property; the header is its anchor).
#
# Usage: bench_smoke.sh [bench-binary-dir] [tools-binary-dir]
# ctest passes the directories via $<TARGET_FILE_DIR:...>, which resolves
# for any CMake generator (Makefiles, Ninja, multi-config).  When run by
# hand with no argument, the script locates the binaries itself.
set -eu

if [ "$#" -ge 1 ]; then
  BIN_DIR="$1"
else
  # Auto-detect: newest bench_fig9 under any build*/ next to this script.
  repo_root=$(cd "$(dirname "$0")/.." && pwd)
  BIN_DIR=""
  for candidate in "$repo_root"/build*/bench "$repo_root"/build*/*/bench; do
    [ -x "$candidate/bench_fig9" ] && BIN_DIR="$candidate"
  done
  if [ -z "$BIN_DIR" ]; then
    echo "cannot find bench binaries; build first or pass the directory"
    exit 1
  fi
fi

check() {
  bin="$1"; expect="$2"; shift 2
  out=$("$BIN_DIR/$bin" --csv "$@")
  echo "$out" | grep -q "$expect" || {
    echo "$bin: missing '$expect' in output"; exit 1;
  }
}

check bench_fig8a  "series,size,partitioned (s)"
check bench_fig8b  "size,Duo partitioned,Quad partitioned"
check bench_fig8c  "size,Duo partitioned,Quad partitioned"
check bench_fig9   "(a) host-only x"
check bench_fig10  "(a) host-only x"

# Option plumbing: a different partition size must change Fig. 9's rows.
base=$("$BIN_DIR/bench_fig9" --csv)
alt=$("$BIN_DIR/bench_fig9" --csv --partition=300M)
[ "$base" != "$alt" ] || { echo "--partition had no effect"; exit 1; }

# Determinism: two runs are byte-identical.
again=$("$BIN_DIR/bench_fig9" --csv)
[ "$base" = "$again" ] || { echo "bench_fig9 output not deterministic"; exit 1; }

# Non-figure harnesses just need to run cleanly.
"$BIN_DIR/bench_table1" > /dev/null
"$BIN_DIR/bench_ablation_partition_size" > /dev/null
"$BIN_DIR/bench_ablation_scheduling" > /dev/null
"$BIN_DIR/bench_ablation_offload" > /dev/null
"$BIN_DIR/bench_des_validation" > /dev/null

# bench_record out-of-core A/B: a tiny run must produce a trajectory file
# carrying both arms and the residency bound.  CI uploads the JSON as an
# artifact.
TOOLS_DIR="${2:-$BIN_DIR/../tools}"
if [ -x "$TOOLS_DIR/bench_record" ]; then
  "$TOOLS_DIR/bench_record" --suite outofcore --bytes 1M --reps 2 \
      --workers 2 --label smoke --out BENCH_outofcore.json > /dev/null
  for needle in outofcore_serial outofcore_pipelined \
      peak_resident_fragment_bytes pipelined_speedup; do
    grep -q "$needle" BENCH_outofcore.json || {
      echo "BENCH_outofcore.json: missing '$needle'"; exit 1;
    }
  done
else
  echo "bench_record not found in $TOOLS_DIR; skipping outofcore smoke"
  exit 1
fi

# bench_record storage: a tiny cold-vs-warm run through the buffer pool
# must record the warm-rerun speedup, hit rates for the fitting and
# overflow pools, and the byte-identity + residency gates.  Appends to
# the same out-of-core trajectory file checked above.
"$TOOLS_DIR/bench_record" --suite storage --bytes 1M --reps 2 \
    --workers 2 --label smoke --out BENCH_outofcore.json > /dev/null
for needle in storage_cold storage_warm warm_rerun_speedup hit_rate \
    warm_rerun_speedup_overflow hit_rate_overflow \
    output_identical_warm_cold peak_resident_within_pool pool_bytes; do
  grep -q "$needle" BENCH_outofcore.json || {
    echo "BENCH_outofcore.json: missing '$needle'"; exit 1;
  }
done
grep -q '"output_identical_warm_cold": true' BENCH_outofcore.json || {
  echo "storage suite: warm output diverged from cold"; exit 1;
}

# bench_record cache: a tiny run against a live daemon must record the
# cold / warm-miss / hit latency split, the zipf-trace hit rate, and the
# hit-equals-cold byte-identity probe.  CI uploads BENCH_fam.json as an
# artifact.
"$TOOLS_DIR/bench_record" --suite cache --bytes 256K --reps 2 \
    --workers 2 --label smoke --out BENCH_fam.json > /dev/null
for needle in cold_p50_ms warm_miss_p50_ms hit_p50_ms hit_p99_ms \
    hit_over_cold_p50 zipf_hit_rate zipf_hit_p50_ms \
    output_identical_hit_cold cache_entries cache_evictions; do
  grep -q "$needle" BENCH_fam.json || {
    echo "BENCH_fam.json: missing '$needle'"; exit 1;
  }
done
grep -q '"output_identical_hit_cold": true' BENCH_fam.json || {
  echo "cache suite: hit payload diverged from cold"; exit 1;
}
grep -q '"hit_phase_all_hits": true' BENCH_fam.json || {
  echo "cache suite: identical re-ask missed the result cache"; exit 1;
}

# bench_record serve: a tiny 64-client run over the sharded mailbox
# channel must record throughput and tail latency for both arms (the
# sharded entry and its single-log baseline), the coalesce rate, the
# backpressure phase, and — non-negotiably — an exactly-once ledger of
# zero lost and zero duplicated responses.
"$TOOLS_DIR/bench_record" --suite serve --bytes 64K --reps 1 \
    --workers 2 --label smoke --out BENCH_fam.json > /dev/null
for needle in throughput_rps serve_p50_ms serve_p99_ms coalesce_rate \
    speedup_vs_single_log backpressure_p99_ms backpressure_retries \
    smoke-single-log; do
  grep -q "$needle" BENCH_fam.json || {
    echo "BENCH_fam.json: missing '$needle'"; exit 1;
  }
done
grep -q '"responses_lost": 0' BENCH_fam.json || {
  echo "serve suite: lost responses (exactly-once broken)"; exit 1;
}
grep -q '"responses_duplicated": 0' BENCH_fam.json || {
  echo "serve suite: duplicated responses (exactly-once broken)"; exit 1;
}
grep -q '"backpressure_failures": 0' BENCH_fam.json || {
  echo "serve suite: invokes failed under backpressure"; exit 1;
}

# bench_record cluster: a small-cluster run of the DES scheduling
# simulator must record makespan/utilization/slowdown for all three
# placement policies, a positive makespan, and digest-identical repeats
# (policies_deterministic) — and the recorded ranking itself must be
# byte-identical across two invocations under the fixed seed.  CI
# uploads BENCH_cluster.json as an artifact.
"$TOOLS_DIR/bench_record" --suite cluster --nodes 40 --jobs 400 \
    --label smoke --out BENCH_cluster.json > /dev/null
for needle in makespan_s_random makespan_s_greedy makespan_s_contention \
    cpu_utilization_contention fabric_utilization_greedy \
    slowdown_p50_contention slowdown_p99_random policy_ranking \
    contention_beats_greedy cluster_fluid_bound_s \
    makespan_s_bursty_contention makespan_s_zipf_contention; do
  grep -q "$needle" BENCH_cluster.json || {
    echo "BENCH_cluster.json: missing '$needle'"; exit 1;
  }
done
grep -q '"policies_deterministic": true' BENCH_cluster.json || {
  echo "cluster suite: repeat run diverged under the fixed seed"; exit 1;
}
grep -Eq '"makespan_s_contention": [0-9]*[1-9]' BENCH_cluster.json || {
  echo "cluster suite: contention makespan not positive"; exit 1;
}
rank_a=$(grep '"policy_ranking"' BENCH_cluster.json | tail -1)
"$TOOLS_DIR/bench_record" --suite cluster --nodes 40 --jobs 400 \
    --label smoke2 --out BENCH_cluster.json > /dev/null
rank_b=$(grep '"policy_ranking"' BENCH_cluster.json | tail -1)
[ "$rank_a" = "$rank_b" ] || {
  echo "cluster suite: policy ranking not deterministic"; exit 1;
}

# bench_record mapreduce: a tiny run must record the per-phase breakdown,
# scaling efficiency, and the worker-state-reuse A/B.  CI uploads the
# JSON as an artifact.
"$TOOLS_DIR/bench_record" --suite mapreduce --bytes 1M --reps 2 \
    --workers 1,2 --label smoke --out BENCH_mapreduce.json > /dev/null
for needle in wordcount_engine wordcount_map_ms wordcount_reduce_ms \
    wordcount_merge_ms scaling_efficiency fragment_setup_cold_us \
    fragment_setup_warm_us setup_overhead_reduction_pct; do
  grep -q "$needle" BENCH_mapreduce.json || {
    echo "BENCH_mapreduce.json: missing '$needle'"; exit 1;
  }
done

echo "bench smoke test passed"
