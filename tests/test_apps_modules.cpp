// The FAM-loadable application modules, exercised through a live
// daemon/client pair over a shared folder.
#include "apps/modules.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "apps/datagen.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/io.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"

namespace mcsd::apps {
namespace {

using namespace std::chrono_literals;

struct ModulesFixture : ::testing::Test {
  ModulesFixture()
      : daemon(fam::DaemonOptions{shared.path(), 1ms, 2}),
        client(fam::ClientOptions{shared.path(), 1ms, 30'000ms}) {
    const Status s = preload_standard_modules(
        [this](auto module) { return daemon.preload(std::move(module)); }, 2);
    EXPECT_TRUE(s.is_ok()) << s.to_string();
    daemon.start();
  }

  TempDir shared{"modtest"};
  fam::Daemon daemon;
  fam::Client client;
};

TEST_F(ModulesFixture, StandardModulesPreloaded) {
  for (const char* name : {"wordcount", "stringmatch", "matmul", "select"}) {
    EXPECT_TRUE(client.module_available(name)) << name;
  }
}

TEST_F(ModulesFixture, WordCountModule) {
  CorpusOptions corpus;
  corpus.bytes = 96 * 1024;
  const std::string text = generate_corpus(corpus);
  ASSERT_TRUE(write_file(shared / "c.txt", text).is_ok());

  KeyValueMap params;
  params.set("input", (shared / "c.txt").string());
  params.set_int("partition_size", 16 * 1024);
  params.set_int("top", 2);
  const auto result = client.invoke("wordcount", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();

  auto reference = wordcount_sequential(text);
  sort_by_frequency_desc(reference);
  EXPECT_EQ(result.value().get_uint("unique").value(), reference.size());
  EXPECT_EQ(result.value().get_uint("total").value(),
            total_occurrences(reference));
  EXPECT_EQ(result.value().get("top0"), reference[0].key);
  EXPECT_TRUE(result.value().contains("top1"));
  EXPECT_FALSE(result.value().contains("top2"));  // top=2 respected
}

TEST_F(ModulesFixture, WordCountModuleMissingInput) {
  const auto result = client.invoke("wordcount", KeyValueMap{});
  ASSERT_FALSE(result.is_ok());
}

TEST_F(ModulesFixture, StringMatchModule) {
  LineFileOptions lf;
  lf.bytes = 64 * 1024;
  std::string text = generate_line_file(lf);
  KeysOptions ko;
  ko.count = 3;
  ko.plant_rate = 0.05;
  const auto keys = generate_and_plant_keys(text, ko);
  ASSERT_TRUE(write_file(shared / "e.txt", text).is_ok());

  KeyValueMap params;
  params.set("input", (shared / "e.txt").string());
  params.set("keys", keys[0] + "," + keys[1] + "," + keys[2]);
  const auto result = client.invoke("stringmatch", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_uint("matches").value(),
            stringmatch_sequential(text, keys).size());
}

TEST_F(ModulesFixture, StringMatchModuleRejectsEmptyKeys) {
  ASSERT_TRUE(write_file(shared / "e.txt", "line\n").is_ok());
  KeyValueMap params;
  params.set("input", (shared / "e.txt").string());
  params.set("keys", ",,");
  const auto result = client.invoke("stringmatch", params);
  ASSERT_FALSE(result.is_ok());
}

TEST_F(ModulesFixture, MatMulModule) {
  const Matrix a = generate_matrix(7, 5, 1);
  const Matrix b = generate_matrix(5, 9, 2);
  ASSERT_TRUE(write_matrix(shared / "a.mat", a).is_ok());
  ASSERT_TRUE(write_matrix(shared / "b.mat", b).is_ok());

  KeyValueMap params;
  params.set("a", (shared / "a.mat").string());
  params.set("b", (shared / "b.mat").string());
  params.set("out", (shared / "c.mat").string());
  const auto result = client.invoke("matmul", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_uint("rows").value(), 7u);
  EXPECT_EQ(result.value().get_uint("cols").value(), 9u);

  const auto c = read_matrix(shared / "c.mat");
  ASSERT_TRUE(c.is_ok());
  const Matrix expected = matmul_sequential(a, b);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_NEAR(c.value().at(i, j), expected.at(i, j), 1e-9);
    }
  }
}

TEST_F(ModulesFixture, MatMulModuleDimensionMismatch) {
  ASSERT_TRUE(write_matrix(shared / "a.mat", generate_matrix(3, 4, 1)).is_ok());
  ASSERT_TRUE(write_matrix(shared / "b.mat", generate_matrix(3, 4, 2)).is_ok());
  KeyValueMap params;
  params.set("a", (shared / "a.mat").string());
  params.set("b", (shared / "b.mat").string());
  params.set("out", (shared / "c.mat").string());
  const auto result = client.invoke("matmul", params);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.error().message().find("dimension"), std::string::npos);
}

TEST_F(ModulesFixture, SelectModuleEq) {
  const std::string table =
      "alice,30,nyc\nbob,25,sfo\ncarol,30,nyc\ndan,40,chi\n";
  ASSERT_TRUE(write_file(shared / "t.csv", table).is_ok());
  KeyValueMap params;
  params.set("input", (shared / "t.csv").string());
  params.set_int("column", 1);
  params.set("op", "eq");
  params.set("value", "30");
  params.set("out", (shared / "r.csv").string());
  const auto result = client.invoke("select", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_uint("rows_in").value(), 4u);
  EXPECT_EQ(result.value().get_uint("rows_out").value(), 2u);
  EXPECT_EQ(read_file(shared / "r.csv").value(),
            "alice,30,nyc\ncarol,30,nyc\n");
}

TEST_F(ModulesFixture, SelectModuleNumericGt) {
  const std::string table = "a,5\nb,50\nc,500\n";
  ASSERT_TRUE(write_file(shared / "t.csv", table).is_ok());
  KeyValueMap params;
  params.set("input", (shared / "t.csv").string());
  params.set_int("column", 1);
  params.set("op", "gt");
  params.set("value", "49");  // numeric: 5 < 49 < 50 < 500
  params.set("out", (shared / "r.csv").string());
  const auto result = client.invoke("select", params);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().get_uint("rows_out").value(), 2u);
}

TEST_F(ModulesFixture, SelectModuleContains) {
  const std::string table = "xapplex,1\nbanana,2\ngrapple,3\n";
  ASSERT_TRUE(write_file(shared / "t.csv", table).is_ok());
  KeyValueMap params;
  params.set("input", (shared / "t.csv").string());
  params.set_int("column", 0);
  params.set("op", "contains");
  params.set("value", "apple");
  params.set("out", (shared / "r.csv").string());
  const auto result = client.invoke("select", params);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().get_uint("rows_out").value(), 2u);
}

TEST_F(ModulesFixture, SelectModuleRejectsBadOp) {
  ASSERT_TRUE(write_file(shared / "t.csv", "a,1\n").is_ok());
  KeyValueMap params;
  params.set("input", (shared / "t.csv").string());
  params.set_int("column", 0);
  params.set("op", "between");
  params.set("value", "x");
  params.set("out", (shared / "r.csv").string());
  ASSERT_FALSE(client.invoke("select", params).is_ok());
}

TEST_F(ModulesFixture, SelectModuleColumnOutOfRangeMatchesNothing) {
  ASSERT_TRUE(write_file(shared / "t.csv", "a,1\nb,2\n").is_ok());
  KeyValueMap params;
  params.set("input", (shared / "t.csv").string());
  params.set_int("column", 9);
  params.set("op", "eq");
  params.set("value", "a");
  params.set("out", (shared / "r.csv").string());
  const auto result = client.invoke("select", params);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().get_uint("rows_out").value(), 0u);
}

TEST_F(ModulesFixture, SortModuleOrdersLines) {
  ASSERT_TRUE(write_file(shared / "u.txt", "pear\napple\nmango\n").is_ok());
  KeyValueMap params;
  params.set("input", (shared / "u.txt").string());
  params.set("out", (shared / "s.txt").string());
  const auto result = client.invoke("sort", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_uint("lines").value(), 3u);
  EXPECT_EQ(read_file(shared / "s.txt").value(), "apple\nmango\npear\n");
}

TEST_F(ModulesFixture, SortModuleOutOfCore) {
  LineFileOptions lf;
  lf.bytes = 256 * 1024;
  const std::string text = generate_line_file(lf);
  ASSERT_TRUE(write_file(shared / "big.txt", text).is_ok());
  KeyValueMap params;
  params.set("input", (shared / "big.txt").string());
  params.set("out", (shared / "sorted.txt").string());
  params.set_int("memory_budget", 64 * 1024);  // forces external runs
  const auto result = client.invoke("sort", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_GT(result.value().get_uint("runs").value(), 1u);
  // Output is sorted: adjacent lines non-decreasing.
  const std::string sorted = read_file(shared / "sorted.txt").value();
  std::string_view prev;
  for (const auto line : split(sorted, '\n')) {
    if (line.empty()) continue;
    EXPECT_LE(prev, line);
    prev = line;
  }
}

TEST_F(ModulesFixture, JoinModuleEquiJoin) {
  // users(id, name) join orders(order, user_id) on id == user_id.
  ASSERT_TRUE(write_file(shared / "users.csv",
                         "1,alice\n2,bob\n3,carol\n")
                  .is_ok());
  ASSERT_TRUE(write_file(shared / "orders.csv",
                         "o1,2\no2,1\no3,2\no4,9\n")
                  .is_ok());
  KeyValueMap params;
  params.set("left", (shared / "users.csv").string());
  params.set("right", (shared / "orders.csv").string());
  params.set_int("left_column", 0);
  params.set_int("right_column", 1);
  params.set("out", (shared / "joined.csv").string());
  const auto result = client.invoke("join", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_uint("rows_left").value(), 3u);
  EXPECT_EQ(result.value().get_uint("rows_right").value(), 4u);
  EXPECT_EQ(result.value().get_uint("rows_out").value(), 3u);  // o4 drops
  const std::string joined = read_file(shared / "joined.csv").value();
  EXPECT_NE(joined.find("2,bob,o1"), std::string::npos);
  EXPECT_NE(joined.find("1,alice,o2"), std::string::npos);
  EXPECT_NE(joined.find("2,bob,o3"), std::string::npos);
  EXPECT_EQ(joined.find(",9"), std::string::npos);  // unmatched row gone
}

TEST_F(ModulesFixture, JoinModuleDuplicateBuildKeys) {
  ASSERT_TRUE(write_file(shared / "l.csv", "k,a\nk,b\n").is_ok());
  ASSERT_TRUE(write_file(shared / "r.csv", "k,x\n").is_ok());
  KeyValueMap params;
  params.set("left", (shared / "l.csv").string());
  params.set("right", (shared / "r.csv").string());
  params.set_int("left_column", 0);
  params.set_int("right_column", 0);
  params.set("out", (shared / "j.csv").string());
  const auto result = client.invoke("join", params);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().get_uint("rows_out").value(), 2u);
}

TEST_F(ModulesFixture, JoinModuleRejectsMissingParams) {
  KeyValueMap params;
  params.set("left", (shared / "l.csv").string());
  ASSERT_FALSE(client.invoke("join", params).is_ok());
}

TEST(MatrixIo, RoundTrip) {
  TempDir dir{"matio"};
  const Matrix m = generate_matrix(6, 3, 11);
  ASSERT_TRUE(write_matrix(dir / "m.mat", m).is_ok());
  const auto back = read_matrix(dir / "m.mat");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), m);  // %.17g is lossless for doubles
}

TEST(MatrixIo, RejectsMalformed) {
  TempDir dir{"matio"};
  ASSERT_TRUE(write_file(dir / "bad1", "").is_ok());
  EXPECT_FALSE(read_matrix(dir / "bad1").is_ok());
  ASSERT_TRUE(write_file(dir / "bad2", "2 2\n1 2 3\n").is_ok());
  EXPECT_FALSE(read_matrix(dir / "bad2").is_ok());  // short body
  ASSERT_TRUE(write_file(dir / "bad3", "2 2\n1 2 3 oops\n").is_ok());
  EXPECT_FALSE(read_matrix(dir / "bad3").is_ok());  // non-numeric
  EXPECT_FALSE(read_matrix(dir / "missing").is_ok());
}

}  // namespace
}  // namespace mcsd::apps
