#include "apps/external_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/datagen.hpp"
#include "core/io.hpp"
#include "core/random.hpp"
#include "core/strings.hpp"

namespace mcsd::apps {
namespace {

/// Lines of `text` (split on '\n', dropping a trailing empty field).
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  for (std::string_view line : split(text, '\n')) {
    out.emplace_back(line);
  }
  if (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

std::string make_input(std::uint64_t bytes, std::uint64_t seed) {
  LineFileOptions opts;
  opts.bytes = bytes;
  opts.seed = seed;
  return generate_line_file(opts);
}

TEST(ExternalSort, SingleRunWhenInputFits) {
  TempDir dir{"esort"};
  const std::string text = make_input(32 * 1024, 1);
  ASSERT_TRUE(write_file(dir / "in", text).is_ok());
  ExternalSortOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  const auto stats = external_sort_lines(dir / "in", dir / "out", opts);
  ASSERT_TRUE(stats.is_ok()) << stats.error().to_string();
  EXPECT_EQ(stats.value().runs, 1u);

  auto expected = lines_of(text);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(lines_of(read_file(dir / "out").value()), expected);
}

TEST(ExternalSort, MultiRunMergeMatchesInMemorySort) {
  TempDir dir{"esort"};
  const std::string text = make_input(512 * 1024, 2);
  ASSERT_TRUE(write_file(dir / "in", text).is_ok());
  ExternalSortOptions opts;
  opts.memory_budget_bytes = 64 * 1024;  // forces many runs
  const auto stats = external_sort_lines(dir / "in", dir / "out", opts);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_GT(stats.value().runs, 3u);

  auto expected = lines_of(text);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(lines_of(read_file(dir / "out").value()), expected);
  EXPECT_EQ(stats.value().lines, expected.size());
}

TEST(ExternalSort, RunFilesAreCleanedUp) {
  TempDir dir{"esort"};
  ASSERT_TRUE(write_file(dir / "in", make_input(256 * 1024, 3)).is_ok());
  ExternalSortOptions opts;
  opts.memory_budget_bytes = 64 * 1024;
  ASSERT_TRUE(external_sort_lines(dir / "in", dir / "out", opts).is_ok());
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator{dir.path()}) {
    ++files;
  }
  EXPECT_EQ(files, 2u);  // in + out, no leftover runs
}

TEST(ExternalSort, EmptyInput) {
  TempDir dir{"esort"};
  ASSERT_TRUE(write_file(dir / "in", "").is_ok());
  const auto stats = external_sort_lines(dir / "in", dir / "out");
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().lines, 0u);
  EXPECT_EQ(read_file(dir / "out").value(), "");
}

TEST(ExternalSort, MissingInputFileErrors) {
  TempDir dir{"esort"};
  const auto stats = external_sort_lines(dir / "nope", dir / "out");
  ASSERT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.error().code(), ErrorCode::kNotFound);
}

TEST(ExternalSort, InPlaceRejected) {
  TempDir dir{"esort"};
  ASSERT_TRUE(write_file(dir / "f", "b\na\n").is_ok());
  EXPECT_FALSE(external_sort_lines(dir / "f", dir / "f").is_ok());
}

TEST(ExternalSort, NoTrailingNewlineInputHandled) {
  TempDir dir{"esort"};
  ASSERT_TRUE(write_file(dir / "in", "banana\napple\ncherry").is_ok());
  const auto stats = external_sort_lines(dir / "in", dir / "out");
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(read_file(dir / "out").value(), "apple\nbanana\ncherry\n");
}

TEST(ExternalSort, DuplicatesPreserved) {
  TempDir dir{"esort"};
  ASSERT_TRUE(write_file(dir / "in", "x\ny\nx\nx\ny\n").is_ok());
  const auto stats = external_sort_lines(dir / "in", dir / "out");
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(read_file(dir / "out").value(), "x\nx\nx\ny\ny\n");
}

// Budget sweep: output identical whatever the memory budget.
class ExternalSortBudgetSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExternalSortBudgetSweep, OutputInvariantUnderBudget) {
  TempDir dir{"esort"};
  const std::string text = make_input(200 * 1024, 7);
  ASSERT_TRUE(write_file(dir / "in", text).is_ok());
  ExternalSortOptions opts;
  opts.memory_budget_bytes = GetParam();
  const auto stats = external_sort_lines(dir / "in", dir / "out", opts);
  ASSERT_TRUE(stats.is_ok());
  auto expected = lines_of(text);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(lines_of(read_file(dir / "out").value()), expected);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalSortBudgetSweep,
                         ::testing::Values(64 * 1024, 96 * 1024, 256 * 1024,
                                           1 << 20, 16 << 20));

}  // namespace
}  // namespace mcsd::apps
