#include "mapreduce/sorter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/random.hpp"

namespace mcsd::mr {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next();
  return out;
}

TEST(ParallelSort, EmptyAndSingle) {
  ThreadPool pool{2};
  std::vector<std::uint64_t> empty;
  parallel_sort(empty, pool);
  EXPECT_TRUE(empty.empty());

  std::vector<std::uint64_t> one{42};
  parallel_sort(one, pool);
  EXPECT_EQ(one, std::vector<std::uint64_t>{42});
}

TEST(ParallelSort, SmallFallsBackToSerial) {
  ThreadPool pool{4};
  auto values = random_values(100, 1);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(values, pool);
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, LargeMatchesStdSort) {
  ThreadPool pool{3};
  auto values = random_values(200'000, 2);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(values, pool);
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, CustomComparator) {
  ThreadPool pool{2};
  auto values = random_values(50'000, 3);
  auto expected = values;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  parallel_sort(values, pool, std::greater<>{});
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, StringsSort) {
  ThreadPool pool{2};
  Rng rng{4};
  std::vector<std::string> values;
  values.reserve(30'000);
  for (int i = 0; i < 30'000; ++i) {
    std::string s;
    const auto len = 1 + rng.next_below(12);
    for (std::uint64_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    values.push_back(std::move(s));
  }
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(values, pool);
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  ThreadPool pool{4};
  std::vector<std::uint64_t> asc(100'000);
  for (std::size_t i = 0; i < asc.size(); ++i) asc[i] = i;
  auto rev = asc;
  std::reverse(rev.begin(), rev.end());

  auto expected = asc;
  parallel_sort(asc, pool);
  EXPECT_EQ(asc, expected);
  parallel_sort(rev, pool);
  EXPECT_EQ(rev, expected);
}

TEST(ParallelSort, ManyDuplicates) {
  ThreadPool pool{3};
  Rng rng{5};
  std::vector<std::uint64_t> values(120'000);
  for (auto& v : values) v = rng.next_below(7);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(values, pool);
  EXPECT_EQ(values, expected);
}

// Worker-count sweep.
class ParallelSortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelSortSweep, MatchesStdSortAtEveryWidth) {
  ThreadPool pool{GetParam()};
  auto values = random_values(64'000 + GetParam() * 1000, GetParam());
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(values, pool);
  EXPECT_EQ(values, expected);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelSortSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

}  // namespace
}  // namespace mcsd::mr
