// End-to-end smartFAM: daemon and client sharing one log folder — the
// paper's Fig. 5 message sequence exercised over a real filesystem.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/io.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"
#include "fam/protocol.hpp"
#include "obs/counters.hpp"

namespace mcsd::fam {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<Module> echo_module() {
  return std::make_shared<FunctionModule>(
      "echo", [](const KeyValueMap& params) -> Result<KeyValueMap> {
        KeyValueMap out = params;
        out.set("echoed", "true");
        return out;
      });
}

std::shared_ptr<Module> adder_module() {
  return std::make_shared<FunctionModule>(
      "adder", [](const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto a = params.get_int("a");
        const auto b = params.get_int("b");
        if (!a || !b) {
          return Error{ErrorCode::kInvalidArgument, "need a and b"};
        }
        KeyValueMap out;
        out.set_int("sum", a.value() + b.value());
        return out;
      });
}

struct FamFixture : ::testing::Test {
  FamFixture()
      : daemon(DaemonOptions{log_dir.path(), 1ms, 2}),
        client(ClientOptions{log_dir.path(), 1ms, 30'000ms}) {}

  TempDir log_dir{"famtest"};
  Daemon daemon;
  Client client;
};

TEST_F(FamFixture, PreloadCreatesLogFile) {
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  EXPECT_TRUE(std::filesystem::exists(log_dir / "echo.log"));
  EXPECT_TRUE(client.module_available("echo"));
  EXPECT_FALSE(client.module_available("missing"));
}

TEST_F(FamFixture, PreloadRejectsDuplicates) {
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  EXPECT_FALSE(daemon.preload(echo_module()).is_ok());
}

TEST_F(FamFixture, InvokeRoundTrip) {
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();

  KeyValueMap params;
  params.set_int("a", 19);
  params.set_int("b", 23);
  const auto result = client.invoke("adder", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_int("sum").value(), 42);
  EXPECT_EQ(daemon.requests_handled(), 1u);
  EXPECT_EQ(daemon.errors_returned(), 0u);
}

TEST_F(FamFixture, SequentialInvocationsIncrementSeq) {
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();
  for (int i = 0; i < 5; ++i) {
    KeyValueMap params;
    params.set_int("a", i);
    params.set_int("b", 100);
    const auto result = client.invoke("adder", params);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value().get_int("sum").value(), 100 + i);
  }
  EXPECT_EQ(daemon.requests_handled(), 5u);
}

TEST_F(FamFixture, ModuleErrorPropagatesToClient) {
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();
  KeyValueMap incomplete;
  incomplete.set_int("a", 1);
  const auto result = client.invoke("adder", incomplete);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.error().message().find("need a and b"), std::string::npos);
  EXPECT_EQ(daemon.errors_returned(), 1u);
}

TEST_F(FamFixture, ThrowingModuleBecomesErrorResponse) {
  // A module that throws must not kill the dispatch thread; the host
  // gets an error response and the daemon keeps serving afterwards.
  ASSERT_TRUE(daemon
                  .preload(std::make_shared<FunctionModule>(
                      "bomb",
                      [](const KeyValueMap&) -> Result<KeyValueMap> {
                        throw std::runtime_error("kaboom");
                      }))
                  .is_ok());
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();

  const auto boom = client.invoke("bomb", KeyValueMap{});
  ASSERT_FALSE(boom.is_ok());
  EXPECT_NE(boom.error().message().find("kaboom"), std::string::npos);
  EXPECT_EQ(daemon.errors_returned(), 1u);

  // The daemon survived: the next request succeeds.
  KeyValueMap params;
  params.set_int("a", 1);
  params.set_int("b", 2);
  const auto sum = client.invoke("adder", params);
  ASSERT_TRUE(sum.is_ok());
  EXPECT_EQ(sum.value().get_int("sum").value(), 3);
}

TEST_F(FamFixture, InvokeUnknownModuleFailsFast) {
  daemon.start();
  const auto result = client.invoke("ghost", KeyValueMap{});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST_F(FamFixture, InvokeInvalidNameRejected) {
  const auto result = client.invoke("../etc/passwd", KeyValueMap{});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(FamFixture, TimeoutWhenDaemonStopped) {
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  // Daemon never started: nothing answers.
  Client impatient{ClientOptions{log_dir.path(), 1ms, 100ms}};
  const auto result = impatient.invoke("echo", KeyValueMap{});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
}

TEST_F(FamFixture, TwoModulesIndependentChannels) {
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();

  KeyValueMap add;
  add.set_int("a", 2);
  add.set_int("b", 3);
  const auto sum = client.invoke("adder", add);
  KeyValueMap e;
  e.set("msg", "hi");
  const auto echoed = client.invoke("echo", e);
  ASSERT_TRUE(sum.is_ok());
  ASSERT_TRUE(echoed.is_ok());
  EXPECT_EQ(sum.value().get_int("sum").value(), 5);
  EXPECT_EQ(echoed.value().get("msg"), "hi");
}

TEST_F(FamFixture, ConcurrentClientsOnDifferentModules) {
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();

  std::thread t1{[&] {
    for (int i = 0; i < 3; ++i) {
      KeyValueMap p;
      p.set_int("a", i);
      p.set_int("b", i);
      const auto r = client.invoke("adder", p);
      ASSERT_TRUE(r.is_ok());
      EXPECT_EQ(r.value().get_int("sum").value(), 2 * i);
    }
  }};
  std::thread t2{[&] {
    for (int i = 0; i < 3; ++i) {
      KeyValueMap p;
      p.set("n", std::to_string(i));
      const auto r = client.invoke("echo", p);
      ASSERT_TRUE(r.is_ok());
      EXPECT_EQ(r.value().get("n"), std::to_string(i));
    }
  }};
  t1.join();
  t2.join();
  EXPECT_EQ(daemon.requests_handled(), 6u);
}

TEST_F(FamFixture, ConcurrentCallersOnSameModuleSerialise) {
  ASSERT_TRUE(daemon.preload(adder_module()).is_ok());
  daemon.start();
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      KeyValueMap p;
      p.set_int("a", t);
      p.set_int("b", 10);
      const auto r = client.invoke("adder", p);
      if (r.is_ok() && r.value().get_int("sum").value() == 10 + t) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 4);
  EXPECT_EQ(daemon.requests_handled(), 4u);
}

// Regression for the response-clobbers-newer-request bug: request seq N
// is dispatching while request seq N+1 lands in the log.  Without the
// conflict guard the daemon's seq-N response atomically replaces the
// seq-N+1 request; the polling watcher's fingerprint then advances past
// it and seq N+1 is never answered.  The fixed daemon re-reads the log
// before responding, drops the stale response, and re-dispatches the
// newer request.
TEST(ResponseConflict, ResponseNeverClobbersNewerRequest) {
  TempDir dir{"famclobber"};
  // A slow poll cadence leaves a wide window between "module finished"
  // and "watcher would next observe the log" — the exact window where
  // the unguarded write lost the newer request.
  Daemon daemon{DaemonOptions{dir.path(), 150ms, 1}};
  std::atomic<bool> entered{false};
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  ASSERT_TRUE(daemon
                  .preload(std::make_shared<FunctionModule>(
                      "slow",
                      [&](const KeyValueMap& params) -> Result<KeyValueMap> {
                        entered.store(true);
                        std::unique_lock lock{gate_mutex};
                        gate_cv.wait(lock, [&] { return gate_open; });
                        KeyValueMap out;
                        out.set("tag", params.get_or("tag", ""));
                        return out;
                      }))
                  .is_ok());
  daemon.start();
  const auto log = dir / "slow.log";

  Record first;
  first.type = RecordType::kRequest;
  first.seq = 1;
  first.module = "slow";
  first.payload.set("tag", "one");
  ASSERT_TRUE(write_file_atomic(log, encode_record(first)).is_ok());
  for (int i = 0; i < 5000 && !entered.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(entered.load()) << "request 1 never reached the module";

  // Request 2 lands while the module still chews on request 1; releasing
  // the gate right after makes the seq-1 response race the next poll.
  Record second = first;
  second.seq = 2;
  second.payload.set("tag", "two");
  ASSERT_TRUE(write_file_atomic(log, encode_record(second)).is_ok());
  {
    std::lock_guard lock{gate_mutex};
    gate_open = true;
  }
  gate_cv.notify_all();

  bool answered = false;
  for (int i = 0; i < 5000 && !answered; ++i) {
    if (const auto contents = read_file(log); contents.is_ok()) {
      if (const auto record = decode_record(contents.value());
          record.is_ok() && record.value().type == RecordType::kResponse &&
          record.value().seq == 2) {
        EXPECT_EQ(record.value().payload.get("tag"), "two");
        answered = true;
      }
    }
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(answered) << "request 2 was clobbered and never answered";
  // The module finished request 1 strictly after request 2 was in the
  // log, so the guard must have seen (and counted) the conflict.
  EXPECT_GE(daemon.response_conflicts(), 1u);
  daemon.stop();
}

// Two Client objects sharing one module log — the paper's multi-host
// scenario.  The client that falls behind sends a stale seq; the daemon
// answers with its high-water mark (mcsd.last) and the client re-seeds
// and retries instead of burning its full timeout budget.
TEST(SeqCollision, TwoClientsSharingOneModuleLogBothSucceed) {
  TempDir dir{"famcollide"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 2}};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  ClientOptions copts{dir.path(), 1ms, 5'000ms};
  copts.max_attempts = 4;
  // This contention machinery only exists on the rev-1 channel; the
  // sharded mailbox eliminates cross-client collisions by construction
  // (per-client seq spaces), so pin legacy to keep exercising it.
  copts.force_legacy = true;
  Client a{copts};
  Client b{copts};

  KeyValueMap params;
  params.set("who", "a1");
  ASSERT_TRUE(a.invoke("echo", params).is_ok());  // a's next seq: 2

  // b seeds from the log (sees a's response, seq 1) and advances the
  // channel past a's bookkeeping.
  params.set("who", "b1");
  ASSERT_TRUE(b.invoke("echo", params).is_ok());  // seq 2
  params.set("who", "b2");
  ASSERT_TRUE(b.invoke("echo", params).is_ok());  // seq 3

  // a now sends seq 2 < 3: stale.  The daemon's mcsd.last reply re-seeds
  // a to seq 4 and the retry lands.
  params.set("who", "a2");
  const auto recovered = a.invoke("echo", params);
  ASSERT_TRUE(recovered.is_ok()) << recovered.error().to_string();
  EXPECT_EQ(recovered.value().get("who"), "a2");
  EXPECT_GE(daemon.stale_replies(), 1u);
  EXPECT_EQ(daemon.requests_handled(), 4u);  // stale replies aren't handled
}

// stop() drains: every request the watcher accepted before stop() still
// gets a response; only post-close arrivals are counted as dropped.
TEST(DaemonStop, DrainsAcceptedRequestsBeforeStopping) {
  TempDir dir{"famdrain"};
  Daemon daemon{DaemonOptions{dir.path(), 5ms, 1}};
  const std::vector<std::string> modules{"drain1", "drain2", "drain3"};
  for (const std::string& name : modules) {
    ASSERT_TRUE(daemon
                    .preload(std::make_shared<FunctionModule>(
                        name,
                        [](const KeyValueMap&) -> Result<KeyValueMap> {
                          std::this_thread::sleep_for(150ms);
                          KeyValueMap out;
                          out.set("drained", "true");
                          return out;
                        }))
                    .is_ok());
  }
  daemon.start();
  for (const std::string& name : modules) {
    Record request;
    request.type = RecordType::kRequest;
    request.seq = 1;
    request.module = name;
    ASSERT_TRUE(
        write_file_atomic(dir / (name + ".log"), encode_record(request))
            .is_ok());
  }
  // One dispatcher, 150 ms per module: by now all three requests are
  // enqueued but at most one is done.  stop() must finish the backlog.
  std::this_thread::sleep_for(100ms);
  daemon.stop();
  EXPECT_EQ(daemon.requests_handled(), 3u);
  EXPECT_EQ(daemon.dropped_on_shutdown(), 0u);
  for (const std::string& name : modules) {
    const auto contents = read_file(dir / (name + ".log"));
    ASSERT_TRUE(contents.is_ok());
    const auto record = decode_record(contents.value());
    ASSERT_TRUE(record.is_ok()) << name;
    EXPECT_EQ(record.value().type, RecordType::kResponse) << name;
    EXPECT_EQ(record.value().seq, 1u) << name;
    EXPECT_EQ(record.value().payload.get("drained"), "true") << name;
  }
}

// A transient read failure while the client seeds its sequence number
// must not reset it to 1 (which the daemon would silently drop as a
// duplicate).  The retry inside current_seq absorbs the glitch, so even
// a single-attempt client succeeds.
TEST(ClientRetry, SeqSeedingSurvivesTransientReadFailure) {
  TempDir dir{"famseed"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 1}};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  ClientOptions copts{dir.path(), 1ms, 5'000ms};
  Client warmup{copts};
  KeyValueMap params;
  params.set("who", "warmup");
  ASSERT_TRUE(warmup.invoke("echo", params).is_ok());  // daemon last = 1

  // A fresh client's very first log reads (the seq seeding) fail with
  // EIO.  Without the in-place retry it would fall back to seq 1,
  // collide with the handled seq above, and time out.  Three scheduled
  // steps because the daemon's polling fingerprint shares the read site:
  // whichever thread absorbs a step, the client's first read still
  // faults, and the five seeding attempts still outlast the schedule.
  copts.max_attempts = 1;
  copts.timeout = 2'000ms;
  Client fresh{copts};
  fault::FaultScope scope{
      fault::FaultPlan::from_spec("read.eio=@1+2+3,path_filter=echo.log")
          .value()};
  params.set("who", "fresh");
  const auto result = fresh.invoke("echo", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get("who"), "fresh");
}

TEST(ClientRetry, SecondAttemptSucceedsAfterLateDaemonStart) {
  TempDir dir{"famretry"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 1}};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  // Daemon not started yet: the first attempt must time out.

  ClientOptions copts;
  copts.log_dir = dir.path();
  copts.poll_interval = 1ms;
  copts.timeout = 250ms;
  copts.max_attempts = 4;
  Client client{copts};

  std::thread late_start{[&] {
    std::this_thread::sleep_for(400ms);  // after attempt 1 expires
    daemon.start();
  }};
  KeyValueMap params;
  params.set("msg", "eventually");
  const auto result = client.invoke("echo", params);
  late_start.join();
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get("msg"), "eventually");
}

TEST(ClientRetry, ExhaustedAttemptsReportAttemptCount) {
  TempDir dir{"famretry"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 1}};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  // Never started.
  ClientOptions copts;
  copts.log_dir = dir.path();
  copts.poll_interval = 1ms;
  copts.timeout = 50ms;
  copts.max_attempts = 3;
  Client client{copts};
  const auto result = client.invoke("echo", KeyValueMap{});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
  EXPECT_NE(result.error().message().find("attempt 3/3"), std::string::npos);
}

// A cacheable module: declares its input file via cache_inputs and
// counts real executions, so the tests can tell "served from cache"
// (counter flat) from "dispatched" (counter bumped).
std::shared_ptr<Module> counting_module(std::atomic<int>& executions) {
  auto module = std::make_shared<FunctionModule>(
      "counted", [&executions](const KeyValueMap& params) -> Result<KeyValueMap> {
        executions.fetch_add(1);
        KeyValueMap out;
        out.set("input", params.get_or("input", ""));
        out.set_int("runs", executions.load());
        return out;
      });
  module->set_cache_inputs(
      [](const KeyValueMap& params)
          -> std::optional<std::vector<std::filesystem::path>> {
        const auto input = params.get("input");
        if (!input) return std::nullopt;
        return std::vector<std::filesystem::path>{*input};
      });
  return module;
}

TEST_F(FamFixture, RepeatedInvokeServedFromResultCache) {
  std::atomic<int> executions{0};
  ASSERT_TRUE(daemon.preload(counting_module(executions)).is_ok());
  daemon.start();

  const auto corpus = log_dir / "corpus.txt";
  ASSERT_TRUE(write_file(corpus, "the quick brown fox").is_ok());
  KeyValueMap params;
  params.set("input", corpus.string());

  InvokeInfo first_info;
  const auto first = client.invoke("counted", params, &first_info);
  ASSERT_TRUE(first.is_ok()) << first.error().to_string();
  EXPECT_EQ(first_info.cache, CacheState::kMiss);
  EXPECT_NE(first_info.cache_epoch, 0u);
  EXPECT_EQ(executions.load(), 1);

  InvokeInfo second_info;
  const auto second = client.invoke("counted", params, &second_info);
  ASSERT_TRUE(second.is_ok()) << second.error().to_string();
  EXPECT_EQ(second_info.cache, CacheState::kHit);
  EXPECT_EQ(second_info.cache_epoch, first_info.cache_epoch);
  EXPECT_EQ(executions.load(), 1) << "hit must not re-run the module";
  // Byte-identical result: the hit replays the miss's payload exactly.
  EXPECT_EQ(second.value().serialize(), first.value().serialize());
  EXPECT_EQ(daemon.cache_hits(), 1u);
  EXPECT_EQ(daemon.cache_misses(), 1u);

  // Different params → different slot → miss and a real execution.
  params.set_int("extra", 7);
  InvokeInfo third_info;
  ASSERT_TRUE(client.invoke("counted", params, &third_info).is_ok());
  EXPECT_EQ(third_info.cache, CacheState::kMiss);
  EXPECT_EQ(executions.load(), 2);
}

TEST_F(FamFixture, RewritingInputInvalidatesCachedResult) {
  std::atomic<int> executions{0};
  ASSERT_TRUE(daemon.preload(counting_module(executions)).is_ok());
  daemon.start();

  const auto corpus = log_dir / "corpus.txt";
  ASSERT_TRUE(write_file(corpus, "version one").is_ok());
  KeyValueMap params;
  params.set("input", corpus.string());

  InvokeInfo miss_info;
  ASSERT_TRUE(client.invoke("counted", params, &miss_info).is_ok());
  InvokeInfo hit_info;
  ASSERT_TRUE(client.invoke("counted", params, &hit_info).is_ok());
  ASSERT_EQ(hit_info.cache, CacheState::kHit);
  ASSERT_EQ(executions.load(), 1);

  // Rewrite with a different size: the identity triple changes even if
  // the mtime tick is coarse, so the cached entry must die.
  ASSERT_TRUE(write_file(corpus, "version two, now longer").is_ok());
  InvokeInfo invalidated_info;
  const auto recomputed = client.invoke("counted", params, &invalidated_info);
  ASSERT_TRUE(recomputed.is_ok());
  EXPECT_EQ(invalidated_info.cache, CacheState::kMiss);
  EXPECT_GT(invalidated_info.cache_epoch, hit_info.cache_epoch);
  EXPECT_EQ(executions.load(), 2);
  ASSERT_NE(daemon.result_cache(), nullptr);
  EXPECT_EQ(daemon.result_cache()->stats().invalidations, 1u);

  // The refilled entry serves hits again.
  InvokeInfo rehit_info;
  ASSERT_TRUE(client.invoke("counted", params, &rehit_info).is_ok());
  EXPECT_EQ(rehit_info.cache, CacheState::kHit);
  EXPECT_EQ(rehit_info.cache_epoch, invalidated_info.cache_epoch);
  EXPECT_EQ(executions.load(), 2);
}

TEST_F(FamFixture, ModuleWithoutCacheInputsNeverCached) {
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();
  KeyValueMap params;
  params.set("msg", "hi");
  for (int i = 0; i < 2; ++i) {
    InvokeInfo info;
    ASSERT_TRUE(client.invoke("echo", params, &info).is_ok());
    EXPECT_EQ(info.cache, CacheState::kNone);
    EXPECT_EQ(info.cache_epoch, 0u);
  }
  EXPECT_EQ(daemon.cache_hits(), 0u);
  EXPECT_EQ(daemon.cache_misses(), 0u);
}

TEST(ResultCacheConfig, ZeroBytesDisablesTheCache) {
  TempDir dir{"famnocache"};
  DaemonOptions options{dir.path(), std::chrono::milliseconds{1}, 2};
  options.result_cache_bytes = 0;
  Daemon daemon{options};
  EXPECT_EQ(daemon.result_cache(), nullptr);

  std::atomic<int> executions{0};
  ASSERT_TRUE(daemon.preload(counting_module(executions)).is_ok());
  daemon.start();
  const auto corpus = dir / "corpus.txt";
  ASSERT_TRUE(write_file(corpus, "uncached").is_ok());
  Client client{ClientOptions{dir.path(), std::chrono::milliseconds{1},
                              std::chrono::milliseconds{30'000}}};
  KeyValueMap params;
  params.set("input", corpus.string());
  for (int i = 0; i < 2; ++i) {
    InvokeInfo info;
    ASSERT_TRUE(client.invoke("counted", params, &info).is_ok());
    EXPECT_EQ(info.cache, CacheState::kNone);
  }
  EXPECT_EQ(executions.load(), 2);
  daemon.stop();
}

TEST(ResultCacheConfig, ParsesAndRejectsConfigValues) {
  const auto parsed = KeyValueMap::parse("result_cache_bytes=8M\n");
  ASSERT_TRUE(parsed.is_ok());
  const auto options = daemon_options_from_config(parsed.value());
  ASSERT_TRUE(options.is_ok());
  EXPECT_EQ(options.value().result_cache_bytes, 8u << 20);

  const auto disabled = KeyValueMap::parse("result_cache_bytes=0\n");
  ASSERT_TRUE(disabled.is_ok());
  EXPECT_EQ(daemon_options_from_config(disabled.value())
                .value()
                .result_cache_bytes,
            0u);

  const auto bad = KeyValueMap::parse("result_cache_bytes=lots\n");
  ASSERT_TRUE(bad.is_ok());
  EXPECT_FALSE(daemon_options_from_config(bad.value()).is_ok());
}

TEST(ModuleRegistry, Basics) {
  ModuleRegistry registry;
  EXPECT_TRUE(registry.add(echo_module()).is_ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.find("echo"), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_FALSE(registry.add(nullptr).is_ok());
  EXPECT_FALSE(registry.add(std::make_shared<FunctionModule>(
                                "bad name", nullptr))
                   .is_ok());
  EXPECT_EQ(registry.names(), std::vector<std::string>{"echo"});
}

TEST(DaemonConfig, ParsesAllKeys) {
  const auto parsed = KeyValueMap::parse(
      "log_dir=/srv/mcsd\n"
      "poll_interval_ms=7\n"
      "dispatch_threads=4\n"
      "backend=inotify\n");
  ASSERT_TRUE(parsed.is_ok());
  const auto options = daemon_options_from_config(parsed.value());
  ASSERT_TRUE(options.is_ok());
  EXPECT_EQ(options.value().log_dir, "/srv/mcsd");
  EXPECT_EQ(options.value().poll_interval, std::chrono::milliseconds{7});
  EXPECT_EQ(options.value().dispatch_threads, 4u);
  EXPECT_EQ(options.value().backend, WatcherBackend::kInotify);
}

TEST(DaemonConfig, DefaultsApplyForOmittedKeys) {
  const auto options = daemon_options_from_config(KeyValueMap{});
  ASSERT_TRUE(options.is_ok());
  EXPECT_EQ(options.value().poll_interval, kDefaultWatcherPollInterval);
  EXPECT_EQ(options.value().backend, WatcherBackend::kPolling);
}

TEST(DaemonConfig, RejectsBadValuesAndUnknownKeys) {
  const auto bad_interval =
      KeyValueMap::parse("poll_interval_ms=0\n");
  ASSERT_TRUE(bad_interval.is_ok());
  EXPECT_FALSE(daemon_options_from_config(bad_interval.value()).is_ok());

  const auto bad_backend = KeyValueMap::parse("backend=dbus\n");
  ASSERT_TRUE(bad_backend.is_ok());
  EXPECT_FALSE(daemon_options_from_config(bad_backend.value()).is_ok());

  const auto typo = KeyValueMap::parse("pol_interval_ms=2\n");
  ASSERT_TRUE(typo.is_ok());
  EXPECT_FALSE(daemon_options_from_config(typo.value()).is_ok());
}

// The configured interval surfaces in the watcher's poll-latency
// histogram label, so a trace attributes latency to the cadence that
// produced it.
#if MCSD_OBS_ENABLED
TEST(DaemonConfig, PollIntervalLabelsWatcherHistogram) {
  TempDir dir{"famcfg"};
  const auto parsed = KeyValueMap::parse("poll_interval_ms=9\n");
  ASSERT_TRUE(parsed.is_ok());
  auto options = daemon_options_from_config(parsed.value());
  ASSERT_TRUE(options.is_ok());
  options.value().log_dir = dir.path();
  Daemon daemon{std::move(options).value()};
  daemon.start();
  daemon.stop();
  const auto snap = obs::Registry::instance().snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "fam.watcher_poll_us(interval=9ms)") found = true;
  }
  EXPECT_TRUE(found);
}
#endif

}  // namespace
}  // namespace mcsd::fam
