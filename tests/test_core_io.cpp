#include "core/io.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace mcsd {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

TEST(TempDir, CreatesAndRemoves) {
  fs::path where;
  {
    TempDir dir{"iotest"};
    where = dir.path();
    EXPECT_TRUE(fs::exists(where));
    EXPECT_TRUE(fs::is_directory(where));
  }
  EXPECT_FALSE(fs::exists(where));
}

TEST(TempDir, UniquePaths) {
  TempDir a{"iotest"};
  TempDir b{"iotest"};
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, MoveTransfersOwnership) {
  TempDir a{"iotest"};
  const fs::path original = a.path();
  TempDir b = std::move(a);
  EXPECT_EQ(b.path(), original);
  EXPECT_TRUE(fs::exists(original));
}

TEST(ReadWriteFile, RoundTrip) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "data.bin";
  const std::string payload = "hello\0world\nbinary"s;
  ASSERT_TRUE(write_file(file, payload).is_ok());
  EXPECT_EQ(read_file(file).value(), payload);
}

TEST(ReadFile, MissingFileIsNotFound) {
  TempDir dir{"iotest"};
  const auto result = read_file(dir / "nope");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST(AppendFile, Appends) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "log";
  ASSERT_TRUE(append_file(file, "one\n").is_ok());
  ASSERT_TRUE(append_file(file, "two\n").is_ok());
  EXPECT_EQ(read_file(file).value(), "one\ntwo\n");
}

TEST(WriteFileAtomic, ReplacesContents) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "a.txt";
  ASSERT_TRUE(write_file_atomic(file, "first").is_ok());
  ASSERT_TRUE(write_file_atomic(file, "second").is_ok());
  EXPECT_EQ(read_file(file).value(), "second");
  // No temp files left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator{dir.path()}) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(WriteFileAtomic, ReadersNeverSeeTornContents) {
  // Hammer the file with rewrites while a reader checks every observation
  // is one of the two complete states.
  TempDir dir{"iotest"};
  const fs::path file = dir / "hot.txt";
  const std::string a(4096, 'a');
  const std::string b(4096, 'b');
  ASSERT_TRUE(write_file_atomic(file, a).is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread reader{[&] {
    while (!stop.load()) {
      auto contents = read_file(file);
      if (!contents.is_ok()) continue;  // racing the rename is fine
      const std::string& s = contents.value();
      if (s != a && s != b) bad.fetch_add(1);
    }
  }};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(write_file_atomic(file, i % 2 == 0 ? b : a).is_ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(FileSize, ReportsBytes) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "sz";
  ASSERT_TRUE(write_file(file, "12345").is_ok());
  EXPECT_EQ(mcsd::file_size(file).value(), 5u);
  EXPECT_FALSE(mcsd::file_size(dir / "missing").is_ok());
}

}  // namespace
}  // namespace mcsd
