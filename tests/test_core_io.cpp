#include "core/io.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace mcsd {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

TEST(TempDir, CreatesAndRemoves) {
  fs::path where;
  {
    TempDir dir{"iotest"};
    where = dir.path();
    EXPECT_TRUE(fs::exists(where));
    EXPECT_TRUE(fs::is_directory(where));
  }
  EXPECT_FALSE(fs::exists(where));
}

TEST(TempDir, UniquePaths) {
  TempDir a{"iotest"};
  TempDir b{"iotest"};
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, MoveTransfersOwnership) {
  TempDir a{"iotest"};
  const fs::path original = a.path();
  TempDir b = std::move(a);
  EXPECT_EQ(b.path(), original);
  EXPECT_TRUE(fs::exists(original));
}

TEST(ReadWriteFile, RoundTrip) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "data.bin";
  const std::string payload = "hello\0world\nbinary"s;
  ASSERT_TRUE(write_file(file, payload).is_ok());
  EXPECT_EQ(read_file(file).value(), payload);
}

TEST(ReadFile, MissingFileIsNotFound) {
  TempDir dir{"iotest"};
  const auto result = read_file(dir / "nope");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST(AppendFile, Appends) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "log";
  ASSERT_TRUE(append_file(file, "one\n").is_ok());
  ASSERT_TRUE(append_file(file, "two\n").is_ok());
  EXPECT_EQ(read_file(file).value(), "one\ntwo\n");
}

TEST(WriteFileAtomic, ReplacesContents) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "a.txt";
  ASSERT_TRUE(write_file_atomic(file, "first").is_ok());
  ASSERT_TRUE(write_file_atomic(file, "second").is_ok());
  EXPECT_EQ(read_file(file).value(), "second");
  // No temp files left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator{dir.path()}) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(WriteFileAtomic, ReadersNeverSeeTornContents) {
  // Hammer the file with rewrites while a reader checks every observation
  // is one of the two complete states.
  TempDir dir{"iotest"};
  const fs::path file = dir / "hot.txt";
  const std::string a(4096, 'a');
  const std::string b(4096, 'b');
  ASSERT_TRUE(write_file_atomic(file, a).is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread reader{[&] {
    while (!stop.load()) {
      auto contents = read_file(file);
      if (!contents.is_ok()) continue;  // racing the rename is fine
      const std::string& s = contents.value();
      if (s != a && s != b) bad.fetch_add(1);
    }
  }};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(write_file_atomic(file, i % 2 == 0 ? b : a).is_ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(FileSize, ReportsBytes) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "sz";
  ASSERT_TRUE(write_file(file, "12345").is_ok());
  EXPECT_EQ(mcsd::file_size(file).value(), 5u);
  EXPECT_FALSE(mcsd::file_size(dir / "missing").is_ok());
}

// ---------------------------------------------------------------------------
// ChunkedFileReader: the streaming fragment reader under the out-of-core
// pipeline.  Cuts must match part::integrity_check exactly; the edge
// cases here are records and delimiter runs interacting with the read
// buffer boundary.
// ---------------------------------------------------------------------------

bool is_space(char c) { return c == ' ' || c == '\n'; }

/// Streams `file` fully; returns fragments and checks offsets line up.
std::vector<std::string> stream_all(const fs::path& file,
                                    std::uint64_t target,
                                    std::size_t buffer_bytes) {
  auto reader = ChunkedFileReader::open(file, buffer_bytes);
  EXPECT_TRUE(reader.is_ok());
  std::vector<std::string> fragments;
  std::string fragment;
  std::uint64_t expected_offset = 0;
  for (;;) {
    EXPECT_EQ(reader.value().next_fragment_offset(), expected_offset);
    const auto got =
        reader.value().next_fragment(target, is_space, fragment);
    EXPECT_TRUE(got.is_ok()) << got.error().to_string();
    if (!got.value()) break;
    EXPECT_FALSE(fragment.empty());
    expected_offset += fragment.size();
    fragments.push_back(fragment);
  }
  return fragments;
}

TEST(ChunkedFileReader, MissingFileIsNotFound) {
  TempDir dir{"iotest"};
  const auto reader = ChunkedFileReader::open(dir / "nope");
  ASSERT_FALSE(reader.is_ok());
  EXPECT_EQ(reader.error().code(), ErrorCode::kNotFound);
}

TEST(ChunkedFileReader, EmptyFileYieldsNoFragments) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "empty";
  ASSERT_TRUE(write_file(file, "").is_ok());
  EXPECT_TRUE(stream_all(file, 8, 16).empty());
}

TEST(ChunkedFileReader, FileSmallerThanOneBufferIsOneFragment) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "small";
  const std::string payload = "tiny file";
  ASSERT_TRUE(write_file(file, payload).is_ok());
  const auto fragments = stream_all(file, 1024, 64 * 1024);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0], payload);
}

TEST(ChunkedFileReader, TargetZeroReadsWholeFile) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "whole";
  std::string payload;
  for (int i = 0; i < 500; ++i) payload += "word" + std::to_string(i) + " ";
  ASSERT_TRUE(write_file(file, payload).is_ok());
  const auto fragments = stream_all(file, 0, 64);  // many refills
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0], payload);
}

TEST(ChunkedFileReader, RecordSpanningReadBufferBoundaryStaysWhole) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "span";
  // Buffer is 16 bytes; the 40-byte record spans several read buffers and
  // also spans the 8-byte fragment target.
  const std::string long_record(40, 'x');
  const std::string payload = "ab " + long_record + " cd ef";
  ASSERT_TRUE(write_file(file, payload).is_ok());
  const auto fragments = stream_all(file, 8, 16);
  std::string joined;
  for (const auto& f : fragments) joined += f;
  EXPECT_EQ(joined, payload);
  // The long record must live whole inside exactly one fragment.
  int containing = 0;
  for (const auto& f : fragments) {
    if (f.find(long_record) != std::string::npos) ++containing;
  }
  EXPECT_EQ(containing, 1);
}

TEST(ChunkedFileReader, LongDelimiterRunAtBufferEdgeIsAbsorbed) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "runs";
  // A delimiter run crossing both the fragment target and several read
  // buffer boundaries must be absorbed into the preceding fragment, so
  // the next fragment starts on a record byte.
  const std::string payload =
      "head" + std::string(50, ' ') + "tail" + std::string(30, '\n') + "end";
  ASSERT_TRUE(write_file(file, payload).is_ok());
  const auto fragments = stream_all(file, 6, 16);
  std::string joined;
  for (const auto& f : fragments) joined += f;
  EXPECT_EQ(joined, payload);
  for (std::size_t i = 1; i < fragments.size(); ++i) {
    EXPECT_FALSE(is_space(fragments[i].front()))
        << "fragment " << i << " starts mid-delimiter-run";
  }
}

TEST(ChunkedFileReader, AllDelimiterFileIsOneFragment) {
  TempDir dir{"iotest"};
  const fs::path file = dir / "blanks";
  const std::string payload(100, ' ');
  ASSERT_TRUE(write_file(file, payload).is_ok());
  const auto fragments = stream_all(file, 10, 16);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0], payload);
}

}  // namespace
}  // namespace mcsd
