#include "partition/integrity.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/random.hpp"

namespace mcsd::part {
namespace {

TEST(IntegrityCheck, CleanBoundaryNeedsNoDisplacement) {
  //               0123456789
  const std::string s = "abc def gh";
  // Draft cut at 4 ('d'): previous byte is a space -> record boundary.
  const auto r = integrity_check(s, 4);
  EXPECT_EQ(r.displacement, 0u);
  EXPECT_FALSE(r.hit_end);
}

TEST(IntegrityCheck, MidWordSlidesToNextDelimiter) {
  const std::string s = "abc def gh";
  // Draft cut at 5 (middle of "def"): slide to after "def " -> cut at 8.
  const auto r = integrity_check(s, 5);
  EXPECT_EQ(5 + r.displacement, 8u);
}

TEST(IntegrityCheck, AbsorbsDelimiterRun) {
  const std::string s = "abc   def";
  // Draft cut at 4 (inside the space run): absorb the run, cut at 6.
  const auto r = integrity_check(s, 4);
  EXPECT_EQ(4 + r.displacement, 6u);
}

TEST(IntegrityCheck, DraftAtOrPastEnd) {
  const std::string s = "abc";
  EXPECT_TRUE(integrity_check(s, 3).hit_end);
  EXPECT_TRUE(integrity_check(s, 10).hit_end);
  EXPECT_EQ(integrity_check(s, 3).displacement, 0u);
}

TEST(IntegrityCheck, WordRunningToEndOfInput) {
  const std::string s = "abc defgh";
  // Cut mid final word: scan hits end of input.
  const auto r = integrity_check(s, 6);
  EXPECT_TRUE(r.hit_end);
  EXPECT_EQ(6 + r.displacement, s.size());
}

TEST(IntegrityCheck, CustomDelimiter) {
  const std::string s = "a,b,,c";
  const auto is_comma = [](char c) { return c == ','; };
  const auto r = integrity_check(s, 1, is_comma);  // at the first comma?
  // Position 1 is ','; previous byte 'a' is not a delimiter -> mid-record?
  // No: s[0]='a', cut=1 -> s[cut-1] not delim -> slide to first ','=1,
  // then absorb run -> cut at 2.
  EXPECT_EQ(1 + r.displacement, 2u);
}

TEST(IntegrityCheck, NewlineDelimiterForLines) {
  const std::string s = "line one\nline two\n";
  const auto r = integrity_check(s, 4, newline_delimiter());
  EXPECT_EQ(4 + r.displacement, 9u);  // after the first '\n'
}

TEST(IntegrityCheck, CutAtStartIsClean) {
  const std::string s = "word and more";
  const auto r = integrity_check(s, 0);
  EXPECT_EQ(r.displacement, 0u);
}

// Property: the adjusted cut always lands after a delimiter (or at the
// end), and never moves backwards.
class IntegrityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrityProperty, AdjustedCutOnRecordBoundary) {
  mcsd::Rng rng{GetParam()};
  std::string s;
  for (int w = 0; w < 100; ++w) {
    const auto len = 1 + rng.next_below(10);
    for (std::uint64_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    s.push_back(' ');
  }
  for (int trial = 0; trial < 50; ++trial) {
    const auto draft = static_cast<std::size_t>(rng.next_below(s.size() + 8));
    const auto r = integrity_check(s, draft);
    const std::size_t cut = draft + r.displacement;
    EXPECT_GE(cut, draft);
    if (cut < s.size()) {
      EXPECT_TRUE(mcsd::is_default_delimiter(s[cut - 1]))
          << "cut=" << cut << " draft=" << draft;
      EXPECT_FALSE(mcsd::is_default_delimiter(s[cut]));
    } else {
      EXPECT_TRUE(r.hit_end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace mcsd::part
