// The pipelined out-of-core path: streaming fragment source (served from
// the storage buffer pool with read-ahead) and the file-backed driver.
// The load-bearing property is byte-equivalence with the serial in-memory
// chain: streaming a file must produce exactly partition()'s fragments,
// and the pipelined run must produce exactly the serial run's output,
// over random corpora and adversarial fragment/buffer size combinations.
#include "partition/outofcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/io.hpp"
#include "core/random.hpp"
#include "partition/streaming.hpp"

namespace mcsd::part {
namespace {

using apps::StringMatchSpec;
using apps::WordCountSpec;

std::map<std::string, std::uint64_t> to_map(
    const std::vector<mr::KV<std::string, std::uint64_t>>& pairs) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& kv : pairs) m[kv.key] += kv.value;
  return m;
}

std::vector<OwnedFragment> stream_all(const std::filesystem::path& path,
                                      StreamOptions options) {
  auto source = StreamingFragmentSource::open(path, std::move(options));
  EXPECT_TRUE(source.is_ok());
  std::vector<OwnedFragment> fragments;
  OwnedFragment fragment;
  for (;;) {
    const auto got = source.value().next(fragment);
    EXPECT_TRUE(got.is_ok()) << got.error().to_string();
    if (!got.value()) break;
    fragments.push_back(fragment);
  }
  return fragments;
}

TEST(StreamingFragmentSource, MissingFileIsNotFound) {
  TempDir dir{"pipeline"};
  const auto source = StreamingFragmentSource::open(dir / "nope", {});
  ASSERT_FALSE(source.is_ok());
  EXPECT_EQ(source.error().code(), ErrorCode::kNotFound);
}

TEST(StreamingFragmentSource, EmptyFileYieldsNoFragments) {
  TempDir dir{"pipeline"};
  ASSERT_TRUE(write_file(dir / "empty", "").is_ok());
  for (const bool prefetch : {false, true}) {
    StreamOptions options;
    options.fragment_bytes = 1024;
    options.prefetch = prefetch;
    EXPECT_TRUE(stream_all(dir / "empty", options).empty());
  }
}

// Streaming a file reproduces partition() fragment-for-fragment — both
// prefetching and serial, across random corpora and pathological
// fragment/IO-buffer size pairs (buffer smaller than a record, fragment
// smaller than a word, fragment larger than the file).
class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, StreamedFragmentsEqualPartitioned) {
  Rng rng{GetParam()};
  apps::CorpusOptions corpus;
  corpus.bytes = 8 * 1024 + rng.next_below(64 * 1024);
  corpus.vocabulary = 100 + rng.next_below(400);
  corpus.seed = GetParam();
  const std::string text = apps::generate_corpus(corpus);

  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  PartitionOptions popts;
  popts.partition_size = 1 + rng.next_below(2 * corpus.bytes);
  const auto expected = partition(text, popts);

  for (const bool prefetch : {false, true}) {
    StreamOptions options;
    options.fragment_bytes = popts.partition_size;
    options.io_buffer_bytes = 7 + rng.next_below(8 * 1024);
    options.prefetch = prefetch;
    const auto streamed = stream_all(path, options);
    ASSERT_EQ(streamed.size(), expected.size()) << "prefetch=" << prefetch;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].text, expected[i].text) << "fragment " << i;
      EXPECT_EQ(streamed[i].offset, expected[i].offset);
      EXPECT_EQ(streamed[i].index, expected[i].index);
    }
  }
}

TEST_P(PipelineSeedSweep, PipelinedOutputEqualsSerialOutput) {
  Rng rng{GetParam()};
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024 + rng.next_below(64 * 1024);
  corpus.vocabulary = 100 + rng.next_below(300);
  corpus.seed = GetParam() * 31 + 7;
  const std::string text = apps::generate_corpus(corpus);

  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<WordCountSpec> engine{opts};

  // Serial reference: the in-memory chain with a terminal merge.
  PartitionOptions popts;
  popts.partition_size = 1024 + rng.next_below(16 * 1024);
  TextJob<WordCountSpec> serial_job;
  serial_job.merge = [](auto outputs) {
    return sum_merge<std::string, std::uint64_t>(std::move(outputs));
  };
  const auto serial =
      run_partitioned(engine, WordCountSpec{}, text, popts, serial_job);

  // Pipelined: streamed fragments, prefetch thread, incremental merge.
  PipelineOptions stream;
  stream.partition_size = popts.partition_size;
  stream.io_buffer_bytes = 512 + rng.next_below(4 * 1024);
  stream.prefetch = true;
  TextJob<WordCountSpec> pipelined_job;
  pipelined_job.incremental_merge =
      sum_incremental<std::string, std::uint64_t>();
  OutOfCoreMetrics metrics;
  const auto pipelined = run_partitioned_file(
      engine, WordCountSpec{}, path, stream, pipelined_job, &metrics);
  ASSERT_TRUE(pipelined.is_ok());

  EXPECT_EQ(to_map(pipelined.value()), to_map(serial));
  EXPECT_EQ(to_map(pipelined.value()), to_map(apps::wordcount_sequential(text)));
  EXPECT_TRUE(metrics.pipelined);
  EXPECT_EQ(metrics.bytes_streamed, text.size());
  EXPECT_GT(metrics.fragments, 1u);
}

// Worker-state reuse across fragments: a pipelined run drives one engine
// through many run() calls (reset arenas, reused emitters and gather
// buffers); its output — and a second full run on the *same* engine —
// must be byte-identical to a fresh engine's.
TEST_P(PipelineSeedSweep, ReusedEngineStateIsByteIdenticalAcrossRuns) {
  Rng rng{GetParam() * 97 + 3};
  apps::CorpusOptions corpus;
  corpus.bytes = 48 * 1024 + rng.next_below(48 * 1024);
  corpus.vocabulary = 150 + rng.next_below(250);
  corpus.seed = GetParam() * 13 + 1;
  const std::string text = apps::generate_corpus(corpus);

  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  PipelineOptions stream;
  stream.partition_size = 2048 + rng.next_below(8 * 1024);
  stream.prefetch = true;
  TextJob<WordCountSpec> job;
  job.incremental_merge = sum_incremental<std::string, std::uint64_t>();

  mr::Options opts;
  opts.num_workers = 3;
  mr::Engine<WordCountSpec> reused{opts};
  const auto first =
      run_partitioned_file(reused, WordCountSpec{}, path, stream, job);
  ASSERT_TRUE(first.is_ok());
  const auto second =
      run_partitioned_file(reused, WordCountSpec{}, path, stream, job);
  ASSERT_TRUE(second.is_ok());

  mr::Engine<WordCountSpec> fresh{opts};
  const auto baseline =
      run_partitioned_file(fresh, WordCountSpec{}, path, stream, job);
  ASSERT_TRUE(baseline.is_ok());

  // Byte-identical, not just map-equal: same pairs in the same order.
  ASSERT_EQ(first.value().size(), baseline.value().size());
  for (std::size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_EQ(first.value()[i].key, baseline.value()[i].key);
    EXPECT_EQ(first.value()[i].value, baseline.value()[i].value);
  }
  ASSERT_EQ(second.value().size(), baseline.value().size());
  for (std::size_t i = 0; i < second.value().size(); ++i) {
    EXPECT_EQ(second.value()[i].key, baseline.value()[i].key);
    EXPECT_EQ(second.value()[i].value, baseline.value()[i].value);
  }
  EXPECT_EQ(to_map(first.value()), to_map(apps::wordcount_sequential(text)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(RunPartitionedFile, PeakResidencyBoundedByOneFragmentPlusCarry) {
  apps::CorpusOptions corpus;
  corpus.bytes = 512 * 1024;
  corpus.vocabulary = 500;
  const std::string text = apps::generate_corpus(corpus);
  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  auto pool = std::make_shared<storage::BufferManager>();
  mr::Engine<WordCountSpec> engine{mr::Options{}};
  PipelineOptions stream;
  stream.partition_size = 64 * 1024;
  stream.prefetch = true;
  stream.pool = pool;
  TextJob<WordCountSpec> job;
  job.incremental_merge = sum_incremental<std::string, std::uint64_t>();
  OutOfCoreMetrics metrics;
  ASSERT_TRUE(run_partitioned_file(engine, WordCountSpec{}, path, stream, job,
                                   &metrics)
                  .is_ok());
  ASSERT_GE(metrics.fragments, 7u);
  // Private fragment text is one fragment (draft size + at most one
  // record + one delimiter run of overshoot) plus the reader's carry —
  // pipelining now lives in pool frames, not a second private buffer.
  EXPECT_GT(metrics.peak_resident_fragment_bytes, 0u);
  EXPECT_LE(metrics.peak_resident_fragment_bytes,
            stream.partition_size + stream.io_buffer_bytes + 4 * 1024);
  // Pool-side residency is bounded by the pool, and the run's pages went
  // through it.
  EXPECT_LE(metrics.peak_resident_fragment_bytes, pool->capacity_bytes());
  EXPECT_GT(metrics.storage_misses, 0u);
  EXPECT_EQ(pool->stats().pinned_frames, 0u);  // nothing leaks pins
}

TEST(RunPartitionedFile, WarmRerunHitsDaemonResidentPool) {
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  // One pool outliving both runs — the daemon-resident warm-re-run shape.
  auto pool = std::make_shared<storage::BufferManager>();
  PipelineOptions stream;
  stream.partition_size = 32 * 1024;
  stream.prefetch = true;
  stream.pool = pool;
  TextJob<WordCountSpec> job;
  job.incremental_merge = sum_incremental<std::string, std::uint64_t>();

  mr::Engine<WordCountSpec> engine{mr::Options{}};
  OutOfCoreMetrics cold;
  auto first = run_partitioned_file(engine, WordCountSpec{}, path, stream,
                                    job, &cold);
  ASSERT_TRUE(first.is_ok());
  EXPECT_GT(cold.storage_misses, 0u);

  OutOfCoreMetrics warm;
  auto second = run_partitioned_file(engine, WordCountSpec{}, path, stream,
                                     job, &warm);
  ASSERT_TRUE(second.is_ok());
  // Byte-identical output, zero new disk I/O, perfect hit rate.
  EXPECT_EQ(to_map(first.value()), to_map(second.value()));
  EXPECT_EQ(warm.storage_misses, 0u);
  EXPECT_GT(warm.storage_hits, 0u);
  EXPECT_DOUBLE_EQ(warm.storage_hit_rate(), 1.0);
}

TEST(RunPartitionedFile, SerialModeKeepsOneFragmentResident) {
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  mr::Engine<WordCountSpec> engine{mr::Options{}};
  PipelineOptions stream;
  stream.partition_size = 32 * 1024;
  stream.prefetch = false;
  TextJob<WordCountSpec> job;
  job.incremental_merge = sum_incremental<std::string, std::uint64_t>();
  OutOfCoreMetrics metrics;
  ASSERT_TRUE(run_partitioned_file(engine, WordCountSpec{}, path, stream, job,
                                   &metrics)
                  .is_ok());
  EXPECT_FALSE(metrics.pipelined);
  EXPECT_LE(metrics.peak_resident_fragment_bytes,
            stream.partition_size + stream.io_buffer_bytes + 4 * 1024);
}

// String Match across streamed fragments: line-aligned cuts plus the
// driver's chunk-offset rebase must yield the same absolute-offset
// matches as the sequential scan of the whole file.
TEST(RunPartitionedFile, StringMatchOffsetsSurviveFragmentation) {
  apps::LineFileOptions lines;
  lines.bytes = 96 * 1024;
  std::string text = apps::generate_line_file(lines);
  apps::KeysOptions keys_options;
  keys_options.count = 6;
  StringMatchSpec spec;
  spec.keys = apps::generate_and_plant_keys(text, keys_options);

  TempDir dir{"pipeline"};
  const auto path = dir / "lines.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<StringMatchSpec> engine{opts};
  PipelineOptions stream;
  stream.partition_size = 8 * 1024;
  stream.is_delimiter = newline_delimiter();
  stream.prefetch = true;
  TextJob<StringMatchSpec> job;
  job.chunker = [](std::string_view fragment) {
    return mr::split_lines(fragment, 4 * 1024);
  };
  job.incremental_merge = concat_incremental<std::uint64_t, std::uint32_t>();
  OutOfCoreMetrics metrics;
  const auto pairs =
      run_partitioned_file(engine, spec, path, stream, job, &metrics);
  ASSERT_TRUE(pairs.is_ok());
  EXPECT_GT(metrics.fragments, 1u);

  const auto expected = apps::stringmatch_sequential(text, spec.keys);
  EXPECT_EQ(apps::to_sorted_matches(pairs.value()),
            expected);
}

// Incremental merge inside the in-memory driver: same result as the
// terminal merge, fragment by fragment.
TEST(RunPartitioned, IncrementalMergeMatchesTerminalMerge) {
  apps::CorpusOptions corpus;
  corpus.bytes = 128 * 1024;
  corpus.vocabulary = 300;
  const std::string text = apps::generate_corpus(corpus);

  mr::Engine<WordCountSpec> engine{mr::Options{}};
  PartitionOptions popts;
  popts.partition_size = 16 * 1024;

  TextJob<WordCountSpec> terminal;
  terminal.merge = [](auto outputs) {
    return sum_merge<std::string, std::uint64_t>(std::move(outputs));
  };
  TextJob<WordCountSpec> incremental;
  incremental.incremental_merge =
      sum_incremental<std::string, std::uint64_t>();

  const auto a =
      run_partitioned(engine, WordCountSpec{}, text, popts, terminal);
  const auto b =
      run_partitioned(engine, WordCountSpec{}, text, popts, incremental);
  // The incremental path additionally guarantees key order.
  EXPECT_TRUE(std::is_sorted(
      b.begin(), b.end(),
      [](const auto& x, const auto& y) { return x.key < y.key; }));
  EXPECT_EQ(to_map(a), to_map(b));
}

TEST(StreamingFragmentSource, EarlyDestructionReleasesQueuedReads) {
  apps::CorpusOptions corpus;
  corpus.bytes = 128 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  auto pool = std::make_shared<storage::BufferManager>();
  StreamOptions options;
  options.fragment_bytes = 8 * 1024;
  options.prefetch = true;
  options.pool = pool;
  auto source = StreamingFragmentSource::open(path, options);
  ASSERT_TRUE(source.is_ok());
  OwnedFragment fragment;
  ASSERT_TRUE(source.value().next(fragment).value());
  // Drop the source with read-ahead still in flight: queued loads simply
  // complete into the pool (or are reclaimed) and nothing stays pinned.
}

TEST(StreamingFragmentSource, ZeroFragmentTeardownLeavesNothingPinned) {
  // Regression guard for early-error teardown: construct a prefetching
  // source, consume *zero* fragments, destroy.  Under ASan this also
  // proves no queued read-ahead buffer is leaked.
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  TempDir dir{"pipeline"};
  const auto path = dir / "corpus.txt";
  ASSERT_TRUE(write_file(path, text).is_ok());

  auto pool = std::make_shared<storage::BufferManager>();
  {
    StreamOptions options;
    options.fragment_bytes = 4 * 1024;
    options.prefetch = true;
    options.pool = pool;
    auto source = StreamingFragmentSource::open(path, options);
    ASSERT_TRUE(source.is_ok());
    // No next() call at all — mimics a driver erroring out right after
    // open.
  }
  // Any in-flight read-ahead has a bounded lifetime; once the pool is
  // quiesced every frame must be unpinned and reusable.
  ASSERT_TRUE(pool->drop_cached().is_ok());
  EXPECT_EQ(pool->stats().pinned_frames, 0u);
}

}  // namespace
}  // namespace mcsd::part
