#!/bin/sh
# Scaling smoke: a reduced-size mapreduce bench run must (a) record the
# per-worker scaling-anatomy fields, (b) produce byte-identical engine
# output across the measured worker counts, and (c) show core-aware
# parallel efficiency of at least 0.5 at 4 workers.  The full bench run
# records ~1.0, so the 0.5 gate trips on genuine scaling regressions
# (a reintroduced shared cursor, a reduce phase growing with N) rather
# than runner noise; efficiency is normalised by min(workers, host_cores),
# so an oversubscribed CI runner measures the engine, not the host.
#
# Usage: scaling_smoke.sh [tools-binary-dir]
set -eu

if [ "$#" -ge 1 ]; then
  TOOLS_DIR="$1"
else
  repo_root=$(cd "$(dirname "$0")/.." && pwd)
  TOOLS_DIR=""
  for candidate in "$repo_root"/build*/tools "$repo_root"/build*/*/tools; do
    [ -x "$candidate/bench_record" ] && TOOLS_DIR="$candidate"
  done
  if [ -z "$TOOLS_DIR" ]; then
    echo "cannot find bench_record; build first or pass the directory"
    exit 1
  fi
fi

out=BENCH_scaling_smoke.json
rm -f "$out"
"$TOOLS_DIR/bench_record" --suite mapreduce --bytes 2M --reps 3 \
    --workers 1,4 --label scaling-smoke --out "$out" > /dev/null

for needle in host_cores "map_cpu_ms/4" "map_steals/4" \
    "scaling_efficiency/4" "wall_scaling_efficiency/4" \
    "wordcount_tokenize_ms/4" "wordcount_hash_ms/4" "wordcount_probe_ms/4" \
    "wordcount_map_mb_s/4" output_identical_across_workers; do
  grep -q "$needle" "$out" || {
    echo "$out: missing '$needle'"; exit 1;
  }
done

grep -q '"output_identical_across_workers": true' "$out" || {
  echo "engine output differs across worker counts"; exit 1;
}

eff=$(sed -n 's/.*"scaling_efficiency\/4": \([0-9.]*\).*/\1/p' "$out" | tail -1)
[ -n "$eff" ] || { echo "cannot parse scaling_efficiency/4"; exit 1; }
awk -v e="$eff" 'BEGIN { exit (e >= 0.5) ? 0 : 1 }' || {
  echo "scaling_efficiency/4 = $eff < 0.5"; exit 1;
}

echo "scaling smoke passed (scaling_efficiency/4 = $eff)"
