#include "runtime/policy.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace mcsd::rt {
namespace {

using namespace mcsd::literals;

// The Table-I shaped policy: quad 1.33x host, duo 1.0x storage node.
OffloadPolicy table1_policy() { return OffloadPolicy{}; }

TEST(SiteSpec, CapabilityScalesWithCoresAndSpeed) {
  EXPECT_DOUBLE_EQ((SiteSpec{1, 1.0, 0.9}.capability()), 1.0);
  EXPECT_DOUBLE_EQ((SiteSpec{2, 1.0, 0.9}.capability()), 1.9);
  EXPECT_DOUBLE_EQ((SiteSpec{1, 2.0, 0.9}.capability()), 2.0);
  EXPECT_DOUBLE_EQ((SiteSpec{4, 1.0, 1.0}.capability()), 4.0);
}

TEST(OffloadPolicy, DataIntensiveJobOffloads) {
  // Word-count-like: cheap per byte, big input living on the SD node.
  // Pulling 1 GiB over NFS costs ~11 s; running on the (slower) SD node
  // avoids it entirely.
  const auto d = table1_policy().decide(1_GiB, 1.0 / 25.0);
  EXPECT_EQ(d.placement, Placement::kStorageNode);
  EXPECT_LT(d.offload_seconds, d.host_seconds);
}

TEST(OffloadPolicy, ComputeIntensiveJobStaysOnHost) {
  // Matrix-multiply-like: expensive per byte — the transfer amortises
  // and the host's bigger capability wins.
  const auto d = table1_policy().decide(256_MiB, 1.0 / 8.0);
  EXPECT_EQ(d.placement, Placement::kHost);
}

TEST(OffloadPolicy, TinyJobStaysOnHost) {
  // A 1 MiB job finishes before the FAM round trip matters either way,
  // but the transfer is negligible and the host is simply faster.
  const auto d = table1_policy().decide(1_MiB, 1.0 / 8.0);
  EXPECT_EQ(d.placement, Placement::kHost);
}

TEST(OffloadPolicy, DataOnHostRemovesPullAndFlipsDecision) {
  // The same data-intensive job whose input is *already on the host*:
  // no transfer to save, host capability wins.
  OffloadPolicy policy = table1_policy();
  const auto on_storage = policy.decide(1_GiB, 1.0 / 25.0, true);
  const auto on_host = policy.decide(1_GiB, 1.0 / 25.0, false);
  EXPECT_EQ(on_storage.placement, Placement::kStorageNode);
  EXPECT_EQ(on_host.placement, Placement::kHost);
}

TEST(OffloadPolicy, FasterNetworkFavoursHost) {
  // Crank network bandwidth until the pull is free-ish: the crossover
  // the paper's future-work Infiniband upgrade probes.
  OffloadPolicy slow = table1_policy();
  slow.network_mibps = 10.0;
  OffloadPolicy fast = table1_policy();
  fast.network_mibps = 100'000.0;
  EXPECT_EQ(slow.decide(500_MiB, 1.0 / 25.0).placement,
            Placement::kStorageNode);
  EXPECT_EQ(fast.decide(500_MiB, 1.0 / 25.0).placement, Placement::kHost);
}

TEST(OffloadPolicy, StrongerStorageNodeWidensOffloadRegion) {
  OffloadPolicy weak = table1_policy();
  weak.storage = SiteSpec{1, 0.5, 0.9};
  OffloadPolicy strong = table1_policy();
  strong.storage = SiteSpec{8, 1.33, 0.95};
  // A moderately compute-heavy job: the weak SD loses, the strong wins.
  const double rate = 1.0 / 15.0;
  EXPECT_EQ(weak.decide(300_MiB, rate).placement, Placement::kHost);
  EXPECT_EQ(strong.decide(300_MiB, rate).placement, Placement::kStorageNode);
}

TEST(OffloadPolicy, DecisionExposesBothCosts) {
  const auto d = table1_policy().decide(500_MiB, 1.0 / 25.0);
  EXPECT_GT(d.host_seconds, 0.0);
  EXPECT_GT(d.offload_seconds, 0.0);
}

TEST(PlacementToString, Names) {
  EXPECT_STREQ(to_string(Placement::kHost), "host");
  EXPECT_STREQ(to_string(Placement::kStorageNode), "storage-node");
}

}  // namespace
}  // namespace mcsd::rt
