#include "fam/protocol.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <string_view>

#include "core/hash.hpp"

namespace mcsd::fam {
namespace {

Record sample_request() {
  Record r;
  r.type = RecordType::kRequest;
  r.seq = 42;
  r.module = "wordcount";
  r.payload.set("input", "/data/corpus.txt");
  r.payload.set_uint("partition_size", 600ULL << 20);
  return r;
}

TEST(ValidModuleName, AcceptsAndRejects) {
  EXPECT_TRUE(valid_module_name("wordcount"));
  EXPECT_TRUE(valid_module_name("string-match_2"));
  EXPECT_FALSE(valid_module_name(""));
  EXPECT_FALSE(valid_module_name("bad name"));
  EXPECT_FALSE(valid_module_name("../escape"));
  EXPECT_FALSE(valid_module_name("dot.log"));
}

TEST(LogFileName, AppendsSuffix) {
  EXPECT_EQ(log_file_name("wordcount"), "wordcount.log");
}

TEST(Protocol, RequestRoundTrip) {
  const Record original = sample_request();
  const auto decoded = decode_record(encode_record(original)).value();
  EXPECT_EQ(decoded.type, RecordType::kRequest);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.module, "wordcount");
  EXPECT_EQ(decoded.payload.get("input"), "/data/corpus.txt");
  EXPECT_EQ(decoded.payload.get_uint("partition_size").value(), 600ULL << 20);
}

TEST(Protocol, ResponseRoundTripOk) {
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 7;
  r.module = "matmul";
  r.ok = true;
  r.payload.set_double("checksum", 3.25);
  const auto decoded = decode_record(encode_record(r)).value();
  EXPECT_EQ(decoded.type, RecordType::kResponse);
  EXPECT_TRUE(decoded.ok);
  EXPECT_DOUBLE_EQ(decoded.payload.get_double("checksum").value(), 3.25);
}

TEST(Protocol, ResponseRoundTripError) {
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 8;
  r.module = "matmul";
  r.ok = false;
  r.error_message = "dimension mismatch";
  const auto decoded = decode_record(encode_record(r)).value();
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error_message, "dimension mismatch");
}

TEST(Protocol, CacheDispositionRoundTrips) {
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 9;
  r.module = "wordcount";
  r.ok = true;
  r.cache = CacheState::kHit;
  r.cache_epoch = 17;
  const std::string wire = encode_record(r);
  EXPECT_NE(wire.find("mcsd.cache=hit"), std::string::npos);
  EXPECT_NE(wire.find("mcsd.epoch=17"), std::string::npos);
  const auto decoded = decode_record(wire).value();
  EXPECT_EQ(decoded.cache, CacheState::kHit);
  EXPECT_EQ(decoded.cache_epoch, 17u);

  r.cache = CacheState::kMiss;
  const auto miss = decode_record(encode_record(r)).value();
  EXPECT_EQ(miss.cache, CacheState::kMiss);
  EXPECT_EQ(miss.cache_epoch, 17u);
}

TEST(Protocol, CacheFieldsAbsentByDefault) {
  // A response that never consulted the cache (module not cacheable, or
  // cache disabled) must not grow new wire keys — old clients see the
  // exact pre-cache format.
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 10;
  r.module = "echo";
  r.ok = true;
  const std::string wire = encode_record(r);
  EXPECT_EQ(wire.find("mcsd.cache"), std::string::npos);
  EXPECT_EQ(wire.find("mcsd.epoch"), std::string::npos);
  const auto decoded = decode_record(wire).value();
  EXPECT_EQ(decoded.cache, CacheState::kNone);
  EXPECT_EQ(decoded.cache_epoch, 0u);
}

TEST(Protocol, BadCacheValueRejected) {
  // A record whose mcsd.cache carries anything but hit/miss is a
  // protocol error, not a silent kNone — catching daemon/client version
  // skew loudly.  (Smuggling the bad value through the payload keeps the
  // crc trailer valid, so decode reaches the cache-field parse.)
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 11;
  r.module = "echo";
  r.ok = true;
  r.payload.set("mcsd.cache", "hot");
  const auto decoded = decode_record(encode_record(r));
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kProtocolError);
  EXPECT_NE(decoded.error().message().find("bad mcsd.cache"),
            std::string::npos);
}

TEST(Protocol, StaleReplyLastSeqRoundTrips) {
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 8;
  r.module = "echo";
  r.ok = false;
  r.error_message = "stale request";
  r.last_seq = 12;
  const std::string wire = encode_record(r);
  EXPECT_NE(wire.find("mcsd.last=12"), std::string::npos);
  const auto decoded = decode_record(wire).value();
  EXPECT_EQ(decoded.last_seq, 12u);
  EXPECT_FALSE(decoded.payload.contains("mcsd.last"));
}

TEST(Protocol, LastSeqAbsentDefaultsToZero) {
  Record r;
  r.type = RecordType::kResponse;
  r.seq = 9;
  r.module = "echo";
  const std::string wire = encode_record(r);
  EXPECT_EQ(wire.find("mcsd.last"), std::string::npos);
  EXPECT_EQ(decode_record(wire).value().last_seq, 0u);
  // Requests never carry it, even when set by mistake.
  Record req = sample_request();
  req.last_seq = 5;
  EXPECT_EQ(encode_record(req).find("mcsd.last"), std::string::npos);
}

TEST(Protocol, PayloadWithReservedLookingValuesSurvives) {
  Record r = sample_request();
  r.payload.set("tricky", "mcsd.type=response\nmcsd.seq=999");
  const auto decoded = decode_record(encode_record(r)).value();
  EXPECT_EQ(decoded.seq, 42u);  // reserved keys not spoofable via values
  EXPECT_EQ(decoded.payload.get("tricky"), "mcsd.type=response\nmcsd.seq=999");
}

TEST(Protocol, ReservedKeysStrippedFromPayload) {
  const auto decoded = decode_record(encode_record(sample_request())).value();
  EXPECT_FALSE(decoded.payload.contains("mcsd.type"));
  EXPECT_FALSE(decoded.payload.contains("mcsd.seq"));
}

TEST(Protocol, CrcDetectsCorruption) {
  std::string wire = encode_record(sample_request());
  // Flip a byte in the body (not the crc line).
  wire[wire.find("wordcount")] = 'X';
  const auto decoded = decode_record(wire);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kProtocolError);
}

TEST(Protocol, MissingCrcRejected) {
  EXPECT_FALSE(decode_record("mcsd.type=request\nmcsd.seq=1\n").is_ok());
}

TEST(Protocol, EmptyAndGarbageRejected) {
  EXPECT_FALSE(decode_record("").is_ok());
  EXPECT_FALSE(decode_record("complete garbage").is_ok());
  EXPECT_FALSE(decode_record("# just a comment\n").is_ok());
}

TEST(Protocol, MissingTypeRejected) {
  KeyValueMap map;
  map.set("mcsd.seq", "1");
  map.set("mcsd.module", "m");
  std::string body = map.serialize();
  // Manually frame with a valid crc.
  const std::string wire =
      body + "mcsd.crc=" + std::to_string(fnv1a(body)) + "\n";
  const auto decoded = decode_record(wire);
  ASSERT_FALSE(decoded.is_ok());
}

TEST(Protocol, BadSeqRejected) {
  Record r = sample_request();
  std::string wire = encode_record(r);
  // Corrupting seq also breaks the crc; craft a fresh record instead.
  KeyValueMap map;
  map.set("mcsd.type", "request");
  map.set("mcsd.seq", "notanumber");
  map.set("mcsd.module", "m");
  const std::string body = map.serialize();
  const auto decoded = decode_record(
      body + "mcsd.crc=" + std::to_string(fnv1a(body)) + "\n");
  EXPECT_FALSE(decoded.is_ok());
}

TEST(Protocol, EncodeIsDeterministic) {
  EXPECT_EQ(encode_record(sample_request()), encode_record(sample_request()));
}

// --- Rev 2: sharded mailbox channel -----------------------------------

TEST(ProtocolRev2, ServingFieldsRoundTrip) {
  Record r = sample_request();
  r.client_id = 0xDEADBEEF12345678ULL;
  r.tenant = "acme";
  r.deadline_ms = 2500;
  const auto request = decode_record(encode_record(r)).value();
  EXPECT_EQ(request.client_id, 0xDEADBEEF12345678ULL);
  EXPECT_EQ(request.tenant, "acme");
  EXPECT_EQ(request.deadline_ms, 2500u);

  Record resp;
  resp.type = RecordType::kResponse;
  resp.seq = 9;
  resp.module = "m";
  resp.ok = false;
  resp.client_id = 77;
  resp.retry_after_ms = 12;
  resp.waiters = 3;
  resp.error_message = "admission queue full";
  const auto response = decode_record(encode_record(resp)).value();
  EXPECT_EQ(response.client_id, 77u);
  EXPECT_EQ(response.retry_after_ms, 12u);
  EXPECT_EQ(response.waiters, 3u);
}

TEST(ProtocolRev2, LegacyRecordsStayRevOne) {
  // A record without serving fields encodes without the rev-2 keys, so
  // rev-1 daemons/clients parse it untouched.
  const std::string wire = encode_record(sample_request());
  EXPECT_EQ(wire.find("mcsd.client"), std::string::npos);
  EXPECT_EQ(wire.find("mcsd.tenant"), std::string::npos);
  EXPECT_EQ(wire.find("mcsd.deadline"), std::string::npos);
  const auto decoded = decode_record(wire).value();
  EXPECT_EQ(decoded.client_id, 0u);
  EXPECT_EQ(decoded.deadline_ms, 0u);
}

TEST(ProtocolRev2, ShardAndReplyFileNames) {
  EXPECT_EQ(shard_file_name(0), "shard-0.log");
  EXPECT_EQ(shard_file_name(13), "shard-13.log");
  EXPECT_EQ(reply_file_name(42), "client-42.log");
}

TEST(ProtocolRev2, ShardHashCoversAllShardsUniformly) {
  constexpr std::size_t kShards = 8;
  std::array<std::size_t, kShards> hits{};
  for (std::uint64_t id = 1; id <= 4096; ++id) {
    const std::size_t shard = shard_for_client(id, kShards);
    ASSERT_LT(shard, kShards);
    ++hits[shard];
  }
  // Sequential ids must spread, not cluster: every shard sees a
  // meaningful share (perfect would be 512 each).
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(hits[shard], 256u) << "shard " << shard;
  }
  // Degenerate shard counts collapse to 0 instead of dividing by zero.
  EXPECT_EQ(shard_for_client(123, 0), 0u);
  EXPECT_EQ(shard_for_client(123, 1), 0u);
}

TEST(ProtocolRev2, ManifestRoundTrip) {
  ChannelManifest manifest;
  manifest.shards = 16;
  const auto decoded = decode_manifest(encode_manifest(manifest));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().rev, kChannelRev);
  EXPECT_EQ(decoded.value().shards, 16u);
  EXPECT_FALSE(decode_manifest("").is_ok());
  EXPECT_FALSE(decode_manifest("not a manifest").is_ok());
}

TEST(FrameStream, DecodesMultipleFrames) {
  Record a = sample_request();
  a.client_id = 1;
  Record b = sample_request();
  b.client_id = 2;
  b.seq = 43;
  const auto stream = decode_frame_stream(encode_record(a) + encode_record(b));
  ASSERT_EQ(stream.records.size(), 2u);
  EXPECT_EQ(stream.records[0].client_id, 1u);
  EXPECT_EQ(stream.records[1].client_id, 2u);
  EXPECT_EQ(stream.consumed,
            encode_record(a).size() + encode_record(b).size());
  EXPECT_EQ(stream.corrupt, 0u);
}

TEST(FrameStream, CorruptMiddleFrameResyncs) {
  Record a = sample_request();
  a.client_id = 1;
  Record c = sample_request();
  c.client_id = 3;
  std::string bad = encode_record(sample_request());
  bad[bad.find("wordcount")] = 'X';  // body no longer matches the crc
  const auto stream =
      decode_frame_stream(encode_record(a) + bad + encode_record(c));
  ASSERT_EQ(stream.records.size(), 2u);
  EXPECT_EQ(stream.records[0].client_id, 1u);
  EXPECT_EQ(stream.records[1].client_id, 3u);
  EXPECT_EQ(stream.corrupt, 1u);
}

TEST(FrameStream, IncompleteTailLeftUnconsumed) {
  const std::string whole = encode_record(sample_request());
  const std::string half = whole.substr(0, whole.size() / 2);
  const auto stream = decode_frame_stream(whole + half);
  ASSERT_EQ(stream.records.size(), 1u);
  EXPECT_EQ(stream.consumed, whole.size());  // tail awaits its crc line
  EXPECT_EQ(stream.corrupt, 0u);
  // The writer finishes the append; re-scanning from `consumed` now
  // yields the second frame — the drain cursor protocol.
  const auto rest =
      decode_frame_stream(std::string_view{whole + half + whole.substr(half.size())}
                              .substr(stream.consumed));
  ASSERT_EQ(rest.records.size(), 1u);
}

TEST(FrameStream, EmptyInputYieldsNothing) {
  const auto stream = decode_frame_stream("");
  EXPECT_TRUE(stream.records.empty());
  EXPECT_EQ(stream.consumed, 0u);
  EXPECT_EQ(stream.corrupt, 0u);
}

}  // namespace
}  // namespace mcsd::fam
