// core/fault: deterministic fault injection at the io boundary — plan
// parsing, per-site injection, schedule/seed determinism, and the refill
// retry that keeps out-of-core streaming byte-identical under EIO.
#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "core/stopwatch.hpp"
#include "fam/watcher.hpp"
#include "obs/counters.hpp"

namespace mcsd::fault {
namespace {

using namespace std::chrono_literals;

FaultPlan plan_or_die(std::string_view spec) {
  auto plan = FaultPlan::from_spec(spec);
  EXPECT_TRUE(plan.is_ok()) << plan.error().to_string();
  return std::move(plan).value();
}

TEST(FaultPlanParse, EmptySpecsProduceDormantPlans) {
  EXPECT_TRUE(plan_or_die("").empty());
  EXPECT_TRUE(plan_or_die("none").empty());
}

TEST(FaultPlanParse, DefaultPlanCoversEverySite) {
  const FaultPlan plan = FaultPlan::default_plan(7);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_FALSE(plan.empty());
  bool sites[kSiteCount] = {};
  for (const Rule& rule : plan.rules) {
    sites[static_cast<std::size_t>(rule.site)] = true;
  }
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    EXPECT_TRUE(sites[s]) << "no default rule for site "
                          << to_string(static_cast<Site>(s));
  }
}

TEST(FaultPlanParse, InlineSpecWithSchedulesAndKnobs) {
  const FaultPlan plan = plan_or_die(
      "seed=99,write.torn=@3+5,read.eio=0.25,rename_delay_ms=11,"
      "path_filter=logs");
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.rename_delay, 11ms);
  EXPECT_EQ(plan.path_filter, "logs");
  ASSERT_EQ(plan.rules.size(), 2u);
  for (const Rule& rule : plan.rules) {
    if (rule.kind == Kind::kTorn) {
      EXPECT_EQ(rule.site, Site::kWriteFile);
      EXPECT_EQ(rule.steps, (std::vector<std::uint64_t>{3, 5}));
    } else {
      EXPECT_EQ(rule.site, Site::kReadFile);
      EXPECT_DOUBLE_EQ(rule.probability, 0.25);
    }
  }
}

TEST(FaultPlanParse, RejectsBadSpecs) {
  EXPECT_FALSE(FaultPlan::from_spec("bogus=1").is_ok());          // no dot
  EXPECT_FALSE(FaultPlan::from_spec("disk.eio=0.5").is_ok());     // bad site
  EXPECT_FALSE(FaultPlan::from_spec("read.suppress=0.5").is_ok());  // pair
  EXPECT_FALSE(FaultPlan::from_spec("watch.torn=0.5").is_ok());     // pair
  EXPECT_FALSE(FaultPlan::from_spec("read.eio=1.5").is_ok());     // range
  EXPECT_FALSE(FaultPlan::from_spec("read.eio=-0.1").is_ok());    // range
  EXPECT_FALSE(FaultPlan::from_spec("read.eio=@0").is_ok());      // 1-based
  EXPECT_FALSE(FaultPlan::from_spec("read.eio=@2+x").is_ok());    // digits
  EXPECT_FALSE(FaultPlan::from_spec("read.eio=@").is_ok());       // empty
}

TEST(FaultInjection, ReadEioFiresOnScheduledStepOnly) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  ASSERT_TRUE(write_file(path, "payload").is_ok());

  FaultScope scope{plan_or_die("read.eio=@1")};
  const auto first = read_file(path);
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.error().code(), ErrorCode::kIoError);
  EXPECT_NE(first.error().message().find("injected EIO"), std::string::npos);

  const auto second = read_file(path);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), "payload");
  EXPECT_EQ(Injector::instance().injected(Site::kReadFile, Kind::kEio), 1u);
}

TEST(FaultInjection, TornReadReturnsStrictPrefix) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  const std::string contents = "0123456789abcdef";
  ASSERT_TRUE(write_file(path, contents).is_ok());

  FaultScope scope{plan_or_die("read.torn=@1")};
  const auto torn = read_file(path);
  ASSERT_TRUE(torn.is_ok());  // silent fault: caller sees a short read
  EXPECT_LT(torn.value().size(), contents.size());
  EXPECT_EQ(torn.value(), contents.substr(0, torn.value().size()));
}

TEST(FaultInjection, WriteEioAndEnospcLeaveTargetUntouched) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  ASSERT_TRUE(write_file_atomic(path, "original").is_ok());

  FaultScope scope{plan_or_die("write.eio=@1,write.enospc=@2")};
  const auto eio = write_file_atomic(path, "update-1");
  ASSERT_FALSE(eio.is_ok());
  EXPECT_EQ(eio.error().code(), ErrorCode::kIoError);
  const auto enospc = write_file_atomic(path, "update-2");
  ASSERT_FALSE(enospc.is_ok());
  EXPECT_NE(enospc.error().message().find("ENOSPC"), std::string::npos);
  EXPECT_EQ(read_file(path).value(), "original");
}

TEST(FaultInjection, TornWriteLandsSilentPrefix) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  const std::string contents = "0123456789abcdef0123456789abcdef";

  FaultScope scope{plan_or_die("write.torn=@1")};
  ASSERT_TRUE(write_file_atomic(path, contents).is_ok());  // reports success
  const auto landed = read_file(path).value();
  EXPECT_LT(landed.size(), contents.size());
  EXPECT_EQ(landed, contents.substr(0, landed.size()));
}

TEST(FaultInjection, ShortWriteLandsPrefixAndReportsError) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  const std::string contents = "0123456789abcdef0123456789abcdef";

  FaultScope scope{plan_or_die("write.short=@1")};
  const auto status = write_file_atomic(path, contents);
  ASSERT_FALSE(status.is_ok());  // unlike kTorn the failure is surfaced
  EXPECT_NE(status.error().message().find("short write"), std::string::npos);
  const auto landed = read_file(path).value();
  EXPECT_LT(landed.size(), contents.size());
}

TEST(FaultInjection, DelayedRenameStallsThenSucceeds) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";

  FaultScope scope{plan_or_die("write.delay=@1,rename_delay_ms=60")};
  Stopwatch watch;
  ASSERT_TRUE(write_file_atomic(path, "late").is_ok());
  EXPECT_GE(watch.elapsed(), 50ms);
  EXPECT_EQ(read_file(path).value(), "late");
}

TEST(FaultInjection, RefillRetryKeepsStreamedBytesIdentical) {
  TempDir dir{"fault"};
  const auto path = dir / "stream.txt";
  std::string contents;
  for (int i = 0; i < 500; ++i) {
    contents += "word" + std::to_string(i) + " ";
  }
  ASSERT_TRUE(write_file(path, contents).is_ok());

  // One transient EIO on the second refill: the reader must resync to
  // the last good offset and deliver the same bytes as a clean run.
  FaultScope scope{plan_or_die("refill.eio=@2")};
  auto reader = ChunkedFileReader::open(path, 256);
  ASSERT_TRUE(reader.is_ok());
  std::string streamed;
  std::string fragment;
  const auto is_space = [](char c) { return c == ' ' || c == '\n'; };
  for (;;) {
    auto got = reader.value().next_fragment(1024, is_space, fragment);
    ASSERT_TRUE(got.is_ok()) << got.error().to_string();
    if (!got.value()) break;
    streamed += fragment;
  }
  EXPECT_EQ(streamed, contents);
  EXPECT_EQ(Injector::instance().injected(Site::kRefill, Kind::kEio), 1u);
}

TEST(FaultInjection, RefillRetryExhaustionPropagates) {
  TempDir dir{"fault"};
  const auto path = dir / "stream.txt";
  ASSERT_TRUE(write_file(path, std::string(4096, 'x')).is_ok());

  // kReadAttempts consecutive failures exhaust the retry loop.
  std::string spec = "refill.eio=@1";
  for (int step = 2; step <= ChunkedFileReader::kReadAttempts; ++step) {
    spec += "+" + std::to_string(step);
  }
  FaultScope scope{plan_or_die(spec)};
  auto reader = ChunkedFileReader::open(path, 256);
  ASSERT_TRUE(reader.is_ok());
  std::string fragment;
  const auto got = reader.value().next_fragment(
      1024, [](char c) { return c == ' '; }, fragment);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.error().code(), ErrorCode::kIoError);
}

TEST(FaultInjection, WatcherEventSuppressionDropsOneDelivery) {
  TempDir dir{"fault"};
  const auto path = dir / "watched.txt";
  ASSERT_TRUE(write_file_atomic(path, "v1").is_ok());

  std::vector<std::string> fired;
  fam::FileWatcher watcher{dir.path(), 1000ms,
                           [&](const std::filesystem::path& p) {
                             fired.push_back(p.filename().string());
                           }};
  FaultScope scope{plan_or_die("watch.suppress=@1")};
  ASSERT_TRUE(write_file_atomic(path, "v2").is_ok());
  watcher.poll_once();
  EXPECT_TRUE(fired.empty());  // the change was observed but not delivered
  EXPECT_EQ(Injector::instance().injected(Site::kWatchEvent,
                                          Kind::kSuppressEvent),
            1u);

  // The event is permanently lost (fingerprint already advanced) — only
  // a *new* change fires, which is why clients must re-send on timeout.
  watcher.poll_once();
  EXPECT_TRUE(fired.empty());
  ASSERT_TRUE(write_file_atomic(path, "v3").is_ok());
  watcher.poll_once();
  EXPECT_EQ(fired, std::vector<std::string>{"watched.txt"});
}

TEST(FaultInjection, PathFilterSparesOtherFilesWithoutConsumingSteps) {
  TempDir dir{"fault"};
  const auto bystander = dir / "bystander.txt";
  const auto target = dir / "target.txt";
  ASSERT_TRUE(write_file(bystander, "safe").is_ok());
  ASSERT_TRUE(write_file(target, "doomed").is_ok());

  FaultScope scope{plan_or_die("read.eio=@1,path_filter=target")};
  // Unfiltered traffic neither faults nor advances the step counter.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(read_file(bystander).is_ok());
  }
  const auto faulted = read_file(target);  // this IS step 1
  ASSERT_FALSE(faulted.is_ok());
  EXPECT_TRUE(read_file(target).is_ok());
}

TEST(FaultInjection, PathFilterAlternativesMatchAnySubstring) {
  // '|' separates alternatives ('，' cannot: ',' is the inline-spec
  // record separator) — one plan covers every shard mailbox.
  FaultPlan plan;
  plan.path_filter = "shard-0.log|shard-1.log|shard-2.log";
  EXPECT_TRUE(plan.path_matches("/log/shards/shard-0.log"));
  EXPECT_TRUE(plan.path_matches("/log/shards/shard-1.log"));
  EXPECT_TRUE(plan.path_matches("/log/shards/shard-2.log"));
  EXPECT_FALSE(plan.path_matches("/log/shards/shard-3.log"));
  EXPECT_FALSE(plan.path_matches("/log/echo.log"));
  // Empty filter matches everything; empty alternatives are ignored.
  plan.path_filter = "";
  EXPECT_TRUE(plan.path_matches("/anything"));
  plan.path_filter = "|shard-7|";
  EXPECT_TRUE(plan.path_matches("x/shard-7.log"));
  EXPECT_FALSE(plan.path_matches("x/shard-8.log"));
}

TEST(FaultInjection, PathFilterAlternativesGateInjection) {
  TempDir dir{"faultalt"};
  const auto a = dir / "shard-0.log";
  const auto b = dir / "shard-5.log";
  ASSERT_TRUE(write_file(a, "a").is_ok());
  ASSERT_TRUE(write_file(b, "b").is_ok());
  FaultScope scope{plan_or_die("read.eio=@1,path_filter=shard-0|shard-1")};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(read_file(b).is_ok());  // not an alternative: spared
  }
  EXPECT_FALSE(read_file(a).is_ok());  // step 1 fires here
  EXPECT_TRUE(read_file(a).is_ok());
}

TEST(FaultInjection, ProbabilityRulesReplayIdenticallyForASeed) {
  const auto run_sequence = [] {
    FaultScope scope{plan_or_die("seed=42,read.eio=0.3,read.torn=0.3")};
    std::vector<Kind> kinds;
    for (int i = 0; i < 200; ++i) {
      kinds.push_back(
          Injector::instance().decide(Site::kReadFile, "x").kind);
    }
    return kinds;
  };
  const auto first = run_sequence();
  const auto second = run_sequence();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), Kind::kNone),
            static_cast<std::ptrdiff_t>(first.size()))
      << "a 0.3 probability over 200 steps should have fired at least once";

  FaultScope other_seed{plan_or_die("seed=43,read.eio=0.3,read.torn=0.3")};
  std::vector<Kind> different;
  for (int i = 0; i < 200; ++i) {
    different.push_back(
        Injector::instance().decide(Site::kReadFile, "x").kind);
  }
  EXPECT_NE(first, different) << "distinct seeds must schedule differently";
}

TEST(FaultInjection, ScopeUninstallRestoresCleanIo) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  ASSERT_TRUE(write_file(path, "data").is_ok());
  {
    FaultScope scope{plan_or_die("read.eio=@1")};
    EXPECT_TRUE(Injector::instance().active());
    EXPECT_FALSE(read_file(path).is_ok());
  }
  EXPECT_FALSE(Injector::instance().active());
  EXPECT_TRUE(read_file(path).is_ok());
}

TEST(FaultInjection, InstallFromEnvParsesInlineSpecs) {
  ::setenv("MCSD_FAULTS", "read.eio=@1", 1);
  EXPECT_TRUE(install_from_env().is_ok());
  EXPECT_TRUE(Injector::instance().active());
  Injector::instance().uninstall();

  ::setenv("MCSD_FAULTS", "read.eio=not-a-number", 1);
  EXPECT_FALSE(install_from_env().is_ok());

  ::unsetenv("MCSD_FAULTS");
  EXPECT_TRUE(install_from_env().is_ok());
  EXPECT_FALSE(Injector::instance().active());
}

#if MCSD_OBS_ENABLED
TEST(FaultInjection, InjectionsMirrorIntoObsCounters) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  ASSERT_TRUE(write_file(path, "data").is_ok());
  const auto counter_value = [] {
    return obs::Registry::instance().counter("fault.injected_read_eio").value();
  };
  const std::uint64_t before = counter_value();
  FaultScope scope{plan_or_die("read.eio=@1")};
  ASSERT_FALSE(read_file(path).is_ok());
  EXPECT_EQ(counter_value(), before + 1);
}
#endif

TEST(FaultReport, TalliesSurfaceAsKeyValueEntries) {
  TempDir dir{"fault"};
  const auto path = dir / "victim.txt";
  ASSERT_TRUE(write_file(path, "data").is_ok());
  FaultScope scope{plan_or_die("read.eio=@1+2")};
  ASSERT_FALSE(read_file(path).is_ok());
  ASSERT_FALSE(read_file(path).is_ok());
  const KeyValueMap report = Injector::instance().injected_report();
  EXPECT_EQ(report.get_uint("fault.injected_read_eio").value(), 2u);
  EXPECT_EQ(Injector::instance().total_injected(), 2u);
}

}  // namespace
}  // namespace mcsd::fault
