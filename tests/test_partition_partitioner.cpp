#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "apps/datagen.hpp"
#include "core/random.hpp"
#include "core/units.hpp"

namespace mcsd::part {
namespace {

using namespace mcsd::literals;

std::string reassemble(const std::vector<Fragment>& fragments) {
  std::string out;
  for (const auto& f : fragments) out += f.text;
  return out;
}

TEST(Partition, EmptyInput) {
  EXPECT_TRUE(partition("", PartitionOptions{}).empty());
}

TEST(Partition, NativeModeSingleFragment) {
  PartitionOptions opts;  // partition_size == 0: "run in native way"
  const auto frags = partition("some input text", opts);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].text, "some input text");
  EXPECT_EQ(frags[0].index, 0u);
}

TEST(Partition, SizeLargerThanInputSingleFragment) {
  PartitionOptions opts;
  opts.partition_size = 1_GiB;
  const auto frags = partition("tiny", opts);
  EXPECT_EQ(frags.size(), 1u);
}

TEST(Partition, FragmentsAreIndexedAndOffset) {
  const std::string input = "aa bb cc dd ee ff gg hh ii jj";
  PartitionOptions opts;
  opts.partition_size = 7;
  const auto frags = partition(input, opts);
  ASSERT_GT(frags.size(), 1u);
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i].index, i);
    EXPECT_EQ(input.substr(frags[i].offset, frags[i].text.size()),
              frags[i].text);
  }
}

TEST(Partition, ConcatenationIsLossless) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  for (std::uint64_t size : {1u, 3u, 5u, 11u, 100u}) {
    PartitionOptions opts;
    opts.partition_size = size;
    EXPECT_EQ(reassemble(partition(input, opts)), input) << size;
  }
}

TEST(Partition, NoWordIsEverCut) {
  apps::CorpusOptions corpus;
  corpus.bytes = 32 * 1024;
  corpus.vocabulary = 100;
  const std::string input = apps::generate_corpus(corpus);
  PartitionOptions opts;
  opts.partition_size = 1000;
  const auto frags = partition(input, opts);
  ASSERT_GT(frags.size(), 10u);
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_TRUE(mcsd::is_default_delimiter(frags[i].text.back()));
    EXPECT_FALSE(mcsd::is_default_delimiter(frags[i + 1].text.front()));
  }
}

TEST(Partition, FragmentSizesNearTarget) {
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  const std::string input = apps::generate_corpus(corpus);
  PartitionOptions opts;
  opts.partition_size = 4096;
  const auto frags = partition(input, opts);
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_GE(frags[i].text.size(), 4096u);
    // Never more than target + longest word + delimiter run; corpus words
    // are <= 12 chars.
    EXPECT_LE(frags[i].text.size(), 4096u + 32u);
  }
}

TEST(Partition, NewlineDelimitedFragments) {
  apps::LineFileOptions lf;
  lf.bytes = 8 * 1024;
  const std::string input = apps::generate_line_file(lf);
  PartitionOptions opts;
  opts.partition_size = 512;
  opts.is_delimiter = newline_delimiter();
  const auto frags = partition(input, opts);
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_EQ(frags[i].text.back(), '\n');
  }
  EXPECT_EQ(reassemble(frags), input);
}

// Property sweep over random partition sizes.
class PartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionProperty, LosslessAndBoundaryAligned) {
  mcsd::Rng rng{GetParam()};
  apps::CorpusOptions corpus;
  corpus.bytes = 4 * 1024 + rng.next_below(16 * 1024);
  corpus.seed = GetParam() * 31 + 1;
  const std::string input = apps::generate_corpus(corpus);
  PartitionOptions opts;
  opts.partition_size = 64 + rng.next_below(2048);
  const auto frags = partition(input, opts);
  EXPECT_EQ(reassemble(frags), input);
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_TRUE(mcsd::is_default_delimiter(frags[i].text.back()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(AutoPartitionSize, ZeroWhenEverythingFits) {
  // 100 MiB input, 3x footprint, 1 GiB budget, 60% usable = 614 MiB:
  // 300 MiB fits -> native mode.
  EXPECT_EQ(auto_partition_size(100_MiB, 1_GiB, 3.0), 0u);
}

TEST(AutoPartitionSize, ZeroWhenNoBudget) {
  EXPECT_EQ(auto_partition_size(10_GiB, 0, 3.0), 0u);
}

TEST(AutoPartitionSize, FragmentFootprintFitsUsableBudget) {
  const std::uint64_t budget = 2_GiB;
  const double factor = 3.0;
  const auto size = auto_partition_size(4_GiB, budget, factor);
  ASSERT_GT(size, 0u);
  EXPECT_LE(static_cast<double>(size) * factor, 0.6 * static_cast<double>(budget));
  EXPECT_EQ(size % 1_MiB, 0u);  // MiB-rounded
}

TEST(AutoPartitionSize, NeverBelowOneMiB) {
  const auto size = auto_partition_size(1_GiB, 4_MiB, 3.0);
  EXPECT_EQ(size, 1_MiB);
}

TEST(AutoPartitionSize, PaperScale600MbPartition) {
  // The paper uses 600 MB partitions for WC on 2 GB nodes; our auto sizing
  // must land in that neighbourhood: usable = 0.6 * 2 GiB = 1.2 GiB,
  // fragment = 1.2 GiB / 3 = ~409 MiB.  Same order of magnitude.
  const auto size = auto_partition_size(2_GiB, 2_GiB, 3.0);
  EXPECT_GE(size, 300_MiB);
  EXPECT_LE(size, 700_MiB);
}

}  // namespace
}  // namespace mcsd::part
