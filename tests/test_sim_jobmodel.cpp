#include "cluster/jobmodel.hpp"

#include <gtest/gtest.h>

#include "cluster/profiles.hpp"
#include "cluster/testbed.hpp"
#include "core/units.hpp"

namespace mcsd::sim {
namespace {

using namespace mcsd::literals;

JobSpec wc_job(std::uint64_t bytes, ExecMode mode,
               std::uint64_t partition = 0) {
  JobSpec job;
  job.app = wordcount_profile();
  job.input_bytes = bytes;
  job.mode = mode;
  job.partition_size = partition;
  return job;
}

TEST(JobModel, SequentialIgnoresCores) {
  const NodeSpec duo = sd_node_duo();
  const NodeSpec quad = sd_node_quad();
  const auto on_duo = model_job(duo, wc_job(100_MiB, ExecMode::kSequential));
  // Same reference speed, more cores: sequential time only changes with
  // core_speed (quad core is 1.33x), never with core count.
  const auto on_single =
      model_job(sd_node_single(), wc_job(100_MiB, ExecMode::kSequential));
  EXPECT_DOUBLE_EQ(on_duo.total_seconds(), on_single.total_seconds());
  const auto on_quad = model_job(quad, wc_job(100_MiB, ExecMode::kSequential));
  EXPECT_LT(on_quad.compute_seconds, on_duo.compute_seconds);
}

TEST(JobModel, ParallelNativeFasterThanSequential) {
  const NodeSpec duo = sd_node_duo();
  const auto seq = model_job(duo, wc_job(200_MiB, ExecMode::kSequential));
  const auto par = model_job(duo, wc_job(200_MiB, ExecMode::kParallelNative));
  EXPECT_LT(par.total_seconds(), seq.total_seconds());
}

TEST(JobModel, QuadBeatsDuoOnParallelWork) {
  const auto duo = model_job(sd_node_duo(),
                             wc_job(500_MiB, ExecMode::kParallelNative));
  const auto quad = model_job(sd_node_quad(),
                              wc_job(500_MiB, ExecMode::kParallelNative));
  EXPECT_LT(quad.compute_seconds, duo.compute_seconds);
}

TEST(JobModel, NativeFailsAboveMemoryCeiling) {
  // 2 GiB node, ceiling 0.75 -> 1.5 GiB: the paper's ">1.5G overflows".
  const NodeSpec duo = sd_node_duo();
  const auto ok = model_job(duo, wc_job(1433_MiB, ExecMode::kParallelNative));
  EXPECT_TRUE(ok.completed);
  const auto fail =
      model_job(duo, wc_job(1640_MiB, ExecMode::kParallelNative));
  EXPECT_FALSE(fail.completed);
  EXPECT_NE(fail.failure.find("memory overflow"), std::string::npos);
}

TEST(JobModel, PartitionedSurvivesAboveCeiling) {
  const NodeSpec duo = sd_node_duo();
  const auto run = model_job(
      duo, wc_job(2048_MiB, ExecMode::kParallelPartitioned, 600_MiB));
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.fragments, 4u);  // ceil(2048 / 600)
  EXPECT_DOUBLE_EQ(run.thrash_seconds, 0.0);
}

TEST(JobModel, NativeThrashesWhenFootprintExceedsMemory) {
  // 1 GiB of WC input -> 3 GiB footprint on a 2 GiB node: thrash, while
  // the partitioned run (600 MiB fragments -> 1.8 GiB peak) stays clean.
  const NodeSpec duo = sd_node_duo();
  const auto native = model_job(duo, wc_job(1_GiB, ExecMode::kParallelNative));
  ASSERT_TRUE(native.completed);
  EXPECT_GT(native.thrash_seconds, 0.0);
  const auto part = model_job(
      duo, wc_job(1_GiB, ExecMode::kParallelPartitioned, 600_MiB));
  EXPECT_DOUBLE_EQ(part.thrash_seconds, 0.0);
  EXPECT_LT(part.total_seconds(), native.total_seconds());
}

TEST(JobModel, PartitionedAutoSizePicksFittingFragment) {
  const NodeSpec duo = sd_node_duo();
  const auto run = model_job(
      duo, wc_job(1_GiB, ExecMode::kParallelPartitioned, /*partition=*/0));
  EXPECT_TRUE(run.completed);
  EXPECT_GT(run.fragments, 1u);
  EXPECT_LE(run.peak_footprint_bytes, duo.usable_memory());
  EXPECT_DOUBLE_EQ(run.thrash_seconds, 0.0);
}

TEST(JobModel, PartitionOverheadGrowsWithFragmentCount) {
  const NodeSpec duo = sd_node_duo();
  const auto few = model_job(
      duo, wc_job(1_GiB, ExecMode::kParallelPartitioned, 512_MiB));
  const auto many = model_job(
      duo, wc_job(1_GiB, ExecMode::kParallelPartitioned, 64_MiB));
  EXPECT_GT(many.fragments, few.fragments);
  EXPECT_GT(many.overhead_seconds, few.overhead_seconds);
}

TEST(JobModel, NonPartitionableAppFallsBackToNative) {
  JobSpec job;
  job.app = matmul_profile();
  job.input_bytes = 256_MiB;
  job.mode = ExecMode::kParallelPartitioned;
  job.partition_size = 64_MiB;
  const auto run = model_job(host_node(), job);
  EXPECT_EQ(run.fragments, 1u);
  EXPECT_DOUBLE_EQ(run.overhead_seconds, 0.0);
}

TEST(JobModel, SmallInputsPartitionedEqualsNativeModulo) {
  // Below the memory threshold the two parallel modes should be close —
  // the paper: "when the data size is in a reasonable interval ... the
  // traditional parallel approach provides almost the same performance".
  const NodeSpec duo = sd_node_duo();
  const auto native =
      model_job(duo, wc_job(500_MiB, ExecMode::kParallelNative));
  const auto part = model_job(
      duo, wc_job(500_MiB, ExecMode::kParallelPartitioned, 600_MiB));
  EXPECT_NEAR(part.total_seconds() / native.total_seconds(), 1.0, 0.1);
}

TEST(JobModel, ReadOverlapOnlyForParallelModes) {
  const NodeSpec duo = sd_node_duo();
  EXPECT_FALSE(model_job(duo, wc_job(100_MiB, ExecMode::kSequential))
                   .read_overlaps_compute);
  EXPECT_TRUE(model_job(duo, wc_job(100_MiB, ExecMode::kParallelNative))
                  .read_overlaps_compute);
  EXPECT_TRUE(
      model_job(duo, wc_job(100_MiB, ExecMode::kParallelPartitioned, 50_MiB))
          .read_overlaps_compute);
}

TEST(JobModel, CostScalesWithInput) {
  const NodeSpec duo = sd_node_duo();
  const auto small =
      model_job(duo, wc_job(250_MiB, ExecMode::kParallelPartitioned, 100_MiB));
  const auto large =
      model_job(duo, wc_job(500_MiB, ExecMode::kParallelPartitioned, 100_MiB));
  EXPECT_GT(large.total_seconds(), small.total_seconds());
  EXPECT_LT(large.total_seconds(), 3.0 * small.total_seconds());  // ~linear
}

TEST(JobModel, AvailableMemoryParameterDrivesThrash) {
  const NodeSpec host = host_node();
  JobSpec job = wc_job(700_MiB, ExecMode::kParallelNative);
  const auto alone = model_job(host, job, host.usable_memory(), SwapModel{});
  const auto squeezed = model_job(host, job, 512_MiB, SwapModel{});
  EXPECT_GT(squeezed.thrash_seconds, alone.thrash_seconds);
}

}  // namespace
}  // namespace mcsd::sim
