// The rev-2 sharded mailbox dispatch layer (DESIGN.md §13): admission
// queue semantics, shard drain cursors, QoS accounting, and the
// end-to-end serving properties the channel promises — fair shard
// draining, coalesced responses byte-identical to solo runs, typed
// backpressure the client honours, and exactly-once replies under a
// multi-threaded hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/hash.hpp"
#include "core/io.hpp"
#include "core/stopwatch.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"
#include "fam/dispatch.hpp"
#include "fam/protocol.hpp"

namespace mcsd::fam {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// AdmissionQueue unit tests.

dispatch::PendingRequest make_pending(std::uint64_t client, std::uint64_t seq,
                                      std::string module = "m") {
  dispatch::PendingRequest pending;
  pending.request.type = RecordType::kRequest;
  pending.request.client_id = client;
  pending.request.seq = seq;
  pending.request.module = std::move(module);
  pending.admitted_at = std::chrono::steady_clock::now();
  return pending;
}

TEST(AdmissionQueue, AcceptThenPop) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(1, 1), "k"), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.depth(), 1u);
  const auto batch = q.pop();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->waiters.size(), 1u);
  EXPECT_EQ(batch->waiters[0].request.client_id, 1u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionQueue, SameKeyCoalescesIntoOneBatch) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(1, 1), "k"), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.push(make_pending(2, 1), "k"), dispatch::Admission::kCoalesced);
  EXPECT_EQ(q.push(make_pending(3, 1), "k"), dispatch::Admission::kCoalesced);
  EXPECT_EQ(q.depth(), 1u);
  const auto batch = q.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->waiters.size(), 3u);
}

TEST(AdmissionQueue, EmptyKeyNeverCoalesces) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(1, 1), ""), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.push(make_pending(2, 1), ""), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.depth(), 2u);
}

TEST(AdmissionQueue, BoundRejectsNewBatchesButAdmitsJoiners) {
  dispatch::AdmissionQueue q{1};
  EXPECT_EQ(q.push(make_pending(1, 1), "k"), dispatch::Admission::kAccepted);
  // A distinct batch would exceed the bound; a coalesced joiner costs no
  // extra module run and is admitted even at the bound.
  EXPECT_EQ(q.push(make_pending(2, 1), "other"),
            dispatch::Admission::kRejected);
  EXPECT_EQ(q.push(make_pending(3, 1), "k"), dispatch::Admission::kCoalesced);
  EXPECT_GE(q.retry_after_ms(), 1u);
}

TEST(AdmissionQueue, StaleSeqIsDropped) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(7, 5), ""), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.push(make_pending(7, 5), ""), dispatch::Admission::kStale);
  EXPECT_EQ(q.push(make_pending(7, 4), ""), dispatch::Admission::kStale);
  EXPECT_EQ(q.depth(), 1u);
}

TEST(AdmissionQueue, CompatibleResendSupersedesInPlace) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(7, 1), "k"), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.push(make_pending(7, 2), "k"),
            dispatch::Admission::kSuperseded);
  EXPECT_EQ(q.depth(), 1u);
  const auto batch = q.pop();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->waiters.size(), 1u);
  // The newer seq replaced the older request; the client only polls for
  // its newest seq.
  EXPECT_EQ(batch->waiters[0].request.seq, 2u);
}

TEST(AdmissionQueue, IncompatibleResendTombstonesOldWaiter) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(1, 1), "k"), dispatch::Admission::kAccepted);
  EXPECT_EQ(q.push(make_pending(7, 1), "k"), dispatch::Admission::kCoalesced);
  // Client 7 re-sends with different params: it must NOT mutate the
  // coalesced batch (whose other waiter expects the batch's canonical
  // params) — the old waiter is tombstoned and the new request queues
  // separately.
  EXPECT_EQ(q.push(make_pending(7, 2), "other"),
            dispatch::Admission::kSuperseded);
  EXPECT_EQ(q.depth(), 2u);
  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->waiters.size(), 2u);
  EXPECT_EQ(first->waiters[0].request.client_id, 1u);
  EXPECT_EQ(first->waiters[1].request.client_id, 0u);  // tombstone
  const auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->waiters.size(), 1u);
  EXPECT_EQ(second->waiters[0].request.client_id, 7u);
  EXPECT_EQ(second->waiters[0].request.seq, 2u);
}

TEST(AdmissionQueue, PoppedBatchIsClosedToCoalescing) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(1, 1), "k"), dispatch::Admission::kAccepted);
  ASSERT_TRUE(q.pop().has_value());
  // The run may already be in flight — a late identical request must get
  // its own batch, not join one that left the queue.
  EXPECT_EQ(q.push(make_pending(2, 1), "k"), dispatch::Admission::kAccepted);
  const auto batch = q.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->waiters.size(), 1u);
}

TEST(AdmissionQueue, CloseDrainsThenReturnsNullopt) {
  dispatch::AdmissionQueue q{4};
  EXPECT_EQ(q.push(make_pending(1, 1), ""), dispatch::Admission::kAccepted);
  q.close();
  EXPECT_EQ(q.push(make_pending(2, 1), ""), dispatch::Admission::kClosed);
  EXPECT_TRUE(q.pop().has_value());   // admitted before close still served
  EXPECT_FALSE(q.pop().has_value());  // then drained
}

// ---------------------------------------------------------------------
// drain_shard unit tests.

std::string request_frame(std::uint64_t client, std::uint64_t seq) {
  Record r;
  r.type = RecordType::kRequest;
  r.client_id = client;
  r.seq = seq;
  r.module = "m";
  return encode_record(r);
}

TEST(DrainShard, ReadsOnlyNewFrames) {
  TempDir dir{"drain"};
  dispatch::ShardDrain shard;
  shard.path = dir / "shard-0.log";
  ASSERT_TRUE(append_file(shard.path, request_frame(1, 1)).is_ok());
  ASSERT_TRUE(append_file(shard.path, request_frame(2, 1)).is_ok());
  EXPECT_EQ(dispatch::drain_shard(shard).size(), 2u);
  EXPECT_EQ(dispatch::drain_shard(shard).size(), 0u);  // cursor advanced
  ASSERT_TRUE(append_file(shard.path, request_frame(3, 1)).is_ok());
  const auto more = dispatch::drain_shard(shard);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].client_id, 3u);
  EXPECT_EQ(shard.drained, 3u);
  EXPECT_EQ(shard.corrupt, 0u);
}

TEST(DrainShard, TornTailIsRetriedNextPass) {
  TempDir dir{"draintorn"};
  dispatch::ShardDrain shard;
  shard.path = dir / "shard-0.log";
  const std::string whole = request_frame(2, 1);
  // A complete frame followed by half of the next one (no crc line yet —
  // the writer is mid-append).
  ASSERT_TRUE(append_file(shard.path, request_frame(1, 1)).is_ok());
  ASSERT_TRUE(append_file(shard.path, whole.substr(0, whole.size() / 2))
                  .is_ok());
  EXPECT_EQ(dispatch::drain_shard(shard).size(), 1u);
  // The cursor stopped at the frame boundary; completing the tail makes
  // the second frame whole and the next pass picks it up.
  ASSERT_TRUE(
      append_file(shard.path, whole.substr(whole.size() / 2)).is_ok());
  const auto rest = dispatch::drain_shard(shard);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].client_id, 2u);
  EXPECT_EQ(shard.corrupt, 0u);
}

TEST(DrainShard, CorruptFrameIsSkippedWithResync) {
  TempDir dir{"draincorrupt"};
  dispatch::ShardDrain shard;
  shard.path = dir / "shard-0.log";
  std::string bad = request_frame(2, 1);
  bad.replace(bad.find("mcsd.client"), 11, "mcsd.CLIENT");  // breaks the crc
  ASSERT_TRUE(append_file(shard.path, request_frame(1, 1)).is_ok());
  ASSERT_TRUE(append_file(shard.path, bad).is_ok());
  ASSERT_TRUE(append_file(shard.path, request_frame(3, 1)).is_ok());
  const auto drained = dispatch::drain_shard(shard);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].client_id, 1u);
  EXPECT_EQ(drained[1].client_id, 3u);
  EXPECT_EQ(shard.corrupt, 1u);
}

// ---------------------------------------------------------------------
// QosRegistry.

TEST(QosRegistry, PerTenantAccounting) {
  dispatch::QosRegistry qos;
  qos.record_accepted("acme");
  qos.record_accepted("acme");
  qos.record_rejected("acme");
  qos.record_coalesced("");  // "" folds into "default"
  qos.record_completed("acme", 1000);
  qos.record_completed("acme", 3000);
  const auto snapshot = qos.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  // std::map ordering: "acme" < "default".
  EXPECT_EQ(snapshot[0].tenant, "acme");
  EXPECT_EQ(snapshot[0].accepted, 2u);
  EXPECT_EQ(snapshot[0].rejected, 1u);
  EXPECT_EQ(snapshot[0].completed, 2u);
  EXPECT_EQ(snapshot[0].invoke_us.count, 2u);
  EXPECT_EQ(snapshot[0].invoke_us.sum, 4000u);
  EXPECT_EQ(snapshot[0].invoke_us.max, 3000u);
  EXPECT_EQ(snapshot[1].tenant, "default");
  EXPECT_EQ(snapshot[1].coalesced, 1u);
}

// ---------------------------------------------------------------------
// End-to-end serving over a real daemon.

std::shared_ptr<Module> echo_module() {
  return std::make_shared<FunctionModule>(
      "echo", [](const KeyValueMap& params) -> Result<KeyValueMap> {
        KeyValueMap out = params;
        out.set("echoed", "true");
        return out;
      });
}

/// A module whose invoke blocks until the test releases it — pins the
/// (single) batch worker so requests pile up in the admission queue
/// deterministically.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> entered{false};

  std::shared_ptr<Module> module() {
    return std::make_shared<FunctionModule>(
        "gate", [this](const KeyValueMap&) -> Result<KeyValueMap> {
          entered.store(true);
          std::unique_lock lock{mutex};
          cv.wait(lock, [this] { return open; });
          KeyValueMap out;
          out.set("gated", "true");
          return out;
        });
  }
  void release() {
    std::lock_guard lock{mutex};
    open = true;
    cv.notify_all();
  }
  void await_entered() {
    while (!entered.load()) std::this_thread::sleep_for(1ms);
  }
};

/// Deterministic cacheable module: result is a pure function of the
/// input file and params, so coalesced responses can be compared
/// byte-for-byte against a solo run.
std::shared_ptr<Module> digest_module() {
  auto module = std::make_shared<FunctionModule>(
      "digest", [](const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto input = params.get("input");
        if (!input) return Error{ErrorCode::kInvalidArgument, "need input"};
        auto text = read_file(*input);
        if (!text) return text.error();
        KeyValueMap out;
        out.set_uint("bytes", text.value().size());
        out.set_uint("crc", fnv1a(text.value()));
        if (const auto tag = params.get("tag")) out.set("tag", *tag);
        return out;
      });
  module->set_cache_inputs(
      [](const KeyValueMap& params)
          -> std::optional<std::vector<fs::path>> {
        const auto input = params.get("input");
        if (!input) return std::nullopt;
        return std::vector<fs::path>{fs::path{*input}};
      });
  return module;
}

TEST(ShardedServe, EveryShardIsDrainedNoneStarve) {
  TempDir dir{"fairness"};
  DaemonOptions dopts{dir.path(), 1ms, 2};
  dopts.channel_shards = 4;
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  // Hand-pick one client id per shard (the client normally hashes its
  // own id) and append a request frame directly into each mailbox — the
  // drainer must serve all four, regardless of which shard they sit on.
  std::vector<std::uint64_t> clients(4, 0);
  for (std::uint64_t id = 1; id < 1000; ++id) {
    clients[shard_for_client(id, 4)] = id;
  }
  for (std::size_t shard = 0; shard < 4; ++shard) {
    ASSERT_NE(clients[shard], 0u) << "no id hashed to shard " << shard;
    Record request;
    request.type = RecordType::kRequest;
    request.seq = 1;
    request.module = "echo";
    request.client_id = clients[shard];
    request.payload.set("shard", std::to_string(shard));
    ASSERT_TRUE(append_file(dir / kShardDirName / shard_file_name(shard),
                            encode_record(request))
                    .is_ok());
  }

  // Every client gets exactly its own reply.
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const fs::path reply =
        dir / kReplyDirName / reply_file_name(clients[shard]);
    Stopwatch waited;
    for (;;) {
      if (auto contents = read_file(reply)) {
        if (auto record = decode_record(contents.value())) {
          ASSERT_EQ(record.value().type, RecordType::kResponse);
          EXPECT_TRUE(record.value().ok);
          EXPECT_EQ(record.value().payload.get("shard"),
                    std::to_string(shard));
          break;
        }
      }
      ASSERT_LT(waited.elapsed(), 10s) << "shard " << shard << " starved";
      std::this_thread::sleep_for(1ms);
    }
  }
  daemon.stop();
  const auto stats = daemon.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(stats[shard].drained, 1u) << "shard " << shard;
    EXPECT_EQ(stats[shard].corrupt, 0u);
  }
  EXPECT_EQ(daemon.requests_handled(), 4u);
}

TEST(ShardedServe, CoalescedResponsesAreByteIdenticalToSoloRun) {
  TempDir dir{"coalesce"};
  const fs::path corpus = dir / "corpus.txt";
  ASSERT_TRUE(write_file(corpus, "the quick brown fox\n").is_ok());

  Gate gate;
  DaemonOptions dopts{dir.path(), 1ms, 1};  // single batch worker
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(gate.module()).is_ok());
  ASSERT_TRUE(daemon.preload(digest_module()).is_ok());
  daemon.start();

  Client client{ClientOptions{dir.path(), 1ms, 30'000ms}};

  // The solo baseline: a cold run with nothing else in flight.
  KeyValueMap params;
  params.set("input", corpus.string());
  params.set("tag", "solo");
  const auto solo = client.invoke("digest", params);
  ASSERT_TRUE(solo.is_ok()) << solo.error().to_string();

  // Pin the only batch worker, then fire three identical requests: the
  // first becomes a queued batch, the other two coalesce into it.
  std::thread blocker{[&] { (void)client.invoke("gate", KeyValueMap{}); }};
  gate.await_entered();

  KeyValueMap repeat;
  repeat.set("input", corpus.string());
  repeat.set("tag", "coalesced");
  std::vector<std::string> payloads(3);
  std::vector<InvokeInfo> infos(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      const auto result = client.invoke("digest", repeat, &infos[i]);
      ASSERT_TRUE(result.is_ok()) << result.error().to_string();
      payloads[i] = result.value().serialize();
    });
  }
  // All three must be queued (1 accepted + 2 coalesced) before the
  // worker is released, or they would be served one by one.
  Stopwatch waited;
  while (daemon.coalesced() < 2) {
    ASSERT_LT(waited.elapsed(), 10s)
        << "coalesced=" << daemon.coalesced();
    std::this_thread::sleep_for(1ms);
  }
  gate.release();
  for (auto& t : threads) t.join();
  blocker.join();
  daemon.stop();

  EXPECT_EQ(daemon.coalesced(), 2u);
  for (int i = 0; i < 3; ++i) {
    // Byte-identical across all coalesced waiters...
    EXPECT_EQ(payloads[i], payloads[0]);
    // ...and each waiter knows how many requests shared the run.
    EXPECT_EQ(infos[i].waiters, 3u);
    EXPECT_TRUE(infos[i].sharded);
  }
  // ...and byte-identical to the solo run, modulo the tag the test
  // varied to keep the solo run out of the coalesced batch's key.
  auto strip_tag = [](const KeyValueMap& payload) {
    KeyValueMap copy;
    for (const auto& [key, value] : payload.entries()) {
      if (key != "tag") copy.set(key, value);
    }
    return copy.serialize();
  };
  auto coalesced0 = KeyValueMap::parse(payloads[0]);
  ASSERT_TRUE(coalesced0.is_ok());
  EXPECT_EQ(strip_tag(coalesced0.value()), strip_tag(solo.value()));
}

TEST(ShardedServe, BackpressureRoundTrip) {
  TempDir dir{"backpressure"};
  Gate gate;
  DaemonOptions dopts{dir.path(), 1ms, 1};
  dopts.admission_queue_limit = 1;
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(gate.module()).is_ok());
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  Client client{ClientOptions{dir.path(), 1ms, 30'000ms}};

  // Occupy the single worker, then fill the one queue slot.
  std::thread blocker{[&] { (void)client.invoke("gate", KeyValueMap{}); }};
  gate.await_entered();
  KeyValueMap filler_params;
  filler_params.set("who", "filler");
  std::thread filler{[&] {
    const auto r = client.invoke("echo", filler_params);
    EXPECT_TRUE(r.is_ok());
  }};
  Stopwatch queue_wait;
  // accepted() == 1 is just the blocker (already popped by the worker);
  // only accepted() == 2 proves the filler holds the single queue slot.
  // Sending earlier races the filler for that slot, and the loser parks
  // behind the gate until its timeout.
  while (daemon.accepted() < 2) {
    ASSERT_LT(queue_wait.elapsed(), 10s);
    std::this_thread::sleep_for(1ms);
  }

  // The next distinct request must bounce with a typed retry-after; the
  // client backs off and retries until the queue drains.
  KeyValueMap bounced_params;
  bounced_params.set("who", "bounced");
  InvokeInfo info;
  std::thread bounced{[&] {
    const auto r = client.invoke("echo", bounced_params, &info);
    ASSERT_TRUE(r.is_ok()) << r.error().to_string();
    EXPECT_EQ(r.value().get("who"), "bounced");
  }};
  Stopwatch reject_wait;
  while (daemon.rejected() < 1) {
    ASSERT_LT(reject_wait.elapsed(), 10s);
    std::this_thread::sleep_for(1ms);
  }
  gate.release();
  bounced.join();
  filler.join();
  blocker.join();
  daemon.stop();

  EXPECT_GE(daemon.rejected(), 1u);
  EXPECT_GE(info.backpressure_retries, 1);
  const auto qos = daemon.qos_snapshot();
  ASSERT_EQ(qos.size(), 1u);
  EXPECT_EQ(qos[0].tenant, "default");
  EXPECT_GE(qos[0].rejected, 1u);
}

TEST(ShardedServe, BackpressureBudgetExhaustionReturnsUnavailable) {
  TempDir dir{"bpbudget"};
  Gate gate;
  DaemonOptions dopts{dir.path(), 1ms, 1};
  dopts.admission_queue_limit = 1;
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(gate.module()).is_ok());
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  Client patient{ClientOptions{dir.path(), 1ms, 30'000ms}};
  std::thread blocker{[&] { (void)patient.invoke("gate", KeyValueMap{}); }};
  gate.await_entered();
  KeyValueMap filler_params;
  filler_params.set("who", "filler");
  std::thread filler{[&] { (void)patient.invoke("echo", filler_params); }};
  Stopwatch queue_wait;
  // Wait for BOTH admissions (blocker + filler): only then is the single
  // queue slot provably held by the filler.  Sending the impatient
  // request earlier races the filler for the slot, and if it wins it
  // parks behind the gate until its own timeout instead of bouncing.
  while (daemon.accepted() < 2) {
    ASSERT_LT(queue_wait.elapsed(), 10s);
    std::this_thread::sleep_for(1ms);
  }

  ClientOptions impatient_opts{dir.path(), 1ms, 30'000ms};
  impatient_opts.max_backpressure_retries = 0;  // first rejection is final
  Client impatient{impatient_opts};
  KeyValueMap params;
  params.set("who", "giveup");
  const auto result = impatient.invoke("echo", params);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnavailable);

  gate.release();
  filler.join();
  blocker.join();
  daemon.stop();
}

TEST(ShardedServe, EightThreadHammerExactlyOnce) {
  TempDir dir{"hammer"};
  DaemonOptions dopts{dir.path(), 1ms, 4};
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  Client client{ClientOptions{dir.path(), 1ms, 30'000ms}};
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        KeyValueMap params;
        params.set("who", std::to_string(t) + ":" + std::to_string(i));
        InvokeInfo info;
        const auto result = client.invoke("echo", params, &info);
        ASSERT_TRUE(result.is_ok()) << result.error().to_string();
        // The reply is the one for *this* request — not another
        // thread's, not a stale one.
        EXPECT_EQ(result.value().get("who"),
                  std::to_string(t) + ":" + std::to_string(i));
        EXPECT_TRUE(info.sharded);
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  daemon.stop();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  // Exactly one response per request: nothing lost (every invoke
  // returned) and nothing duplicated (handled == invoked; a duplicated
  // reply would show up as reply_conflicts or extra handled counts).
  EXPECT_EQ(daemon.requests_handled(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(daemon.reply_conflicts(), 0u);
  EXPECT_EQ(daemon.deadline_shed(), 0u);
  std::uint64_t drained = 0;
  for (const auto& shard : daemon.shard_stats()) {
    drained += shard.drained;
    EXPECT_EQ(shard.corrupt, 0u);
  }
  EXPECT_EQ(drained, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ShardedServe, ShardsDisabledFallsBackToLegacy) {
  TempDir dir{"legacyonly"};
  DaemonOptions dopts{dir.path(), 1ms, 1};
  dopts.channel_shards = 0;
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();
  EXPECT_FALSE(fs::exists(dir / kManifestFileName));

  Client client{ClientOptions{dir.path(), 1ms, 30'000ms}};
  KeyValueMap params;
  params.set("who", "legacy");
  InvokeInfo info;
  const auto result = client.invoke("echo", params, &info);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_FALSE(info.sharded);
  daemon.stop();
}

TEST(ShardedServe, TenantLabelReachesQosAccounting) {
  TempDir dir{"tenantqos"};
  DaemonOptions dopts{dir.path(), 1ms, 2};
  Daemon daemon{dopts};
  ASSERT_TRUE(daemon.preload(echo_module()).is_ok());
  daemon.start();

  ClientOptions copts{dir.path(), 1ms, 30'000ms};
  copts.tenant = "acme";
  Client client{copts};
  ASSERT_TRUE(client.invoke("echo", KeyValueMap{}).is_ok());
  daemon.stop();

  const auto qos = daemon.qos_snapshot();
  ASSERT_EQ(qos.size(), 1u);
  EXPECT_EQ(qos[0].tenant, "acme");
  EXPECT_EQ(qos[0].accepted, 1u);
  EXPECT_EQ(qos[0].completed, 1u);
  EXPECT_EQ(qos[0].invoke_us.count, 1u);
}

}  // namespace
}  // namespace mcsd::fam
