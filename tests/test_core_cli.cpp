#include "core/cli.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace mcsd {
namespace {

using namespace mcsd::literals;

CliParser make_parser() {
  CliParser cli;
  cli.add_flag("verbose", "chatty output");
  cli.add_option("size", "500M", "input size");
  cli.add_option("workers", "2", "worker threads");
  return cli;
}

Status parse(CliParser& cli, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}).is_ok());
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_EQ(cli.option("size"), "500M");
  EXPECT_EQ(cli.option_int("workers").value(), 2);
}

TEST(Cli, EqualsSyntax) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--size=1.25G", "--workers=8"}).is_ok());
  EXPECT_EQ(cli.option_bytes("size").value(), 1_GiB + 256_MiB);
  EXPECT_EQ(cli.option_int("workers").value(), 8);
}

TEST(Cli, SpaceSyntax) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--size", "2G"}).is_ok());
  EXPECT_EQ(cli.option_bytes("size").value(), 2_GiB);
}

TEST(Cli, FlagPresence) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose"}).is_ok());
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, FlagRejectsValue) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--verbose=yes"}).is_ok());
}

TEST(Cli, UnknownOptionErrors) {
  CliParser cli = make_parser();
  const Status s = parse(cli, {"--nope"});
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.error().message().find("--nope"), std::string::npos);
}

TEST(Cli, MissingValueErrors) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--size"}).is_ok());
}

TEST(Cli, PositionalCollected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"input.txt", "--verbose", "more"}).is_ok());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(Cli, HelpReportsUsage) {
  CliParser cli = make_parser();
  const Status s = parse(cli, {"--help"});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kUnavailable);
  EXPECT_NE(s.error().message().find("--size"), std::string::npos);
  EXPECT_NE(s.error().message().find("chatty output"), std::string::npos);
}

TEST(Cli, BadIntReported) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--workers=lots"}).is_ok());
  EXPECT_FALSE(cli.option_int("workers").is_ok());
}

TEST(Cli, ReparseResetsState) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose", "pos"}).is_ok());
  ASSERT_TRUE(parse(cli, {}).is_ok());
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_TRUE(cli.positional().empty());
}

}  // namespace
}  // namespace mcsd
