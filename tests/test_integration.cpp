// Cross-module integration: the full McSD stack end to end.
//
// A "host" writes its corpus into the SD node's shared folder, then
// offloads word count / string match through smartFAM; the module on the
// "storage node" runs the partition-enabled MapReduce engine and returns
// results through the log-file channel — Fig. 4/5 of the paper as a test.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>

#include "apps/datagen.hpp"
#include "core/strings.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/io.hpp"
#include "core/units.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"
#include "mapreduce/engine.hpp"
#include "partition/outofcore.hpp"

namespace mcsd {
namespace {

using namespace std::chrono_literals;
using namespace mcsd::literals;

/// The word-count module preloaded into the McSD node: reads the input
/// file from the shared folder, runs partition-enabled MapReduce with the
/// requested fragment size, and returns the top words plus totals.
std::shared_ptr<fam::Module> make_wordcount_module(std::size_t workers) {
  return std::make_shared<fam::FunctionModule>(
      "wordcount",
      [workers](const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto input = params.get("input");
        if (!input) {
          return Error{ErrorCode::kInvalidArgument, "missing 'input'"};
        }
        auto text = read_file(*input);
        if (!text) return text.error();
        const auto partition_size = static_cast<std::uint64_t>(
            params.get_int_or("partition_size", 0));

        mr::Options opts;
        opts.num_workers = workers;
        mr::Engine<apps::WordCountSpec> engine{opts};
        part::PartitionOptions popts;
        popts.partition_size = partition_size;
        part::TextJob<apps::WordCountSpec> job;
        job.merge = [](auto outputs) {
          return part::sum_merge<std::string, std::uint64_t>(
              std::move(outputs));
        };
        part::OutOfCoreMetrics metrics;
        auto counts = part::run_partitioned(engine, apps::WordCountSpec{},
                                            text.value(), popts, job,
                                            &metrics);
        apps::sort_by_frequency_desc(counts);

        KeyValueMap out;
        out.set_uint("unique_words", counts.size());
        out.set_uint("total_words", apps::total_occurrences(counts));
        out.set_uint("fragments", metrics.fragments);
        const std::size_t top_n = std::min<std::size_t>(counts.size(), 5);
        for (std::size_t i = 0; i < top_n; ++i) {
          out.set("top" + std::to_string(i), counts[i].key);
          out.set_uint("top" + std::to_string(i) + "_count", counts[i].value);
        }
        return out;
      });
}

std::shared_ptr<fam::Module> make_stringmatch_module(std::size_t workers) {
  return std::make_shared<fam::FunctionModule>(
      "stringmatch",
      [workers](const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto input = params.get("input");
        const auto keys_csv = params.get("keys");
        if (!input || !keys_csv) {
          return Error{ErrorCode::kInvalidArgument, "missing input/keys"};
        }
        auto text = read_file(*input);
        if (!text) return text.error();
        apps::StringMatchSpec spec;
        for (const auto k : split(*keys_csv, ',')) {
          spec.keys.emplace_back(k);
        }
        mr::Options opts;
        opts.num_workers = workers;
        mr::Engine<apps::StringMatchSpec> engine{opts};
        const auto pairs =
            engine.run(spec, mr::split_lines(text.value(), 64 * 1024));
        KeyValueMap out;
        out.set_uint("matches", pairs.size());
        return out;
      });
}

struct StackFixture : ::testing::Test {
  StackFixture()
      : daemon(fam::DaemonOptions{shared.path(), 1ms, 2}),
        client(fam::ClientOptions{shared.path(), 1ms, 30'000ms}) {}

  TempDir shared{"mcsd-int"};  // stands in for the NFS export
  fam::Daemon daemon;
  fam::Client client;
};

TEST_F(StackFixture, OffloadedWordCountMatchesLocalReference) {
  apps::CorpusOptions corpus;
  corpus.bytes = 256 * 1024;
  corpus.vocabulary = 400;
  const std::string text = apps::generate_corpus(corpus);
  const auto input_path = shared / "corpus.txt";
  ASSERT_TRUE(write_file(input_path, text).is_ok());

  ASSERT_TRUE(daemon.preload(make_wordcount_module(2)).is_ok());
  daemon.start();

  KeyValueMap params;
  params.set("input", input_path.string());
  params.set_int("partition_size", 32 * 1024);
  const auto result = client.invoke("wordcount", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();

  auto reference = apps::wordcount_sequential(text);
  apps::sort_by_frequency_desc(reference);
  EXPECT_EQ(result.value().get_uint("unique_words").value(), reference.size());
  EXPECT_EQ(result.value().get_uint("total_words").value(),
            apps::total_occurrences(reference));
  EXPECT_GE(result.value().get_uint("fragments").value(), 8u);
  EXPECT_EQ(result.value().get("top0"), reference[0].key);
  EXPECT_EQ(result.value().get_uint("top0_count").value(),
            reference[0].value);
}

TEST_F(StackFixture, OffloadedWordCountNativeMode) {
  // partition_size = 0: "the program will run in native way".
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  ASSERT_TRUE(write_file(shared / "c.txt", text).is_ok());
  ASSERT_TRUE(daemon.preload(make_wordcount_module(2)).is_ok());
  daemon.start();

  KeyValueMap params;
  params.set("input", (shared / "c.txt").string());
  const auto result = client.invoke("wordcount", params);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().get_uint("fragments").value(), 1u);
}

TEST_F(StackFixture, OffloadedStringMatchCountsPlantedKeys) {
  apps::LineFileOptions lf;
  lf.bytes = 128 * 1024;
  std::string text = apps::generate_line_file(lf);
  apps::KeysOptions ko;
  ko.count = 4;
  ko.plant_rate = 0.04;
  const auto keys = apps::generate_and_plant_keys(text, ko);
  ASSERT_TRUE(write_file(shared / "encrypt.txt", text).is_ok());

  ASSERT_TRUE(daemon.preload(make_stringmatch_module(2)).is_ok());
  daemon.start();

  std::string keys_csv;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) keys_csv += ',';
    keys_csv += keys[i];
  }
  KeyValueMap params;
  params.set("input", (shared / "encrypt.txt").string());
  params.set("keys", keys_csv);
  const auto result = client.invoke("stringmatch", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_uint("matches").value(),
            apps::stringmatch_sequential(text, keys).size());
}

TEST_F(StackFixture, MissingInputFileReportsErrorThroughChannel) {
  ASSERT_TRUE(daemon.preload(make_wordcount_module(1)).is_ok());
  daemon.start();
  KeyValueMap params;
  params.set("input", (shared / "does-not-exist").string());
  const auto result = client.invoke("wordcount", params);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.error().message().find("cannot open"), std::string::npos);
}

TEST_F(StackFixture, BothModulesServeInterleavedRequests) {
  apps::CorpusOptions corpus;
  corpus.bytes = 32 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  ASSERT_TRUE(write_file(shared / "c.txt", text).is_ok());
  std::string lines = "the QQZZW token\nplain line\n";
  ASSERT_TRUE(write_file(shared / "l.txt", lines).is_ok());

  ASSERT_TRUE(daemon.preload(make_wordcount_module(1)).is_ok());
  ASSERT_TRUE(daemon.preload(make_stringmatch_module(1)).is_ok());
  daemon.start();

  for (int round = 0; round < 3; ++round) {
    KeyValueMap wc_params;
    wc_params.set("input", (shared / "c.txt").string());
    ASSERT_TRUE(client.invoke("wordcount", wc_params).is_ok());

    KeyValueMap sm_params;
    sm_params.set("input", (shared / "l.txt").string());
    sm_params.set("keys", "QQZZW");
    const auto sm = client.invoke("stringmatch", sm_params);
    ASSERT_TRUE(sm.is_ok());
    EXPECT_EQ(sm.value().get_uint("matches").value(), 1u);
  }
  EXPECT_EQ(daemon.requests_handled(), 6u);
}

}  // namespace
}  // namespace mcsd
