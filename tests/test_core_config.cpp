#include "core/config.hpp"

#include <gtest/gtest.h>

namespace mcsd {
namespace {

TEST(EscapeValue, RoundTripsSpecials) {
  const std::string raw = "a=b\nc%d\re";
  const std::string escaped = escape_value(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('='), std::string::npos);
  EXPECT_EQ(unescape_value(escaped).value(), raw);
}

TEST(EscapeValue, PlainTextUnchanged) {
  EXPECT_EQ(escape_value("hello world"), "hello world");
}

TEST(UnescapeValue, RejectsTruncatedEscape) {
  EXPECT_FALSE(unescape_value("abc%4").is_ok());
  EXPECT_FALSE(unescape_value("abc%").is_ok());
}

TEST(UnescapeValue, RejectsBadHex) {
  EXPECT_FALSE(unescape_value("%zz").is_ok());
}

TEST(KeyValueMap, ParseBasics) {
  auto map = KeyValueMap::parse("a=1\nb=two\n# comment\n\nc=3\n").value();
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.get("a"), "1");
  EXPECT_EQ(map.get("b"), "two");
  EXPECT_EQ(map.get("c"), "3");
  EXPECT_FALSE(map.get("d").has_value());
}

TEST(KeyValueMap, ParseRejectsMissingEquals) {
  EXPECT_FALSE(KeyValueMap::parse("novalue\n").is_ok());
}

TEST(KeyValueMap, ParseRejectsBadKey) {
  EXPECT_FALSE(KeyValueMap::parse("=x\n").is_ok());
  EXPECT_FALSE(KeyValueMap::parse("a b=x\n").is_ok());
}

TEST(KeyValueMap, SerializeIsSortedAndDeterministic) {
  KeyValueMap map;
  map.set("zeta", "1");
  map.set("alpha", "2");
  const std::string out = map.serialize();
  EXPECT_EQ(out, "alpha=2\nzeta=1\n");
  EXPECT_EQ(KeyValueMap::parse(out).value(), map);
}

TEST(KeyValueMap, ValueWhitespaceSurvivesRoundTrip) {
  // Regression: parse used to trim whole lines, eating value padding.
  KeyValueMap map;
  map.set("padded", "  spaces at both ends\t ");
  map.set("tabby", "\t");
  const auto parsed = KeyValueMap::parse(map.serialize()).value();
  EXPECT_EQ(parsed.get("padded"), "  spaces at both ends\t ");
  EXPECT_EQ(parsed.get("tabby"), "\t");
}

TEST(KeyValueMap, CrlfLineEndingsTolerated) {
  const auto map = KeyValueMap::parse("a=1\r\nb=two\r\n").value();
  EXPECT_EQ(map.get("a"), "1");
  EXPECT_EQ(map.get("b"), "two");
}

TEST(KeyValueMap, KeyPaddingToleratedValueVerbatim) {
  const auto map = KeyValueMap::parse("  key  = value \n").value();
  EXPECT_EQ(map.get("key"), " value ");
}

TEST(KeyValueMap, RoundTripWithEscapes) {
  KeyValueMap map;
  map.set("payload", "multi\nline = tricky % stuff");
  const auto parsed = KeyValueMap::parse(map.serialize()).value();
  EXPECT_EQ(parsed.get("payload"), "multi\nline = tricky % stuff");
}

TEST(KeyValueMap, TypedAccessors) {
  KeyValueMap map;
  map.set_int("i", -42);
  map.set_uint("u", 18'000'000'000'000ULL);
  map.set_double("d", 2.5);
  map.set_bool("t", true);
  map.set_bool("f", false);
  EXPECT_EQ(map.get_int("i").value(), -42);
  EXPECT_EQ(map.get_uint("u").value(), 18'000'000'000'000ULL);
  EXPECT_DOUBLE_EQ(map.get_double("d").value(), 2.5);
  EXPECT_TRUE(map.get_bool("t").value());
  EXPECT_FALSE(map.get_bool("f").value());
}

TEST(KeyValueMap, TypedAccessorErrors) {
  KeyValueMap map;
  map.set("x", "notanumber");
  EXPECT_EQ(map.get_int("x").error().code(), ErrorCode::kProtocolError);
  EXPECT_EQ(map.get_int("missing").error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(map.get_bool("x").error().code(), ErrorCode::kProtocolError);
}

TEST(KeyValueMap, GetOrFallbacks) {
  KeyValueMap map;
  map.set_int("present", 7);
  EXPECT_EQ(map.get_int_or("present", 1), 7);
  EXPECT_EQ(map.get_int_or("absent", 1), 1);
  EXPECT_EQ(map.get_or("absent", "dflt"), "dflt");
}

}  // namespace
}  // namespace mcsd
