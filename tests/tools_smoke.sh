#!/bin/sh
# Two-process smoke test of the deployable tools: mcsd_daemon serves a
# folder, mcsd_invoke offloads word count and select against it.
set -eu

BIN_DIR="$1"
WORK=$(mktemp -d)
trap 'kill $DPID 2>/dev/null || true; rm -rf "$WORK"' EXIT

printf 'hello world hello mcsd world hello\n' > "$WORK/corpus.txt"
printf 'a,1\nb,2\nc,3\n' > "$WORK/t.csv"

# Hold the daemon's stdin open with a fifo so it keeps serving.
mkfifo "$WORK/ctl"
"$BIN_DIR/mcsd_daemon" --dir "$WORK" --workers 2 < "$WORK/ctl" &
DPID=$!
exec 3>"$WORK/ctl"  # keep the write end open

# Wait for the module log files to appear (daemon ready).
for _ in $(seq 1 100); do
  [ -f "$WORK/wordcount.log" ] && break
  sleep 0.05
done
[ -f "$WORK/wordcount.log" ] || { echo "daemon never came up"; exit 1; }

OUT=$("$BIN_DIR/mcsd_invoke" --dir "$WORK" --module wordcount \
      "input=$WORK/corpus.txt" top=1)
echo "$OUT" | grep -q 'top0=hello' || { echo "bad wc: $OUT"; exit 1; }
echo "$OUT" | grep -q 'total=6' || { echo "bad total: $OUT"; exit 1; }

OUT=$("$BIN_DIR/mcsd_invoke" --dir "$WORK" --module select \
      "input=$WORK/t.csv" column=1 op=gt value=1 "out=$WORK/r.csv")
echo "$OUT" | grep -q 'rows_out=2' || { echo "bad select: $OUT"; exit 1; }
grep -q '^b,2$' "$WORK/r.csv" || { echo "bad select output"; exit 1; }

# Unknown module fails cleanly.
if "$BIN_DIR/mcsd_invoke" --dir "$WORK" --module ghost 2>/dev/null; then
  echo "ghost module unexpectedly succeeded"; exit 1
fi

echo "tools smoke test passed"
