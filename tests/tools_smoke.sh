#!/bin/sh
# Two-process smoke test of the deployable tools: mcsd_daemon serves a
# folder, mcsd_invoke offloads word count and select against it.
set -eu

BIN_DIR="$1"
WORK=$(mktemp -d)
trap 'kill $DPID 2>/dev/null || true; rm -rf "$WORK"' EXIT

printf 'hello world hello mcsd world hello\n' > "$WORK/corpus.txt"
printf 'a,1\nb,2\nc,3\n' > "$WORK/t.csv"

# Daemon options come from a config file (--dir stays a flag override);
# hold the daemon's stdin open with a fifo so it keeps serving.
printf 'poll_interval_ms=2\ndispatch_threads=2\n' > "$WORK/daemon.conf"
mkfifo "$WORK/ctl"
"$BIN_DIR/mcsd_daemon" --dir "$WORK" --config "$WORK/daemon.conf" \
    --trace-out "$WORK/daemon-trace.json" < "$WORK/ctl" &
DPID=$!
exec 3>"$WORK/ctl"  # keep the write end open

# Wait for the module log files to appear (daemon ready).
for _ in $(seq 1 100); do
  [ -f "$WORK/wordcount.log" ] && break
  sleep 0.05
done
[ -f "$WORK/wordcount.log" ] || { echo "daemon never came up"; exit 1; }

OUT=$("$BIN_DIR/mcsd_invoke" --dir "$WORK" --module wordcount \
      "input=$WORK/corpus.txt" top=1)
echo "$OUT" | grep -q 'top0=hello' || { echo "bad wc: $OUT"; exit 1; }
echo "$OUT" | grep -q 'total=6' || { echo "bad total: $OUT"; exit 1; }

OUT=$("$BIN_DIR/mcsd_invoke" --dir "$WORK" --module select \
      "input=$WORK/t.csv" column=1 op=gt value=1 "out=$WORK/r.csv")
echo "$OUT" | grep -q 'rows_out=2' || { echo "bad select: $OUT"; exit 1; }
grep -q '^b,2$' "$WORK/r.csv" || { echo "bad select output"; exit 1; }

# Unknown module fails cleanly.
if "$BIN_DIR/mcsd_invoke" --dir "$WORK" --module ghost 2>/dev/null; then
  echo "ghost module unexpectedly succeeded"; exit 1
fi

# A bad config key fails loudly (typos must not run defaults).
printf 'pol_interval_ms=2\n' > "$WORK/bad.conf"
if "$BIN_DIR/mcsd_daemon" --dir "$WORK" --config "$WORK/bad.conf" \
    < /dev/null 2>/dev/null; then
  echo "bad config unexpectedly accepted"; exit 1
fi

# Clean daemon shutdown writes the trace requested via --trace-out.
printf 'q' >&3 || true
exec 3>&-
wait $DPID 2>/dev/null || true
[ -f "$WORK/daemon-trace.json" ] || { echo "daemon wrote no trace"; exit 1; }
grep -q 'traceEvents' "$WORK/daemon-trace.json" || {
  echo "daemon trace malformed"; exit 1;
}

echo "tools smoke test passed"
