#include "core/strings.hpp"

#include <gtest/gtest.h>

namespace mcsd {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparatorYieldsTrailingEmpty) {
  const auto parts = split("x,y,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitWhitespace, DropsEmptyFields) {
  const auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespace, AllWhitespaceYieldsNothing) {
  EXPECT_TRUE(split_whitespace(" \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("HeLLo 123"), "hello 123");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(CharClasses, Delimiters) {
  EXPECT_TRUE(is_default_delimiter(' '));
  EXPECT_TRUE(is_default_delimiter('\n'));
  EXPECT_TRUE(is_default_delimiter('\t'));
  EXPECT_TRUE(is_default_delimiter('\r'));
  EXPECT_FALSE(is_default_delimiter('a'));
  EXPECT_FALSE(is_default_delimiter('.'));
}

TEST(CharClasses, WordChars) {
  EXPECT_TRUE(is_word_char('a'));
  EXPECT_TRUE(is_word_char('Z'));
  EXPECT_TRUE(is_word_char('0'));
  EXPECT_FALSE(is_word_char(' '));
  EXPECT_FALSE(is_word_char('-'));
}

}  // namespace
}  // namespace mcsd
