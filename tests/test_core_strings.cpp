#include "core/strings.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/hash.hpp"

namespace mcsd {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparatorYieldsTrailingEmpty) {
  const auto parts = split("x,y,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitWhitespace, DropsEmptyFields) {
  const auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespace, AllWhitespaceYieldsNothing) {
  EXPECT_TRUE(split_whitespace(" \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("HeLLo 123"), "hello 123");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(CharClasses, Delimiters) {
  EXPECT_TRUE(is_default_delimiter(' '));
  EXPECT_TRUE(is_default_delimiter('\n'));
  EXPECT_TRUE(is_default_delimiter('\t'));
  EXPECT_TRUE(is_default_delimiter('\r'));
  EXPECT_FALSE(is_default_delimiter('a'));
  EXPECT_FALSE(is_default_delimiter('.'));
}

TEST(CharClasses, WordChars) {
  EXPECT_TRUE(is_word_char('a'));
  EXPECT_TRUE(is_word_char('Z'));
  EXPECT_TRUE(is_word_char('0'));
  EXPECT_FALSE(is_word_char(' '));
  EXPECT_FALSE(is_word_char('-'));
}

// ---------------------------------------------------------------------------
// SWAR property tests: every vectorised helper byte-identical to its
// scalar reference over random and adversarial inputs.
// ---------------------------------------------------------------------------

std::vector<std::string> words_scalar(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !is_word_char(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && is_word_char(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> words_swar(std::string_view text) {
  std::vector<std::string> out;
  for_each_word(text, [&](std::string_view token) {
    out.emplace_back(token);
  });
  return out;
}

std::string lower_scalar(std::string_view text) {
  std::string out{text};
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 0x20);
  }
  return out;
}

std::string lower_swar(std::string_view text) {
  std::vector<char> buf;
  to_lower_ascii(text, buf);
  return std::string{buf.data(), buf.size()};
}

TEST(SwarClasses, WordClassMask8MatchesScalarForEveryByte) {
  for (int b = 0; b < 256; ++b) {
    const auto byte = static_cast<std::uint64_t>(b);
    // Place the byte in every lane position; neighbours are 0x00.
    for (unsigned lane = 0; lane < 8; ++lane) {
      const std::uint64_t block = byte << (8 * lane);
      const std::uint64_t mask = swar::word_class_mask8(block);
      const bool expect = is_word_char(static_cast<char>(b));
      EXPECT_EQ((mask >> (8 * lane + 7)) & 1, expect ? 1u : 0u)
          << "byte=" << b << " lane=" << lane;
    }
  }
}

TEST(SwarClasses, Movemask8GathersEveryLaneSubset) {
  for (unsigned subset = 0; subset < 256; ++subset) {
    std::uint64_t lane_mask = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
      if (subset & (1u << lane)) {
        lane_mask |= std::uint64_t{0x80} << (8 * lane);
      }
    }
    EXPECT_EQ(swar::movemask8(lane_mask), subset);
  }
}

TEST(ForEachWord, MatchesScalarOnRandomByteSoup) {
  // Full byte range (including >= 0x80: UTF-8 continuation bytes must
  // classify as delimiters), lengths straddling the 64-byte stripe size.
  std::mt19937 rng{0xC0FFEEu};
  std::uniform_int_distribution<int> byte_dist{0, 255};
  for (int round = 0; round < 200; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist{0, 300};
    std::string text(len_dist(rng), '\0');
    for (char& c : text) c = static_cast<char>(byte_dist(rng));
    EXPECT_EQ(words_swar(text), words_scalar(text)) << "round=" << round;
  }
}

TEST(ForEachWord, MatchesScalarOnWordLikeCorpus) {
  std::mt19937 rng{1234u};
  std::uniform_int_distribution<int> word_len{1, 20};
  std::uniform_int_distribution<int> ch{0, 25};
  std::string text;
  for (int w = 0; w < 4'000; ++w) {
    const int len = word_len(rng);
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>((w % 3 == 0 ? 'A' : 'a') + ch(rng));
    }
    text += (w % 7 == 0) ? '\n' : ' ';
  }
  EXPECT_EQ(words_swar(text), words_scalar(text));
}

TEST(ForEachWord, TokensSpanningStripeBoundaries) {
  // Adversarial: maximal runs placed so they open, span, and close
  // 64-byte stripes, including runs longer than several stripes.
  for (std::size_t word_len :
       {1u, 7u, 63u, 64u, 65u, 127u, 128u, 129u, 200u, 1000u}) {
    for (std::size_t lead : {0u, 1u, 62u, 63u, 64u, 65u}) {
      std::string text(lead, ' ');
      text += std::string(word_len, 'x');
      text += ' ';
      text += std::string(word_len, 'y');
      EXPECT_EQ(words_swar(text), words_scalar(text))
          << "word_len=" << word_len << " lead=" << lead;
    }
  }
  // No trailing delimiter: the final token must still close.
  const std::string open_tail = std::string(70, ' ') + std::string(130, 'z');
  EXPECT_EQ(words_swar(open_tail), words_scalar(open_tail));
  // Degenerate stripes.
  EXPECT_TRUE(words_swar("").empty());
  EXPECT_TRUE(words_swar(std::string(256, ' ')).empty());
  const std::string all_word(256, 'a');
  EXPECT_EQ(words_swar(all_word), words_scalar(all_word));
}

TEST(ToLowerAscii, MatchesScalarOnAllBytes) {
  std::string all;
  for (int b = 0; b < 256; ++b) all += static_cast<char>(b);
  all += all;  // exercise the 8-byte loop across repeats
  EXPECT_EQ(lower_swar(all), lower_scalar(all));
}

TEST(ToLowerAscii, MatchesScalarOnRandomInputsIncludingTails) {
  std::mt19937 rng{77u};
  std::uniform_int_distribution<int> byte_dist{0, 255};
  for (std::size_t len = 0; len < 40; ++len) {
    std::string text(len, '\0');
    for (char& c : text) c = static_cast<char>(byte_dist(rng));
    EXPECT_EQ(lower_swar(text), lower_scalar(text)) << "len=" << len;
  }
}

TEST(Fnv1aX4, LanesMatchScalarHashes) {
  // The batched emit path reuses fnv1a_x4 output for routing, probes and
  // grouping, so every lane must equal fnv1a() exactly — including
  // length-skewed and empty lanes.
  std::mt19937 rng{42u};
  std::uniform_int_distribution<int> byte_dist{0, 255};
  std::uniform_int_distribution<std::size_t> len_dist{0, 40};
  for (int round = 0; round < 200; ++round) {
    std::string backing[4];
    std::string_view keys[4];
    for (int l = 0; l < 4; ++l) {
      backing[l].resize(len_dist(rng));
      for (char& c : backing[l]) c = static_cast<char>(byte_dist(rng));
      keys[l] = backing[l];
    }
    std::uint64_t out[4];
    fnv1a_x4(keys, out);
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(out[l], fnv1a(keys[l])) << "round=" << round << " lane=" << l;
    }
  }
}

TEST(ForEachLine, SharedIteratorReportsAbsoluteOffsets) {
  std::vector<std::pair<std::string, std::uint64_t>> lines;
  for_each_line("ab\nc\n\nlast", 100,
                [&](std::string_view line, std::uint64_t off) {
                  lines.emplace_back(std::string{line}, off);
                });
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], (std::pair<std::string, std::uint64_t>{"ab", 100}));
  EXPECT_EQ(lines[1], (std::pair<std::string, std::uint64_t>{"c", 103}));
  EXPECT_EQ(lines[2], (std::pair<std::string, std::uint64_t>{"", 105}));
  EXPECT_EQ(lines[3], (std::pair<std::string, std::uint64_t>{"last", 106}));
}

}  // namespace
}  // namespace mcsd
