#include "cluster/des.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "cluster/models.hpp"
#include "cluster/smb.hpp"

namespace mcsd::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersMaySchedule) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.schedule_in(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run(/*until=*/5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Resource, SingleJobRunsAtFullCapacity) {
  Simulator sim;
  Resource disk{sim, "disk", 100.0};  // 100 units/s
  SimTime finished = -1.0;
  disk.submit(250.0, [&] { finished = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(finished, 2.5);
}

TEST(Resource, TwoEqualJobsShareFairly) {
  Simulator sim;
  Resource link{sim, "link", 100.0};
  SimTime f1 = -1.0;
  SimTime f2 = -1.0;
  link.submit(100.0, [&] { f1 = sim.now(); });
  link.submit(100.0, [&] { f2 = sim.now(); });
  sim.run();
  // Each receives 50 units/s: both finish at t = 2.
  EXPECT_DOUBLE_EQ(f1, 2.0);
  EXPECT_DOUBLE_EQ(f2, 2.0);
}

TEST(Resource, ShortJobLeavesLongJobSpeedsUp) {
  Simulator sim;
  Resource link{sim, "link", 100.0};
  SimTime f_short = -1.0;
  SimTime f_long = -1.0;
  link.submit(50.0, [&] { f_short = sim.now(); });
  link.submit(200.0, [&] { f_long = sim.now(); });
  sim.run();
  // Shared until the short job's 50 units drain at 50 u/s: t = 1.
  EXPECT_DOUBLE_EQ(f_short, 1.0);
  // Long job then has 150 left at 100 u/s: t = 1 + 1.5.
  EXPECT_DOUBLE_EQ(f_long, 2.5);
}

TEST(Resource, LateArrivalSlowsInFlightJob) {
  Simulator sim;
  Resource link{sim, "link", 100.0};
  SimTime f1 = -1.0;
  SimTime f2 = -1.0;
  link.submit(100.0, [&] { f1 = sim.now(); });
  sim.schedule_at(0.5, [&] { link.submit(100.0, [&] { f2 = sim.now(); }); });
  sim.run();
  // Job 1: 50 units alone (0.5 s), then 50 at half rate (1.0 s) -> 1.5.
  EXPECT_NEAR(f1, 1.5, 1e-9);
  // Job 2: 50 at half rate (0.5..1.5), then 50 alone (0.5 s) -> 2.0.
  EXPECT_NEAR(f2, 2.0, 1e-9);
}

TEST(Resource, ZeroWorkCompletesImmediately) {
  Simulator sim;
  Resource r{sim, "r", 1.0};
  bool done = false;
  r.submit(0.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Resource, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW((Resource{sim, "r", 0.0}), std::invalid_argument);
  Resource r{sim, "r", 1.0};
  EXPECT_THROW(r.submit(-1.0, nullptr), std::invalid_argument);
}

TEST(Resource, ZeroWorkCompletesViaEventQueueNotSynchronously) {
  // The completion must be dispatched through the event queue at `now`,
  // never from inside submit() itself — a synchronous callback would
  // reenter the caller and scramble completion order.
  Simulator sim;
  Resource r{sim, "r", 1.0};
  bool done = false;
  sim.schedule_at(1.0, [&] {
    r.submit(0.0, [&] { done = true; });
    EXPECT_FALSE(done) << "completion fired inside submit()";
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Resource, SimultaneousCompletionsFinishInSubmissionOrder) {
  Simulator sim;
  Resource r{sim, "r", 10.0};
  std::vector<int> order;
  r.submit(10.0, [&] { order.push_back(0); });
  r.submit(10.0, [&] { order.push_back(1); });
  r.submit(10.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Resource, CompletionMaySubmitMoreWork) {
  Simulator sim;
  Resource r{sim, "r", 10.0};
  SimTime second_finish = -1.0;
  r.submit(10.0, [&] { r.submit(20.0, [&] { second_finish = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(second_finish, 3.0);
}

TEST(Resource, SetCapacityMidFlightBanksProgress) {
  Simulator sim;
  Resource r{sim, "r", 100.0};
  SimTime finish = -1.0;
  r.submit(100.0, [&] { finish = sim.now(); });
  // Halve the rate at t = 0.5: 50 units done, 50 left at 50 u/s -> 1.5.
  sim.schedule_at(0.5, [&] { r.set_capacity(50.0); });
  sim.run();
  EXPECT_NEAR(finish, 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(r.capacity(), 50.0);
}

TEST(Resource, SetCapacityRejectsNonPositive) {
  Simulator sim;
  Resource r{sim, "r", 1.0};
  EXPECT_THROW(r.set_capacity(0.0), std::invalid_argument);
  EXPECT_THROW(r.set_capacity(-2.0), std::invalid_argument);
}

TEST(Resource, OutstandingWorkTracksBacklog) {
  Simulator sim;
  Resource r{sim, "r", 10.0};
  r.submit(30.0, nullptr);
  r.submit(10.0, nullptr);
  EXPECT_NEAR(r.outstanding_work(), 40.0, 1e-9);
  sim.schedule_at(1.0, [&] {
    // 10 units served in the first second, shared 5 + 5.
    EXPECT_NEAR(r.outstanding_work(), 30.0, 1e-9);
  });
  sim.run();
  EXPECT_NEAR(r.outstanding_work(), 0.0, 1e-9);
}

TEST(Resource, CompletionOrderIsDeterministicAcrossRepeats) {
  // Byte-identical replay: the same submissions produce the same
  // completion sequence, including ties resolved by submission order.
  auto run_once = [] {
    Simulator sim;
    Resource r{sim, "r", 7.0};
    std::vector<std::pair<int, SimTime>> log;
    for (int i = 0; i < 16; ++i) {
      const double work = static_cast<double>((i * 5) % 8) + 1.0;
      sim.schedule_at(0.1 * i, [&r, &log, &sim, i, work] {
        r.submit(work, [&log, &sim, i] { log.emplace_back(i, sim.now()); });
      });
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Resource, ServedWorkAccounting) {
  Simulator sim;
  Resource r{sim, "r", 10.0};
  r.submit(30.0, nullptr);
  r.submit(20.0, nullptr);
  sim.run();
  EXPECT_NEAR(r.work_served(), 50.0, 1e-9);
}

// --- validation: DES vs the analytic background-utilisation model -------

TEST(DesValidation, BulkTransferUnderBackgroundLoadMatchesAnalytic) {
  // Analytic model: a bulk NFS transfer on a link with background
  // utilisation u completes in bytes / (bw * (1 - u)).  DES: the same
  // link as a processor-sharing resource, background load as a Poisson-
  // ish (here: uniform deterministic) stream of small messages keeping
  // the link u busy.  The two should agree within a few percent.
  const double link_mibps = 100.0;
  const double message_mib = 0.064;       // 64 KiB messages
  const double message_interval = 0.004;  // -> 16 MiB/s offered = u 0.16
  const double bulk_mib = 200.0;

  Simulator sim;
  Resource link{sim, "link", link_mibps};

  // Background traffic generator: one message every interval, forever
  // (stopped once the bulk completes by checking a flag).
  bool bulk_done = false;
  SimTime bulk_finish = -1.0;
  std::function<void()> pump = [&] {
    if (bulk_done) return;
    link.submit(message_mib, nullptr);
    sim.schedule_in(message_interval, pump);
  };
  sim.schedule_at(0.0, pump);
  link.submit(bulk_mib, [&] {
    bulk_done = true;
    bulk_finish = sim.now();
  });
  sim.run();

  const double utilization = message_mib / message_interval / link_mibps;
  const double analytic = bulk_mib / (link_mibps * (1.0 - utilization));
  ASSERT_GT(bulk_finish, 0.0);
  EXPECT_NEAR(bulk_finish / analytic, 1.0, 0.05)
      << "DES " << bulk_finish << "s vs analytic " << analytic << "s";
}

TEST(DesValidation, SmbModelUtilizationMatchesDes) {
  // The SmbTraffic helper turns message parameters into a utilisation
  // fraction; feed the same parameters through the DES and compare the
  // measured link busy share.
  SmbConfig cfg;
  cfg.messages_per_second = 500.0;
  cfg.message_bytes = 32 * 1024;
  cfg.overhead_bytes = 0;
  const SmbTraffic smb{cfg};
  NicModel nic;  // 1 GbE

  Simulator sim;
  Resource link{sim, "link", nic.raw_mibps()};
  const double horizon = 10.0;
  const double interval = 1.0 / cfg.messages_per_second;
  const double message_mib =
      static_cast<double>(cfg.message_bytes) / (1024.0 * 1024.0);
  std::function<void()> pump = [&] {
    if (sim.now() >= horizon) return;
    link.submit(message_mib, nullptr);
    sim.schedule_in(interval, pump);
  };
  sim.schedule_at(0.0, pump);
  sim.run();

  const double des_utilization =
      link.work_served() / (nic.raw_mibps() * sim.now());
  EXPECT_NEAR(des_utilization, smb.link_utilization(nic), 0.01);
}

}  // namespace
}  // namespace mcsd::sim
