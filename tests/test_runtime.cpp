// McsdRuntime end to end: host-local execution, forced offload to one or
// several live storage-node daemons, capability-weighted sharding, and
// merge correctness against the sequential references.
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>

#include "apps/datagen.hpp"
#include "apps/modules.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/io.hpp"
#include "fam/daemon.hpp"

namespace mcsd::rt {
namespace {

using namespace std::chrono_literals;

std::map<std::string, std::uint64_t> to_map(
    const std::vector<apps::WordCount>& counts) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& kv : counts) m[kv.key] = kv.value;
  return m;
}

/// A live McSD endpoint: shared folder + daemon with standard modules.
struct LiveSd {
  explicit LiveSd(std::size_t cores)
      : daemon(fam::DaemonOptions{dir.path(), 1ms,
                                  std::max<std::size_t>(cores, 1)}) {
    EXPECT_TRUE(apps::preload_standard_modules(
                    [this](auto m) { return daemon.preload(std::move(m)); },
                    cores)
                    .is_ok());
    daemon.start();
  }

  TempDir dir{"rt-sd"};
  fam::Daemon daemon;
};

struct RuntimeFixture : ::testing::Test {
  RuntimeFixture() {
    sd1 = std::make_unique<LiveSd>(2);
    sd2 = std::make_unique<LiveSd>(4);

    RuntimeOptions opts;
    opts.host_workers = 2;
    opts.invoke_timeout = 30'000ms;
    opts.storage_nodes = {
        SdEndpoint{sd1->dir.path(), SiteSpec{2, 1.0, 0.9}},
        SdEndpoint{sd2->dir.path(), SiteSpec{4, 1.0, 0.9}},
    };
    runtime = std::make_unique<McsdRuntime>(std::move(opts));

    apps::CorpusOptions corpus;
    corpus.bytes = 128 * 1024;
    corpus.vocabulary = 300;
    text = apps::generate_corpus(corpus);
  }

  std::unique_ptr<LiveSd> sd1;
  std::unique_ptr<LiveSd> sd2;
  std::unique_ptr<McsdRuntime> runtime;
  std::string text;
};

TEST_F(RuntimeFixture, HostPlacementMatchesReference) {
  runtime->force_placement(Placement::kHost);
  const auto result = runtime->word_count(text);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().report.placement, Placement::kHost);
  EXPECT_EQ(result.value().report.storage_nodes_used, 0u);
  EXPECT_EQ(to_map(result.value().counts),
            to_map(apps::wordcount_sequential(text)));
}

TEST_F(RuntimeFixture, OffloadedWordCountMatchesReference) {
  runtime->force_placement(Placement::kStorageNode);
  const auto result = runtime->word_count(text);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().report.placement, Placement::kStorageNode);
  EXPECT_EQ(result.value().report.storage_nodes_used, 2u);
  EXPECT_EQ(to_map(result.value().counts),
            to_map(apps::wordcount_sequential(text)));
  // Both daemons actually served work.
  EXPECT_GE(sd1->daemon.requests_handled(), 1u);
  EXPECT_GE(sd2->daemon.requests_handled(), 1u);
}

TEST_F(RuntimeFixture, OffloadShardsWeightedByCapability) {
  runtime->force_placement(Placement::kStorageNode);
  ASSERT_TRUE(runtime->word_count(text).is_ok());
  // The quad endpoint (sd2) must have received the larger shard; we
  // can't see shard bytes directly, but both served exactly one request
  // and the merged result was correct — capability weighting is covered
  // by the shard_text unit expectations below via the outcome.
  EXPECT_EQ(sd1->daemon.requests_handled(), 1u);
  EXPECT_EQ(sd2->daemon.requests_handled(), 1u);
}

TEST_F(RuntimeFixture, OffloadedStringMatchMatchesReference) {
  apps::LineFileOptions lf;
  lf.bytes = 96 * 1024;
  std::string lines = apps::generate_line_file(lf);
  apps::KeysOptions ko;
  ko.count = 4;
  ko.plant_rate = 0.05;
  const auto keys = apps::generate_and_plant_keys(lines, ko);

  runtime->force_placement(Placement::kStorageNode);
  const auto result = runtime->string_match(lines, keys);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().matches,
            apps::stringmatch_sequential(lines, keys).size());
  EXPECT_EQ(result.value().report.storage_nodes_used, 2u);
}

TEST_F(RuntimeFixture, HostStringMatchMatchesReference) {
  apps::LineFileOptions lf;
  lf.bytes = 32 * 1024;
  std::string lines = apps::generate_line_file(lf);
  apps::KeysOptions ko;
  ko.plant_rate = 0.05;
  const auto keys = apps::generate_and_plant_keys(lines, ko);

  runtime->force_placement(Placement::kHost);
  const auto result = runtime->string_match(lines, keys);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().matches,
            apps::stringmatch_sequential(lines, keys).size());
}

TEST_F(RuntimeFixture, StringMatchRejectsEmptyKeys) {
  EXPECT_FALSE(runtime->string_match(text, {}).is_ok());
}

TEST_F(RuntimeFixture, AutoPlacementUsesPolicy) {
  runtime->placement_auto();
  const auto result = runtime->word_count(text);
  ASSERT_TRUE(result.is_ok());
  // 128 KiB of WC: transfer is negligible, host is faster — the policy
  // must keep it local.
  EXPECT_EQ(result.value().report.placement, Placement::kHost);
  EXPECT_GT(result.value().report.predicted_host_seconds, 0.0);
  EXPECT_GT(result.value().report.predicted_offload_seconds, 0.0);
}

TEST_F(RuntimeFixture, ReportCarriesElapsed) {
  runtime->force_placement(Placement::kStorageNode);
  const auto result = runtime->word_count(text);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result.value().report.elapsed_seconds, 0.0);
}

TEST_F(RuntimeFixture, ShardFilesAreCleanedUp) {
  runtime->force_placement(Placement::kStorageNode);
  ASSERT_TRUE(runtime->word_count(text).is_ok());
  // Only the module log files remain in each shared folder, apart from
  // the daemon's rev-2 channel fixtures (shard mailboxes, reply files,
  // manifest) which live for the daemon's lifetime.
  for (const auto* sd : {sd1.get(), sd2.get()}) {
    for (const auto& entry :
         std::filesystem::directory_iterator{sd->dir.path()}) {
      const auto name = entry.path().filename().string();
      if (name == fam::kShardDirName || name == fam::kReplyDirName ||
          name == fam::kManifestFileName) {
        continue;
      }
      EXPECT_EQ(entry.path().extension(), ".log") << entry.path();
    }
  }
}

TEST(RuntimeFaultTolerance, DeadNodeShardRecomputesOnHost) {
  // One live endpoint, one whose daemon never starts: the runtime must
  // recover the dead shard on the host and still produce a correct,
  // complete result (the paper's future-work fault-tolerance item).
  LiveSd alive{2};
  TempDir dead_dir{"rt-dead"};
  {
    // Preload creates the log file so the client accepts the endpoint,
    // but no daemon is started — every invoke against it times out.
    fam::Daemon ghost{fam::DaemonOptions{dead_dir.path(), 1ms, 1}};
    ASSERT_TRUE(apps::preload_standard_modules(
                    [&ghost](auto m) { return ghost.preload(std::move(m)); },
                    2)
                    .is_ok());
  }  // ghost destroyed without ever starting

  RuntimeOptions opts;
  opts.host_workers = 2;
  opts.invoke_timeout = 300ms;  // fail the dead node fast
  opts.fallback_to_host = true;
  opts.storage_nodes = {
      SdEndpoint{alive.dir.path(), SiteSpec{2, 1.0, 0.9}},
      SdEndpoint{dead_dir.path(), SiteSpec{2, 1.0, 0.9}},
  };
  McsdRuntime runtime{std::move(opts)};
  runtime.force_placement(Placement::kStorageNode);

  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  const auto result = runtime.word_count(text);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().report.shards_recovered, 1u);
  EXPECT_EQ(to_map(result.value().counts),
            to_map(apps::wordcount_sequential(text)));
}

TEST(RuntimeFaultTolerance, DisabledFallbackPropagatesFailure) {
  LiveSd alive{2};
  TempDir dead_dir{"rt-dead"};
  {
    fam::Daemon ghost{fam::DaemonOptions{dead_dir.path(), 1ms, 1}};
    ASSERT_TRUE(apps::preload_standard_modules(
                    [&ghost](auto m) { return ghost.preload(std::move(m)); },
                    2)
                    .is_ok());
  }

  RuntimeOptions opts;
  opts.host_workers = 1;
  opts.invoke_timeout = 300ms;
  opts.fallback_to_host = false;
  opts.storage_nodes = {
      SdEndpoint{alive.dir.path(), SiteSpec{2, 1.0, 0.9}},
      SdEndpoint{dead_dir.path(), SiteSpec{2, 1.0, 0.9}},
  };
  McsdRuntime runtime{std::move(opts)};
  runtime.force_placement(Placement::kStorageNode);

  apps::CorpusOptions corpus;
  corpus.bytes = 32 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  const auto result = runtime.word_count(text);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
}

TEST(RuntimeNoStorage, EverythingRunsOnHost) {
  RuntimeOptions opts;
  opts.host_workers = 2;
  McsdRuntime runtime{std::move(opts)};
  EXPECT_EQ(runtime.storage_node_count(), 0u);

  apps::CorpusOptions corpus;
  corpus.bytes = 16 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  // Even when forced towards storage, no endpoints means host execution.
  runtime.force_placement(Placement::kStorageNode);
  const auto result = runtime.word_count(text);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().report.placement, Placement::kHost);
}

TEST(RuntimeSingleNode, OffloadUsesTheOnlyEndpoint) {
  LiveSd sd{2};
  RuntimeOptions opts;
  opts.host_workers = 1;
  opts.invoke_timeout = 30'000ms;
  opts.storage_nodes = {SdEndpoint{sd.dir.path(), SiteSpec{2, 1.0, 0.9}}};
  McsdRuntime runtime{std::move(opts)};
  runtime.force_placement(Placement::kStorageNode);

  apps::CorpusOptions corpus;
  corpus.bytes = 32 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  const auto result = runtime.word_count(text);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().report.storage_nodes_used, 1u);
  EXPECT_EQ(to_map(result.value().counts),
            to_map(apps::wordcount_sequential(text)));
}

}  // namespace
}  // namespace mcsd::rt
