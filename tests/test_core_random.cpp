#include "core/random.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/hash.hpp"

namespace mcsd {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a{1234};
  SplitMix64 b{1234};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a{99};
  Rng b{99};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);  // all buckets hit in 1000 draws
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng{5};
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, RoughUniformity) {
  Rng rng{2026};
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(ZipfSampler, RankZeroMostFrequent) {
  ZipfSampler zipf{100, 1.1};
  Rng rng{3};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50'000; ++i) {
    ++counts[zipf.sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSampler, AllRanksReachable) {
  ZipfSampler zipf{5, 0.5};
  Rng rng{4};
  std::set<std::size_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    seen.insert(zipf.sample(rng));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Hash, Fnv1aKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("word"), fnv1a("word"));
}

TEST(Hash, Mix64ScramblesSequentialKeys) {
  // Adjacent integers must land in different low bits most of the time —
  // reduce-bucket spread for matrix coordinates depends on it.
  int same_bucket = 0;
  constexpr int kBuckets = 8;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (mix64(i) % kBuckets == mix64(i + 1) % kBuckets) ++same_bucket;
  }
  EXPECT_LT(same_bucket, 1000 / kBuckets * 2);
}

TEST(Hash, KeyHashDispatch) {
  EXPECT_EQ(KeyHash<std::string>{}(std::string{"abc"}), fnv1a("abc"));
  EXPECT_EQ(KeyHash<std::uint64_t>{}(42u), mix64(42u));
}

}  // namespace
}  // namespace mcsd
