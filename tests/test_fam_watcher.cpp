#include "fam/watcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "core/io.hpp"

namespace mcsd::fam {
namespace {

using namespace std::chrono_literals;

struct ChangeLog {
  std::mutex mutex;
  std::vector<std::string> files;

  ChangeCallback callback() {
    return [this](const std::filesystem::path& p) {
      std::lock_guard lock{mutex};
      files.push_back(p.filename().string());
    };
  }

  std::vector<std::string> snapshot() {
    std::lock_guard lock{mutex};
    return files;
  }
};

TEST(FileWatcher, DetectsNewFile) {
  TempDir dir{"fam"};
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  ASSERT_TRUE(write_file(dir / "a.log", "hello").is_ok());
  watcher.poll_once();
  const auto seen = log.snapshot();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "a.log");
}

TEST(FileWatcher, DetectsContentChangeSameSize) {
  // Same size, same (coarse) mtime second: the content hash must catch it.
  TempDir dir{"fam"};
  ASSERT_TRUE(write_file(dir / "a.log", "AAAA").is_ok());
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  watcher.poll_once();
  EXPECT_TRUE(log.snapshot().empty());  // pre-existing state: no replay
  ASSERT_TRUE(write_file(dir / "a.log", "BBBB").is_ok());
  watcher.poll_once();
  EXPECT_EQ(log.snapshot().size(), 1u);
}

TEST(FileWatcher, NoEventWithoutChange) {
  TempDir dir{"fam"};
  ASSERT_TRUE(write_file(dir / "a.log", "x").is_ok());
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  watcher.poll_once();
  watcher.poll_once();
  watcher.poll_once();
  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_EQ(watcher.events_fired(), 0u);
}

TEST(FileWatcher, DoesNotReplayPreexistingFiles) {
  TempDir dir{"fam"};
  ASSERT_TRUE(write_file(dir / "old1.log", "1").is_ok());
  ASSERT_TRUE(write_file(dir / "old2.log", "2").is_ok());
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  watcher.poll_once();
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(FileWatcher, TracksMultipleFiles) {
  TempDir dir{"fam"};
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  ASSERT_TRUE(write_file(dir / "x.log", "1").is_ok());
  ASSERT_TRUE(write_file(dir / "y.log", "2").is_ok());
  watcher.poll_once();
  auto seen = log.snapshot();
  std::set<std::string> names{seen.begin(), seen.end()};
  EXPECT_EQ(names, (std::set<std::string>{"x.log", "y.log"}));
}

TEST(FileWatcher, BackgroundThreadFiresCallback) {
  TempDir dir{"fam"};
  std::atomic<int> events{0};
  FileWatcher watcher{dir.path(), 1ms,
                      [&](const std::filesystem::path&) { events.fetch_add(1); }};
  watcher.start();
  ASSERT_TRUE(write_file(dir / "live.log", "ping").is_ok());
  for (int i = 0; i < 500 && events.load() == 0; ++i) {
    std::this_thread::sleep_for(2ms);
  }
  watcher.stop();
  EXPECT_GE(events.load(), 1);
}

TEST(FileWatcher, StartStopIdempotent) {
  TempDir dir{"fam"};
  FileWatcher watcher{dir.path(), 1ms, nullptr};
  watcher.start();
  watcher.start();
  watcher.stop();
  watcher.stop();  // no crash, no deadlock
}

TEST(FileWatcher, IgnoresAtomicWriteStagingFiles) {
  // Regression: write_file_atomic stages as "<name>.tmp.<n>" before the
  // rename.  A watcher that fires on the staging file hands the daemon a
  // request whose response the rename then clobbers — the client hangs.
  TempDir dir{"fam"};
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  ASSERT_TRUE(write_file(dir / "mod.log.tmp.7", "staged request").is_ok());
  watcher.poll_once();
  EXPECT_TRUE(log.snapshot().empty());
  // The real file still fires.
  ASSERT_TRUE(write_file_atomic(dir / "mod.log", "request").is_ok());
  watcher.poll_once();
  const auto seen = log.snapshot();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "mod.log");
}

TEST(FileWatcher, IgnoresSubdirectories) {
  TempDir dir{"fam"};
  ChangeLog log;
  FileWatcher watcher{dir.path(), 1ms, log.callback()};
  std::filesystem::create_directory(dir / "subdir");
  watcher.poll_once();
  EXPECT_TRUE(log.snapshot().empty());
}

}  // namespace
}  // namespace mcsd::fam
