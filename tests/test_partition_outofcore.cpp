#include "partition/outofcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "apps/datagen.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/random.hpp"
#include "core/thread_pool.hpp"
#include "core/units.hpp"

namespace mcsd::part {
namespace {

using apps::StringMatchSpec;
using apps::WordCountSpec;
using namespace mcsd::literals;

std::map<std::string, std::uint64_t> to_map(
    const std::vector<mr::KV<std::string, std::uint64_t>>& pairs) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& kv : pairs) m[kv.key] += kv.value;
  return m;
}

TextJob<WordCountSpec> wordcount_job() {
  TextJob<WordCountSpec> job;
  job.merge = [](auto outputs) {
    return sum_merge<std::string, std::uint64_t>(std::move(outputs));
  };
  return job;
}

TEST(RunPartitioned, MatchesNativeWordCount) {
  apps::CorpusOptions corpus;
  corpus.bytes = 200 * 1024;
  corpus.vocabulary = 400;
  const std::string text = apps::generate_corpus(corpus);

  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<WordCountSpec> engine{opts};

  PartitionOptions native;
  PartitionOptions fragmented;
  fragmented.partition_size = 20 * 1024;

  const auto job = wordcount_job();
  const auto a = run_partitioned(engine, WordCountSpec{}, text, native, job);
  const auto b =
      run_partitioned(engine, WordCountSpec{}, text, fragmented, job);
  EXPECT_EQ(to_map(a), to_map(b));
  EXPECT_EQ(to_map(a), to_map(apps::wordcount_sequential(text)));
}

TEST(RunPartitioned, MetricsCountFragments) {
  apps::CorpusOptions corpus;
  corpus.bytes = 50 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  mr::Engine<WordCountSpec> engine{mr::Options{}};
  PartitionOptions opts;
  opts.partition_size = 10 * 1024;
  OutOfCoreMetrics metrics;
  run_partitioned(engine, WordCountSpec{}, text, opts, wordcount_job(),
                  &metrics);
  EXPECT_GE(metrics.fragments, 5u);
  EXPECT_GT(metrics.mapreduce_seconds, 0.0);
}

TEST(RunPartitioned, ProcessesInputExceedingBudgetWhenFragmented) {
  // The whole input cannot run natively under this budget, but 32 KiB
  // fragments can — the paper's central claim.
  mr::Options opts;
  opts.num_workers = 2;
  opts.memory_budget_bytes = 512 * 1024;
  opts.usable_memory_fraction = 0.6;
  mr::Engine<WordCountSpec> engine{opts};

  apps::CorpusOptions corpus;
  corpus.bytes = 400 * 1024;  // > 307 KiB usable
  corpus.vocabulary = 150;    // low entropy: combine keeps fragments small
  const std::string text = apps::generate_corpus(corpus);

  PartitionOptions native;
  EXPECT_THROW(run_partitioned(engine, WordCountSpec{}, text, native,
                               wordcount_job()),
               mr::MemoryOverflowError);

  PartitionOptions fragmented;
  fragmented.partition_size = 32 * 1024;
  const auto result = run_partitioned(engine, WordCountSpec{}, text,
                                      fragmented, wordcount_job());
  EXPECT_EQ(to_map(result), to_map(apps::wordcount_sequential(text)));
}

TEST(RunAdaptive, NativeWhenItFits) {
  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<WordCountSpec> engine{opts};  // no budget
  apps::CorpusOptions corpus;
  corpus.bytes = 64 * 1024;
  const std::string text = apps::generate_corpus(corpus);
  OutOfCoreMetrics metrics;
  const auto result =
      run_adaptive(engine, WordCountSpec{}, text, 3.0, wordcount_job(),
                   default_delimiters(), &metrics);
  EXPECT_FALSE(metrics.fell_back_to_partitioning);
  EXPECT_EQ(metrics.fragments, 1u);
  EXPECT_EQ(to_map(result), to_map(apps::wordcount_sequential(text)));
}

TEST(RunAdaptive, FallsBackToPartitioningOnOverflow) {
  mr::Options opts;
  opts.num_workers = 2;
  opts.memory_budget_bytes = 512 * 1024;
  mr::Engine<WordCountSpec> engine{opts};

  apps::CorpusOptions corpus;
  corpus.bytes = 400 * 1024;
  corpus.vocabulary = 150;
  const std::string text = apps::generate_corpus(corpus);

  OutOfCoreMetrics metrics;
  const auto result =
      run_adaptive(engine, WordCountSpec{}, text, 3.0, wordcount_job(),
                   default_delimiters(), &metrics);
  EXPECT_TRUE(metrics.fell_back_to_partitioning);
  EXPECT_GT(metrics.fragments, 1u);
  EXPECT_EQ(to_map(result), to_map(apps::wordcount_sequential(text)));
}

TEST(Mergers, SumMergeAddsAcrossFragments) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  std::vector<std::vector<Pair>> outputs{
      {{"a", 1}, {"b", 2}},
      {{"b", 3}, {"c", 4}},
      {{"a", 5}},
  };
  const auto merged = sum_merge<std::string, std::uint64_t>(std::move(outputs));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, "a");
  EXPECT_EQ(merged[0].value, 6u);
  EXPECT_EQ(merged[1].key, "b");
  EXPECT_EQ(merged[1].value, 5u);
  EXPECT_EQ(merged[2].key, "c");
  EXPECT_EQ(merged[2].value, 4u);
}

TEST(Mergers, ConcatMergePreservesFragmentOrder) {
  using Pair = mr::KV<std::uint64_t, std::uint32_t>;
  std::vector<std::vector<Pair>> outputs{{{10, 0}}, {{5, 1}}, {{7, 2}}};
  const auto merged =
      concat_merge<std::uint64_t, std::uint32_t>(std::move(outputs));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 10u);
  EXPECT_EQ(merged[1].key, 5u);
  EXPECT_EQ(merged[2].key, 7u);
}

TEST(Mergers, FoldMergeWithCustomFold) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  std::vector<std::vector<Pair>> outputs{
      {{"x", 10}, {"y", 1}},
      {{"x", 20}},
  };
  const auto merged = fold_merge<std::string, std::uint64_t>(
      std::move(outputs),
      [](const std::string&, std::span<const std::uint64_t> vs) {
        std::uint64_t best = 0;
        for (auto v : vs) best = std::max(best, v);
        return best;
      });
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, "x");
  EXPECT_EQ(merged[0].value, 20u);  // max, not sum
}

TEST(Mergers, EmptyInputs) {
  EXPECT_TRUE((sum_merge<std::string, std::uint64_t>({})).empty());
  EXPECT_TRUE((concat_merge<std::string, std::uint64_t>({})).empty());
}

// The engine emits per-fragment outputs already key-sorted when
// sort_output_by_key is on; sum_merge must detect that and k-way merge
// instead of re-sorting, with identical results either way.
TEST(Mergers, SortedRunsMergeSameAsUnsortedRuns) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  Rng rng{99};
  std::vector<std::vector<Pair>> sorted_runs;
  std::vector<std::vector<Pair>> shuffled_runs;
  for (int run = 0; run < 7; ++run) {  // odd count: pairwise-round leftover
    std::vector<Pair> pairs;
    const std::size_t n = rng.next_below(40);  // includes empty runs
    for (std::size_t i = 0; i < n; ++i) {
      pairs.push_back({"k" + std::to_string(rng.next_below(25)),
                       rng.next_below(100)});
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.key < b.key; });
    sorted_runs.push_back(pairs);
    std::reverse(pairs.begin(), pairs.end());
    shuffled_runs.push_back(std::move(pairs));
  }
  const auto a = sum_merge<std::string, std::uint64_t>(sorted_runs);
  const auto b = sum_merge<std::string, std::uint64_t>(shuffled_runs);
  EXPECT_EQ(to_map(a), to_map(b));
  EXPECT_TRUE(std::is_sorted(
      a.begin(), a.end(),
      [](const Pair& x, const Pair& y) { return x.key < y.key; }));
  // Keys must be unique after summing.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_NE(a[i - 1].key, a[i].key);
  }
}

TEST(Mergers, ParallelPoolMatchesSerialMerge) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  Rng rng{7};
  std::vector<std::vector<Pair>> runs;
  for (int run = 0; run < 9; ++run) {
    std::vector<Pair> pairs;
    for (std::size_t i = 0; i < 200; ++i) {
      pairs.push_back({"w" + std::to_string(rng.next_below(300)),
                       1 + rng.next_below(5)});
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.key < b.key; });
    runs.push_back(std::move(pairs));
  }
  ThreadPool pool{4};
  const auto serial = sum_merge<std::string, std::uint64_t>(runs);
  const auto parallel = sum_merge<std::string, std::uint64_t>(runs, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(Mergers, SumMergeIntoFoldsFragmentByFragment) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  std::vector<std::vector<Pair>> outputs{
      {{"a", 1}, {"b", 2}},
      {{"c", 4}, {"b", 3}},  // unsorted fresh batch
      {{"a", 5}},
      {},  // empty fragment output
  };
  std::vector<Pair> running;
  for (auto& fresh : outputs) {
    sum_merge_into(running, std::move(fresh));
    EXPECT_TRUE(std::is_sorted(
        running.begin(), running.end(),
        [](const Pair& x, const Pair& y) { return x.key < y.key; }));
  }
  const std::vector<Pair> expected{{"a", 6}, {"b", 5}, {"c", 4}};
  EXPECT_EQ(running, expected);
}

TEST(Mergers, IncrementalHelpersMatchTerminalMergers) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  const std::vector<std::vector<Pair>> outputs{
      {{"x", 1}, {"y", 2}}, {{"x", 3}}, {{"z", 9}, {"y", 1}}};

  auto sum_inc = sum_incremental<std::string, std::uint64_t>();
  std::vector<Pair> running;
  for (auto copy : outputs) sum_inc(running, std::move(copy));
  EXPECT_EQ(to_map(running),
            to_map(sum_merge<std::string, std::uint64_t>(outputs)));

  auto concat_inc = concat_incremental<std::string, std::uint64_t>();
  std::vector<Pair> appended;
  for (auto copy : outputs) concat_inc(appended, std::move(copy));
  EXPECT_EQ(appended, (concat_merge<std::string, std::uint64_t>(outputs)));
}

TEST(Mergers, FoldMergeSortedRunsKeepsCustomFold) {
  using Pair = mr::KV<std::string, std::uint64_t>;
  std::vector<std::vector<Pair>> outputs{
      {{"x", 10}, {"y", 1}},  // already key-sorted: k-way path
      {{"x", 20}, {"z", 7}},
  };
  ThreadPool pool{2};
  const auto merged = fold_merge<std::string, std::uint64_t>(
      std::move(outputs),
      [](const std::string&, std::span<const std::uint64_t> vs) {
        std::uint64_t best = 0;
        for (auto v : vs) best = std::max(best, v);
        return best;
      },
      &pool);
  const std::vector<Pair> expected{{"x", 20}, {"y", 1}, {"z", 7}};
  EXPECT_EQ(merged, expected);
}

// Partition-size sweep: result invariant for any fragment size.
class OutOfCoreSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutOfCoreSweep, WordCountInvariantUnderFragmentSize) {
  apps::CorpusOptions corpus;
  corpus.bytes = 100 * 1024;
  corpus.vocabulary = 250;
  const std::string text = apps::generate_corpus(corpus);
  mr::Engine<WordCountSpec> engine{mr::Options{}};
  PartitionOptions opts;
  opts.partition_size = GetParam();
  const auto result = run_partitioned(engine, WordCountSpec{}, text, opts,
                                      wordcount_job());
  EXPECT_EQ(to_map(result), to_map(apps::wordcount_sequential(text)));
}

INSTANTIATE_TEST_SUITE_P(FragmentBytes, OutOfCoreSweep,
                         ::testing::Values(512, 4096, 16384, 65536, 1 << 20));

}  // namespace
}  // namespace mcsd::part
