#include "cluster/fam_model.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "core/io.hpp"
#include "core/stopwatch.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"

namespace mcsd::sim {
namespace {

using namespace std::chrono_literals;

TEST(FamModel, OverheadDominatedByPolling) {
  FamModel model;
  const double overhead = model.overhead_seconds();
  // With 2 ms SD poll and 1 ms host poll, the mean poll wait is 1.5 ms —
  // most of the channel cost.
  EXPECT_GT(overhead, 1.5e-3);
  EXPECT_LT(overhead, 5e-3);
}

TEST(FamModel, ModuleTimeAddsLinearly) {
  FamModel model;
  EXPECT_NEAR(model.round_trip_seconds(1.0) - model.round_trip_seconds(0.0),
              1.0, 1e-12);
}

TEST(FamModel, NfsAttributeCacheDominatesRemoteDeployments) {
  // The deployment insight the paper skips: on a default NFS mount
  // (acregmin = 3 s) the log-file channel costs seconds, not
  // milliseconds — which is why tuned mounts (noac / actimeo=0) or a
  // local staging folder matter for McSD-style invocation.
  FamModel local;
  FamModel nfs;
  nfs.nfs_attr_cache_seconds = 3.0;
  EXPECT_LT(local.overhead_seconds(), 0.01);
  EXPECT_GT(nfs.overhead_seconds(), 3.0);
}

TEST(FamModel, ScenarioConstantIsConservative) {
  // The Testbed's 20 ms fam_invocation_seconds must upper-bound the
  // modelled local-folder overhead (the scenarios charge the data job
  // with it once per offload).
  FamModel model;
  EXPECT_LT(model.overhead_seconds(), 0.02);
}

TEST(FamModel, MatchesRealRoundTripWithinAnOrderOfMagnitude) {
  // Validate the model against the real stack: a no-op module invoked
  // through actual log files with the model's poll intervals.
  TempDir dir{"fammodel"};
  fam::Daemon daemon{fam::DaemonOptions{dir.path(), 2ms, 1}};
  ASSERT_TRUE(daemon
                  .preload(std::make_shared<fam::FunctionModule>(
                      "noop",
                      [](const KeyValueMap& p) -> Result<KeyValueMap> {
                        return p;
                      }))
                  .is_ok());
  daemon.start();
  fam::Client client{fam::ClientOptions{dir.path(), 1ms, 10'000ms}};

  // Warm up, then time a few round trips.
  KeyValueMap params;
  params.set("k", "v");
  ASSERT_TRUE(client.invoke("noop", params).is_ok());
  Stopwatch watch;
  constexpr int kRounds = 10;
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(client.invoke("noop", params).is_ok());
  }
  const double measured = watch.elapsed_seconds() / kRounds;

  FamModel model;
  const double predicted = model.overhead_seconds();
  // Scheduling noise on a loaded machine can stretch the measurement;
  // the model must at least share its order of magnitude.
  EXPECT_GT(measured, predicted / 10.0);
  EXPECT_LT(measured, predicted * 50.0);
}

}  // namespace
}  // namespace mcsd::sim
