// Property tests for the storage buffer pool (ISSUE 7): pinned frames
// are never evicted, unpinned dirty frames are written back before
// reuse, and concurrent pin/unpin from many threads is race-free (this
// binary runs under TSan in CI).  Plus the supporting contracts: warm
// re-pins are hits, the sequential hint keeps scans from flushing hot
// pages, injected read/write faults are retried deterministically, and
// a file replaced on disk never serves stale pages.
#include "storage/buffer_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/io.hpp"
#include "storage/file_source.hpp"

namespace mcsd::storage {
namespace {

constexpr std::size_t kFrame = 4 * 1024;

PoolOptions tiny_pool(std::size_t frames, std::size_t io_threads = 1) {
  PoolOptions options;
  options.frame_bytes = kFrame;
  options.pool_bytes = frames * kFrame;
  options.io_threads = io_threads;
  return options;
}

/// `pages` full pages where page p is filled with a distinct byte.
std::string patterned(std::size_t pages, std::size_t tail = 0) {
  std::string out;
  for (std::size_t p = 0; p < pages; ++p) {
    out.append(kFrame, static_cast<char>('a' + (p % 26)));
  }
  out.append(tail, '!');
  return out;
}

TEST(BufferManager, RoundTripReadAndWarmRepin) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  const std::string data = patterned(3, 512);  // 3.5 pages
  ASSERT_TRUE(write_file(path, data).is_ok());

  BufferManager pool{tiny_pool(8)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(file.value()->size(), data.size());

  std::string assembled;
  for (std::uint64_t page = 0; page < 4; ++page) {
    auto guard = pool.pin(file.value(), page);
    ASSERT_TRUE(guard.is_ok());
    assembled.append(guard.value().bytes());
  }
  EXPECT_EQ(assembled, data);

  const PoolStats cold = pool.stats();
  EXPECT_EQ(cold.misses, 4u);
  EXPECT_EQ(cold.hits, 0u);

  // Warm re-pin: every page is resident, zero further I/O.
  for (std::uint64_t page = 0; page < 4; ++page) {
    auto guard = pool.pin(file.value(), page);
    ASSERT_TRUE(guard.is_ok());
  }
  const PoolStats warm = pool.stats();
  EXPECT_EQ(warm.misses, 4u);
  EXPECT_EQ(warm.hits, 4u);
  EXPECT_DOUBLE_EQ(warm.hit_rate(), 0.5);
}

TEST(BufferManager, ReopeningUnchangedFileKeepsIdentity) {
  TempDir dir{"storage"};
  const auto path = dir / "same.bin";
  ASSERT_TRUE(write_file(path, patterned(1)).is_ok());

  BufferManager pool{tiny_pool(4)};
  auto first = pool.open_file(path);
  ASSERT_TRUE(first.is_ok());
  auto second = pool.open_file(path);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(first.value()->id(), second.value()->id());
}

TEST(BufferManager, PinReadsPastEofAreEmpty) {
  TempDir dir{"storage"};
  const auto path = dir / "short.bin";
  ASSERT_TRUE(write_file(path, std::string(100, 'x')).is_ok());

  BufferManager pool{tiny_pool(2)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());
  auto guard = pool.pin(file.value(), 7);
  ASSERT_TRUE(guard.is_ok());
  EXPECT_TRUE(guard.value().bytes().empty());
}

// Property: a pinned frame is never evicted and its bytes never move,
// however much traffic churns through the rest of the pool.
TEST(BufferManager, PinnedFramesAreNeverEvicted) {
  TempDir dir{"storage"};
  const auto hot_path = dir / "hot.bin";
  const auto churn_path = dir / "churn.bin";
  ASSERT_TRUE(write_file(hot_path, patterned(3)).is_ok());
  ASSERT_TRUE(write_file(churn_path, patterned(20)).is_ok());

  BufferManager pool{tiny_pool(4)};
  auto hot = pool.open_file(hot_path);
  auto churn = pool.open_file(churn_path);
  ASSERT_TRUE(hot.is_ok());
  ASSERT_TRUE(churn.is_ok());

  std::vector<FrameGuard> held;
  std::vector<const char*> addresses;
  for (std::uint64_t page = 0; page < 3; ++page) {
    auto guard = pool.pin(hot.value(), page);
    ASSERT_TRUE(guard.is_ok());
    addresses.push_back(guard.value().bytes().data());
    held.push_back(std::move(guard).value());
  }

  // 20 pages through the single remaining frame: every one evicts its
  // predecessor, yet the pinned three must stay put.
  for (std::uint64_t page = 0; page < 20; ++page) {
    auto guard = pool.pin(churn.value(), page);
    ASSERT_TRUE(guard.is_ok());
    EXPECT_EQ(guard.value().bytes().front(),
              static_cast<char>('a' + (page % 26)));
  }
  EXPECT_GE(pool.stats().evictions, 19u);

  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].bytes().data(), addresses[i]) << "frame " << i
                                                    << " moved while pinned";
    EXPECT_EQ(held[i].bytes().front(), static_cast<char>('a' + i));
    EXPECT_EQ(held[i].bytes().size(), kFrame);
  }
  EXPECT_EQ(pool.stats().pinned_frames, 3u);
}

// Property: an unpinned dirty frame is written back to disk before its
// frame is reused — spill data survives eviction without an explicit
// flush.
TEST(BufferManager, DirtyFramesAreWrittenBackBeforeReuse) {
  TempDir dir{"storage"};
  const auto spill_path = dir / "spill.bin";
  const auto churn_path = dir / "churn.bin";
  ASSERT_TRUE(write_file(churn_path, patterned(4)).is_ok());

  BufferManager pool{tiny_pool(2)};
  auto spill = pool.create_file(spill_path);
  ASSERT_TRUE(spill.is_ok());

  for (std::uint64_t page = 0; page < 2; ++page) {
    auto guard = pool.pin_write(spill.value(), page);
    ASSERT_TRUE(guard.is_ok());
    std::memset(guard.value().data(), static_cast<int>('A' + page), kFrame);
    guard.value().mark_dirty(kFrame);
  }
  EXPECT_EQ(spill.value()->size(), 2 * kFrame);
  // Nothing flushed yet: the on-disk file is still empty.
  EXPECT_EQ(mcsd::file_size(spill_path).value(), 0u);

  // Fill the whole pool with another file's pages, forcing both dirty
  // frames through the write-back path.
  for (std::uint64_t page = 0; page < 4; ++page) {
    auto guard = pool.pin(pool.open_file(churn_path).value(), page);
    ASSERT_TRUE(guard.is_ok());
  }
  EXPECT_GE(pool.stats().writebacks, 2u);

  auto on_disk = read_file(spill_path);
  ASSERT_TRUE(on_disk.is_ok());
  EXPECT_EQ(on_disk.value(),
            std::string(kFrame, 'A') + std::string(kFrame, 'B'));
}

TEST(BufferManager, FlushIsTheDurabilityPoint) {
  TempDir dir{"storage"};
  const auto path = dir / "spill.bin";
  BufferManager pool{tiny_pool(4)};
  auto spill = pool.create_file(path);
  ASSERT_TRUE(spill.is_ok());

  {
    auto guard = pool.pin_write(spill.value(), 0);
    ASSERT_TRUE(guard.is_ok());
    std::memcpy(guard.value().data(), "durable", 7);
    guard.value().mark_dirty(7);
  }
  ASSERT_TRUE(pool.flush(spill.value()).is_ok());
  EXPECT_EQ(read_file(path).value(), "durable");

  // The page stays resident after flush — a re-pin is a hit.
  const std::uint64_t hits_before = pool.stats().hits;
  auto again = pool.pin(spill.value(), 0);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().bytes(), "durable");
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
}

TEST(BufferManager, DropCachedRefusesWhilePinnedThenResets) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  ASSERT_TRUE(write_file(path, patterned(2)).is_ok());

  BufferManager pool{tiny_pool(4)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());
  auto guard = pool.pin(file.value(), 0);
  ASSERT_TRUE(guard.is_ok());

  Status refused = pool.drop_cached();
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.error().code(), ErrorCode::kUnavailable);

  guard.value().release();
  ASSERT_TRUE(pool.drop_cached().is_ok());
  EXPECT_EQ(pool.stats().resident_frames, 0u);

  // Cold again: the next pin is a miss even though the File is cached.
  const std::uint64_t misses_before = pool.stats().misses;
  ASSERT_TRUE(pool.pin(file.value(), 0).is_ok());
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST(BufferManager, PrefetchedPageIsAHitWhenPinned) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  ASSERT_TRUE(write_file(path, patterned(2)).is_ok());

  BufferManager pool{tiny_pool(4)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());

  pool.prefetch(file.value(), 1);
  // Whether the load has landed or is still in flight, the pin never
  // initiates new I/O — by definition a hit.
  auto guard = pool.pin(file.value(), 1);
  ASSERT_TRUE(guard.is_ok());
  EXPECT_EQ(guard.value().bytes().front(), 'b');

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetches, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(BufferManager, PrefetchIsDroppedWhenPoolIsPinnedFull) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  ASSERT_TRUE(write_file(path, patterned(3)).is_ok());

  BufferManager pool{tiny_pool(2)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());
  auto a = pool.pin(file.value(), 0);
  auto b = pool.pin(file.value(), 1);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());

  pool.prefetch(file.value(), 2);  // no free frame: silently skipped
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetches, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

// Scan resistance: sequentially-hinted pages stream through the pool
// without flushing a periodically re-referenced hot page, even when the
// scan is twice the pool size.
TEST(BufferManager, SequentialScanDoesNotEvictHotPage) {
  TempDir dir{"storage"};
  const auto hot_path = dir / "hot.bin";
  const auto scan_path = dir / "scan.bin";
  ASSERT_TRUE(write_file(hot_path, patterned(1)).is_ok());
  ASSERT_TRUE(write_file(scan_path, patterned(16)).is_ok());

  BufferManager pool{tiny_pool(8)};
  auto hot = pool.open_file(hot_path);
  auto scan = pool.open_file(scan_path);
  ASSERT_TRUE(hot.is_ok());
  ASSERT_TRUE(scan.is_ok());

  ASSERT_TRUE(pool.pin(hot.value(), 0, AccessHint::kNormal).is_ok());
  for (std::uint64_t page = 0; page < 16; ++page) {
    auto guard = pool.pin(scan.value(), page, AccessHint::kSequential);
    ASSERT_TRUE(guard.is_ok());
    if ((page + 1) % 4 == 0) {
      // The workload keeps coming back to the hot page.
      ASSERT_TRUE(pool.pin(hot.value(), 0, AccessHint::kNormal).is_ok());
    }
  }

  const std::uint64_t misses_before = pool.stats().misses;
  auto final_pin = pool.pin(hot.value(), 0, AccessHint::kNormal);
  ASSERT_TRUE(final_pin.is_ok());
  EXPECT_EQ(final_pin.value().bytes().front(), 'a');
  EXPECT_EQ(pool.stats().misses, misses_before)
      << "hot page was evicted by a sequential scan";
}

TEST(BufferManager, ChangedFileOnDiskNeverServesStalePages) {
  TempDir dir{"storage"};
  const auto path = dir / "mutable.bin";
  ASSERT_TRUE(write_file(path, std::string(kFrame, 'o')).is_ok());

  BufferManager pool{tiny_pool(4)};
  auto before = pool.open_file(path);
  ASSERT_TRUE(before.is_ok());
  {
    auto guard = pool.pin(before.value(), 0);
    ASSERT_TRUE(guard.is_ok());
    EXPECT_EQ(guard.value().bytes().front(), 'o');
  }

  // Replace the file (different size so the identity check cannot
  // collide even on filesystems with coarse mtimes).
  ASSERT_TRUE(write_file(path, std::string(2 * kFrame, 'n')).is_ok());

  auto after = pool.open_file(path);
  ASSERT_TRUE(after.is_ok());
  EXPECT_NE(after.value()->id(), before.value()->id());
  auto guard = pool.pin(after.value(), 0);
  ASSERT_TRUE(guard.is_ok());
  EXPECT_EQ(guard.value().bytes().front(), 'n');
  EXPECT_EQ(after.value()->size(), 2 * kFrame);
}

TEST(BufferManager, InjectedReadFaultsAreRetriedTransparently) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  ASSERT_TRUE(write_file(path, patterned(1)).is_ok());

  auto plan = fault::FaultPlan::from_spec("sread.eio=@1");
  ASSERT_TRUE(plan.is_ok());
  fault::FaultScope scope{std::move(plan).value()};

  BufferManager pool{tiny_pool(2)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());
  auto guard = pool.pin(file.value(), 0);
  ASSERT_TRUE(guard.is_ok()) << "transient EIO must not surface";
  EXPECT_EQ(guard.value().bytes().front(), 'a');
  const PoolStats stats = pool.stats();
  EXPECT_GE(stats.read_retries, 1u);
  EXPECT_GE(stats.read_errors, 1u);  // the failed first attempt
}

TEST(BufferManager, PersistentReadFaultSurfacesAfterAllAttempts) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  ASSERT_TRUE(write_file(path, patterned(1)).is_ok());

  // Every one of the kLoadAttempts loads fails.
  auto plan = fault::FaultPlan::from_spec("sread.eio=@1+2+3+4");
  ASSERT_TRUE(plan.is_ok());
  fault::FaultScope scope{std::move(plan).value()};

  BufferManager pool{tiny_pool(2)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());
  auto guard = pool.pin(file.value(), 0);
  ASSERT_FALSE(guard.is_ok());
  EXPECT_EQ(guard.error().code(), ErrorCode::kIoError);

  // The dead frame was reclaimed, not wedged: with the schedule
  // exhausted the same pin now succeeds.
  auto retry = pool.pin(file.value(), 0);
  ASSERT_TRUE(retry.is_ok());
  EXPECT_EQ(retry.value().bytes().front(), 'a');
}

TEST(BufferManager, InjectedWriteBackFaultsAreRetried) {
  TempDir dir{"storage"};
  const auto path = dir / "spill.bin";

  auto plan = fault::FaultPlan::from_spec("swrite.eio=@1");
  ASSERT_TRUE(plan.is_ok());
  fault::FaultScope scope{std::move(plan).value()};

  BufferManager pool{tiny_pool(2)};
  auto spill = pool.create_file(path);
  ASSERT_TRUE(spill.is_ok());
  {
    auto guard = pool.pin_write(spill.value(), 0);
    ASSERT_TRUE(guard.is_ok());
    std::memcpy(guard.value().data(), "survives", 8);
    guard.value().mark_dirty(8);
  }
  ASSERT_TRUE(pool.flush(spill.value()).is_ok());
  EXPECT_GE(pool.stats().write_retries, 1u);
  EXPECT_EQ(read_file(path).value(), "survives");
}

TEST(BufferManager, PersistentWriteBackFaultSurfacesFromFlush) {
  TempDir dir{"storage"};
  const auto path = dir / "spill.bin";

  auto plan = fault::FaultPlan::from_spec("swrite.enospc=@1+2+3+4");
  ASSERT_TRUE(plan.is_ok());
  fault::FaultScope scope{std::move(plan).value()};

  BufferManager pool{tiny_pool(2)};
  auto spill = pool.create_file(path);
  ASSERT_TRUE(spill.is_ok());
  {
    auto guard = pool.pin_write(spill.value(), 0);
    ASSERT_TRUE(guard.is_ok());
    std::memcpy(guard.value().data(), "doomed", 6);
    guard.value().mark_dirty(6);
  }
  Status flushed = pool.flush(spill.value());
  ASSERT_FALSE(flushed.is_ok());
  EXPECT_EQ(flushed.error().code(), ErrorCode::kIoError);
  EXPECT_GE(pool.stats().write_errors, 1u);
  // The data is still resident (dirty) — nothing was lost, only not yet
  // durable.  With the schedule exhausted a second flush succeeds.
  ASSERT_TRUE(pool.flush(spill.value()).is_ok());
  EXPECT_EQ(read_file(path).value(), "doomed");
}

// The TSan target: 8 threads hammer pin/unpin over a file bigger than
// the pool, so hits, misses, evictions, and shared pins all interleave.
TEST(BufferManager, ConcurrentPinUnpinFromEightThreads) {
  TempDir dir{"storage"};
  const auto path = dir / "corpus.bin";
  constexpr std::size_t kPages = 8;
  ASSERT_TRUE(write_file(path, patterned(kPages)).is_ok());

  BufferManager pool{tiny_pool(4, /*io_threads=*/2)};
  auto file = pool.open_file(path);
  ASSERT_TRUE(file.is_ok());

  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto page =
            static_cast<std::uint64_t>((t * 7 + i * 3) % kPages);
        auto guard = pool.pin(file.value(), page);
        if (!guard.is_ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const std::string_view bytes = guard.value().bytes();
        if (bytes.size() != kFrame ||
            bytes.front() != static_cast<char>('a' + page) ||
            bytes.back() != static_cast<char>('a' + page)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.pinned_frames, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SpillWriter, RoundTripsOddSizedAppends) {
  TempDir dir{"storage"};
  const auto path = dir / "spill.bin";
  BufferManager pool{tiny_pool(4)};
  auto pool_ptr = std::shared_ptr<BufferManager>(&pool, [](BufferManager*) {});

  auto writer = SpillWriter::create(pool_ptr, path);
  ASSERT_TRUE(writer.is_ok());

  // Chunk sizes chosen to straddle page boundaries unevenly.
  std::string expected;
  const std::size_t sizes[] = {1, 733, kFrame - 100, kFrame, 2 * kFrame + 17};
  char fill = 'A';
  for (const std::size_t size : sizes) {
    const std::string chunk(size, fill++);
    ASSERT_TRUE(writer.value().append(chunk).is_ok());
    expected += chunk;
  }
  ASSERT_TRUE(writer.value().finish().is_ok());
  EXPECT_EQ(writer.value().bytes_written(), expected.size());

  auto on_disk = read_file(path);
  ASSERT_TRUE(on_disk.is_ok());
  EXPECT_EQ(on_disk.value(), expected);

  // And the spill reads back warm through the pool-backed source.
  auto source = PooledFileSource::open(pool_ptr, path);
  ASSERT_TRUE(source.is_ok());
  std::string through_pool(expected.size(), '\0');
  auto got = source.value()->read_at(0, through_pool.data(),
                                     through_pool.size());
  ASSERT_TRUE(got.is_ok());
  ASSERT_EQ(got.value(), expected.size());
  EXPECT_EQ(through_pool, expected);
}

TEST(PooledFileSource, ShortReadMeansEof) {
  TempDir dir{"storage"};
  const auto path = dir / "tail.bin";
  const std::string data = patterned(1, 37);  // 1 page + 37 bytes
  ASSERT_TRUE(write_file(path, data).is_ok());

  BufferManager pool{tiny_pool(4)};
  auto pool_ptr = std::shared_ptr<BufferManager>(&pool, [](BufferManager*) {});
  auto source = PooledFileSource::open(pool_ptr, path);
  ASSERT_TRUE(source.is_ok());

  std::string buffer(2 * kFrame, '\0');
  auto got = source.value()->read_at(0, buffer.data(), buffer.size());
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), data.size());
  EXPECT_EQ(buffer.substr(0, got.value()), data);

  auto past = source.value()->read_at(10 * kFrame, buffer.data(), kFrame);
  ASSERT_TRUE(past.is_ok());
  EXPECT_EQ(past.value(), 0u);
}

}  // namespace
}  // namespace mcsd::storage
