// Cross-layer obs invariants: the engine's reported Metrics must agree
// with the per-worker emitter counters published to the obs registry,
// and a traced engine + partition + FAM run must export spans from all
// three layers into one chrome://tracing JSON.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "core/io.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"
#include "mapreduce/engine.hpp"
#include "obs/counters.hpp"
#include "obs/reporter.hpp"
#include "obs/trace.hpp"
#include "partition/outofcore.hpp"

namespace mcsd {
namespace {

using namespace std::chrono_literals;

class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : was_(obs::enabled()) { obs::set_enabled(true); }
  ~ObsEnabledGuard() { obs::set_enabled(was_); }

 private:
  bool was_;
};

[[maybe_unused]] std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

std::string small_corpus() {
  apps::CorpusOptions corpus;
  corpus.bytes = 512 * 1024;
  corpus.vocabulary = 2'000;
  return apps::generate_corpus(corpus);
}

// Every raw emit either created a stored pair or folded into one — the
// engine-level totals are exactly the sum of what the per-worker
// emitters counted.
TEST(ObsIntegration, MetricsDecomposeIntoEmitterCounters) {
  const std::string text = small_corpus();
  mr::Options opts;
  opts.num_workers = 4;
  mr::Engine<apps::WordCountSpec> engine{opts};
  mr::Metrics metrics;
  const auto counts = engine.run(apps::WordCountSpec{},
                                 mr::split_text(text, 32 * 1024), 0, &metrics);

  EXPECT_GT(metrics.map_emits, 0u);
  EXPECT_EQ(metrics.map_emits,
            metrics.map_stored_pairs + metrics.map_combine_hits);
  EXPECT_GT(metrics.map_intermediate_bytes, 0u);
  EXPECT_EQ(metrics.unique_keys, counts.size());
}

#if MCSD_OBS_ENABLED
// The engine publishes each worker's emitter totals into the obs
// registry; the registry deltas across a run must equal the Metrics the
// engine returned for that same run.
TEST(ObsIntegration, RegistryDeltasMatchEngineMetrics) {
  ObsEnabledGuard guard;
  const std::string text = small_corpus();

  const std::uint64_t emits_before = counter_value("mr.map_emits");
  const std::uint64_t combine_before = counter_value("mr.combine_hits");
  const std::uint64_t bytes_before = counter_value("mr.intermediate_bytes");
  const std::uint64_t keys_before = counter_value("mr.unique_keys");

  mr::Options opts;
  opts.num_workers = 3;
  mr::Engine<apps::WordCountSpec> engine{opts};
  mr::Metrics metrics;
  engine.run(apps::WordCountSpec{}, mr::split_text(text, 32 * 1024), 0,
             &metrics);

  EXPECT_EQ(counter_value("mr.map_emits") - emits_before,
            metrics.map_emits);
  EXPECT_EQ(counter_value("mr.combine_hits") - combine_before,
            metrics.map_combine_hits);
  EXPECT_EQ(counter_value("mr.intermediate_bytes") - bytes_before,
            metrics.map_intermediate_bytes);
  EXPECT_EQ(counter_value("mr.unique_keys") - keys_before,
            metrics.unique_keys);
}

// When runtime-disabled, a run must publish nothing — the registry
// deltas stay zero even though the engine still fills Metrics.
TEST(ObsIntegration, DisabledRunPublishesNothing) {
  ObsEnabledGuard guard;
  obs::set_enabled(false);
  const std::string text = small_corpus();
  const std::uint64_t emits_before = counter_value("mr.map_emits");

  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<apps::WordCountSpec> engine{opts};
  mr::Metrics metrics;
  engine.run(apps::WordCountSpec{}, mr::split_text(text, 32 * 1024), 0,
             &metrics);

  EXPECT_GT(metrics.map_emits, 0u);  // engine metrics still work
  EXPECT_EQ(counter_value("mr.map_emits"), emits_before);
}

// One in-process offload round trip — client invoke, daemon dispatch, a
// module running the partitioned engine — must land spans from the mr,
// part, and fam layers in a single exported trace.
TEST(ObsIntegration, TracedOffloadRunExportsAllThreeLayers) {
  ObsEnabledGuard guard;
  TempDir shared{"obs-fam"};

  fam::Daemon daemon{fam::DaemonOptions{shared.path(), 1ms, 1}};
  ASSERT_TRUE(
      daemon
          .preload(std::make_shared<fam::FunctionModule>(
              "obs_wordcount",
              [](const KeyValueMap& params) -> Result<KeyValueMap> {
                const auto input = params.get("input");
                if (!input) {
                  return Error{ErrorCode::kInvalidArgument, "need input"};
                }
                auto text = read_file(*input);
                if (!text) return text.error();
                mr::Options opts;
                opts.num_workers = 2;
                mr::Engine<apps::WordCountSpec> engine{opts};
                part::PartitionOptions popts;
                popts.partition_size = 64 * 1024;
                part::TextJob<apps::WordCountSpec> job;
                job.merge = [](auto outputs) {
                  return part::sum_merge<std::string, std::uint64_t>(
                      std::move(outputs));
                };
                auto counts = part::run_partitioned(
                    engine, apps::WordCountSpec{}, text.value(), popts, job);
                KeyValueMap out;
                out.set_uint("unique", counts.size());
                return out;
              }))
          .is_ok());
  daemon.start();

  const auto data_path = shared / "corpus.txt";
  ASSERT_TRUE(write_file(data_path, small_corpus()).is_ok());
  fam::Client client{fam::ClientOptions{shared.path(), 1ms, 30'000ms}};
  KeyValueMap params;
  params.set("input", data_path.string());
  const auto result = client.invoke("obs_wordcount", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  daemon.stop();

  const auto trace_path = shared / "trace.json";
  ASSERT_TRUE(obs::write_trace_json(trace_path).is_ok());
  const auto contents = read_file(trace_path);
  ASSERT_TRUE(contents.is_ok());
  EXPECT_NE(contents.value().find("\"cat\":\"mr\""), std::string::npos);
  EXPECT_NE(contents.value().find("\"cat\":\"part\""), std::string::npos);
  EXPECT_NE(contents.value().find("\"cat\":\"fam\""), std::string::npos);
  EXPECT_NE(contents.value().find("fam.dispatch:obs_wordcount"),
            std::string::npos);
}
#endif  // MCSD_OBS_ENABLED

}  // namespace
}  // namespace mcsd
