// InotifyWatcher (the paper's actual FAM mechanism) and the daemon's
// backend selection.
#include "fam/inotify_watcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/io.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"

namespace mcsd::fam {
namespace {

using namespace std::chrono_literals;

/// Spins until `pred` holds or ~2 s pass.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

TEST(InotifyWatcher, CreateOnLocalDirectory) {
  TempDir dir{"ino"};
  auto watcher = InotifyWatcher::create(dir.path(), nullptr);
  ASSERT_TRUE(watcher.is_ok()) << watcher.error().to_string();
}

TEST(InotifyWatcher, CreateFailsOnMissingDirectory) {
  auto watcher =
      InotifyWatcher::create("/nonexistent/mcsd/logdir", nullptr);
  ASSERT_FALSE(watcher.is_ok());
  EXPECT_EQ(watcher.error().code(), ErrorCode::kUnavailable);
}

TEST(InotifyWatcher, FiresOnPlainWrite) {
  TempDir dir{"ino"};
  std::atomic<int> events{0};
  auto watcher = InotifyWatcher::create(
      dir.path(), [&](const std::filesystem::path&) { events.fetch_add(1); });
  ASSERT_TRUE(watcher.is_ok());
  watcher.value()->start();
  ASSERT_TRUE(write_file(dir / "a.log", "payload").is_ok());
  EXPECT_TRUE(eventually([&] { return events.load() >= 1; }));
  watcher.value()->stop();
}

TEST(InotifyWatcher, FiresOnAtomicRename) {
  // write_file_atomic lands as IN_MOVED_TO; the staging .tmp. writes are
  // filtered out.
  TempDir dir{"ino"};
  std::atomic<int> events{0};
  std::string last_name;
  std::mutex m;
  auto watcher = InotifyWatcher::create(
      dir.path(), [&](const std::filesystem::path& p) {
        std::lock_guard lock{m};
        last_name = p.filename().string();
        events.fetch_add(1);
      });
  ASSERT_TRUE(watcher.is_ok());
  watcher.value()->start();
  ASSERT_TRUE(write_file_atomic(dir / "mod.log", "record").is_ok());
  ASSERT_TRUE(eventually([&] { return events.load() >= 1; }));
  watcher.value()->stop();
  std::lock_guard lock{m};
  EXPECT_EQ(last_name, "mod.log");
}

TEST(InotifyWatcher, StopIsPromptAndIdempotent) {
  TempDir dir{"ino"};
  auto watcher = InotifyWatcher::create(dir.path(), nullptr);
  ASSERT_TRUE(watcher.is_ok());
  watcher.value()->start();
  watcher.value()->start();
  const auto before = std::chrono::steady_clock::now();
  watcher.value()->stop();
  watcher.value()->stop();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(elapsed, 1s);  // the wake pipe must beat the 200 ms poll cap
}

TEST(DaemonBackend, InotifySelectedWhenRequested) {
  TempDir dir{"ino"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 1, WatcherBackend::kInotify}};
  EXPECT_EQ(daemon.active_backend(), WatcherBackend::kInotify);
}

TEST(DaemonBackend, PollingIsDefault) {
  TempDir dir{"ino"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 1}};
  EXPECT_EQ(daemon.active_backend(), WatcherBackend::kPolling);
}

TEST(DaemonBackend, EndToEndInvokeOverInotify) {
  TempDir dir{"ino"};
  Daemon daemon{DaemonOptions{dir.path(), 1ms, 1, WatcherBackend::kInotify}};
  ASSERT_TRUE(daemon
                  .preload(std::make_shared<FunctionModule>(
                      "double",
                      [](const KeyValueMap& p) -> Result<KeyValueMap> {
                        auto x = p.get_int("x");
                        if (!x) return Error{ErrorCode::kInvalidArgument, "x"};
                        KeyValueMap out;
                        out.set_int("y", 2 * x.value());
                        return out;
                      }))
                  .is_ok());
  daemon.start();

  Client client{ClientOptions{dir.path(), 1ms, 5000ms}};
  KeyValueMap params;
  params.set_int("x", 21);
  const auto result = client.invoke("double", params);
  ASSERT_TRUE(result.is_ok()) << result.error().to_string();
  EXPECT_EQ(result.value().get_int("y").value(), 42);
}

}  // namespace
}  // namespace mcsd::fam
