#include "cluster/malleable.hpp"

#include <gtest/gtest.h>

namespace mcsd::sim {
namespace {

const CpuModel kQuad{4, 1.0};
const CpuModel kDuo{2, 1.0};

TEST(Malleable, EmptyJobListIsInstant) {
  const auto r = schedule_malleable({}, kQuad);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 0.0);
}

TEST(Malleable, SingleSerialJob) {
  const auto r = schedule_malleable({{"s", 10.0, 0.0, 0}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);
}

TEST(Malleable, SingleParallelJobUsesAllCores) {
  const auto r = schedule_malleable({{"p", 0.0, 40.0, 0}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);  // 40 core-s / 4 cores
}

TEST(Malleable, MaxThreadsCapsAllocation) {
  const auto r = schedule_malleable({{"p", 0.0, 40.0, 2}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 20.0);  // only 2 of 4 cores usable
}

TEST(Malleable, CoreSpeedScalesParallelWork) {
  const CpuModel fast{4, 2.0};
  const auto r = schedule_malleable({{"p", 0.0, 40.0, 0}}, fast);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 5.0);
}

TEST(Malleable, SerialThenParallelSequence) {
  const auto r = schedule_malleable({{"sp", 4.0, 8.0, 0}}, kDuo);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 8.0);  // 4 serial + 8/2 parallel
}

TEST(Malleable, TwoEqualJobsShareCoresFairly) {
  const auto r = schedule_malleable(
      {{"a", 0.0, 20.0, 0}, {"b", 0.0, 20.0, 0}}, kQuad);
  // Each gets 2 cores: 20 / 2 = 10 s, both finish together.
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 10.0);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 10.0);
}

TEST(Malleable, SurvivorInheritsFreedCores) {
  const auto r = schedule_malleable(
      {{"short", 0.0, 8.0, 0}, {"long", 0.0, 40.0, 0}}, kQuad);
  // Phase 1: 2+2 cores.  Short finishes at 4 s (8/2).  Long has consumed
  // 8 of 40, then runs on 4 cores: 32/4 = 8 s more -> 12 s total.
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 4.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 12.0);
}

TEST(Malleable, CapFreesCoresForOthers) {
  const auto r = schedule_malleable(
      {{"capped", 0.0, 10.0, 1}, {"wide", 0.0, 30.0, 0}}, kQuad);
  // capped gets 1 core; wide gets the other 3: 30/3 = 10 s; both 10 s.
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 10.0);
}

TEST(Malleable, SerialJobDoesNotStallParallelPeer) {
  const auto r = schedule_malleable(
      {{"serial", 12.0, 0.0, 0}, {"parallel", 0.0, 12.0, 0}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 12.0);
  // Parallel peer holds 2 cores while sharing: 12/2 = 6 s.
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 6.0);
}

TEST(Malleable, ThreeJobsOnFourCores) {
  const auto r = schedule_malleable(
      {{"a", 0.0, 12.0, 0}, {"b", 0.0, 12.0, 0}, {"c", 0.0, 12.0, 0}},
      kQuad);
  // 4/3 cores each: 12 / (4/3) = 9 s.
  for (double f : r.finish_seconds) EXPECT_NEAR(f, 9.0, 1e-9);
}

TEST(Malleable, ZeroWorkJobFinishesAtZero) {
  const auto r = schedule_malleable(
      {{"noop", 0.0, 0.0, 0}, {"real", 5.0, 0.0, 0}}, kDuo);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 5.0);
}

TEST(Malleable, RejectsNegativeWork) {
  EXPECT_THROW(schedule_malleable({{"bad", -1.0, 0.0, 0}}, kDuo),
               std::invalid_argument);
}

TEST(Malleable, RejectsBadCpu) {
  EXPECT_THROW(schedule_malleable({{"j", 1.0, 1.0, 0}}, CpuModel{0, 1.0}),
               std::invalid_argument);
}

TEST(Malleable, MakespanIsMaxFinish) {
  const auto r = schedule_malleable(
      {{"a", 1.0, 0.0, 0}, {"b", 0.0, 100.0, 1}}, kQuad);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, r.finish_seconds[1]);
}

// Regression for the serial-phase share bug: pre-fix, serial work burned
// at full wall rate no matter how small the job's core share was, so an
// over-subscribed set of pure-serial jobs all "finished" as if each had
// a whole core.  Serial progress must run at min(share, 1): eight
// serial jobs on four cores hold half a core each and take 20 s, not 10.
TEST(Malleable, OversubscribedSerialPhasesSerialize) {
  std::vector<MalleableJob> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back({"s" + std::to_string(i), 10.0, 0.0, 0});
  }
  const auto r = schedule_malleable(jobs, kQuad);
  for (double f : r.finish_seconds) EXPECT_NEAR(f, 20.0, 1e-6);
  EXPECT_NEAR(r.makespan_seconds, 20.0, 1e-6);
}

TEST(Malleable, FractionalShareSlowsSerialPhaseBeforeParallel) {
  // Six identical serial+parallel jobs on a quad: share 2/3 each, so the
  // 2 s serial prefix stretches to 3 s, then 8 core-s of parallel work
  // at 2/3 core adds 12 s.
  std::vector<MalleableJob> jobs(6, MalleableJob{"j", 2.0, 8.0, 0});
  const auto r = schedule_malleable(jobs, kQuad);
  for (double f : r.finish_seconds) EXPECT_NEAR(f, 15.0, 1e-6);
}

TEST(FillShares, EqualSplitsEvenly) {
  std::vector<ShareSlot> slots(4);
  for (auto& s : slots) s.cap = 8.0;
  fill_shares(slots, 4.0, ShareMode::kEqualShare);
  for (const auto& s : slots) EXPECT_NEAR(s.share, 1.0, 1e-12);
}

TEST(FillShares, EqualRecyclesCapSurplus) {
  std::vector<ShareSlot> slots(3);
  slots[0].cap = 0.5;  // capped claimant frees 1/3 of a core
  slots[1].cap = 8.0;
  slots[2].cap = 8.0;
  fill_shares(slots, 4.0, ShareMode::kEqualShare);
  EXPECT_NEAR(slots[0].share, 0.5, 1e-12);
  EXPECT_NEAR(slots[1].share, 1.75, 1e-12);
  EXPECT_NEAR(slots[2].share, 1.75, 1e-12);
}

TEST(FillShares, ProportionalFollowsWeights) {
  std::vector<ShareSlot> slots(2);
  slots[0] = {8.0, 3.0, 0.0};
  slots[1] = {8.0, 1.0, 0.0};
  fill_shares(slots, 4.0, ShareMode::kProportional);
  EXPECT_NEAR(slots[0].share, 3.0, 1e-12);
  EXPECT_NEAR(slots[1].share, 1.0, 1e-12);
}

TEST(FillShares, ProportionalRespectsCapsAndRecycles) {
  std::vector<ShareSlot> slots(2);
  slots[0] = {1.0, 100.0, 0.0};  // heavy but capped at one core
  slots[1] = {8.0, 1.0, 0.0};
  fill_shares(slots, 4.0, ShareMode::kProportional);
  EXPECT_NEAR(slots[0].share, 1.0, 1e-12);
  EXPECT_NEAR(slots[1].share, 3.0, 1e-12);
}

TEST(FillShares, ZeroWeightGetsNothingUnderProportional) {
  std::vector<ShareSlot> slots(2);
  slots[0] = {8.0, 0.0, 0.0};
  slots[1] = {8.0, 2.0, 0.0};
  fill_shares(slots, 4.0, ShareMode::kProportional);
  EXPECT_DOUBLE_EQ(slots[0].share, 0.0);
  EXPECT_NEAR(slots[1].share, 4.0, 1e-12);
}

TEST(Malleable, ProportionalModeConvergesCoRunners) {
  // Equal shares finish the light job first; proportional weights the
  // heavy job, so both finish nearer each other and the makespan drops
  // to the balanced optimum: 40 core-s over 4 cores = 10 s.
  const std::vector<MalleableJob> jobs{{"light", 0.0, 8.0, 0},
                                       {"heavy", 0.0, 32.0, 0}};
  const auto equal = schedule_malleable(jobs, kQuad);
  const auto prop = schedule_malleable(
      jobs, kQuad, MalleableOptions{ShareMode::kProportional});
  EXPECT_NEAR(prop.makespan_seconds, 10.0, 1e-6);
  EXPECT_LE(prop.makespan_seconds, equal.makespan_seconds + 1e-9);
  EXPECT_NEAR(prop.finish_seconds[0], prop.finish_seconds[1], 1e-6);
}

}  // namespace
}  // namespace mcsd::sim
