#include "cluster/malleable.hpp"

#include <gtest/gtest.h>

namespace mcsd::sim {
namespace {

const CpuModel kQuad{4, 1.0};
const CpuModel kDuo{2, 1.0};

TEST(Malleable, EmptyJobListIsInstant) {
  const auto r = schedule_malleable({}, kQuad);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 0.0);
}

TEST(Malleable, SingleSerialJob) {
  const auto r = schedule_malleable({{"s", 10.0, 0.0, 0}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);
}

TEST(Malleable, SingleParallelJobUsesAllCores) {
  const auto r = schedule_malleable({{"p", 0.0, 40.0, 0}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);  // 40 core-s / 4 cores
}

TEST(Malleable, MaxThreadsCapsAllocation) {
  const auto r = schedule_malleable({{"p", 0.0, 40.0, 2}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 20.0);  // only 2 of 4 cores usable
}

TEST(Malleable, CoreSpeedScalesParallelWork) {
  const CpuModel fast{4, 2.0};
  const auto r = schedule_malleable({{"p", 0.0, 40.0, 0}}, fast);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 5.0);
}

TEST(Malleable, SerialThenParallelSequence) {
  const auto r = schedule_malleable({{"sp", 4.0, 8.0, 0}}, kDuo);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 8.0);  // 4 serial + 8/2 parallel
}

TEST(Malleable, TwoEqualJobsShareCoresFairly) {
  const auto r = schedule_malleable(
      {{"a", 0.0, 20.0, 0}, {"b", 0.0, 20.0, 0}}, kQuad);
  // Each gets 2 cores: 20 / 2 = 10 s, both finish together.
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 10.0);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 10.0);
}

TEST(Malleable, SurvivorInheritsFreedCores) {
  const auto r = schedule_malleable(
      {{"short", 0.0, 8.0, 0}, {"long", 0.0, 40.0, 0}}, kQuad);
  // Phase 1: 2+2 cores.  Short finishes at 4 s (8/2).  Long has consumed
  // 8 of 40, then runs on 4 cores: 32/4 = 8 s more -> 12 s total.
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 4.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 12.0);
}

TEST(Malleable, CapFreesCoresForOthers) {
  const auto r = schedule_malleable(
      {{"capped", 0.0, 10.0, 1}, {"wide", 0.0, 30.0, 0}}, kQuad);
  // capped gets 1 core; wide gets the other 3: 30/3 = 10 s; both 10 s.
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 10.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 10.0);
}

TEST(Malleable, SerialJobDoesNotStallParallelPeer) {
  const auto r = schedule_malleable(
      {{"serial", 12.0, 0.0, 0}, {"parallel", 0.0, 12.0, 0}}, kQuad);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 12.0);
  // Parallel peer holds 2 cores while sharing: 12/2 = 6 s.
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 6.0);
}

TEST(Malleable, ThreeJobsOnFourCores) {
  const auto r = schedule_malleable(
      {{"a", 0.0, 12.0, 0}, {"b", 0.0, 12.0, 0}, {"c", 0.0, 12.0, 0}},
      kQuad);
  // 4/3 cores each: 12 / (4/3) = 9 s.
  for (double f : r.finish_seconds) EXPECT_NEAR(f, 9.0, 1e-9);
}

TEST(Malleable, ZeroWorkJobFinishesAtZero) {
  const auto r = schedule_malleable(
      {{"noop", 0.0, 0.0, 0}, {"real", 5.0, 0.0, 0}}, kDuo);
  EXPECT_DOUBLE_EQ(r.finish_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(r.finish_seconds[1], 5.0);
}

TEST(Malleable, RejectsNegativeWork) {
  EXPECT_THROW(schedule_malleable({{"bad", -1.0, 0.0, 0}}, kDuo),
               std::invalid_argument);
}

TEST(Malleable, RejectsBadCpu) {
  EXPECT_THROW(schedule_malleable({{"j", 1.0, 1.0, 0}}, CpuModel{0, 1.0}),
               std::invalid_argument);
}

TEST(Malleable, MakespanIsMaxFinish) {
  const auto r = schedule_malleable(
      {{"a", 1.0, 0.0, 0}, {"b", 0.0, 100.0, 1}}, kQuad);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, r.finish_seconds[1]);
}

}  // namespace
}  // namespace mcsd::sim
