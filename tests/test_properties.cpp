// Cross-cutting property tests: determinism and roundtrip invariants
// exercised over randomised inputs (seed-parameterised sweeps).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "core/config.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "fam/protocol.hpp"
#include "mapreduce/engine.hpp"
#include "partition/partitioner.hpp"

namespace mcsd {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EngineSortedOutputIsRunToRunDeterministic) {
  apps::CorpusOptions corpus;
  corpus.bytes = 48 * 1024;
  corpus.vocabulary = 200;
  corpus.seed = GetParam();
  const std::string text = apps::generate_corpus(corpus);

  mr::Options opts;
  opts.num_workers = 3;
  opts.sort_output_by_key = true;
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks = mr::split_text(text, 4 * 1024);
  const auto a = engine.run(apps::WordCountSpec{}, chunks);
  const auto b = engine.run(apps::WordCountSpec{}, chunks);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST_P(SeedSweep, KeyValueMapRoundTripsArbitraryBytes) {
  Rng rng{GetParam()};
  KeyValueMap map;
  const auto entries = 1 + rng.next_below(12);
  for (std::uint64_t e = 0; e < entries; ++e) {
    std::string key = "k" + std::to_string(e);
    std::string value;
    const auto len = rng.next_below(64);
    for (std::uint64_t i = 0; i < len; ++i) {
      value.push_back(static_cast<char>(rng.next_below(256)));
    }
    map.set(std::move(key), std::move(value));
  }
  const auto parsed = KeyValueMap::parse(map.serialize());
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), map);
}

TEST_P(SeedSweep, FamRecordRoundTripsArbitraryPayload) {
  Rng rng{GetParam() ^ 0xFA3};
  fam::Record record;
  record.type = rng.next_below(2) == 0 ? fam::RecordType::kRequest
                                       : fam::RecordType::kResponse;
  record.seq = rng.next();
  record.module = "module-" + std::to_string(rng.next_below(100));
  if (record.type == fam::RecordType::kResponse && rng.next_below(2) == 0) {
    record.ok = false;
    record.error_message = "err\nwith=weird%chars";
  }
  const auto fields = rng.next_below(8);
  for (std::uint64_t f = 0; f < fields; ++f) {
    std::string value;
    const auto len = rng.next_below(40);
    for (std::uint64_t i = 0; i < len; ++i) {
      value.push_back(static_cast<char>(rng.next_below(256)));
    }
    record.payload.set("field" + std::to_string(f), std::move(value));
  }

  const auto decoded = fam::decode_record(fam::encode_record(record));
  ASSERT_TRUE(decoded.is_ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().type, record.type);
  EXPECT_EQ(decoded.value().seq, record.seq);
  EXPECT_EQ(decoded.value().module, record.module);
  EXPECT_EQ(decoded.value().ok, record.ok);
  EXPECT_EQ(decoded.value().payload, record.payload);
}

TEST_P(SeedSweep, FormatParseBytesRoundTripsRoundSizes) {
  Rng rng{GetParam() ^ 0xB17E5};
  for (int i = 0; i < 20; ++i) {
    // Round MiB values survive format->parse exactly (format emits at
    // most two decimals, exact for quarter-GiB and whole-MiB points).
    const std::uint64_t bytes = (1 + rng.next_below(4096)) << 20;
    const auto parsed = parse_bytes(format_bytes(bytes));
    ASSERT_TRUE(parsed.is_ok()) << format_bytes(bytes);
    // Within 1% after the two-decimal rounding.
    const double err =
        std::abs(static_cast<double>(parsed.value()) -
                 static_cast<double>(bytes)) /
        static_cast<double>(bytes);
    EXPECT_LT(err, 0.01) << format_bytes(bytes);
  }
}

TEST_P(SeedSweep, EngineEqualsSequentialUnderRandomisedShape) {
  // Property: for a random corpus, the hash-combining engine agrees with
  // the sequential reference whatever the worker count, bucket count, and
  // chunk granularity drawn for this seed.
  Rng rng{GetParam() ^ 0xC0FFEE};
  apps::CorpusOptions corpus;
  corpus.bytes = 24 * 1024 + rng.next_below(48 * 1024);
  corpus.vocabulary = 50 + rng.next_below(4000);
  corpus.seed = GetParam();
  const std::string text = apps::generate_corpus(corpus);

  mr::Options opts;
  opts.num_workers = 1 + rng.next_below(6);
  opts.num_reduce_buckets = 1 + rng.next_below(40);
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks =
      mr::split_text(text, 256 + rng.next_below(16 * 1024));

  std::map<std::string, std::uint64_t> parallel;
  for (const auto& kv : engine.run(apps::WordCountSpec{}, chunks)) {
    parallel[kv.key] += kv.value;
  }
  std::map<std::string, std::uint64_t> reference;
  for (const auto& kv : apps::wordcount_sequential(text)) {
    reference[kv.key] += kv.value;
  }
  EXPECT_EQ(parallel, reference)
      << "workers=" << opts.num_workers
      << " buckets=" << opts.num_reduce_buckets;
}

TEST_P(SeedSweep, PartitionThenEngineEqualsDirectEngine) {
  apps::CorpusOptions corpus;
  corpus.bytes = 40 * 1024;
  corpus.vocabulary = 120;
  corpus.seed = GetParam() * 7 + 3;
  const std::string text = apps::generate_corpus(corpus);

  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<apps::WordCountSpec> engine{opts};

  // Direct run over the whole text.
  std::map<std::string, std::uint64_t> direct;
  for (const auto& kv :
       engine.run(apps::WordCountSpec{}, mr::split_text(text, 4 * 1024))) {
    direct[kv.key] += kv.value;
  }

  // Fragment first, run per fragment, sum.
  Rng rng{GetParam()};
  part::PartitionOptions popts;
  popts.partition_size = 512 + rng.next_below(8 * 1024);
  std::map<std::string, std::uint64_t> fragmented;
  for (const auto& fragment : part::partition(text, popts)) {
    for (const auto& kv : engine.run(apps::WordCountSpec{},
                                     mr::split_text(fragment.text, 2048))) {
      fragmented[kv.key] += kv.value;
    }
  }
  EXPECT_EQ(direct, fragmented);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mcsd
