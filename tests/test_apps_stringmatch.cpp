#include "apps/stringmatch.hpp"

#include <gtest/gtest.h>

#include "apps/datagen.hpp"
#include "mapreduce/engine.hpp"

namespace mcsd::apps {
namespace {

TEST(StringMatchSequential, FindsPlantedKeys) {
  const std::string text = "nothing here\nthe KEY is here\nKEY again KEY\n";
  const auto matches = stringmatch_sequential(text, {"KEY"});
  // Line-level matching: the third line matches once even with two hits.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].line_offset, 13u);  // "the KEY is here"
  EXPECT_EQ(matches[1].line_offset, 29u);  // "KEY again KEY"
}

TEST(StringMatchSequential, MultipleKeysPerLine) {
  const std::string text = "ALPHA and BETA\n";
  const auto matches = stringmatch_sequential(text, {"ALPHA", "BETA", "GAMMA"});
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].key_index, 0u);
  EXPECT_EQ(matches[1].key_index, 1u);
}

TEST(StringMatchSequential, NoKeysNoMatches) {
  EXPECT_TRUE(stringmatch_sequential("some text\n", {}).empty());
}

TEST(StringMatchSequential, NoTrailingNewline) {
  const auto matches = stringmatch_sequential("find TOKEN", {"TOKEN"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].line_offset, 0u);
}

TEST(StringMatchSequential, EmptyText) {
  EXPECT_TRUE(stringmatch_sequential("", {"X"}).empty());
}

TEST(StringMatchSpec, ChunkOffsetsYieldAbsoluteLineOffsets) {
  StringMatchSpec spec;
  spec.keys = {"NEEDLE"};
  mr::Emitter<std::uint64_t, std::uint32_t> emitter{4};
  // Simulate a chunk starting at absolute offset 100.
  spec.map(mr::TextChunk{"no\nNEEDLE here\n", 100}, emitter);
  std::vector<MatchPair> pairs;
  for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
    for (const auto& kv : emitter.bucket(b)) {
      pairs.push_back(MatchPair{kv.key, kv.value});
    }
  }
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].key, 103u);  // 100 + len("no\n")
}

TEST(StringMatch, EngineMatchesSequentialOnGeneratedData) {
  LineFileOptions lf;
  lf.bytes = 128 * 1024;
  std::string text = generate_line_file(lf);
  KeysOptions ko;
  ko.count = 6;
  ko.plant_rate = 0.03;
  const auto keys = generate_and_plant_keys(text, ko);

  StringMatchSpec spec;
  spec.keys = keys;
  mr::Options opts;
  opts.num_workers = 3;
  mr::Engine<StringMatchSpec> engine{opts};
  const auto pairs = engine.run(spec, mr::split_lines(text, 8 * 1024));

  const auto expected = stringmatch_sequential(text, keys);
  EXPECT_EQ(to_sorted_matches(pairs), expected);
  EXPECT_GT(expected.size(), 10u);  // planting actually planted
}

TEST(StringMatch, NoReduceStageOutputCountEqualsEmitCount) {
  // With the identity reduce, |output| == |emits| — nothing is merged.
  const std::string text = "AA x\nx AA\nnope\n";
  StringMatchSpec spec;
  spec.keys = {"AA"};
  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<StringMatchSpec> engine{opts};
  mr::Metrics metrics;
  const auto pairs = engine.run(spec, mr::split_lines(text, 6), 0, &metrics);
  EXPECT_EQ(pairs.size(), metrics.map_emits);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(Match, OrderingByOffsetThenKey) {
  const Match a{10, 2};
  const Match b{10, 3};
  const Match c{11, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace mcsd::apps
