#include "cluster/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/trace.hpp"

namespace mcsd::sim {
namespace {

// --- trace generators ---------------------------------------------------

TEST(Trace, ProducesRequestedJobCountTimeOrdered) {
  TraceOptions opt;
  opt.jobs = 500;
  opt.horizon_seconds = 100.0;
  const auto trace = generate_trace(opt, 16);
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_seconds, trace[i - 1].arrival_seconds);
  }
  for (const TraceJob& job : trace) {
    EXPECT_LT(job.home_node, 16u);
    EXPECT_GE(job.input_bytes, opt.min_bytes);
    EXPECT_LE(job.input_bytes, opt.max_bytes);
  }
}

TEST(Trace, DeterministicUnderFixedSeed) {
  TraceOptions opt;
  opt.jobs = 200;
  opt.seed = 42;
  const auto a = generate_trace(opt, 8);
  const auto b = generate_trace(opt, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].kernel, b[i].kernel);
    EXPECT_EQ(a[i].input_bytes, b[i].input_bytes);
    EXPECT_EQ(a[i].home_node, b[i].home_node);
  }
}

TEST(Trace, SeedChangesTheTrace) {
  TraceOptions a_opt;
  a_opt.jobs = 100;
  a_opt.seed = 1;
  TraceOptions b_opt = a_opt;
  b_opt.seed = 2;
  const auto a = generate_trace(a_opt, 8);
  const auto b = generate_trace(b_opt, 8);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].arrival_seconds != b[i].arrival_seconds;
  }
  EXPECT_TRUE(differs);
}

/// Coefficient of variation of inter-arrival gaps: 1 for Poisson,
/// substantially above 1 for a bursty (MMPP) stream.
double interarrival_cov(const std::vector<TraceJob>& trace) {
  std::vector<double> gaps;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    gaps.push_back(trace[i].arrival_seconds - trace[i - 1].arrival_seconds);
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  return std::sqrt(var) / mean;
}

TEST(Trace, BurstyStreamIsBurstierThanPoisson) {
  TraceOptions opt;
  opt.jobs = 4000;
  opt.horizon_seconds = 600.0;
  opt.kind = TraceKind::kPoisson;
  const double poisson_cov = interarrival_cov(generate_trace(opt, 32));
  opt.kind = TraceKind::kBursty;
  const double bursty_cov = interarrival_cov(generate_trace(opt, 32));
  EXPECT_NEAR(poisson_cov, 1.0, 0.15);
  EXPECT_GT(bursty_cov, poisson_cov * 1.3);
}

TEST(Trace, ZipfMixSkewsTowardSmallJobs) {
  TraceOptions opt;
  opt.jobs = 4000;
  opt.kind = TraceKind::kZipfMix;
  const auto trace = generate_trace(opt, 32);
  std::size_t at_min = 0;
  bool saw_large = false;
  for (const TraceJob& job : trace) {
    if (job.input_bytes == opt.min_bytes) ++at_min;
    if (job.input_bytes >= opt.max_bytes / 2) saw_large = true;
  }
  // Rank 0 of the zipf ladder dominates; the elephant tail still shows.
  EXPECT_GT(at_min, trace.size() / 3);
  EXPECT_TRUE(saw_large);
}

TEST(Trace, RejectsBadOptions) {
  TraceOptions opt;
  EXPECT_THROW(generate_trace(opt, 0), std::invalid_argument);
  opt.jobs = 0;
  EXPECT_THROW(generate_trace(opt, 4), std::invalid_argument);
  opt.jobs = 10;
  opt.min_bytes = 2 * opt.max_bytes;
  EXPECT_THROW(generate_trace(opt, 4), std::invalid_argument);
}

// --- placement policies -------------------------------------------------

std::vector<NodeView> two_node_views() {
  NodeView sd;
  sd.index = 0;
  sd.is_sd = true;
  sd.cores = 2;
  sd.core_speed = 1.0;
  sd.disk_mibps = 150.0;
  NodeView host;
  host.index = 1;
  host.is_sd = false;
  host.cores = 4;
  host.core_speed = 1.33;
  host.disk_mibps = 150.0;
  return {sd, host};
}

TEST(Placement, FactoryKnowsAllPolicies) {
  EXPECT_NE(make_policy("random"), nullptr);
  EXPECT_NE(make_policy("greedy"), nullptr);
  EXPECT_NE(make_policy("contention"), nullptr);
  EXPECT_EQ(make_policy("psychic"), nullptr);
}

TEST(Placement, GreedyPicksLeastLoadedLowestIndexOnTies) {
  auto views = two_node_views();
  views[0].running_jobs = 3;
  views[1].running_jobs = 1;
  TraceJob job;
  PlacementContext ctx;
  Rng rng{1};
  GreedyPlacement greedy;
  EXPECT_EQ(greedy.place(job, views, ctx, rng), 1u);
  views[0].running_jobs = 1;
  EXPECT_EQ(greedy.place(job, views, ctx, rng), 0u);
}

TEST(Placement, ContentionPrefersIdleLocalHome) {
  // Data on node 0, everything idle, a congested fabric: the local read
  // (512 MiB / 150 MiB/s ~ 3.4 s) plus duo compute beats a 10+ s fabric
  // pull even onto the faster host cores, so home wins.
  auto views = two_node_views();
  TraceJob job;
  job.kernel = Kernel::kWordCount;
  job.input_bytes = 512ULL << 20;
  job.home_node = 0;
  PlacementContext ctx;
  ctx.fabric_mibps = 50.0;
  Rng rng{1};
  ContentionAwarePlacement contention;
  EXPECT_EQ(contention.place(job, views, ctx, rng), 0u);
}

TEST(Placement, ContentionAvoidsBackloggedHome) {
  // Same job, but the home node is buried in CPU backlog: the estimate
  // must route it to the idle host even at the price of a remote read.
  auto views = two_node_views();
  views[0].running_jobs = 6;
  views[0].cpu_backlog_ref_seconds = 5000.0;
  TraceJob job;
  job.kernel = Kernel::kWordCount;
  job.input_bytes = 512ULL << 20;
  job.home_node = 0;
  PlacementContext ctx;
  ctx.fabric_mibps = 1000.0;
  ctx.interference_per_job = 0.05;
  Rng rng{1};
  ContentionAwarePlacement contention;
  EXPECT_EQ(contention.place(job, views, ctx, rng), 1u);
}

TEST(Placement, EstimateChargesBacklogAndInterference) {
  auto views = two_node_views();
  TraceJob job;
  job.kernel = Kernel::kWordCount;
  job.input_bytes = 512ULL << 20;
  job.home_node = 0;
  PlacementContext ctx;
  ctx.fabric_mibps = 1000.0;
  ctx.interference_per_job = 0.05;
  const double idle =
      ContentionAwarePlacement::estimate_seconds(job, views[0], ctx);
  views[0].running_jobs = 4;
  views[0].cpu_backlog_ref_seconds = 100.0;
  const double busy =
      ContentionAwarePlacement::estimate_seconds(job, views[0], ctx);
  EXPECT_GT(busy, idle);
}

// --- the cluster simulator ----------------------------------------------

ClusterSpec small_cluster() {
  ClusterSpec spec;
  spec.sd_nodes = 16;
  spec.host_nodes = 4;
  return spec;
}

std::vector<TraceJob> small_trace(TraceKind kind = TraceKind::kPoisson) {
  TraceOptions opt;
  opt.kind = kind;
  opt.jobs = 400;
  opt.horizon_seconds = 120.0;
  return generate_trace(opt, 16);
}

TEST(ClusterSim, EveryJobFinishesAfterItsArrival) {
  const ClusterSpec spec = small_cluster();
  const auto trace = small_trace();
  const auto policy = make_policy("contention");
  const ClusterSimResult r = run_cluster_sim(spec, trace, *policy);
  ASSERT_EQ(r.jobs.size(), trace.size());
  for (const JobOutcome& job : r.jobs) {
    EXPECT_GT(job.finish_seconds, job.arrival_seconds);
    EXPECT_LT(job.node, spec.total_nodes());
    EXPECT_GT(job.ideal_seconds, 0.0);
  }
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_GT(r.events, trace.size());
}

TEST(ClusterSim, UtilizationsAreSane) {
  const ClusterSpec spec = small_cluster();
  const auto trace = small_trace();
  const auto policy = make_policy("greedy");
  const ClusterSimResult r = run_cluster_sim(spec, trace, *policy);
  EXPECT_GT(r.cpu_utilization, 0.0);
  EXPECT_LE(r.cpu_utilization, 1.0 + 1e-9);
  EXPECT_GE(r.fabric_utilization, 0.0);
  EXPECT_LE(r.fabric_utilization, 1.0 + 1e-9);
  EXPECT_GE(r.disk_utilization, 0.0);
  EXPECT_LE(r.disk_utilization, 1.0 + 1e-9);
}

TEST(ClusterSim, MakespanRespectsFluidLowerBound) {
  const ClusterSpec spec = small_cluster();
  const auto trace = small_trace();
  const double bound = fluid_makespan_lower_bound(spec, trace);
  for (const char* name : {"random", "greedy", "contention"}) {
    const auto policy = make_policy(name);
    const ClusterSimResult r = run_cluster_sim(spec, trace, *policy);
    EXPECT_GE(r.makespan_seconds, bound * (1.0 - 1e-9)) << name;
  }
}

TEST(ClusterSim, ByteIdenticalAcrossRepeats) {
  const ClusterSpec spec = small_cluster();
  const auto trace = small_trace(TraceKind::kBursty);
  for (const char* name : {"random", "greedy", "contention"}) {
    const auto p1 = make_policy(name);
    const auto p2 = make_policy(name);
    const ClusterSimResult a = run_cluster_sim(spec, trace, *p1, 7);
    const ClusterSimResult b = run_cluster_sim(spec, trace, *p2, 7);
    EXPECT_EQ(a.digest(), b.digest()) << name;
  }
}

TEST(ClusterSim, ContentionAwareBeatsGreedyOnMakespan) {
  // The acceptance-scale comparison runs in the bench; this medium
  // trace pins the same ordering in the test suite.
  ClusterSpec spec;
  spec.sd_nodes = 40;
  spec.host_nodes = 10;
  TraceOptions opt;
  opt.jobs = 1200;
  opt.horizon_seconds = 300.0;
  const auto trace = generate_trace(opt, spec.sd_nodes);
  const auto greedy = make_policy("greedy");
  const auto contention = make_policy("contention");
  const double greedy_makespan =
      run_cluster_sim(spec, trace, *greedy).makespan_seconds;
  const double contention_makespan =
      run_cluster_sim(spec, trace, *contention).makespan_seconds;
  EXPECT_LT(contention_makespan, greedy_makespan);
}

TEST(ClusterSim, ShareModeChangesTheSchedule) {
  ClusterSpec equal = small_cluster();
  equal.share_mode = ShareMode::kEqualShare;
  ClusterSpec prop = small_cluster();
  prop.share_mode = ShareMode::kProportional;
  const auto trace = small_trace();
  const auto p1 = make_policy("greedy");
  const auto p2 = make_policy("greedy");
  const ClusterSimResult a = run_cluster_sim(equal, trace, *p1);
  const ClusterSimResult b = run_cluster_sim(prop, trace, *p2);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(ClusterSim, ShuffleHeavyKernelsLoadTheFabric) {
  // An all-terasort trace (shuffle_ratio 1.0) must push more bytes over
  // the fabric than an all-matmul one (shuffle_ratio 0).
  ClusterSpec spec = small_cluster();
  TraceOptions opt;
  opt.jobs = 300;
  opt.horizon_seconds = 120.0;
  opt.kernel_weights = {0.0, 0.0, 0.0, 0.0, 1.0};  // terasort only
  const auto sort_trace = generate_trace(opt, spec.sd_nodes);
  opt.kernel_weights = {1.0, 0.0, 0.0, 0.0, 0.0};  // wordcount only
  const auto wc_trace = generate_trace(opt, spec.sd_nodes);
  const auto p1 = make_policy("contention");
  const auto p2 = make_policy("contention");
  const ClusterSimResult sorted = run_cluster_sim(spec, sort_trace, *p1);
  const ClusterSimResult wc = run_cluster_sim(spec, wc_trace, *p2);
  EXPECT_GT(sorted.fabric_utilization, wc.fabric_utilization);
}

TEST(ClusterSim, RejectsEmptyCluster) {
  ClusterSpec spec;
  spec.sd_nodes = 0;
  spec.host_nodes = 0;
  const auto policy = make_policy("greedy");
  EXPECT_THROW(run_cluster_sim(spec, {}, *policy), std::invalid_argument);
}

TEST(ClusterSim, KernelProfilesCoverTheMix) {
  EXPECT_DOUBLE_EQ(kernel_profile(Kernel::kHashJoin).shuffle_ratio, 1.0);
  EXPECT_DOUBLE_EQ(kernel_profile(Kernel::kTeraSort).shuffle_ratio, 1.0);
  EXPECT_LT(kernel_profile(Kernel::kWordCount).shuffle_ratio, 0.1);
  EXPECT_DOUBLE_EQ(kernel_profile(Kernel::kMatMul).shuffle_ratio, 0.0);
  EXPECT_GT(kernel_profile(Kernel::kTeraSort).reduce_fraction,
            kernel_profile(Kernel::kWordCount).reduce_fraction);
}

}  // namespace
}  // namespace mcsd::sim
