#include "core/result.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/log.hpp"

namespace mcsd {
namespace {

TEST(ErrorCode, Names) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_EQ(to_string(ErrorCode::kNotFound), "not_found");
  EXPECT_EQ(to_string(ErrorCode::kOutOfMemory), "out_of_memory");
  EXPECT_EQ(to_string(ErrorCode::kProtocolError), "protocol_error");
  EXPECT_EQ(to_string(ErrorCode::kTimeout), "timeout");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status s{ErrorCode::kIoError, "disk on fire"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kIoError);
  EXPECT_EQ(s.error().message(), "disk on fire");
  EXPECT_EQ(s.to_string(), "io_error: disk on fire");
}

TEST(Status, ErrorAccessOnOkThrows) {
  Status s;
  EXPECT_THROW((void)s.error(), std::logic_error);
}

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r{ErrorCode::kNotFound, "nope"};
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_FALSE(r.status().is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r{ErrorCode::kInternal, "bug"};
  EXPECT_THROW((void)r.value(), std::runtime_error);
}

TEST(Result, ErrorOnValueThrows) {
  Result<int> r{1};
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string(1000, 'x')};
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 1000u);
}

TEST(Result, WorksWithMoveOnlyLikeFlow) {
  const auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string{"fine"};
    return Error{ErrorCode::kUnavailable, "later"};
  };
  EXPECT_TRUE(make(true).is_ok());
  EXPECT_EQ(make(false).error().code(), ErrorCode::kUnavailable);
}

TEST(Logger, CaptureCollectsLines) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::kDebug);
  log.capture(true);
  MCSD_LOG(kInfo, "test") << "hello " << 42;
  MCSD_LOG(kError, "test") << "bad";
  const std::string captured = log.drain_captured();
  log.capture(false);
  log.set_level(before);
  EXPECT_NE(captured.find("[INFO] test: hello 42"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR] test: bad"), std::string::npos);
}

TEST(Logger, LevelFiltersOutput) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::kError);
  log.capture(true);
  MCSD_LOG(kDebug, "test") << "invisible";
  MCSD_LOG(kError, "test") << "visible";
  const std::string captured = log.drain_captured();
  log.capture(false);
  log.set_level(before);
  EXPECT_EQ(captured.find("invisible"), std::string::npos);
  EXPECT_NE(captured.find("visible"), std::string::npos);
}

}  // namespace
}  // namespace mcsd
