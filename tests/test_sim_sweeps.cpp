// Parameterised property sweeps over the simulator: invariants that must
// hold at *every* point of the evaluation space, not just the paper's
// four sampled sizes.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster_sim.hpp"
#include "cluster/placement.hpp"
#include "cluster/profiles.hpp"
#include "cluster/scenarios.hpp"
#include "cluster/trace.hpp"
#include "core/units.hpp"

namespace mcsd::sim {
namespace {

using namespace mcsd::literals;

constexpr std::uint64_t kPartition = 600_MiB;

// ---- sweep axis: data size in MiB --------------------------------------

class SizeSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Testbed tb = table1_testbed();
  AppProfile wc = wordcount_profile();
  AppProfile sm = stringmatch_profile();
  AppProfile mm = matmul_profile();

  [[nodiscard]] std::uint64_t bytes() const { return GetParam() * kMiB; }
  static constexpr std::uint64_t kMiB = 1ULL << 20;
};

TEST_P(SizeSweep, CostsArePositiveAndFinite) {
  for (const AppProfile& app : {wc, sm}) {
    for (const ExecMode mode :
         {ExecMode::kSequential, ExecMode::kParallelPartitioned}) {
      const auto run =
          run_single_app(tb, tb.sd_duo, app, bytes(), mode, kPartition);
      ASSERT_TRUE(run.completed()) << app.name << " " << to_string(mode);
      EXPECT_GT(run.seconds(), 0.0);
      EXPECT_LT(run.seconds(), 1e5);
    }
  }
}

TEST_P(SizeSweep, PartitionedNeverThrashes) {
  for (const AppProfile& app : {wc, sm}) {
    const auto run = run_single_app(tb, tb.sd_duo, app, bytes(),
                                    ExecMode::kParallelPartitioned,
                                    kPartition);
    EXPECT_DOUBLE_EQ(run.cost.thrash_seconds, 0.0) << app.name;
  }
}

TEST_P(SizeSweep, QuadNeverSlowerThanDuo) {
  for (const AppProfile& app : {wc, sm}) {
    const auto duo = run_single_app(tb, tb.sd_duo, app, bytes(),
                                    ExecMode::kParallelPartitioned,
                                    kPartition);
    const auto quad = run_single_app(tb, tb.sd_quad, app, bytes(),
                                     ExecMode::kParallelPartitioned,
                                     kPartition);
    EXPECT_LE(quad.seconds(), duo.seconds() + 1e-9) << app.name;
  }
}

TEST_P(SizeSweep, SequentialSlowerThanPartitionedParallel) {
  for (const AppProfile& app : {wc, sm}) {
    const auto seq =
        run_single_app(tb, tb.sd_duo, app, bytes(), ExecMode::kSequential);
    const auto par = run_single_app(tb, tb.sd_duo, app, bytes(),
                                    ExecMode::kParallelPartitioned,
                                    kPartition);
    EXPECT_GT(seq.seconds(), par.seconds()) << app.name;
  }
}

TEST_P(SizeSweep, McsdPartitionedIsTheBestPairScenario) {
  // At the paper's evaluated sizes (>= 500 MB) the framework must never
  // lose to the alternatives it is compared against.  Below that, a
  // four-fast-core host with no memory pressure legitimately beats a
  // duo-core storage node — offload is a large-data technique, which is
  // why the OffloadPolicy exists (completed alternatives only).
  if (bytes() < 500 * kMiB) {
    // Sub-paper-scale jobs finish in a second or two: the fixed
    // per-fragment overhead and the duo-vs-quad capability gap dominate,
    // and the alternatives legitimately win.  Assert only that the
    // framework's loss is bounded by its constant overheads.
    const auto reference = run_pair(tb, PairScenario::kMcsdPartitioned, mm,
                                    wc, bytes(), kPartition);
    const auto nopart = run_pair(tb, PairScenario::kMcsdNoPartition, mm, wc,
                                 bytes(), kPartition);
    ASSERT_TRUE(reference.completed);
    ASSERT_TRUE(nopart.completed);
    EXPECT_LT(reference.makespan_seconds - nopart.makespan_seconds, 1.0);
    return;
  }
  for (const AppProfile& data_app : {wc, sm}) {
    const auto reference = run_pair(tb, PairScenario::kMcsdPartitioned, mm,
                                    data_app, bytes(), kPartition);
    ASSERT_TRUE(reference.completed);
    for (const PairScenario s :
         {PairScenario::kHostOnly, PairScenario::kTraditionalSd,
          PairScenario::kMcsdNoPartition}) {
      const auto other = run_pair(tb, s, mm, data_app, bytes(), kPartition);
      if (!other.completed) continue;
      EXPECT_GE(other.makespan_seconds,
                reference.makespan_seconds * 0.90)
          << to_string(s) << " " << data_app.name;
    }
  }
}

TEST_P(SizeSweep, MakespanDominatedByItsJobs) {
  const auto r = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                          bytes(), kPartition);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.makespan_seconds,
            std::max(r.compute_job_seconds, r.data_job_seconds) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SizesMiB, SizeSweep,
                         ::testing::Values(64, 200, 500, 750, 1024, 1280,
                                           1536, 2048, 3072));

// ---- monotonicity across the sweep -------------------------------------

TEST(SizeMonotonicity, PartitionedElapsedGrowsWithInput) {
  const Testbed tb = table1_testbed();
  const AppProfile wc = wordcount_profile();
  double previous = 0.0;
  for (std::uint64_t mib = 128; mib <= 4096; mib *= 2) {
    const auto run = run_single_app(tb, tb.sd_duo, wc, mib << 20,
                                    ExecMode::kParallelPartitioned,
                                    kPartition);
    ASSERT_TRUE(run.completed());
    EXPECT_GT(run.seconds(), previous) << mib << " MiB";
    previous = run.seconds();
  }
}

TEST(SizeMonotonicity, PairSpeedupGrowsPastThresholdForWc) {
  const Testbed tb = table1_testbed();
  const AppProfile wc = wordcount_profile();
  const AppProfile mm = matmul_profile();
  double previous = 0.0;
  // From 700 MiB on, the host-only WC run is past the memory knee:
  // speedups must increase monotonically with the data size.
  for (std::uint64_t mib = 700; mib <= 1280; mib += 145) {
    const auto host = run_pair(tb, PairScenario::kHostOnly, mm, wc,
                               mib << 20, kPartition);
    const auto mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                               mib << 20, kPartition);
    const double speedup = speedup_vs(host, mcsd);
    EXPECT_GT(speedup, previous) << mib << " MiB";
    previous = speedup;
  }
}

// ---- partition-size sensitivity around the U-bottom ---------------------

class PartitionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionSweep, FlatBottomWithinTwentyPercentOf600M) {
  const Testbed tb = table1_testbed();
  const AppProfile wc = wordcount_profile();
  const auto at_600 = run_single_app(tb, tb.sd_duo, wc, 2_GiB,
                                     ExecMode::kParallelPartitioned,
                                     600_MiB);
  const auto at_p = run_single_app(tb, tb.sd_duo, wc, 2_GiB,
                                   ExecMode::kParallelPartitioned,
                                   GetParam());
  EXPECT_LT(at_p.seconds(), at_600.seconds() * 1.2)
      << format_bytes(GetParam());
}

INSTANTIATE_TEST_SUITE_P(BottomSizes, PartitionSweep,
                         ::testing::Values(128_MiB, 256_MiB, 400_MiB,
                                           512_MiB, 600_MiB));

// ---- cluster scale: the DES against the fluid closed form ---------------

TEST(ClusterScale, HundredNodesThousandJobsTracksFluidModel) {
  // A homogeneous cluster, a homogeneous (wordcount-only) job mix, and
  // a load the cluster can absorb: the regime where the fluid closed
  // form is actually predictive.  The event-by-event schedule must land
  // above the work-conservation bound (it is a true lower bound) and
  // within a tight factor of it — the DES adds only the drain of the
  // last arrivals and mild queueing transients here.  Saturated and
  // heavy-tailed regimes are exercised elsewhere; their straggler
  // makespans are exactly what a fluid bound misses.
  ClusterSpec spec;
  spec.sd_nodes = 100;
  spec.host_nodes = 0;
  TraceOptions opt;
  opt.jobs = 1000;
  opt.horizon_seconds = 300.0;
  opt.kernel_weights = {1.0, 0.0, 0.0, 0.0, 0.0};  // wordcount only
  const auto trace = generate_trace(opt, spec.sd_nodes);
  ASSERT_EQ(trace.size(), 1000u);

  const double bound = fluid_makespan_lower_bound(spec, trace);
  ASSERT_GT(bound, 0.0);
  const auto policy = make_policy("contention");
  const ClusterSimResult r = run_cluster_sim(spec, trace, *policy);
  EXPECT_GE(r.makespan_seconds, bound * (1.0 - 1e-9));
  EXPECT_LE(r.makespan_seconds, bound * 1.25)
      << "DES makespan " << r.makespan_seconds << "s vs fluid bound "
      << bound << "s";
}

TEST(ClusterScale, HundredNodeRunIsByteIdenticalAcrossRepeats) {
  ClusterSpec spec;
  spec.sd_nodes = 100;
  spec.host_nodes = 0;
  TraceOptions opt;
  opt.jobs = 1000;
  opt.horizon_seconds = 100.0;
  const auto trace = generate_trace(opt, spec.sd_nodes);
  const auto p1 = make_policy("contention");
  const auto p2 = make_policy("contention");
  const ClusterSimResult a = run_cluster_sim(spec, trace, *p1, 3);
  const ClusterSimResult b = run_cluster_sim(spec, trace, *p2, 3);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace mcsd::sim
