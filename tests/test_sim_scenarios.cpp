// Shape tests for the paper's evaluation: these encode the qualitative
// claims of Section V against the simulator, so a model regression that
// would flip a figure's conclusion fails CI.
#include "cluster/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/profiles.hpp"
#include "core/units.hpp"

namespace mcsd::sim {
namespace {

using namespace mcsd::literals;

constexpr std::uint64_t kPartition600M = 600_MiB;

class ScenarioTest : public ::testing::Test {
 protected:
  Testbed tb = table1_testbed();
  AppProfile wc = wordcount_profile();
  AppProfile sm = stringmatch_profile();
  AppProfile mm = matmul_profile();
};

// ---- Fig. 8 single-application shapes --------------------------------

TEST_F(ScenarioTest, Fig8a_PartitionedBeatsSequentialByAbout2xOnDuo) {
  for (const std::uint64_t bytes : {500_MiB, 750_MiB, 1_GiB}) {
    const auto seq =
        run_single_app(tb, tb.sd_duo, wc, bytes, ExecMode::kSequential);
    const auto part = run_single_app(tb, tb.sd_duo, wc, bytes,
                                     ExecMode::kParallelPartitioned,
                                     kPartition600M);
    const double speedup = seq.seconds() / part.seconds();
    EXPECT_GT(speedup, 1.5) << format_bytes(bytes);
    EXPECT_LT(speedup, 3.0) << format_bytes(bytes);
  }
}

TEST_F(ScenarioTest, Fig8a_QuadOutspeedsDuo) {
  const std::uint64_t bytes = 1_GiB;
  for (const AppProfile& app : {wc, sm}) {
    const auto seq_duo =
        run_single_app(tb, tb.sd_duo, app, bytes, ExecMode::kSequential);
    const auto part_duo = run_single_app(
        tb, tb.sd_duo, app, bytes, ExecMode::kParallelPartitioned,
        kPartition600M);
    const auto seq_quad =
        run_single_app(tb, tb.sd_quad, app, bytes, ExecMode::kSequential);
    const auto part_quad = run_single_app(
        tb, tb.sd_quad, app, bytes, ExecMode::kParallelPartitioned,
        kPartition600M);
    const double duo_speedup = seq_duo.seconds() / part_duo.seconds();
    const double quad_speedup = seq_quad.seconds() / part_quad.seconds();
    EXPECT_GT(quad_speedup, duo_speedup) << app.name;
  }
}

TEST_F(ScenarioTest, Fig8a_PartitionedMatchesNativeBelowThreshold) {
  // "when the data size is in a reasonable interval ... the traditional
  // parallel approach provides almost the same performance".
  const auto native = run_single_app(tb, tb.sd_duo, wc, 500_MiB,
                                     ExecMode::kParallelNative);
  const auto part = run_single_app(tb, tb.sd_duo, wc, 500_MiB,
                                   ExecMode::kParallelPartitioned,
                                   kPartition600M);
  EXPECT_NEAR(native.seconds() / part.seconds(), 1.0, 0.15);
}

TEST_F(ScenarioTest, Fig8_WordCountNativeCollapsesAtLargeSizes) {
  // "the elapsed time of Partition-enabled approach is only 1/6 of the
  // traditional one" for huge WC inputs.
  const auto native =
      run_single_app(tb, tb.sd_duo, wc, 1_GiB + 256_MiB,
                     ExecMode::kParallelNative);
  const auto part = run_single_app(tb, tb.sd_duo, wc, 1_GiB + 256_MiB,
                                   ExecMode::kParallelPartitioned,
                                   kPartition600M);
  ASSERT_TRUE(native.completed());
  const double ratio = native.seconds() / part.seconds();
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 15.0);
}

TEST_F(ScenarioTest, Fig8b_NativeFailsAbove1500M) {
  // "the traditional Phoenix cannot support the Word-count and the
  // String-match for data size larger than 1.5G".
  for (const AppProfile& app : {wc, sm}) {
    const auto at_2g = run_single_app(tb, tb.sd_duo, app, 2_GiB,
                                      ExecMode::kParallelNative);
    EXPECT_FALSE(at_2g.completed()) << app.name;
    const auto part = run_single_app(tb, tb.sd_duo, app, 2_GiB,
                                     ExecMode::kParallelPartitioned,
                                     kPartition600M);
    EXPECT_TRUE(part.completed()) << app.name;
  }
}

TEST_F(ScenarioTest, Fig8bc_PartitionedGrowthIsNearLinear) {
  // The paper's growth curves are "linear-like" for the partitioned runs.
  for (const AppProfile& app : {wc, sm}) {
    const auto t1 = run_single_app(tb, tb.sd_duo, app, 500_MiB,
                                   ExecMode::kParallelPartitioned,
                                   kPartition600M)
                        .seconds();
    const auto t4 = run_single_app(tb, tb.sd_duo, app, 2_GiB,
                                   ExecMode::kParallelPartitioned,
                                   kPartition600M)
                        .seconds();
    EXPECT_NEAR(t4 / t1, 4.0, 1.2) << app.name;  // 4x data -> ~4x time
  }
}

// ---- Fig. 9 / Fig. 10 multi-application shapes ------------------------

TEST_F(ScenarioTest, Fig9_McsdBeatsTraditionalSdByAbout2x) {
  // "compared with the traditional (single-core processor equipped) SD,
  // the McSD ... averagely improves the overall performance by 2X".
  for (const std::uint64_t bytes : {500_MiB, 750_MiB, 1_GiB, 1_GiB + 256_MiB}) {
    const auto trad = run_pair(tb, PairScenario::kTraditionalSd, mm, wc,
                               bytes, kPartition600M);
    const auto mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                               bytes, kPartition600M);
    const double speedup = speedup_vs(trad, mcsd);
    EXPECT_GT(speedup, 1.4) << format_bytes(bytes);
    EXPECT_LT(speedup, 3.5) << format_bytes(bytes);
  }
}

TEST_F(ScenarioTest, Fig9_HostOnlyBlowsUpPastMemoryThreshold) {
  // Below the threshold: modest speedup.  Past it: the non-partitioned
  // host-only run thrashes and the ratio explodes (paper: up to ~17x).
  const auto small_host = run_pair(tb, PairScenario::kHostOnly, mm, wc,
                                   500_MiB, kPartition600M);
  const auto small_mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                                   500_MiB, kPartition600M);
  const double small_speedup = speedup_vs(small_host, small_mcsd);
  EXPECT_LT(small_speedup, 4.0);

  const auto big_host = run_pair(tb, PairScenario::kHostOnly, mm, wc,
                                 1_GiB + 256_MiB, kPartition600M);
  const auto big_mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                                 1_GiB + 256_MiB, kPartition600M);
  const double big_speedup = speedup_vs(big_host, big_mcsd);
  EXPECT_GT(big_speedup, 6.0);
  EXPECT_LT(big_speedup, 30.0);
  EXPECT_GT(big_speedup, small_speedup * 2);
}

TEST_F(ScenarioTest, Fig9_NoPartitionBlowsUpButLessThanHostOnly) {
  const std::uint64_t bytes = 1_GiB + 256_MiB;
  const auto host = run_pair(tb, PairScenario::kHostOnly, mm, wc, bytes,
                             kPartition600M);
  const auto nopart = run_pair(tb, PairScenario::kMcsdNoPartition, mm, wc,
                               bytes, kPartition600M);
  const auto mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                             bytes, kPartition600M);
  const double host_speedup = speedup_vs(host, mcsd);
  const double nopart_speedup = speedup_vs(nopart, mcsd);
  EXPECT_GT(nopart_speedup, 3.0);
  EXPECT_GT(host_speedup, nopart_speedup);  // host-only is the worst case
}

TEST_F(ScenarioTest, Fig9_NoPartitionNearParityBelowThreshold) {
  // "the McSD can only make slightly improvement when the data size are
  // 500MB and 750MB (below the threshold)".
  const auto nopart = run_pair(tb, PairScenario::kMcsdNoPartition, mm, wc,
                               500_MiB, kPartition600M);
  const auto mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                             500_MiB, kPartition600M);
  EXPECT_NEAR(speedup_vs(nopart, mcsd), 1.0, 0.25);
}

TEST_F(ScenarioTest, Fig10_StringMatchSpeedupsStayNear2x) {
  // MM/SM: "the speedups ... are both averagely 2X" — no blow-up,
  // because SM's 2x footprint barely exceeds node memory.
  for (const std::uint64_t bytes : {500_MiB, 750_MiB, 1_GiB, 1_GiB + 256_MiB}) {
    const auto mcsd = run_pair(tb, PairScenario::kMcsdPartitioned, mm, sm,
                               bytes, kPartition600M);
    for (const PairScenario s :
         {PairScenario::kHostOnly, PairScenario::kTraditionalSd,
          PairScenario::kMcsdNoPartition}) {
      const auto other = run_pair(tb, s, mm, sm, bytes, kPartition600M);
      const double speedup = speedup_vs(other, mcsd);
      EXPECT_GT(speedup, 0.8) << to_string(s) << " " << format_bytes(bytes);
      EXPECT_LT(speedup, 5.0) << to_string(s) << " " << format_bytes(bytes);
    }
  }
}

TEST_F(ScenarioTest, Fig10_MilderThanFig9PastThreshold) {
  // At 1.25G the WC pair must blow up far more than the SM pair.
  const std::uint64_t bytes = 1_GiB + 256_MiB;
  const auto wc_host = run_pair(tb, PairScenario::kHostOnly, mm, wc, bytes,
                                kPartition600M);
  const auto wc_ref = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc,
                               bytes, kPartition600M);
  const auto sm_host = run_pair(tb, PairScenario::kHostOnly, mm, sm, bytes,
                                kPartition600M);
  const auto sm_ref = run_pair(tb, PairScenario::kMcsdPartitioned, mm, sm,
                               bytes, kPartition600M);
  EXPECT_GT(speedup_vs(wc_host, wc_ref), 2.0 * speedup_vs(sm_host, sm_ref));
}

TEST_F(ScenarioTest, ScenarioResultsCarryDetail) {
  const auto r = run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc, 1_GiB,
                          kPartition600M);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_GT(r.data_job_seconds, 0.0);
  EXPECT_GT(r.compute_job_seconds, 0.0);
  EXPECT_GE(r.makespan_seconds,
            std::max(r.compute_job_seconds, r.data_job_seconds) - 1e-9);
  EXPECT_GT(r.data_job_cost.fragments, 1u);
}

TEST_F(ScenarioTest, SpeedupVsHandlesFailures) {
  PairResult bad;
  bad.completed = false;
  PairResult good;
  good.completed = true;
  good.makespan_seconds = 10.0;
  EXPECT_DOUBLE_EQ(speedup_vs(bad, good), 0.0);
  EXPECT_DOUBLE_EQ(speedup_vs(good, bad), 0.0);
}

}  // namespace
}  // namespace mcsd::sim
