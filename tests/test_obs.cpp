#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/io.hpp"
#include "obs/histogram.hpp"
#include "obs/reporter.hpp"
#include "obs/trace.hpp"

namespace mcsd::obs {
namespace {

// The registry and trace rings are process-global, so every test uses
// metric names prefixed with its own test name and asserts on deltas,
// not absolute registry state.

class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : was_(enabled()) { set_enabled(true); }
  ~ObsEnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

TEST(Counter, AccumulatesAcrossShards) {
  ObsEnabledGuard guard;
  Counter& c = Registry::instance().counter("t.counter.accum");
  const std::uint64_t before = c.value();
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), before + 12);
}

TEST(Counter, RegistryReturnsStableReference) {
  Counter& a = Registry::instance().counter("t.counter.stable");
  Counter& b = Registry::instance().counter("t.counter.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Counter, EightThreadsSumExactly) {
  ObsEnabledGuard guard;
  Counter& c = Registry::instance().counter("t.counter.mt");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), before + kThreads * kPerThread);
}

TEST(Gauge, SetAndSnapshot) {
  ObsEnabledGuard guard;
  Gauge& g = Registry::instance().gauge("t.gauge.set");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, BucketsByLogTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
}

TEST(Histogram, AggregatesCountSumMax) {
  ObsEnabledGuard guard;
  Histogram& h = Registry::instance().histogram("t.hist.agg", "us");
  const HistogramData before = h.aggregate();
  h.record(10);
  h.record(100);
  h.record(1000);
  const HistogramData after = h.aggregate();
  EXPECT_EQ(after.count - before.count, 3u);
  EXPECT_EQ(after.sum - before.sum, 1110u);
  EXPECT_GE(after.max, 1000u);
  EXPECT_GT(after.mean(), 0.0);
}

TEST(Histogram, PercentileIsMonotonicAndBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramData d = h.aggregate();
  const std::uint64_t p50 = d.percentile(0.50);
  const std::uint64_t p99 = d.percentile(0.99);
  EXPECT_LE(p50, p99);
  // A log2 histogram reports the bucket upper bound: within 2x of truth.
  EXPECT_GE(p50, 500u - 1);
  EXPECT_LE(p99, 2048u);
}

TEST(Histogram, ConcurrentRecordsAllCounted) {
  ObsEnabledGuard guard;
  Histogram& h = Registry::instance().histogram("t.hist.mt", "us");
  const std::uint64_t before = h.aggregate().count;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(i % (1u << (t + 1)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.aggregate().count - before, kThreads * kPerThread);
}

TEST(Registry, SnapshotContainsRegisteredMetrics) {
  ObsEnabledGuard guard;
  Registry::instance().counter("t.snap.counter").add(3);
  Registry::instance().gauge("t.snap.gauge").set(9);
  Registry::instance().histogram("t.snap.hist", "bytes").record(512);
  const MetricsSnapshot snap = Registry::instance().snapshot();

  const auto has_counter = [&](const std::string& name) {
    for (const auto& c : snap.counters) {
      if (c.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter("t.snap.counter"));
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "t.snap.hist") {
      found_hist = true;
      EXPECT_EQ(h.unit, "bytes");
      EXPECT_GE(h.data.count, 1u);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST(TraceRing, OverwritesOldestPastCapacity) {
  TraceRing ring{/*tid=*/999};
  const std::uint64_t total = TraceRing::kCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    TraceEvent e{};
    e.start_ns = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.total_pushed(), total);
  const auto events = ring.drain_copy();
  ASSERT_EQ(events.size(), TraceRing::kCapacity);
  // The survivors are the newest kCapacity events, in order.
  EXPECT_EQ(events.front().start_ns, total - TraceRing::kCapacity);
  EXPECT_EQ(events.back().start_ns, total - 1);
}

#if MCSD_OBS_ENABLED
TEST(Span, RecordsNameCategoryAndDuration) {
  ObsEnabledGuard guard;
  const std::uint64_t before = TraceRegistry::instance().spans_recorded();
  {
    MCSD_OBS_SPAN("test", "test.span_records");
  }
  EXPECT_EQ(TraceRegistry::instance().spans_recorded(), before + 1);
  const auto events = TraceRegistry::instance().this_thread_ring().drain_copy();
  ASSERT_FALSE(events.empty());
  const TraceEvent& last = events.back();
  EXPECT_STREQ(last.name, "test.span_records");
  EXPECT_STREQ(last.category, "test");
}

TEST(Span, DisabledRecordsNothing) {
  ObsEnabledGuard guard;
  set_enabled(false);
  const std::uint64_t before = TraceRegistry::instance().spans_recorded();
  {
    MCSD_OBS_SPAN("test", "test.span_disabled");
  }
  EXPECT_EQ(TraceRegistry::instance().spans_recorded(), before);
}

// The TSan target: 8 threads producing spans + counters + histogram
// records while the main thread concurrently snapshots and renders the
// trace.  Correctness assertion is exact span accounting; the data-race
// assertion is TSan's (ctest -L tsan / the tsan CI job).
TEST(Obs, ConcurrentProducersAndExporterAreClean) {
  ObsEnabledGuard guard;
  Counter& c = Registry::instance().counter("t.mixed.counter");
  Histogram& h = Registry::instance().histogram("t.mixed.hist", "us");
  const std::uint64_t spans_before =
      TraceRegistry::instance().spans_recorded();
  const std::uint64_t count_before = c.value();

  constexpr int kThreads = 8;
  constexpr int kIters = 2'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        MCSD_OBS_SPAN("test", "test.mixed");
        c.add(1);
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent export while producers are live — must be race-free.
  for (int i = 0; i < 20; ++i) {
    const std::string rendered = render_chrome_trace();
    EXPECT_NE(rendered.find("traceEvents"), std::string::npos);
    (void)Registry::instance().snapshot();
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value() - count_before,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(TraceRegistry::instance().spans_recorded() - spans_before,
            static_cast<std::uint64_t>(kThreads) * kIters);
}
#endif  // MCSD_OBS_ENABLED

TEST(Reporter, WritesLoadableTraceFile) {
  ObsEnabledGuard guard;
  Registry::instance().counter("t.report.counter").add(1);
  {
    MCSD_OBS_SPAN("test", "test.report");
  }
  TempDir dir{"obs-test"};
  const auto path = dir / "trace.json";
  ASSERT_TRUE(write_trace_json(path).is_ok());
  const auto contents = read_file(path);
  ASSERT_TRUE(contents.is_ok());
  EXPECT_NE(contents.value().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.value().find("\"mcsdMetrics\""), std::string::npos);
  // Braces and brackets balance — cheap structural JSON sanity.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < contents.value().size(); ++i) {
    const char ch = contents.value()[i];
    if (ch == '"' && (i == 0 || contents.value()[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) continue;
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Reporter, MetricsTableListsEverything) {
  ObsEnabledGuard guard;
  Registry::instance().counter("t.table.counter").add(2);
  Registry::instance().histogram("t.table.hist", "us").record(100);
  const std::string table =
      render_metrics_table(Registry::instance().snapshot());
  EXPECT_NE(table.find("t.table.counter"), std::string::npos);
  EXPECT_NE(table.find("t.table.hist"), std::string::npos);
}

}  // namespace
}  // namespace mcsd::obs
