#include "apps/datagen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/strings.hpp"

namespace mcsd::apps {
namespace {

TEST(GenerateVocabulary, DeterministicAndSized) {
  const auto a = generate_vocabulary(100, 7);
  const auto b = generate_vocabulary(100, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
  for (const auto& w : a) {
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 12u);
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

TEST(GenerateCorpus, ApproximatelySized) {
  CorpusOptions opts;
  opts.bytes = 100 * 1024;
  const auto text = generate_corpus(opts);
  EXPECT_GE(text.size(), opts.bytes);
  EXPECT_LE(text.size(), opts.bytes + 64);
  EXPECT_EQ(text.back(), '\n');
}

TEST(GenerateCorpus, Deterministic) {
  CorpusOptions opts;
  opts.bytes = 10 * 1024;
  EXPECT_EQ(generate_corpus(opts), generate_corpus(opts));
  CorpusOptions other = opts;
  other.seed = opts.seed + 1;
  EXPECT_NE(generate_corpus(opts), generate_corpus(other));
}

TEST(GenerateCorpus, ZipfSkewVisibleInWordCounts) {
  CorpusOptions opts;
  opts.bytes = 200 * 1024;
  opts.vocabulary = 2000;
  const auto text = generate_corpus(opts);
  auto counts = wordcount_sequential(text);
  sort_by_frequency_desc(counts);
  ASSERT_GT(counts.size(), 100u);
  // Head word should dominate the tail by an order of magnitude.
  EXPECT_GT(counts.front().value, counts[counts.size() / 2].value * 10);
}

TEST(GenerateCorpus, RejectsEmptyVocabulary) {
  CorpusOptions opts;
  opts.vocabulary = 0;
  EXPECT_THROW(generate_corpus(opts), std::invalid_argument);
}

TEST(GenerateLineFile, LinesAreLowercase) {
  LineFileOptions opts;
  opts.bytes = 16 * 1024;
  const auto text = generate_line_file(opts);
  EXPECT_GE(text.size(), opts.bytes);
  for (char c : text) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '\n');
  }
}

TEST(GenerateLineFile, Deterministic) {
  LineFileOptions opts;
  opts.bytes = 4 * 1024;
  EXPECT_EQ(generate_line_file(opts), generate_line_file(opts));
}

TEST(GenerateAndPlantKeys, KeysAreUppercaseAndSized) {
  LineFileOptions lf;
  lf.bytes = 32 * 1024;
  std::string text = generate_line_file(lf);
  KeysOptions ko;
  ko.count = 5;
  ko.key_length = 7;
  const auto keys = generate_and_plant_keys(text, ko);
  EXPECT_EQ(keys.size(), 5u);
  for (const auto& k : keys) {
    EXPECT_EQ(k.size(), 7u);
    for (char c : k) EXPECT_TRUE(c >= 'A' && c <= 'Z');
  }
}

TEST(GenerateAndPlantKeys, PlantingPreservesLineStructure) {
  LineFileOptions lf;
  lf.bytes = 32 * 1024;
  const std::string before = generate_line_file(lf);
  std::string after = before;
  KeysOptions ko;
  ko.plant_rate = 0.1;
  generate_and_plant_keys(after, ko);
  EXPECT_EQ(after.size(), before.size());
  EXPECT_EQ(std::count(after.begin(), after.end(), '\n'),
            std::count(before.begin(), before.end(), '\n'));
}

TEST(GenerateAndPlantKeys, PlantRateControlsMatchVolume) {
  LineFileOptions lf;
  lf.bytes = 64 * 1024;
  std::string sparse_text = generate_line_file(lf);
  std::string dense_text = sparse_text;

  KeysOptions sparse;
  sparse.plant_rate = 0.01;
  KeysOptions dense;
  dense.plant_rate = 0.2;
  const auto sparse_keys = generate_and_plant_keys(sparse_text, sparse);
  const auto dense_keys = generate_and_plant_keys(dense_text, dense);

  const auto sparse_matches =
      stringmatch_sequential(sparse_text, sparse_keys).size();
  const auto dense_matches =
      stringmatch_sequential(dense_text, dense_keys).size();
  EXPECT_GT(dense_matches, sparse_matches * 5);
}

TEST(GenerateAndPlantKeys, ZeroRatePlantsNothing) {
  LineFileOptions lf;
  lf.bytes = 16 * 1024;
  std::string text = generate_line_file(lf);
  KeysOptions ko;
  ko.plant_rate = 0.0;
  const auto keys = generate_and_plant_keys(text, ko);
  // Uppercase keys cannot occur in the lowercase file by accident.
  EXPECT_TRUE(stringmatch_sequential(text, keys).empty());
}

TEST(GenerateAndPlantKeys, RejectsDegenerateOptions) {
  std::string text = "abc\n";
  KeysOptions ko;
  ko.count = 0;
  EXPECT_THROW(generate_and_plant_keys(text, ko), std::invalid_argument);
}

TEST(GenerateMatrix, DeterministicAndInRange) {
  const Matrix a = generate_matrix(8, 8, 5);
  const Matrix b = generate_matrix(8, 8, 5);
  EXPECT_EQ(a, b);
  for (double v : a.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  const Matrix c = generate_matrix(8, 8, 6);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace mcsd::apps
