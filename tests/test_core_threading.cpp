#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/mpmc_queue.hpp"
#include "core/thread_pool.hpp"

namespace mcsd {
namespace {

// ---------------------------------------------------------------------------
// InlineTask: the allocation-free dispatch slot used by ThreadPool.
// ---------------------------------------------------------------------------

TEST(InlineTask, SmallCallableRunsInline) {
  int hits = 0;
  InlineTask task{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(task));
  task();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, MoveOnlyCallableSupported) {
  auto flag = std::make_unique<int>(0);
  int* raw = flag.get();
  InlineTask task{[owned = std::move(flag)] { *owned = 42; }};
  task();
  EXPECT_EQ(*raw, 42);
}

TEST(InlineTask, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  InlineTask a{[&hits] { ++hits; }};
  InlineTask b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, LargeCallableFallsBackToHeapAndStillRuns) {
  // Payload far beyond kInlineBytes exercises the heap-fallback ops.
  std::array<std::uint64_t, 32> payload{};
  payload.fill(7);
  std::uint64_t sum = 0;
  InlineTask task{[payload, &sum] {
    for (auto v : payload) sum += v;
  }};
  static_assert(sizeof(payload) > InlineTask::kInlineBytes);
  InlineTask moved{std::move(task)};
  moved();
  EXPECT_EQ(sum, 7u * 32u);
}

TEST(InlineTask, DestroysCapturesWithoutRunning) {
  // Dropping an un-run task must release its captures (no leaks under
  // ASan) — the pool destructor drains queued tasks this way.
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  {
    InlineTask task{[held = std::move(tracked)] { (void)held; }};
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineTask, AssignmentReplacesPreviousCallable) {
  std::string log;
  InlineTask task{[&log] { log += "first"; }};
  task = InlineTask{[&log] { log += "second"; }};
  task();
  EXPECT_EQ(log, "second");
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(MpmcQueue, TryPopEmpty) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, BoundedTryPushFull) {
  MpmcQueue<int> q{2};
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(MpmcQueue, CloseDrainsThenReturnsEmpty) {
  MpmcQueue<int> q;
  q.push(10);
  q.close();
  EXPECT_FALSE(q.push(11));
  EXPECT_EQ(q.pop(), 10);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 2'000;
  MpmcQueue<int> q{128};
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kItemsEach; ++i) q.push(i);
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long expected =
      static_cast<long long>(kProducers) * kItemsEach * (kItemsEach + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
  EXPECT_EQ(popped.load(), kProducers * kItemsEach);
}

TEST(MpmcQueue, MoveOnlyNonDefaultConstructibleElements) {
  // The ring stores raw slots: elements need neither default construction
  // nor copying (InlineTask itself rides this queue).
  MpmcQueue<std::unique_ptr<int>> q{2};
  q.push(std::make_unique<int>(7));
  q.push(std::make_unique<int>(9));
  EXPECT_EQ(**q.pop(), 7);
  EXPECT_EQ(**q.pop(), 9);
}

TEST(MpmcQueue, DestructorDrainsUnpoppedElements) {
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> watch = tracked;
  {
    MpmcQueue<std::shared_ptr<int>> q;
    q.push(std::move(tracked));
  }
  EXPECT_TRUE(watch.expired());
}

TEST(MpmcQueue, UnboundedGrowthPreservesFifo) {
  MpmcQueue<int> q;  // grows past the initial ring allocation
  for (int i = 0; i < 1000; ++i) q.push(i);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool{0}, std::invalid_argument);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  TaskGroup group{pool};
  for (int i = 0; i < 100; ++i) {
    group.run([&count] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForWorkersRunsEachIndexOnce) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(8);
  pool.parallel_for_workers(8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForWorkersCountExceedingPoolStillCompletes) {
  // The caller participates, so count > threads must not deadlock.
  ThreadPool pool{1};
  std::atomic<int> total{0};
  pool.parallel_for_workers(16, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, ParallelForWorkersPropagatesException) {
  ThreadPool pool{2};
  EXPECT_THROW(
      pool.parallel_for_workers(4,
                                [&](std::size_t i) {
                                  if (i == 2) throw std::runtime_error("boom");
                                }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForWorkersSingleRunsInline) {
  ThreadPool pool{2};
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for_workers(1, [&](std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(TaskGroup, WaitRethrowsFirstError) {
  ThreadPool pool{2};
  TaskGroup group{pool};
  group.run([] { throw std::runtime_error("task failed"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool{2};
  TaskGroup group{pool};
  std::atomic<int> n{0};
  group.run([&] { n.fetch_add(1); });
  group.wait();
  group.run([&] { n.fetch_add(1); });
  group.wait();
  EXPECT_EQ(n.load(), 2);
}

TEST(ThreadPool, HeavyConcurrentSum) {
  ThreadPool pool{4};
  constexpr std::size_t kTasks = 64;
  std::vector<long long> partial(kTasks, 0);
  TaskGroup group{pool};
  for (std::size_t t = 0; t < kTasks; ++t) {
    group.run([&partial, t] {
      long long s = 0;
      for (int i = 0; i < 10'000; ++i) s += i;
      partial[t] = s;
    });
  }
  group.wait();
  const long long each = 10'000LL * 9'999 / 2;
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0LL),
            each * static_cast<long long>(kTasks));
}

}  // namespace
}  // namespace mcsd
