#include "mapreduce/splitter.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "core/random.hpp"

namespace mcsd::mr {
namespace {

std::string reassemble(const std::vector<TextChunk>& chunks) {
  std::string out;
  for (const auto& c : chunks) out += c.text;
  return out;
}

TEST(SplitText, EmptyInput) {
  EXPECT_TRUE(split_text("", 16).empty());
}

TEST(SplitText, SingleChunkWhenSmall) {
  const auto chunks = split_text("tiny input", 1024);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].text, "tiny input");
  EXPECT_EQ(chunks[0].offset, 0u);
}

TEST(SplitText, ConcatenationReproducesInput) {
  const std::string input = "the quick brown fox jumps over the lazy dog ";
  for (std::size_t target : {1u, 3u, 7u, 10u, 100u}) {
    EXPECT_EQ(reassemble(split_text(input, target)), input) << target;
  }
}

TEST(SplitText, NeverCutsAWord) {
  const std::string input = "alpha beta gamma delta epsilon zeta";
  const auto chunks = split_text(input, 8);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    // Every chunk but the last ends with a delimiter...
    EXPECT_TRUE(is_default_delimiter(chunks[i].text.back()))
        << "chunk " << i << ": '" << chunks[i].text << "'";
    // ...and the next chunk starts with a word byte.
    EXPECT_FALSE(is_default_delimiter(chunks[i + 1].text.front()));
  }
}

TEST(SplitText, OffsetsAreAbsolute) {
  const std::string input = "aa bb cc dd ee ff gg hh";
  const auto chunks = split_text(input, 5);
  for (const auto& c : chunks) {
    EXPECT_EQ(input.substr(c.offset, c.text.size()), c.text);
  }
}

TEST(SplitText, OversizedRecordStaysWhole) {
  const std::string input = "short averyveryverylongword tail";
  const auto chunks = split_text(input, 4);
  for (const auto& c : chunks) {
    // The long word must appear intact in exactly one chunk.
    if (c.text.find("averyvery") != std::string_view::npos) {
      EXPECT_NE(c.text.find("averyveryverylongword"), std::string_view::npos);
    }
  }
  EXPECT_EQ(reassemble(chunks), input);
}

TEST(SplitText, ZeroTargetTreatedAsOne) {
  const auto chunks = split_text("a b", 0);
  EXPECT_EQ(reassemble(chunks), "a b");
}

// Property sweep: random inputs, random chunk targets.
class SplitTextProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitTextProperty, InvariantsHold) {
  mcsd::Rng rng{GetParam()};
  std::string input;
  const auto words = 50 + rng.next_below(200);
  for (std::uint64_t w = 0; w < words; ++w) {
    const auto len = 1 + rng.next_below(12);
    for (std::uint64_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    input.push_back(rng.next_below(8) == 0 ? '\n' : ' ');
  }
  const std::size_t target = 1 + rng.next_below(64);
  const auto chunks = split_text(input, target);

  EXPECT_EQ(reassemble(chunks), input);
  std::size_t expected_offset = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_FALSE(chunks[i].text.empty());
    EXPECT_EQ(chunks[i].offset, expected_offset);
    expected_offset += chunks[i].text.size();
    if (i + 1 < chunks.size()) {
      EXPECT_TRUE(is_default_delimiter(chunks[i].text.back()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitTextProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(SplitLines, AlignsOnNewlines) {
  const std::string input = "line one\nline two\nline three\n";
  const auto chunks = split_lines(input, 10);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].text.back(), '\n');
  }
  EXPECT_EQ(reassemble(chunks), input);
}

TEST(SplitIndex, EvenSplit) {
  const auto chunks = split_index(12, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), 3u);
}

TEST(SplitIndex, RemainderSpreadsOverFirstChunks) {
  const auto chunks = split_index(10, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].size(), 3u);
  EXPECT_EQ(chunks[1].size(), 3u);
  EXPECT_EQ(chunks[2].size(), 2u);
  EXPECT_EQ(chunks[3].size(), 2u);
}

TEST(SplitIndex, CoversExactlyOnce) {
  const auto chunks = split_index(37, 5);
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expected_begin);
    covered += c.size();
    expected_begin = c.end;
  }
  EXPECT_EQ(covered, 37u);
}

TEST(SplitIndex, MorePiecesThanItems) {
  const auto chunks = split_index(3, 10);
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(SplitIndex, ZeroItems) {
  EXPECT_TRUE(split_index(0, 4).empty());
}

}  // namespace
}  // namespace mcsd::mr
