// Out-of-core demo: the paper's partitioning extension in action.
//
// A word-count job whose footprint exceeds the (emulated) node memory:
// stock Phoenix behaviour throws MemoryOverflowError; run_adaptive
// catches it, derives a fragment size from the footprint factor, and
// completes the job fragment by fragment (paper Fig. 6/7).  The final
// section runs the same job file-backed, serial vs pipelined: fragment
// N+1 streams off disk on a prefetch thread while fragment N computes,
// and outputs fold into the running result as fragments retire.
//
// Build & run:  ./build/examples/out_of_core
//               (add --trace-out trace.json for a timeline showing the
//                part.prefetch spans overlapping part.fragment spans)
#include <cstdio>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "core/cli.hpp"
#include "core/io.hpp"
#include "core/units.hpp"
#include "mapreduce/engine.hpp"
#include "obs/reporter.hpp"
#include "partition/outofcore.hpp"

using namespace mcsd;
using namespace mcsd::literals;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("trace-out", "",
                 "write obs trace JSON + metrics here on exit");
  if (Status s = cli.parse(argc, argv); !s) {
    std::fprintf(stderr, "%s\n", s.error().message().c_str());
    return s.error().code() == ErrorCode::kUnavailable ? 0 : 2;
  }

  // A storage node with an 8 MiB memory budget (scaled-down stand-in for
  // the paper's 2 GB node; the mechanism is identical).
  mr::Options options;
  options.num_workers = 2;
  options.memory_budget_bytes = 8_MiB;
  options.usable_memory_fraction = 0.6;  // Phoenix's observed ceiling
  mr::Engine<apps::WordCountSpec> engine{options};

  // An input comfortably bigger than the usable budget.
  apps::CorpusOptions corpus;
  corpus.bytes = 12_MiB;
  corpus.vocabulary = 30'000;
  const std::string text = apps::generate_corpus(corpus);
  std::printf("input: %s, node budget: %s (usable %s)\n\n",
              format_bytes(text.size()).c_str(),
              format_bytes(options.memory_budget_bytes).c_str(),
              format_bytes(options.usable_budget()).c_str());

  // --- 1. native mode fails, exactly like stock Phoenix ---------------
  std::puts("1) native (no partitioning):");
  try {
    engine.run(apps::WordCountSpec{}, mr::split_text(text, 256 * 1024));
    std::puts("   unexpectedly succeeded?!");
  } catch (const mr::MemoryOverflowError& e) {
    std::printf("   MemoryOverflowError: needs %s, usable budget %s\n",
                format_bytes(e.required_bytes()).c_str(),
                format_bytes(e.budget_bytes()).c_str());
  }

  // --- 2. the adaptive driver falls back to partitioned mode ----------
  std::puts("\n2) run_adaptive (the McSD runtime path):");
  part::TextJob<apps::WordCountSpec> job;
  job.merge = [](auto outputs) {
    return part::sum_merge<std::string, std::uint64_t>(std::move(outputs));
  };
  part::OutOfCoreMetrics metrics;
  auto counts = part::run_adaptive(engine, apps::WordCountSpec{}, text,
                                   /*footprint_factor=*/3.0, job,
                                   part::default_delimiters(), &metrics);
  apps::sort_by_frequency_desc(counts);

  std::printf("   fell back to partitioning: %s\n",
              metrics.fell_back_to_partitioning ? "yes" : "no");
  std::printf("   fragments: %zu  (partition %.3fs, mapreduce %.3fs, "
              "merge %.3fs)\n",
              metrics.fragments, metrics.partition_seconds,
              metrics.mapreduce_seconds, metrics.merge_seconds);
  std::printf("   peak fragment footprint: %s\n",
              format_bytes(metrics.peak_fragment_footprint_bytes).c_str());
  std::printf("   result: %zu unique words, %llu occurrences\n",
              counts.size(),
              static_cast<unsigned long long>(
                  apps::total_occurrences(counts)));

  // --- 3. verify against the streaming sequential reference -----------
  const auto reference = apps::wordcount_sequential(text);
  std::printf("\n3) cross-check vs sequential reference: %s\n",
              apps::total_occurrences(reference) ==
                      apps::total_occurrences(counts)
                  ? "totals match"
                  : "MISMATCH");

  // --- 4. file-backed: serial chain vs the prefetch pipeline ----------
  std::puts("\n4) file-backed A/B: serial read-then-run vs pipelined:");
  TempDir dir{"out-of-core"};
  const auto corpus_path = dir / "corpus.txt";
  if (Status s = write_file(corpus_path, text); !s) {
    std::fprintf(stderr, "cannot stage corpus: %s\n", s.to_string().c_str());
    return 1;
  }
  part::PipelineOptions popts;
  popts.partition_size = 1_MiB;  // within the demo node's usable budget
  // Emulate the Table-I disk (150 MiB/s sequential) so the demo shows the
  // regime the paper runs in; a page-cache-warm host read is ~100x faster
  // than the storage node's platter and would hide the overlap entirely.
  popts.read_throttle_mibps = 150.0;
  part::TextJob<apps::WordCountSpec> file_job;
  file_job.incremental_merge =
      part::sum_incremental<std::string, std::uint64_t>();

  popts.prefetch = false;
  part::OutOfCoreMetrics serial;
  Stopwatch ab;
  auto serial_counts = part::run_partitioned_file(
      engine, apps::WordCountSpec{}, corpus_path, popts, file_job, &serial);
  const double serial_s = ab.elapsed_seconds();

  popts.prefetch = true;
  part::OutOfCoreMetrics pipelined;
  ab.restart();
  auto pipelined_counts = part::run_partitioned_file(
      engine, apps::WordCountSpec{}, corpus_path, popts, file_job,
      &pipelined);
  const double pipelined_s = ab.elapsed_seconds();

  if (!serial_counts || !pipelined_counts) {
    std::fprintf(stderr, "file-backed run failed\n");
    return 1;
  }
  std::printf("   serial:    %.3fs  (io wait %.3fs, %zu fragments)\n",
              serial_s, serial.io_wait_seconds, serial.fragments);
  std::printf("   pipelined: %.3fs  (io wait %.3fs, peak resident %s "
              "<= 2 fragments)\n",
              pipelined_s, pipelined.io_wait_seconds,
              format_bytes(pipelined.peak_resident_fragment_bytes).c_str());
  std::printf("   overlap bought %.1f%%; outputs %s\n",
              serial_s > 0.0 ? (serial_s - pipelined_s) / serial_s * 100.0
                             : 0.0,
              apps::total_occurrences(serial_counts.value()) ==
                          apps::total_occurrences(pipelined_counts.value()) &&
                      apps::total_occurrences(pipelined_counts.value()) ==
                          apps::total_occurrences(counts)
                  ? "match"
                  : "MISMATCH");
  if (Status s = obs::dump_trace_if_requested(cli.option("trace-out")); !s) {
    std::fprintf(stderr, "cannot write trace: %s\n", s.to_string().c_str());
    return 1;
  }
  return 0;
}
