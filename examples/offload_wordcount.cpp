// Offload demo: a host invokes a data-intensive module on a McSD storage
// node through smartFAM (paper Fig. 4/5).
//
// One process plays both roles so the demo is self-contained; the two
// sides communicate ONLY through the shared log folder — run the daemon
// half on another machine with the folder NFS-mounted and nothing
// changes.
//
//   host                     shared log folder             McSD node
//   ----                     -----------------             ---------
//   client.invoke()  ──►  wordcount.log (request)  ──►  watcher + daemon
//                                                         module runs
//   result returned  ◄──  wordcount.log (response) ◄──  MapReduce engine
//
// Build & run:  ./build/examples/offload_wordcount
//
// Pass `--trace-out trace.json` to capture an obs trace of the full
// round trip — engine, partition, and FAM spans in one timeline — for
// chrome://tracing / Perfetto (see README "Tracing a run").
#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "core/cli.hpp"
#include "core/io.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"
#include "mapreduce/engine.hpp"
#include "obs/reporter.hpp"
#include "partition/outofcore.hpp"

using namespace mcsd;
using namespace std::chrono_literals;

namespace {

/// The module preloaded into the storage node: reads a file from the
/// shared folder, runs partition-enabled word count on the node's two
/// cores, returns the top words.
std::shared_ptr<fam::Module> wordcount_module() {
  return std::make_shared<fam::FunctionModule>(
      "wordcount", [](const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto input = params.get("input");
        if (!input) return Error{ErrorCode::kInvalidArgument, "need input"};
        auto text = read_file(*input);
        if (!text) return text.error();

        mr::Options opts;
        opts.num_workers = 2;  // the E4400's two cores
        mr::Engine<apps::WordCountSpec> engine{opts};
        part::PartitionOptions popts;
        popts.partition_size = static_cast<std::uint64_t>(
            params.get_int_or("partition_size", 0));
        part::TextJob<apps::WordCountSpec> job;
        job.merge = [](auto outputs) {
          return part::sum_merge<std::string, std::uint64_t>(
              std::move(outputs));
        };
        part::OutOfCoreMetrics metrics;
        auto counts = part::run_partitioned(engine, apps::WordCountSpec{},
                                            text.value(), popts, job,
                                            &metrics);
        apps::sort_by_frequency_desc(counts);

        KeyValueMap out;
        out.set_uint("unique", counts.size());
        out.set_uint("total", apps::total_occurrences(counts));
        out.set_uint("fragments", metrics.fragments);
        for (std::size_t i = 0; i < counts.size() && i < 3; ++i) {
          out.set("word" + std::to_string(i), counts[i].key);
          out.set_uint("count" + std::to_string(i), counts[i].value);
        }
        return out;
      });
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("trace-out", "",
                 "write obs trace JSON + metrics here on exit");
  if (Status s = cli.parse(argc, argv); !s) {
    std::fprintf(stderr, "%s\n", s.error().message().c_str());
    return s.error().code() == ErrorCode::kUnavailable ? 0 : 2;
  }

  TempDir shared{"mcsd-demo"};  // stands in for the NFS-exported folder
  std::printf("shared log folder: %s\n\n", shared.path().c_str());

  // --- storage-node side: preload the module, start the daemon --------
  fam::Daemon daemon{fam::DaemonOptions{shared.path(), 2ms, 1}};
  if (auto s = daemon.preload(wordcount_module()); !s) {
    std::fprintf(stderr, "preload failed: %s\n", s.to_string().c_str());
    return 1;
  }
  daemon.start();
  std::puts("[sd]   daemon started; module 'wordcount' preloaded");

  // --- host side: put the data on the storage node, then offload ------
  apps::CorpusOptions corpus;
  corpus.bytes = 8 << 20;
  const std::string text = apps::generate_corpus(corpus);
  const auto data_path = shared / "corpus.txt";
  if (auto s = write_file(data_path, text); !s) {
    std::fprintf(stderr, "write failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("[host] wrote %zu-byte corpus into the shared folder\n",
              text.size());

  fam::Client client{fam::ClientOptions{shared.path(), 2ms, 30'000ms}};
  KeyValueMap params;
  params.set("input", data_path.string());
  params.set_int("partition_size", 1 << 20);  // 1 MiB fragments
  std::puts("[host] invoking wordcount via the log-file channel ...");
  const auto result = client.invoke("wordcount", params);
  if (!result.is_ok()) {
    std::fprintf(stderr, "invoke failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }

  const auto& r = result.value();
  std::printf("[host] results: %s unique words, %s total, %s fragments\n",
              r.get_or("unique", "?").c_str(), r.get_or("total", "?").c_str(),
              r.get_or("fragments", "?").c_str());
  for (int i = 0; i < 3; ++i) {
    const auto word = r.get("word" + std::to_string(i));
    const auto count = r.get("count" + std::to_string(i));
    if (word && count) {
      std::printf("       top%d: %-14s %s\n", i, word->c_str(),
                  count->c_str());
    }
  }
  std::printf("\n[sd]   daemon handled %llu request(s), %llu error(s)\n",
              static_cast<unsigned long long>(daemon.requests_handled()),
              static_cast<unsigned long long>(daemon.errors_returned()));
  daemon.stop();  // flush in-flight spans before exporting the trace
  if (Status s = obs::dump_trace_if_requested(cli.option("trace-out")); !s) {
    std::fprintf(stderr, "cannot write trace: %s\n", s.to_string().c_str());
    return 1;
  }
  return 0;
}
