// Multi-SD demo: the paper's future-work item (2), "the parallelisms
// among multiple McSD smart disks", via the host-side McsdRuntime.
//
// Spins up two storage-node daemons (a duo and a quad), lets the runtime
// decide placement for a compute-heavy and a data-heavy job, then forces
// an offload to show capability-weighted sharding across both nodes.
//
// Build & run:  ./build/examples/multi_sd
#include <chrono>
#include <cstdio>

#include "apps/datagen.hpp"
#include "apps/modules.hpp"
#include "core/io.hpp"
#include "fam/daemon.hpp"
#include "runtime/runtime.hpp"

using namespace mcsd;
using namespace std::chrono_literals;

namespace {

struct StorageNode {
  StorageNode(const char* tag, std::size_t cores)
      : dir(tag), daemon(fam::DaemonOptions{dir.path(), 2ms, cores}) {
    const Status s = apps::preload_standard_modules(
        [this](auto m) { return daemon.preload(std::move(m)); }, cores);
    if (!s) std::fprintf(stderr, "preload: %s\n", s.to_string().c_str());
    daemon.start();
  }

  TempDir dir;
  fam::Daemon daemon;
};

}  // namespace

int main() {
  StorageNode duo{"mcsd-duo", 2};
  StorageNode quad{"mcsd-quad", 4};
  std::puts("[cluster] two McSD nodes up: duo (2 cores), quad (4 cores)\n");

  rt::RuntimeOptions opts;
  opts.host_workers = 4;
  opts.storage_nodes = {
      rt::SdEndpoint{duo.dir.path(), rt::SiteSpec{2, 1.0, 0.9}},
      rt::SdEndpoint{quad.dir.path(), rt::SiteSpec{4, 1.0, 0.9}},
  };
  rt::McsdRuntime runtime{std::move(opts)};

  apps::CorpusOptions corpus;
  corpus.bytes = 6 << 20;
  const std::string text = apps::generate_corpus(corpus);

  // 1. Automatic placement: the policy weighs transfer vs capability.
  {
    auto result = runtime.word_count(text);
    if (!result) {
      std::fprintf(stderr, "word_count: %s\n",
                   result.error().to_string().c_str());
      return 1;
    }
    const auto& r = result.value();
    std::printf("[auto]   policy placed word count on the %s\n",
                to_string(r.report.placement));
    std::printf("         predicted: host %.2fs vs offload %.2fs\n",
                r.report.predicted_host_seconds,
                r.report.predicted_offload_seconds);
    std::printf("         %zu unique words in %.3fs\n\n",
                r.counts.size(), r.report.elapsed_seconds);
  }

  // 2. Forced offload: the input shards across BOTH nodes by capability
  //    (the quad takes ~2x the bytes), runs concurrently, merges on the
  //    host.
  {
    runtime.force_placement(rt::Placement::kStorageNode);
    auto result = runtime.word_count(text);
    if (!result) {
      std::fprintf(stderr, "word_count: %s\n",
                   result.error().to_string().c_str());
      return 1;
    }
    const auto& r = result.value();
    std::printf("[forced] offloaded across %zu storage nodes in %.3fs\n",
                r.report.storage_nodes_used, r.report.elapsed_seconds);
    std::printf("         duo handled %llu request(s), quad %llu\n",
                static_cast<unsigned long long>(duo.daemon.requests_handled()),
                static_cast<unsigned long long>(
                    quad.daemon.requests_handled()));
    std::printf("         merged result: %zu unique words; top word '%s' x%llu\n",
                r.counts.size(), r.counts.front().key.c_str(),
                static_cast<unsigned long long>(r.counts.front().value));
  }
  return 0;
}
