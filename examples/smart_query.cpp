// Smart-query demo: database operations offloaded to the storage node.
//
// The paper's future work asks for "extensibility of data-processing
// modules and operations (i.e. data-intensive applications and database
// operations) that are preloaded into McSD smart-disk nodes".  This demo
// runs a three-stage query pipeline entirely on the storage node through
// smartFAM — only row counts and file paths cross the channel:
//
//   orders.csv ── select(amount > 400) ──► big_orders.csv
//   big_orders ── join(users on id)    ──► named_orders.csv
//   named      ── sort(lines)          ──► report.csv
//
// Build & run:  ./build/examples/smart_query
#include <chrono>
#include <cstdio>

#include "apps/modules.hpp"
#include "core/io.hpp"
#include "core/random.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"

using namespace mcsd;
using namespace std::chrono_literals;

namespace {

/// Synthesises users(id,name) and orders(order_id,user_id,amount).
void make_tables(const std::filesystem::path& dir) {
  Rng rng{2012};
  std::string users;
  constexpr int kUsers = 200;
  for (int u = 0; u < kUsers; ++u) {
    users += std::to_string(u) + ",user" + std::to_string(u) + "\n";
  }
  std::string orders;
  for (int o = 0; o < 5000; ++o) {
    orders += "o" + std::to_string(o) + "," +
              std::to_string(rng.next_below(kUsers)) + "," +
              std::to_string(rng.next_below(1000)) + "\n";
  }
  (void)write_file(dir / "users.csv", users);
  (void)write_file(dir / "orders.csv", orders);
}

bool run_stage(fam::Client& client, const char* module,
               const KeyValueMap& params, const char* describe) {
  const auto result = client.invoke(module, params);
  if (!result.is_ok()) {
    std::fprintf(stderr, "%s failed: %s\n", module,
                 result.error().to_string().c_str());
    return false;
  }
  std::printf("[sd] %-6s %s ->", module, describe);
  for (const auto& [key, value] : result.value().entries()) {
    std::printf(" %s=%s", key.c_str(), value.c_str());
  }
  std::puts("");
  return true;
}

}  // namespace

int main() {
  TempDir shared{"smart-query"};
  make_tables(shared.path());

  fam::Daemon daemon{fam::DaemonOptions{shared.path(), 2ms, 1}};
  if (Status s = apps::preload_standard_modules(
          [&daemon](auto m) { return daemon.preload(std::move(m)); }, 2);
      !s) {
    std::fprintf(stderr, "preload: %s\n", s.to_string().c_str());
    return 1;
  }
  daemon.start();
  std::puts("[sd] daemon up; database-operation modules preloaded\n");

  fam::Client client{fam::ClientOptions{shared.path(), 2ms, 30'000ms}};

  // Stage 1: select orders with amount > 400.
  KeyValueMap select;
  select.set("input", (shared / "orders.csv").string());
  select.set_int("column", 2);
  select.set("op", "gt");
  select.set("value", "400");
  select.set("out", (shared / "big_orders.csv").string());
  if (!run_stage(client, "select", select, "orders where amount > 400")) {
    return 1;
  }

  // Stage 2: join with users on user id.
  KeyValueMap join;
  join.set("left", (shared / "users.csv").string());
  join.set("right", (shared / "big_orders.csv").string());
  join.set_int("left_column", 0);
  join.set_int("right_column", 1);
  join.set("out", (shared / "named_orders.csv").string());
  if (!run_stage(client, "join", join, "attach user names")) return 1;

  // Stage 3: sort the report.
  KeyValueMap sort;
  sort.set("input", (shared / "named_orders.csv").string());
  sort.set("out", (shared / "report.csv").string());
  sort.set_int("memory_budget", 64 * 1024);
  if (!run_stage(client, "sort", sort, "order the report")) return 1;

  const auto report = read_file(shared / "report.csv");
  if (report.is_ok()) {
    std::puts("\n[host] first lines of the final report:");
    std::size_t shown = 0;
    std::size_t pos = 0;
    const std::string& text = report.value();
    while (shown < 5 && pos < text.size()) {
      const auto eol = text.find('\n', pos);
      std::printf("   %s\n",
                  text.substr(pos, eol - pos).c_str());
      pos = (eol == std::string::npos) ? text.size() : eol + 1;
      ++shown;
    }
  }
  std::puts("\n[host] the full tables never crossed the host/SD boundary —"
            "\n       only module parameters, counts, and the final report.");
  return 0;
}
