// Quickstart: the McSD programming model in ~40 lines.
//
// Write a spec (map + reduce), hand chunks to the engine, read key/value
// results.  This is the Phoenix-style API a data-intensive module uses
// inside a McSD storage node.
//
// Build & run (any generator — add `-G Ninja` if you have it):
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart [--trace-out trace.json]
#include <cstdio>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "core/cli.hpp"
#include "mapreduce/engine.hpp"
#include "obs/reporter.hpp"

using namespace mcsd;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("trace-out", "",
                 "write obs trace JSON + metrics here on exit");
  if (Status s = cli.parse(argc, argv); !s) {
    std::fprintf(stderr, "%s\n", s.error().message().c_str());
    return s.error().code() == ErrorCode::kUnavailable ? 0 : 2;
  }

  // 1. A synthetic 4 MiB corpus (stands in for the paper's input files).
  apps::CorpusOptions corpus;
  corpus.bytes = 4 << 20;
  corpus.vocabulary = 20'000;
  const std::string text = apps::generate_corpus(corpus);

  // 2. Configure the runtime: 2 workers — a duo-core storage node.
  mr::Options options;
  options.num_workers = 2;
  mr::Engine<apps::WordCountSpec> engine{options};

  // 3. Split the input into map chunks (delimiter-aligned) and run.
  mr::Metrics metrics;
  auto counts = engine.run(apps::WordCountSpec{},
                           mr::split_text(text, 256 * 1024), 0, &metrics);

  // 4. The paper's output order: frequency decreasing.
  apps::sort_by_frequency_desc(counts);

  std::printf("word count over %zu bytes: %zu unique words, %llu total\n",
              text.size(), counts.size(),
              static_cast<unsigned long long>(
                  apps::total_occurrences(counts)));
  std::printf("phases: map %.3fs, reduce %.3fs, merge %.3fs (%zu chunks)\n",
              metrics.map_seconds, metrics.reduce_seconds,
              metrics.merge_seconds, metrics.chunks);
  std::puts("top 10:");
  for (std::size_t i = 0; i < counts.size() && i < 10; ++i) {
    std::printf("  %-14s %llu\n", counts[i].key.c_str(),
                static_cast<unsigned long long>(counts[i].value));
  }
  if (Status s = obs::dump_trace_if_requested(cli.option("trace-out")); !s) {
    std::fprintf(stderr, "cannot write trace: %s\n", s.to_string().c_str());
    return 1;
  }
  return 0;
}
