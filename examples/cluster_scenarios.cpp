// Cluster-scenario demo: the Section V-C experiment, narrated.
//
// Runs one MM/WC pair at one data size through all four system
// configurations on the simulated Table-I testbed and explains where the
// time goes in each — a guided version of what bench_fig9 sweeps.
//
// Usage:  ./build/examples/cluster_scenarios [size]     (default 1G)
#include <cstdio>
#include <string>

#include "cluster/profiles.hpp"
#include "cluster/scenarios.hpp"
#include "core/units.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

namespace {

void describe(const char* banner, const PairResult& r) {
  std::printf("%s\n", banner);
  if (!r.completed) {
    std::printf("   FAILED: %s\n\n", r.note.c_str());
    return;
  }
  const JobCost& d = r.data_job_cost;
  std::printf("   makespan %.1fs  (MM %.1fs | data job %.1fs)\n",
              r.makespan_seconds, r.compute_job_seconds, r.data_job_seconds);
  std::printf("   data job: read %.1fs, compute %.1fs, thrash %.1fs, "
              "overhead %.1fs, %zu fragment(s)\n\n",
              d.read_seconds, d.compute_seconds, d.thrash_seconds,
              d.overhead_seconds, d.fragments);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t bytes = 1_GiB;
  if (argc > 1) {
    auto parsed = parse_bytes(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "bad size '%s': %s\n", argv[1],
                   parsed.error().to_string().c_str());
      return 1;
    }
    bytes = parsed.value();
  }

  const Testbed tb = table1_testbed();
  const AppProfile mm = matmul_profile();
  const AppProfile wc = wordcount_profile();
  const std::uint64_t partition = 600_MiB;

  std::printf("=== MM/WC pair at %s on the Table-I testbed ===\n\n",
              format_bytes(bytes).c_str());

  const auto host =
      run_pair(tb, PairScenario::kHostOnly, mm, wc, bytes, partition);
  const auto trad =
      run_pair(tb, PairScenario::kTraditionalSd, mm, wc, bytes, partition);
  const auto nopart =
      run_pair(tb, PairScenario::kMcsdNoPartition, mm, wc, bytes, partition);
  const auto mcsd =
      run_pair(tb, PairScenario::kMcsdPartitioned, mm, wc, bytes, partition);

  describe("1) host-only: both jobs on the quad host; data pulled over NFS",
           host);
  describe("2) traditional SD: WC sequential on a single-core storage node",
           trad);
  describe("3) McSD without partitioning: stock Phoenix on the duo SD node",
           nopart);
  describe("4) McSD (full framework): partition-enabled on the duo SD node",
           mcsd);

  std::puts("speedups over the full framework (the paper's metric):");
  std::printf("   host-only       %.2fx\n", speedup_vs(host, mcsd));
  std::printf("   traditional SD  %.2fx\n", speedup_vs(trad, mcsd));
  std::printf("   no-partition    %.2fx\n", speedup_vs(nopart, mcsd));
  return 0;
}
