// Microbenchmarks of the core concurrency and utility primitives.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/config.hpp"
#include "core/hash.hpp"
#include "core/mpmc_queue.hpp"
#include "core/random.hpp"
#include "core/thread_pool.hpp"
#include "mapreduce/sorter.hpp"

namespace {

using namespace mcsd;

void BM_MpmcQueuePingPong(benchmark::State& state) {
  MpmcQueue<int> q{64};
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_MpmcQueuePingPong);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  ThreadPool pool{2};
  for (auto _ : state) {
    TaskGroup group{pool};
    std::atomic<int> n{0};
    for (int i = 0; i < 64; ++i) {
      group.run([&n] { n.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    benchmark::DoNotOptimize(n.load());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolSubmitDrain);

void BM_ParallelForWorkers(benchmark::State& state) {
  ThreadPool pool{static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    std::atomic<int> n{0};
    pool.parallel_for_workers(static_cast<std::size_t>(state.range(0)),
                              [&n](std::size_t) {
                                n.fetch_add(1, std::memory_order_relaxed);
                              });
    benchmark::DoNotOptimize(n.load());
  }
}
BENCHMARK(BM_ParallelForWorkers)->Arg(1)->Arg(2)->Arg(4);

void BM_Fnv1a(benchmark::State& state) {
  const std::string word(static_cast<std::size_t>(state.range(0)), 'w');
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv1a(word));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(8)->Arg(64)->Arg(1024);

void BM_RngNext(benchmark::State& state) {
  Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf{static_cast<std::size_t>(state.range(0)), 1.05};
  Rng rng{2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_KeyValueMapRoundTrip(benchmark::State& state) {
  KeyValueMap map;
  for (int i = 0; i < 16; ++i) {
    map.set("key" + std::to_string(i), "value with = and \n specials");
  }
  const std::string wire = map.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyValueMap::parse(wire));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_KeyValueMapRoundTrip);

void BM_ParallelSortU64(benchmark::State& state) {
  ThreadPool pool{2};
  Rng rng{3};
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& v : base) v = rng.next();
  for (auto _ : state) {
    auto copy = base;
    mr::parallel_sort(copy, pool);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelSortU64)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

}  // namespace
