// Ablation — partition-size sweep (design choice called out in DESIGN.md).
//
// The paper fixes a 600 MB partition and mentions the size "can be
// manually filled in by the programmer or automatically determined by the
// runtime system".  This sweep shows why a middle value wins: tiny
// fragments pay per-fragment runtime overhead, oversized fragments
// re-enter the thrash regime — a U-shaped curve with the auto-sizing
// result marked.
#include <cstdio>
#include <vector>

#include "cluster/profiles.hpp"
#include "cluster/scenarios.hpp"
#include "partition/partitioner.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

int main() {
  const Testbed tb = table1_testbed();
  const AppProfile wc = wordcount_profile();
  const std::uint64_t input = 2_GiB;

  std::puts("=== Ablation: partition size sweep (WC, 2G input, Duo SD) ===\n");
  Table t{{"partition size", "fragments", "elapsed (s)", "overhead (s)",
           "thrash (s)"}};
  const std::vector<std::uint64_t> sizes{
      16_MiB, 64_MiB, 128_MiB, 256_MiB, 400_MiB, 600_MiB, 800_MiB,
      1_GiB, 1_GiB + 512_MiB, 2_GiB};
  for (const std::uint64_t psize : sizes) {
    const auto run = run_single_app(tb, tb.sd_duo, wc, input,
                                    ExecMode::kParallelPartitioned, psize);
    t.add_row({format_bytes(psize), std::to_string(run.cost.fragments),
               Table::num(run.seconds(), 1),
               Table::num(run.cost.overhead_seconds, 1),
               Table::num(run.cost.thrash_seconds, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  const std::uint64_t auto_size = part::auto_partition_size(
      input, tb.sd_duo.memory_bytes, wc.footprint_factor);
  std::printf("\nauto_partition_size picks %s — inside the flat bottom of"
              "\nthe U (the paper's hand-picked 600M sits there too).\n",
              format_bytes(auto_size).c_str());
  return 0;
}
