// Microbenchmarks of the partition module: the integrity check is
// claimed to be O(record length) amortised to ~0 — this measures it.
#include <benchmark/benchmark.h>

#include <string>

#include "apps/datagen.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace mcsd;

const std::string& corpus_4mib() {
  static const std::string text = [] {
    apps::CorpusOptions opts;
    opts.bytes = 4 << 20;
    return apps::generate_corpus(opts);
  }();
  return text;
}

void BM_IntegrityCheck(benchmark::State& state) {
  const std::string& text = corpus_4mib();
  std::size_t cut = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::integrity_check(text, cut));
    cut = (cut * 2654435761u + 17) % text.size();
  }
}
BENCHMARK(BM_IntegrityCheck);

void BM_Partition(benchmark::State& state) {
  const std::string& text = corpus_4mib();
  part::PartitionOptions opts;
  opts.partition_size = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::partition(text, opts));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Partition)->Arg(64 << 10)->Arg(512 << 10)->Arg(2 << 20);

void BM_AutoPartitionSize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        part::auto_partition_size(4ULL << 30, 2ULL << 30, 3.0));
  }
}
BENCHMARK(BM_AutoPartitionSize);

}  // namespace
