// Shared harness plumbing for the figure benches.
//
// Every bench accepts:
//   --csv              emit CSV instead of the boxed table
//   --calibrate        derive app rates from the real kernels on this
//                      machine (absolute seconds change, ratios do not)
//   --partition=600M   fragment size for partition-enabled runs
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/calibration.hpp"
#include "cluster/profiles.hpp"
#include "cluster/testbed.hpp"
#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

namespace mcsd::benchutil {

struct BenchEnv {
  sim::Testbed tb = sim::table1_testbed();
  sim::AppProfile wc = sim::wordcount_profile();
  sim::AppProfile sm = sim::stringmatch_profile();
  sim::AppProfile mm = sim::matmul_profile();
  std::uint64_t partition_size = 600ULL << 20;
  bool csv = false;
  bool calibrated = false;
};

/// Parses the standard bench options; exits on --help or bad input.
inline BenchEnv parse_bench_env(int argc, const char* const* argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV instead of boxed tables");
  cli.add_flag("calibrate",
               "measure this machine's kernels for the app rates");
  cli.add_option("partition", "600M", "fragment size for partitioned runs");
  if (Status s = cli.parse(argc, argv); !s) {
    std::fputs(s.error().message().c_str(), stderr);
    std::fputc('\n', stderr);
    std::exit(s.error().code() == ErrorCode::kUnavailable ? 0 : 2);
  }
  BenchEnv env;
  env.csv = cli.flag("csv");
  if (auto p = cli.option_bytes("partition"); p.is_ok()) {
    env.partition_size = p.value();
  } else {
    std::fprintf(stderr, "%s\n", p.error().to_string().c_str());
    std::exit(2);
  }
  if (cli.flag("calibrate")) {
    const sim::CalibrationResult measured = sim::calibrate();
    env.wc = sim::calibrated_wordcount_profile(measured);
    env.sm = sim::calibrated_stringmatch_profile(measured);
    env.mm = sim::calibrated_matmul_profile(measured);
    env.calibrated = true;
    std::fprintf(stderr,
                 "# calibrated on this machine: wc %.0f MiB/s, sm %.0f "
                 "MiB/s, mm %.0f MiB/s (%.2fs)\n",
                 measured.wordcount_mibps, measured.stringmatch_mibps,
                 measured.matmul_mibps, measured.measure_seconds);
  }
  return env;
}

/// Renders per --csv preference.
inline void emit(const BenchEnv& env, const Table& table) {
  std::fputs(env.csv ? table.to_csv().c_str() : table.render().c_str(),
             stdout);
}

}  // namespace mcsd::benchutil
