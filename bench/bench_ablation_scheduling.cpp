// Ablation — dynamic vs static map scheduling (design choice in
// DESIGN.md).
//
// The engine schedules map chunks dynamically (atomic claim counter), as
// Phoenix does.  To expose the straggler effect deterministically — and
// independently of how many physical cores the build machine has — this
// harness replays both policies in *virtual time*: each worker owns a
// virtual clock; dynamic assignment hands the next chunk to the earliest
// clock (what a claim counter converges to), static assignment fixes the
// blocks up front.  Makespan = max worker clock.
//
// The skew pattern is the realistic bad case: a cluster of expensive
// chunks at the front of the input (e.g. a header-heavy file region).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/table.hpp"
#include "mapreduce/scheduler.hpp"

using namespace mcsd;
using namespace mcsd::mr;

namespace {

/// Virtual cost of chunk i, milliseconds.
double chunk_cost(std::size_t i) { return i < 16 ? 160.0 : 10.0; }

struct Outcome {
  double makespan = 0.0;
  double mean_busy = 0.0;
  double imbalance = 0.0;  ///< makespan / mean busy time (1.0 = perfect)
};

Outcome replay_dynamic(std::size_t chunks, std::size_t workers) {
  DynamicScheduler sched{chunks};
  std::vector<double> clock(workers, 0.0);
  // A claim counter serves chunks in order to whichever worker shows up
  // next; in virtual time that is the worker with the smallest clock.
  while (auto idx = sched.next()) {
    const auto w = static_cast<std::size_t>(
        std::min_element(clock.begin(), clock.end()) - clock.begin());
    clock[w] += chunk_cost(*idx);
  }
  Outcome o;
  for (double c : clock) {
    o.makespan = std::max(o.makespan, c);
    o.mean_busy += c;
  }
  o.mean_busy /= static_cast<double>(workers);
  o.imbalance = o.makespan / o.mean_busy;
  return o;
}

Outcome replay_static(std::size_t chunks, std::size_t workers) {
  StaticScheduler sched{chunks, workers};
  std::vector<double> clock(workers, 0.0);
  for (std::size_t w = 0; w < workers; ++w) {
    const auto [begin, end] = sched.range(w);
    for (std::size_t i = begin; i < end; ++i) clock[w] += chunk_cost(i);
  }
  Outcome o;
  for (double c : clock) {
    o.makespan = std::max(o.makespan, c);
    o.mean_busy += c;
  }
  o.mean_busy /= static_cast<double>(workers);
  o.imbalance = o.makespan / o.mean_busy;
  return o;
}

}  // namespace

int main() {
  constexpr std::size_t kChunks = 256;

  std::puts("=== Ablation: dynamic vs static map scheduling ===");
  std::puts("(256 chunks, 16 expensive chunks clustered at the front,"
            "\nvirtual-time replay; imbalance = makespan / mean busy, 1.00"
            "\nis perfect)\n");

  Table t{{"workers", "dynamic makespan (ms)", "static makespan (ms)",
           "dynamic imbalance", "static imbalance", "static penalty"}};
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const Outcome dyn = replay_dynamic(kChunks, workers);
    const Outcome sta = replay_static(kChunks, workers);
    t.add_row({std::to_string(workers), Table::num(dyn.makespan, 0),
               Table::num(sta.makespan, 0), Table::num(dyn.imbalance, 2),
               Table::num(sta.imbalance, 2),
               Table::num(sta.makespan / dyn.makespan, 2) + "x"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\ncheck: dynamic stays ~1.0x-balanced at every width; static's"
            "\nfirst block absorbs the expensive cluster and stalls the"
            "\nwhole map phase behind one worker.");
  return 0;
}
