// Fig. 8(a) — single-application performance speedup.
//
// "Speedups of partition-enabled Phoenix vs original Phoenix and the
// sequential approach on both duo-core and quad-core machines", for Word
// Count and String Match, data size 500 MB .. 1.25 GB, 600 MB partitions.
//
// Paper shape to reproduce: partitioned ~2x over sequential on the Duo
// (up to ~4.5x on the Quad for WC); vs original Phoenix it is ~1x below
// the memory threshold and pulls far ahead once the native footprint
// exceeds node RAM.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "cluster/scenarios.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

int main(int argc, char** argv) {
  const benchutil::BenchEnv env =
      benchutil::parse_bench_env(argc, argv);
  const Testbed& tb = env.tb;
  const std::uint64_t partition = env.partition_size;
  const std::vector<std::uint64_t> sizes{500_MiB, 750_MiB, 1_GiB,
                                         1_GiB + 256_MiB};

  struct Platform {
    const char* label;
    const NodeSpec* node;
  };
  const Platform platforms[] = {{"Duo", &tb.sd_duo}, {"Quad", &tb.sd_quad}};
  const AppProfile apps[] = {env.wc, env.sm};
  const char* app_labels[] = {"WC", "SM"};

  std::puts("=== Fig. 8(a): partition-enabled Phoenix speedup ===");
  std::puts("(600M partitions; speedup = other / partition-enabled)\n");

  Table t{{"series", "size", "partitioned (s)", "sequential (s)",
           "native (s)", "speedup vs seq", "speedup vs native"}};
  for (std::size_t a = 0; a < 2; ++a) {
    for (const Platform& p : platforms) {
      for (const std::uint64_t bytes : sizes) {
        const auto part = run_single_app(tb, *p.node, apps[a], bytes,
                                         ExecMode::kParallelPartitioned,
                                         partition);
        const auto seq = run_single_app(tb, *p.node, apps[a], bytes,
                                        ExecMode::kSequential);
        const auto native = run_single_app(tb, *p.node, apps[a], bytes,
                                           ExecMode::kParallelNative);
        t.add_row({std::string{p.label} + ", " + app_labels[a],
                   format_bytes(bytes), Table::num(part.seconds(), 1),
                   Table::num(seq.seconds(), 1),
                   native.completed() ? Table::num(native.seconds(), 1)
                                      : "OOM",
                   Table::num(seq.seconds() / part.seconds(), 2),
                   native.completed()
                       ? Table::num(native.seconds() / part.seconds(), 2)
                       : "-"});
      }
    }
  }
  benchutil::emit(env, t);
  std::puts("\npaper check: Duo speedup-vs-seq ~2x; Quad above Duo; vs-native"
            "\n~1x at 500M and growing sharply once the footprint exceeds RAM.");
  return 0;
}
