// Ablation — the offload placement frontier.
//
// The runtime's OffloadPolicy decides host vs storage-node per job.  Two
// sweeps map its decision boundary:
//   1. compute intensity (seconds per MiB): data-intensive jobs offload,
//      compute-intensive jobs stay — the paper's core placement story;
//   2. network bandwidth: the paper's future work asks what Infiniband
//      would change — a fast enough interconnect erases the transfer
//      saving and pulls work back to the (faster) host.
#include <cstdio>
#include <vector>

#include "core/table.hpp"
#include "core/units.hpp"
#include "runtime/policy.hpp"

using namespace mcsd;
using namespace mcsd::rt;
using namespace mcsd::literals;

int main() {
  OffloadPolicy policy;  // Table-I shaped: quad 1.33x host, duo SD

  std::puts("=== Ablation: offload decision vs compute intensity ===");
  std::puts("(1 GiB job resident on the SD node; host half-busy with MM)\n");
  {
    Table t{{"app rate (MiB/s/core)", "host est (s)", "offload est (s)",
             "placement"}};
    for (const double mibps : {100.0, 60.0, 40.0, 25.0, 15.0, 10.0, 8.0, 4.0}) {
      const auto d = policy.decide(1_GiB, 1.0 / mibps);
      t.add_row({Table::num(mibps, 0), Table::num(d.host_seconds, 1),
                 Table::num(d.offload_seconds, 1),
                 to_string(d.placement)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\ncheck: fast scans (SM-like, WC-like) offload; slow kernels"
              "\n(MM-like, <~10 MiB/s) amortise the pull and stay on the host.");
  }

  std::puts("\n=== Ablation: offload decision vs network bandwidth ===");
  std::puts("(word-count-like job, 25 MiB/s/core, 1 GiB on the SD node)\n");
  {
    Table t{{"network (MiB/s)", "host est (s)", "offload est (s)",
             "placement"}};
    for (const double net : {10.0, 40.0, 95.0, 200.0, 400.0, 1200.0, 4000.0}) {
      OffloadPolicy p = policy;
      p.network_mibps = net;
      const auto d = p.decide(1_GiB, 1.0 / 25.0);
      t.add_row({Table::num(net, 0), Table::num(d.host_seconds, 1),
                 Table::num(d.offload_seconds, 1),
                 to_string(d.placement)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\ncheck: on 1 GbE-class links the offload wins; past the"
              "\ncrossover an Infiniband-class fabric pulls the job back to"
              "\nthe host — the trade the paper's future work anticipates.");
  }
  return 0;
}
