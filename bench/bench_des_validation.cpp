// Validation — discrete-event simulation vs the analytic models.
//
// The figure benches use closed-form models; this harness replays two of
// their core assumptions event by event and reports the error:
//   1. background-load slowdown: analytic `(1 - u)` bandwidth discount
//      vs a processor-sharing link carrying the actual message stream;
//   2. fair-share makespans: the malleable co-scheduler's fluid model vs
//      a DES of the same two jobs on a shared CPU resource.
#include <cstdio>
#include <functional>
#include <vector>

#include "cluster/des.hpp"
#include "cluster/malleable.hpp"
#include "core/table.hpp"

using namespace mcsd;
using namespace mcsd::sim;

namespace {

/// DES completion time of a bulk transfer under background messaging.
double des_bulk_seconds(double link_mibps, double bulk_mib,
                        double message_mib, double interval_s) {
  Simulator sim;
  Resource link{sim, "link", link_mibps};
  bool done = false;
  double finish = 0.0;
  std::function<void()> pump = [&] {
    if (done) return;
    link.submit(message_mib, nullptr);
    sim.schedule_in(interval_s, pump);
  };
  sim.schedule_at(0.0, pump);
  link.submit(bulk_mib, [&] {
    done = true;
    finish = sim.now();
  });
  sim.run();
  return finish;
}

}  // namespace

int main() {
  std::puts("=== DES validation 1: background-load bandwidth discount ===");
  std::puts("(200 MiB bulk transfer on a 100 MiB/s link; 64 KiB messages)\n");
  {
    Table t{{"background u", "analytic (s)", "DES (s)", "error"}};
    for (const double u : {0.05, 0.10, 0.20, 0.35, 0.50}) {
      const double message_mib = 0.0625;
      const double interval = message_mib / (u * 100.0);
      const double des = des_bulk_seconds(100.0, 200.0, message_mib, interval);
      const double analytic = 200.0 / (100.0 * (1.0 - u));
      t.add_row({Table::num(u, 2), Table::num(analytic, 2),
                 Table::num(des, 2),
                 Table::num((des - analytic) / analytic * 100.0, 1) + "%"});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\ncheck: the linear (1-u) discount tracks processor sharing"
              "\nwithin a few percent across the load range the SMB model"
              "\nuses.");
  }

  std::puts("\n=== DES validation 2: malleable fair-share makespan ===");
  std::puts("(two parallel jobs on a 4-core node, fluid model vs DES)\n");
  {
    Table t{{"job A work", "job B work", "fluid A (s)", "DES A (s)",
             "fluid B (s)", "DES B (s)"}};
    const CpuModel cpu{4, 1.0};
    for (const auto& [wa, wb] : std::vector<std::pair<double, double>>{
             {20.0, 20.0}, {8.0, 40.0}, {4.0, 4.0}, {30.0, 10.0}}) {
      const auto fluid = schedule_malleable(
          {{"a", 0.0, wa, 0}, {"b", 0.0, wb, 0}}, cpu);

      Simulator sim;
      Resource cores{sim, "cpu", 4.0};  // 4 core-seconds per second
      double fa = 0.0;
      double fb = 0.0;
      cores.submit(wa, [&] { fa = sim.now(); });
      cores.submit(wb, [&] { fb = sim.now(); });
      sim.run();

      t.add_row({Table::num(wa, 0), Table::num(wb, 0),
                 Table::num(fluid.finish_seconds[0], 2), Table::num(fa, 2),
                 Table::num(fluid.finish_seconds[1], 2), Table::num(fb, 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\ncheck: identical — both implement equal-share scheduling;"
              "\nthe scenario models inherit that agreement.");
  }
  return 0;
}
