// Fig. 8(c) — growth curve of String Match on Duo and Quad storage nodes.
//
// Same sweep as Fig. 8(b) for SM.  Paper shape: near-linear growth, Quad
// under Duo, and (per Section V-B) "for the applications that are not
// very data-intensive, the Partition model can only enhance their
// supportability of data-size range" — i.e. native SM degrades only
// mildly before its >1.5G overflow.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "cluster/scenarios.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

int main(int argc, char** argv) {
  const benchutil::BenchEnv env =
      benchutil::parse_bench_env(argc, argv);
  const Testbed& tb = env.tb;
  const std::uint64_t partition = env.partition_size;
  const std::vector<std::uint64_t> sizes{500_MiB, 750_MiB, 1_GiB,
                                         1_GiB + 256_MiB, 1_GiB + 512_MiB,
                                         2_GiB};
  const AppProfile& sm = env.sm;

  std::puts("=== Fig. 8(c): String Match growth curve (elapsed seconds) ===\n");
  Table t{{"size", "Duo partitioned", "Quad partitioned", "Duo native",
           "Quad native"}};
  for (const std::uint64_t bytes : sizes) {
    const auto duo_p = run_single_app(tb, tb.sd_duo, sm, bytes,
                                      ExecMode::kParallelPartitioned,
                                      partition);
    const auto quad_p = run_single_app(tb, tb.sd_quad, sm, bytes,
                                       ExecMode::kParallelPartitioned,
                                       partition);
    const auto duo_n =
        run_single_app(tb, tb.sd_duo, sm, bytes, ExecMode::kParallelNative);
    const auto quad_n =
        run_single_app(tb, tb.sd_quad, sm, bytes, ExecMode::kParallelNative);
    t.add_row({format_bytes(bytes), Table::num(duo_p.seconds(), 1),
               Table::num(quad_p.seconds(), 1),
               duo_n.completed() ? Table::num(duo_n.seconds(), 1) : "OOM",
               quad_n.completed() ? Table::num(quad_n.seconds(), 1) : "OOM"});
  }
  benchutil::emit(env, t);
  std::puts("\npaper check: near-linear growth; SM's mostly-clean footprint"
            "\nkeeps native close to partitioned until the >1.5G overflow.");
  return 0;
}
