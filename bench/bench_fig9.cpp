// Fig. 9 — speedups of the Matrix-Multiplication / Word-Count pair.
//
// Four system configurations (Section V-C): host-only, traditional
// single-core SD, McSD without partitioning, and the full McSD framework
// (600 MB partitions) as the speedup reference.  Panels (a)(b)(c) of the
// figure plot each alternative's elapsed time over the reference.
//
// Paper shape: traditional SD ≈ 2x flat; host-only and McSD-no-partition
// near 1-2x below the memory threshold, exploding to ~17x / ~7x averages
// past it (WC's 3x-of-input dirty footprint thrashes).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "cluster/scenarios.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

int main(int argc, char** argv) {
  const benchutil::BenchEnv env =
      benchutil::parse_bench_env(argc, argv);
  const Testbed& tb = env.tb;
  const std::uint64_t partition = env.partition_size;
  const std::vector<std::uint64_t> sizes{500_MiB, 750_MiB, 1_GiB,
                                         1_GiB + 256_MiB};
  const AppProfile& mm = env.mm;
  const AppProfile& wc = env.wc;

  std::puts("=== Fig. 9: MM/WC multi-application speedups ===");
  std::puts("(reference: McSD partitioned, 600M fragments)\n");

  Table t{{"size", "McSD part. (s)", "host-only (s)", "trad SD (s)",
           "no-part (s)", "(a) host-only x", "(b) trad SD x",
           "(c) no-part x"}};
  for (const std::uint64_t bytes : sizes) {
    const auto reference = run_pair(tb, PairScenario::kMcsdPartitioned, mm,
                                    wc, bytes, partition);
    const auto host = run_pair(tb, PairScenario::kHostOnly, mm, wc, bytes,
                               partition);
    const auto trad = run_pair(tb, PairScenario::kTraditionalSd, mm, wc,
                               bytes, partition);
    const auto nopart = run_pair(tb, PairScenario::kMcsdNoPartition, mm, wc,
                                 bytes, partition);
    const auto cell = [](const PairResult& r) {
      return r.completed ? Table::num(r.makespan_seconds, 1) : "OOM";
    };
    const auto ratio = [&](const PairResult& r) {
      return r.completed ? Table::num(speedup_vs(r, reference), 2) : "-";
    };
    t.add_row({format_bytes(bytes), Table::num(reference.makespan_seconds, 1),
               cell(host), cell(trad), cell(nopart), ratio(host), ratio(trad),
               ratio(nopart)});
  }
  benchutil::emit(env, t);
  std::puts("\npaper check: (b) ~2x flat; (a) and (c) near-parity at 500M,"
            "\nblowing up past the memory threshold, host-only worst"
            "\n(paper averages past threshold: 17.4x and 6.8x).");
  return 0;
}
