// Microbenchmarks of smartFAM: protocol encode/decode throughput and the
// real end-to-end invocation latency through the log-file channel (the
// quantity the simulator's fam_invocation_seconds constant abstracts).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "core/io.hpp"
#include "fam/client.hpp"
#include "fam/daemon.hpp"
#include "fam/protocol.hpp"

namespace {

using namespace mcsd;
using namespace std::chrono_literals;

fam::Record sample_record() {
  fam::Record r;
  r.type = fam::RecordType::kRequest;
  r.seq = 123;
  r.module = "wordcount";
  r.payload.set("input", "/shared/corpus.txt");
  r.payload.set_uint("partition_size", 600ULL << 20);
  r.payload.set("flags", "sorted,merged");
  return r;
}

void BM_ProtocolEncode(benchmark::State& state) {
  const fam::Record r = sample_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fam::encode_record(r));
  }
}
BENCHMARK(BM_ProtocolEncode);

void BM_ProtocolDecode(benchmark::State& state) {
  const std::string wire = fam::encode_record(sample_record());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fam::decode_record(wire));
  }
}
BENCHMARK(BM_ProtocolDecode);

void BM_FamRoundTrip(benchmark::State& state) {
  TempDir dir{"fambench"};
  fam::Daemon daemon{fam::DaemonOptions{dir.path(), 1ms, 1}};
  (void)daemon.preload(std::make_shared<fam::FunctionModule>(
      "noop", [](const KeyValueMap& p) -> Result<KeyValueMap> { return p; }));
  daemon.start();
  fam::Client client{fam::ClientOptions{dir.path(), 1ms, 10'000ms}};
  KeyValueMap params;
  params.set("ping", "pong");
  for (auto _ : state) {
    auto result = client.invoke("noop", params);
    if (!result.is_ok()) state.SkipWithError("invoke failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FamRoundTrip)->Unit(benchmark::kMillisecond);

void BM_AtomicLogWrite(benchmark::State& state) {
  TempDir dir{"fambench"};
  const std::string wire = fam::encode_record(sample_record());
  const auto path = dir / "mod.log";
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_file_atomic(path, wire));
  }
}
BENCHMARK(BM_AtomicLogWrite);

}  // namespace
