// Fig. 8(b) — growth curve of Word Count on Duo and Quad storage nodes.
//
// Elapsed time versus input size, 500 MB .. 2 GB, for the partition-
// enabled runtime (the paper's plotted series) with the stock-Phoenix
// native run alongside to show where it degrades and where it dies:
// "the traditional Phoenix cannot support the Word-count ... for data
// size larger than 1.5G, because of the memory overflow."
//
// Paper shape: near-linear ("linear-like growth") partitioned curves,
// Quad under Duo.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "cluster/scenarios.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

int main(int argc, char** argv) {
  const benchutil::BenchEnv env =
      benchutil::parse_bench_env(argc, argv);
  const Testbed& tb = env.tb;
  const std::uint64_t partition = env.partition_size;
  const std::vector<std::uint64_t> sizes{500_MiB, 750_MiB, 1_GiB,
                                         1_GiB + 256_MiB, 1_GiB + 512_MiB,
                                         2_GiB};
  const AppProfile& wc = env.wc;

  std::puts("=== Fig. 8(b): Word Count growth curve (elapsed seconds) ===\n");
  Table t{{"size", "Duo partitioned", "Quad partitioned", "Duo native",
           "Quad native"}};
  for (const std::uint64_t bytes : sizes) {
    const auto duo_p = run_single_app(tb, tb.sd_duo, wc, bytes,
                                      ExecMode::kParallelPartitioned,
                                      partition);
    const auto quad_p = run_single_app(tb, tb.sd_quad, wc, bytes,
                                       ExecMode::kParallelPartitioned,
                                       partition);
    const auto duo_n =
        run_single_app(tb, tb.sd_duo, wc, bytes, ExecMode::kParallelNative);
    const auto quad_n =
        run_single_app(tb, tb.sd_quad, wc, bytes, ExecMode::kParallelNative);
    t.add_row({format_bytes(bytes), Table::num(duo_p.seconds(), 1),
               Table::num(quad_p.seconds(), 1),
               duo_n.completed() ? Table::num(duo_n.seconds(), 1) : "OOM",
               quad_n.completed() ? Table::num(quad_n.seconds(), 1) : "OOM"});
  }
  benchutil::emit(env, t);
  std::puts("\npaper check: partitioned curves grow near-linearly, Quad below"
            "\nDuo; native bends up past ~750M (thrash) and dies above 1.5G.");
  return 0;
}
