// Fig. 10 — speedups of the Matrix-Multiplication / String-Match pair.
//
// Same four configurations as Fig. 9, with SM as the data-intensive job.
// Paper shape: everything stays in the 1.5-2.5x band — "the speedups of
// the MM/SM, which represents less data-intensive applications, are both
// averagely 2X" — because SM's overflow is mostly clean input pages.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "cluster/scenarios.hpp"

using namespace mcsd;
using namespace mcsd::sim;
using namespace mcsd::literals;

int main(int argc, char** argv) {
  const benchutil::BenchEnv env =
      benchutil::parse_bench_env(argc, argv);
  const Testbed& tb = env.tb;
  const std::uint64_t partition = env.partition_size;
  const std::vector<std::uint64_t> sizes{500_MiB, 750_MiB, 1_GiB,
                                         1_GiB + 256_MiB};
  const AppProfile& mm = env.mm;
  const AppProfile& sm = env.sm;

  std::puts("=== Fig. 10: MM/SM multi-application speedups ===");
  std::puts("(reference: McSD partitioned, 600M fragments)\n");

  Table t{{"size", "McSD part. (s)", "host-only (s)", "trad SD (s)",
           "no-part (s)", "(a) host-only x", "(b) trad SD x",
           "(c) no-part x"}};
  for (const std::uint64_t bytes : sizes) {
    const auto reference = run_pair(tb, PairScenario::kMcsdPartitioned, mm,
                                    sm, bytes, partition);
    const auto host =
        run_pair(tb, PairScenario::kHostOnly, mm, sm, bytes, partition);
    const auto trad =
        run_pair(tb, PairScenario::kTraditionalSd, mm, sm, bytes, partition);
    const auto nopart = run_pair(tb, PairScenario::kMcsdNoPartition, mm, sm,
                                 bytes, partition);
    const auto cell = [](const PairResult& r) {
      return r.completed ? Table::num(r.makespan_seconds, 1) : "OOM";
    };
    const auto ratio = [&](const PairResult& r) {
      return r.completed ? Table::num(speedup_vs(r, reference), 2) : "-";
    };
    t.add_row({format_bytes(bytes), Table::num(reference.makespan_seconds, 1),
               cell(host), cell(trad), cell(nopart), ratio(host), ratio(trad),
               ratio(nopart)});
  }
  benchutil::emit(env, t);
  std::puts("\npaper check: all three alternatives in the ~1.5-2.5x band at"
            "\nevery size — no Fig. 9-style blow-up for the SM pair.");
  return 0;
}
