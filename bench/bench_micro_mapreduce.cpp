// Microbenchmarks of the MapReduce runtime (google-benchmark).
//
// Not a paper artifact — engineering sanity for the engine itself: map
// throughput, combine effectiveness, identity-reduce path, worker sweep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/matmul.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/hash.hpp"
#include "core/strings.hpp"
#include "mapreduce/engine.hpp"

namespace {

using namespace mcsd;

const std::string& corpus_1mib() {
  static const std::string text = [] {
    apps::CorpusOptions opts;
    opts.bytes = 1 << 20;
    opts.vocabulary = 5'000;
    return apps::generate_corpus(opts);
  }();
  return text;
}

void BM_WordCountSequential(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::wordcount_sequential(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_WordCountSequential);

void BM_WordCountEngine(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks = mr::split_text(text, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(apps::WordCountSpec{}, chunks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_WordCountEngine)->Arg(1)->Arg(2)->Arg(4);

void BM_StringMatchEngine(benchmark::State& state) {
  static const auto data = [] {
    apps::LineFileOptions lf;
    lf.bytes = 1 << 20;
    std::string text = apps::generate_line_file(lf);
    apps::KeysOptions ko;
    ko.count = 8;
    auto keys = apps::generate_and_plant_keys(text, ko);
    return std::pair{std::move(text), std::move(keys)};
  }();
  apps::StringMatchSpec spec;
  spec.keys = data.second;
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::StringMatchSpec> engine{opts};
  const auto chunks = mr::split_lines(data.first, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(spec, chunks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.first.size()));
}
BENCHMARK(BM_StringMatchEngine)->Arg(1)->Arg(2);

void BM_MatMulEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const apps::Matrix a = apps::generate_matrix(n, n, 1);
  const apps::Matrix b = apps::generate_matrix(n, n, 2);
  apps::MatMulSpec spec;
  spec.a = &a;
  spec.b = &b;
  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<apps::MatMulSpec> engine{opts};
  const auto chunks = mr::split_index(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(spec, chunks));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMulEngine)->Arg(32)->Arg(64)->Arg(128);

// ---------------------------------------------------------------------------
// Emit-path A/B: the seed emit path (owned std::string key per emit, pushed
// into flat bucket vectors, duplicates collapsed by a final sort-based fold)
// against the current emitter (string_view emit, per-bucket open-addressing
// hash combine).  Same token stream, same bucket count, both ending in fully
// combined per-bucket pairs — only the emit/combine mechanism differs.
// ---------------------------------------------------------------------------

/// Replica of the seed's emit+fold data path, kept here as the baseline.
struct LegacyEmitPath {
  using Pair = mr::KV<std::string, std::uint64_t>;

  explicit LegacyEmitPath(std::size_t num_buckets) : buckets(num_buckets) {}

  void emit(std::string key, std::uint64_t value) {
    const std::size_t b =
        static_cast<std::size_t>(KeyHash<std::string>{}(key)) % buckets.size();
    buckets[b].push_back(Pair{std::move(key), value});
  }

  void fold_all() {
    for (auto& bucket : buckets) {
      if (bucket.size() < 2) continue;
      std::sort(bucket.begin(), bucket.end(),
                [](const Pair& a, const Pair& b) { return a.key < b.key; });
      std::vector<Pair> folded;
      folded.reserve(bucket.size() / 2 + 1);
      std::size_t i = 0;
      while (i < bucket.size()) {
        std::size_t j = i + 1;
        std::uint64_t sum = bucket[i].value;
        while (j < bucket.size() && bucket[j].key == bucket[i].key) {
          sum += bucket[j].value;
          ++j;
        }
        folded.push_back(Pair{std::move(bucket[i].key), sum});
        i = j;
      }
      bucket = std::move(folded);
    }
  }

  std::vector<std::vector<Pair>> buckets;
};

template <typename EmitFn>
void for_each_word(std::string_view text, EmitFn emit) {
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !is_word_char(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && is_word_char(text[i])) ++i;
    if (i > start) emit(text.substr(start, i - start));
  }
}

void BM_EmitPathLegacySortFold(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  const auto buckets = static_cast<std::size_t>(state.range(0));
  std::size_t pairs = 0;
  for (auto _ : state) {
    LegacyEmitPath emitter{buckets};
    for_each_word(text, [&](std::string_view word) {
      emitter.emit(std::string{word}, 1);
    });
    emitter.fold_all();
    pairs = 0;
    for (const auto& b : emitter.buckets) pairs += b.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["combined_pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_EmitPathLegacySortFold)->Arg(8)->Arg(32);

void BM_EmitPathHashCombine(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  const auto buckets = static_cast<std::size_t>(state.range(0));
  std::size_t pairs = 0;
  for (auto _ : state) {
    mr::Emitter<std::string, std::uint64_t> emitter{buckets};
    emitter.set_combiner(
        nullptr,
        [](const void*, const std::string_view&, const std::uint64_t& acc,
           const std::uint64_t& incoming) { return acc + incoming; });
    for_each_word(text,
                  [&](std::string_view word) { emitter.emit(word, 1); });
    pairs = emitter.stored();
    benchmark::DoNotOptimize(pairs);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["combined_pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_EmitPathHashCombine)->Arg(8)->Arg(32);

// ---------------------------------------------------------------------------
// Worker-state reuse A/B: repeated engine runs over a fragment-sized input
// with the cached per-worker state dropped before every run (the old
// construct-per-run behaviour) vs reused (arenas rewound, buckets and
// gather buffers keep capacity).  The delta is the per-fragment setup
// overhead an out-of-core run pays once per fragment.
// ---------------------------------------------------------------------------

const std::string& fragment_256kib() {
  static const std::string text = [] {
    apps::CorpusOptions opts;
    opts.bytes = 256 * 1024;
    opts.vocabulary = 5'000;
    return apps::generate_corpus(opts);
  }();
  return text;
}

void BM_EngineRunColdState(benchmark::State& state) {
  const std::string& text = fragment_256kib();
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks = mr::split_text(text, 64 * 1024);
  for (auto _ : state) {
    engine.release_worker_state();
    benchmark::DoNotOptimize(engine.run(apps::WordCountSpec{}, chunks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_EngineRunColdState)->Arg(1)->Arg(4);

void BM_EngineRunReusedState(benchmark::State& state) {
  const std::string& text = fragment_256kib();
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks = mr::split_text(text, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(apps::WordCountSpec{}, chunks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_EngineRunReusedState)->Arg(1)->Arg(4);

void BM_TextSplit(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mr::split_text(text, static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_TextSplit)->Arg(4 << 10)->Arg(64 << 10)->Arg(256 << 10);

}  // namespace
