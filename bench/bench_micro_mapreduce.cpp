// Microbenchmarks of the MapReduce runtime (google-benchmark).
//
// Not a paper artifact — engineering sanity for the engine itself: map
// throughput, combine effectiveness, identity-reduce path, worker sweep.
#include <benchmark/benchmark.h>

#include <string>

#include "apps/datagen.hpp"
#include "apps/matmul.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "mapreduce/engine.hpp"

namespace {

using namespace mcsd;

const std::string& corpus_1mib() {
  static const std::string text = [] {
    apps::CorpusOptions opts;
    opts.bytes = 1 << 20;
    opts.vocabulary = 5'000;
    return apps::generate_corpus(opts);
  }();
  return text;
}

void BM_WordCountSequential(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::wordcount_sequential(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_WordCountSequential);

void BM_WordCountEngine(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks = mr::split_text(text, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(apps::WordCountSpec{}, chunks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_WordCountEngine)->Arg(1)->Arg(2)->Arg(4);

void BM_StringMatchEngine(benchmark::State& state) {
  static const auto data = [] {
    apps::LineFileOptions lf;
    lf.bytes = 1 << 20;
    std::string text = apps::generate_line_file(lf);
    apps::KeysOptions ko;
    ko.count = 8;
    auto keys = apps::generate_and_plant_keys(text, ko);
    return std::pair{std::move(text), std::move(keys)};
  }();
  apps::StringMatchSpec spec;
  spec.keys = data.second;
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::StringMatchSpec> engine{opts};
  const auto chunks = mr::split_lines(data.first, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(spec, chunks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.first.size()));
}
BENCHMARK(BM_StringMatchEngine)->Arg(1)->Arg(2);

void BM_MatMulEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const apps::Matrix a = apps::generate_matrix(n, n, 1);
  const apps::Matrix b = apps::generate_matrix(n, n, 2);
  apps::MatMulSpec spec;
  spec.a = &a;
  spec.b = &b;
  mr::Options opts;
  opts.num_workers = 2;
  mr::Engine<apps::MatMulSpec> engine{opts};
  const auto chunks = mr::split_index(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(spec, chunks));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMulEngine)->Arg(32)->Arg(64)->Arg(128);

void BM_TextSplit(benchmark::State& state) {
  const std::string& text = corpus_1mib();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mr::split_text(text, static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_TextSplit)->Arg(4 << 10)->Arg(64 << 10)->Arg(256 << 10);

}  // namespace
