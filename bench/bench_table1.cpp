// Table I — the configuration of the 5-node cluster.
//
// Prints the emulated testbed (what the paper tabulates) plus every model
// constant the simulator layers on top, so bench_fig* output is fully
// reproducible from this one page.
#include <cstdio>

#include "cluster/jobmodel.hpp"
#include "cluster/profiles.hpp"
#include "cluster/testbed.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

using namespace mcsd;
using namespace mcsd::sim;

namespace {

std::string cores_str(const NodeSpec& n) {
  return std::to_string(n.cpu.cores) + " @ " + Table::num(n.cpu.core_speed, 2) +
         "x ref";
}

}  // namespace

int main() {
  const Testbed tb = table1_testbed();

  std::puts("=== Table I: the configuration of the 5-node cluster ===\n");
  Table nodes{{"role", "paper hardware", "cores (rel. speed)", "memory",
               "network"}};
  nodes.add_row({"Host", "Intel Core2 Quad Q9400", cores_str(tb.host),
                 format_bytes(tb.host.memory_bytes), "1000 Mbps"});
  nodes.add_row({"SD", "Intel Core2 Duo E4400", cores_str(tb.sd_duo),
                 format_bytes(tb.sd_duo.memory_bytes), "1000 Mbps"});
  nodes.add_row({"Nodes x3", "Intel Celeron 450", cores_str(tb.compute[0]),
                 format_bytes(tb.compute[0].memory_bytes), "1000 Mbps"});
  nodes.add_row({"OS", "Ubuntu 9.04 Jaunty 64bit (emulated)", "-", "-", "-"});
  std::fputs(nodes.render().c_str(), stdout);

  std::puts("\n=== Simulator model constants ===\n");
  Table model{{"constant", "value", "role"}};
  const DiskModel disk = tb.sd_duo.disk;
  model.add_row({"disk seq read", Table::num(disk.seq_read_mibps, 0) + " MiB/s",
                 "input streaming (page-cache assisted)"});
  model.add_row({"disk seq write", Table::num(disk.seq_write_mibps, 0) + " MiB/s",
                 "output"});
  model.add_row({"disk swap bw", Table::num(disk.swap_mibps, 0) + " MiB/s",
                 "dirty-page thrash"});
  model.add_row({"NFS efficiency", Table::num(tb.nfs.protocol_efficiency, 2),
                 "goodput over 1 GbE"});
  model.add_row({"swap amplification",
                 Table::num(tb.swap.amplification, 2) + " * ratio^" +
                     Table::num(tb.swap.exponent - 1.0, 0),
                 "dirty re-fault multiplier"});
  model.add_row({"clean refault passes", Table::num(tb.swap.refault_passes, 0),
                 "mmapped input re-reads under pressure"});
  model.add_row({"Phoenix input ceiling",
                 Table::num(kPhoenixInputCeilingFraction * 100, 0) + "% of RAM",
                 "stock-Phoenix OOM point (paper: fails >1.5G on 2G)"});
  model.add_row({"OS reserve", format_bytes(tb.host.os_reserve_bytes),
                 "kernel + daemons"});
  model.add_row({"FAM round trip",
                 Table::num(tb.fam_invocation_seconds * 1000, 0) + " ms",
                 "smartFAM log-file invocation"});
  model.add_row({"SMB background",
                 Table::num(tb.smb.link_utilization(tb.host.nic) * 100, 1) + "%",
                 "routine-work link utilisation (host/compute links)"});
  std::fputs(model.render().c_str(), stdout);

  std::puts("\n=== Application profiles (per reference core) ===\n");
  Table apps{{"app", "MiB/s", "footprint", "dirty", "parallel frac",
              "partitionable"}};
  for (const AppProfile& p :
       {wordcount_profile(), stringmatch_profile(), matmul_profile()}) {
    apps.add_row({p.name, Table::num(1.0 / p.seconds_per_mib, 0),
                  Table::num(p.footprint_factor, 2) + "x input",
                  Table::num(p.dirty_footprint_factor, 2) + "x input",
                  Table::num(p.parallel_fraction, 2),
                  p.partitionable ? "yes" : "no"});
  }
  std::fputs(apps.render().c_str(), stdout);
  return 0;
}
