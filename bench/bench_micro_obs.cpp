// Microbenchmarks of the obs subsystem (google-benchmark).
//
// The A/B evidence behind the DESIGN.md section 8 overhead budget: every
// instrumented operation is measured enabled vs runtime-disabled, and
// the full engine wordcount path is measured with obs on vs off — the
// on/off throughput delta is the end-to-end overhead (budget: <= 2%).
// Building with -DMCSD_ENABLE_OBS=OFF compiles the macros to nothing,
// at which point the *_Enabled and *_Disabled series collapse together.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "mapreduce/engine.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mcsd;

// --- hot-path primitives: enabled vs runtime-disabled -----------------

void BM_CounterAdd_Enabled(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    MCSD_OBS_COUNT("bench.counter", 1);
  }
}
BENCHMARK(BM_CounterAdd_Enabled);

void BM_CounterAdd_Disabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    MCSD_OBS_COUNT("bench.counter", 1);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_CounterAdd_Disabled);

// Contention check: all threads hammer the SAME counter; sharding keeps
// the shards on distinct cache lines, so this should scale ~linearly.
void BM_CounterAdd_Contended(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    MCSD_OBS_COUNT("bench.counter_contended", 1);
  }
}
BENCHMARK(BM_CounterAdd_Contended)->Threads(2)->Threads(4)->Threads(8);

void BM_HistogramRecord_Enabled(benchmark::State& state) {
  obs::set_enabled(true);
  std::uint64_t v = 1;
  for (auto _ : state) {
    MCSD_OBS_HIST("bench.hist", "us", v);
    v = v * 2654435761u % 100000;  // varied bucket pattern
  }
}
BENCHMARK(BM_HistogramRecord_Enabled);

void BM_HistogramRecord_Disabled(benchmark::State& state) {
  obs::set_enabled(false);
  std::uint64_t v = 1;
  for (auto _ : state) {
    MCSD_OBS_HIST("bench.hist", "us", v);
    v = v * 2654435761u % 100000;
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_HistogramRecord_Disabled);

void BM_Span_Enabled(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    MCSD_OBS_SPAN("bench", "bench.span");
  }
}
BENCHMARK(BM_Span_Enabled);

void BM_Span_Disabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    MCSD_OBS_SPAN("bench", "bench.span");
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_Span_Disabled);

// --- end-to-end: the instrumented engine with obs on vs off -----------

const std::string& corpus_1mib() {
  static const std::string text = [] {
    apps::CorpusOptions opts;
    opts.bytes = 1 << 20;
    opts.vocabulary = 5'000;
    return apps::generate_corpus(opts);
  }();
  return text;
}

void engine_wordcount_pass(benchmark::State& state, bool obs_on) {
  const std::string& text = corpus_1mib();
  mr::Options opts;
  opts.num_workers = static_cast<std::size_t>(state.range(0));
  mr::Engine<apps::WordCountSpec> engine{opts};
  const auto chunks = mr::split_text(text, 64 * 1024);
  const bool was_enabled = obs::enabled();
  obs::set_enabled(obs_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(apps::WordCountSpec{}, chunks));
  }
  obs::set_enabled(was_enabled);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_EngineWordCount_ObsOn(benchmark::State& state) {
  engine_wordcount_pass(state, /*obs_on=*/true);
}
BENCHMARK(BM_EngineWordCount_ObsOn)->Arg(1)->Arg(2)->Arg(4);

void BM_EngineWordCount_ObsOff(benchmark::State& state) {
  engine_wordcount_pass(state, /*obs_on=*/false);
}
BENCHMARK(BM_EngineWordCount_ObsOff)->Arg(1)->Arg(2)->Arg(4);

// --- export path (cold, but must not be pathological) ------------------

void BM_SnapshotAndRender(benchmark::State& state) {
  obs::set_enabled(true);
  MCSD_OBS_COUNT("bench.snapshot_probe", 1);
  MCSD_OBS_HIST("bench.snapshot_hist", "us", 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::Registry::instance().snapshot());
  }
}
BENCHMARK(BM_SnapshotAndRender);

}  // namespace
