// Fundamental types of the Phoenix-style MapReduce runtime.
//
// The runtime reimplements, in C++20, the programming model of Phoenix
// (Ranger et al., HPCA'07) that the paper embeds in the McSD storage
// node: user code supplies map / reduce (and optionally combine)
// callbacks; the runtime owns threading, dynamic task scheduling,
// keyspace partitioning, sorting and merging.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mcsd::mr {

/// One intermediate or final key/value pair.
template <typename K, typename V>
struct KV {
  K key;
  V value;

  friend bool operator==(const KV&, const KV&) = default;
};

/// An intermediate pair carrying its cached 64-bit key hash.  The map
/// phase computes the hash once per emit (it already needs it for bucket
/// routing); the reduce phase reuses it for open-addressing probes and a
/// hash-then-key sort that avoids most full key comparisons.
template <typename K, typename V>
struct HKV {
  K key;
  V value;
  std::uint64_t hash = 0;

  friend bool operator==(const HKV&, const HKV&) = default;
};

/// Thrown when a job's estimated or observed memory footprint exceeds the
/// configured budget.  This reproduces the behaviour the paper reports for
/// stock Phoenix: "the Phoenix runtime system does not support any
/// application whose required data size exceeds approximately 60% of a
/// computing node's memory size" (Section IV-B).  The partition module
/// exists to catch exactly this error and fall back to out-of-core
/// processing.
class MemoryOverflowError : public std::runtime_error {
 public:
  MemoryOverflowError(std::uint64_t required_bytes, std::uint64_t budget_bytes)
      : std::runtime_error(
            "MapReduce memory overflow: footprint " +
            std::to_string(required_bytes) + " bytes exceeds usable budget " +
            std::to_string(budget_bytes) + " bytes"),
        required_bytes_(required_bytes),
        budget_bytes_(budget_bytes) {}

  [[nodiscard]] std::uint64_t required_bytes() const noexcept {
    return required_bytes_;
  }
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept {
    return budget_bytes_;
  }

 private:
  std::uint64_t required_bytes_;
  std::uint64_t budget_bytes_;
};

/// Engine configuration.  Worker count is always explicit: the paper's
/// experiments hinge on "duo-core vs quad-core storage node", so core
/// count is an input, never divined from the machine.
struct Options {
  /// Number of map/reduce worker threads (the emulated core count).
  std::size_t num_workers = 2;

  /// Reduce-side keyspace buckets.  0 selects kDefaultReduceBuckets — a
  /// constant, deliberately *independent of worker count*: with a fixed
  /// keyspace split, bucket geometry (and therefore bucket-order output)
  /// is identical at any parallelism level, and per-bucket reduce work
  /// stops growing as workers are added.  32 buckets leave ample dynamic
  /// load-balancing slack up to 8 workers.
  std::size_t num_reduce_buckets = 0;

  static constexpr std::size_t kDefaultReduceBuckets = 32;

  /// Map-side memory budget in bytes; 0 disables enforcement.  Models the
  /// RAM of the storage node running the job.
  std::uint64_t memory_budget_bytes = 0;

  /// Fraction of the budget usable before MemoryOverflowError — the
  /// paper's ~60% observation for Phoenix.
  double usable_memory_fraction = 0.6;

  /// If true the final output is sorted by key; if false, output order is
  /// bucket order (deterministic for a fixed bucket count).
  bool sort_output_by_key = false;

  /// When true the map phase attributes cycles per worker: tokenize vs
  /// hash vs combine-probe (reported by the emitter's batched emit path)
  /// plus chunk-claim/steal time, into Metrics::map_workers.  Costs a few
  /// steady_clock reads per emit batch — off by default so throughput
  /// runs measure the uninstrumented loop; benches flip it on for one
  /// attribution pass.
  bool attribute_map_cycles = false;

  [[nodiscard]] std::size_t effective_reduce_buckets() const noexcept {
    return num_reduce_buckets != 0 ? num_reduce_buckets : kDefaultReduceBuckets;
  }

  [[nodiscard]] std::uint64_t usable_budget() const noexcept {
    if (memory_budget_bytes == 0) return 0;
    return static_cast<std::uint64_t>(
        usable_memory_fraction * static_cast<double>(memory_budget_bytes));
  }

  void validate() const {
    if (num_workers == 0) {
      throw std::invalid_argument("Options.num_workers must be >= 1");
    }
    if (usable_memory_fraction <= 0.0 || usable_memory_fraction > 1.0) {
      throw std::invalid_argument(
          "Options.usable_memory_fraction must be in (0, 1]");
    }
  }
};

/// Per-worker map-phase attribution.  Wall vs CPU seconds separate "the
/// worker was slow" from "the worker was descheduled" (on a host with
/// fewer cores than workers the two diverge wildly — the whole point of
/// recording both).  The tokenize/hash/probe/claim timing split is filled
/// only when Options.attribute_map_cycles is set; chunk/steal/emit counts
/// are always on (they cost one addition per scheduler round).
struct MapWorkerStats {
  double wall_seconds = 0.0;      ///< worker body wall time
  double cpu_seconds = 0.0;       ///< worker body thread CPU time
  double tokenize_seconds = 0.0;  ///< map fn outside the emitter (attribution)
  double hash_seconds = 0.0;      ///< batched key hashing (attribution)
  double probe_seconds = 0.0;     ///< combiner probe/insert (attribution)
  double claim_seconds = 0.0;     ///< scheduler claims incl. steal scans
  std::size_t chunks = 0;         ///< chunks this worker mapped
  std::size_t steals = 0;         ///< batches taken from another slab
  std::size_t emits = 0;          ///< raw emits from this worker
};

/// Per-phase wall-clock timings and volume counters, filled by the engine.
struct Metrics {
  double split_seconds = 0.0;
  double map_seconds = 0.0;
  double reduce_seconds = 0.0;   ///< includes per-bucket sort/group
  double merge_seconds = 0.0;
  std::size_t chunks = 0;
  std::size_t map_emits = 0;    ///< raw emit calls, before map-side combining
  std::size_t map_stored_pairs = 0;  ///< pairs surviving emit-time combining
  std::size_t map_combine_hits = 0;  ///< emits folded into an existing pair
  std::size_t unique_keys = 0;
  std::uint64_t peak_intermediate_bytes = 0;
  /// Post-combine emitter bytes summed over workers (excludes input).
  std::uint64_t map_intermediate_bytes = 0;
  /// Per-worker map-phase attribution (size == num_workers after run()).
  std::vector<MapWorkerStats> map_workers;

  [[nodiscard]] double map_cpu_seconds() const noexcept {
    double total = 0.0;
    for (const auto& w : map_workers) total += w.cpu_seconds;
    return total;
  }
  [[nodiscard]] std::size_t map_steals() const noexcept {
    std::size_t total = 0;
    for (const auto& w : map_workers) total += w.steals;
    return total;
  }

  [[nodiscard]] double total_seconds() const noexcept {
    return split_seconds + map_seconds + reduce_seconds + merge_seconds;
  }
};

// ---------------------------------------------------------------------------
// Spec concepts.  A Spec binds the user callbacks; see apps/ for the three
// benchmark specs (word count, string match, matrix multiplication).
// ---------------------------------------------------------------------------

template <typename S>
concept MapReduceSpec = requires {
  typename S::Key;
  typename S::Value;
  requires std::totally_ordered<typename S::Key>;
};

/// Detects an optional `combine` member: combine(key, span<Value>) -> Value,
/// applied map-side per worker to shrink intermediate data (a standard
/// MapReduce optimisation; Phoenix exposes the same hook).
template <typename S>
concept HasCombine = requires(const S& s, const typename S::Key& k,
                              std::span<const typename S::Value> vs) {
  { s.combine(k, vs) } -> std::convertible_to<typename S::Value>;
};

}  // namespace mcsd::mr
