// Parallel sort for the merge phase.
//
// Phoenix's final stage sorts the output ("Finally, the output pairs are
// sorted by their key value").  For large outputs a single-threaded
// std::sort leaves the node's cores idle exactly when the job is almost
// done; this helper block-sorts on the pool and merges pairwise.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/thread_pool.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::mr {

/// Orders hashed intermediate pairs by cached hash, falling back to the
/// key only on hash collisions.  Equal keys hash equally, so equal-key
/// runs are contiguous after this sort — exactly what reduce-phase
/// grouping needs — while almost every comparison is a single integer
/// compare instead of a lexicographic string walk.  The resulting order
/// is deterministic but is NOT key order; sort by key afterwards if the
/// caller asked for sorted output.
struct HashThenKeyLess {
  template <typename K, typename V>
  bool operator()(const HKV<K, V>& a, const HKV<K, V>& b) const {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.key < b.key;
  }
};

/// Sorts `items` with `compare` using up to `pool.worker_count() + 1`
/// lanes: split into equal blocks, sort blocks in parallel, then merge
/// pairs of adjacent runs (also in parallel) until one run remains.
/// Stable within what std::sort provides (i.e. not stable); equivalent
/// ordering to a plain std::sort with the same comparator.
template <typename T, typename Compare>
void parallel_sort(std::vector<T>& items, ThreadPool& pool, Compare compare) {
  const std::size_t lanes = pool.worker_count() + 1;
  constexpr std::size_t kMinBlock = 4096;  // below this, serial wins
  if (lanes <= 1 || items.size() < 2 * kMinBlock) {
    std::sort(items.begin(), items.end(), compare);
    return;
  }

  // Block boundaries (at most `lanes`, at least kMinBlock each).
  const std::size_t block =
      std::max(kMinBlock, (items.size() + lanes - 1) / lanes);
  std::vector<std::size_t> bounds{0};
  for (std::size_t pos = block; pos < items.size(); pos += block) {
    bounds.push_back(pos);
  }
  bounds.push_back(items.size());

  // Sort each block on the pool.
  pool.parallel_for_workers(bounds.size() - 1, [&](std::size_t b) {
    std::sort(items.begin() + static_cast<std::ptrdiff_t>(bounds[b]),
              items.begin() + static_cast<std::ptrdiff_t>(bounds[b + 1]),
              compare);
  });

  // Pairwise merge rounds: runs [b, b+1, b+2] -> inplace_merge at b+1.
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(bounds.size() / 2 + 1);
    const std::size_t pairs = (bounds.size() - 1) / 2;
    pool.parallel_for_workers(pairs, [&](std::size_t p) {
      const std::size_t lo = bounds[2 * p];
      const std::size_t mid = bounds[2 * p + 1];
      const std::size_t hi = bounds[2 * p + 2];
      std::inplace_merge(items.begin() + static_cast<std::ptrdiff_t>(lo),
                         items.begin() + static_cast<std::ptrdiff_t>(mid),
                         items.begin() + static_cast<std::ptrdiff_t>(hi),
                         compare);
    });
    for (std::size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

template <typename T>
void parallel_sort(std::vector<T>& items, ThreadPool& pool) {
  parallel_sort(items, pool, std::less<T>{});
}

}  // namespace mcsd::mr
