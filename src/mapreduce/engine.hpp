// The MapReduce engine: map+combine -> sort/group -> reduce -> merge.
//
// Mirrors Phoenix's runtime structure (paper Fig. 1):
//
//   chunks ── locality scheduler ──> map workers ──> per-worker, per-bucket
//   hash-combined intermediate stores ──> per-bucket cross-worker fold (or
//   gather + hash-then-key sort) + group ──> reduce workers ──> merge
//   (parallel bucket placement, optional global key sort).
//
// Map-phase handoff is locality-aware (scheduler.hpp): each worker streams
// a contiguous slab of the chunk index space on a private cursor and only
// touches another worker's slab to steal from its back once its own runs
// dry.  Each worker's wall time, thread CPU time, chunk/steal counts and
// (opt-in) tokenize/hash/probe cycle split land in Metrics::map_workers,
// so scaling regressions decompose into "which stage, which worker" —
// and host oversubscription (CPU << wall) is visible rather than silently
// eaten into throughput numbers.
//
// Reduce: for specs with both combine and reduce, bucket b is built by
// *folding* workers 1..N-1's pairs into worker 0's open-addressing bucket
// index (one O(1) probe per pair, reusing the cached hash) instead of
// gathering and sorting every worker's pairs; only surviving unique pairs
// are sorted.  Valid because the combiner contract already requires
// reduce(k, vs) == reduce(k, [combine-fold(vs)]).  Per-bucket reduce work
// therefore stops growing with worker count.
//
// Threading: one ThreadPool sized to Options.num_workers — the emulated
// core count of the storage node.  Map-side data is strictly
// worker-private; the only cross-thread handoff is the bucket gather at
// the map/reduce barrier, exactly as in Phoenix.
//
// Combining: specs with a `combine` hook fold duplicate keys *at emit
// time* through the emitter's per-bucket open-addressing tables (see
// emitter.hpp), so intermediate volume tracks unique keys rather than raw
// emits and no sort-based fold pass ever runs on the map path.  The
// 64-bit key hash computed for bucket routing is cached in every stored
// pair and reused for combiner probes and reduce-phase grouping.
//
// Worker-state reuse: emitters (bucket tables + key arenas) and the
// reduce-phase gather buffers live on the Engine, padded to cache-line
// boundaries, and are *reset* between run() calls instead of constructed
// and destroyed per run.  An out-of-core driver calling run() once per
// fragment therefore stops paying workers x buckets vector construction
// (and a heap free per unique key) for every fragment; fragment teardown
// is one arena rewind per worker.  release_worker_state() drops the
// cached state — the pre-reuse behaviour — for drivers that want the
// memory back between jobs (and for A/B-measuring the reuse win).
//
// Observability: run() opens obs spans per phase (mr.map / mr.reduce /
// mr.merge, plus per-worker and per-bucket child spans) and publishes
// each worker's emitter counters (emits, combine hits, bytes) into
// obs::Registry once at map-phase end, so the emit hot path itself stays
// uninstrumented.  Metrics keeps the per-run report; the obs registry
// accumulates across runs.
//
// Memory model: when Options.memory_budget_bytes > 0, the engine meters
// input + intermediate bytes and throws MemoryOverflowError once they
// exceed usable_memory_fraction (default 60%) of the budget, reproducing
// the stock-Phoenix failure the paper's partition extension works around.
// Because combining happens at emit time, the budget check always
// observes *combined* volume.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/log.hpp"
#include "core/stopwatch.hpp"
#include "core/thread_pool.hpp"
#include "mapreduce/emitter.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/sorter.hpp"
#include "mapreduce/splitter.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::mr {

/// Detects an optional `reduce` member.  Specs without one (String Match)
/// run the identity reduce: every emitted pair passes straight through —
/// "Neither sort or the reduce stage is required" (paper Section V-A).
template <typename S>
concept HasReduce = requires(const S& s, const typename S::Key& k,
                             std::span<const typename S::Value> vs) {
  { s.reduce(k, vs) } -> std::convertible_to<typename S::Value>;
};

/// A Spec maps chunks of type C.
template <typename S, typename C>
concept MapsChunk =
    requires(const S& s, const C& c,
             Emitter<typename S::Key, typename S::Value>& e) { s.map(c, e); };

/// Detects a `combine` that accepts the emitter's *stored* key
/// representation (a string_view for string keys) directly — the
/// allocation-free fast path.  Specs whose combine insists on `const
/// Key&` still work; the engine materialises a temporary key per fold.
template <typename S, typename SK>
concept CombinesStoredKey =
    requires(const S& s, const SK& k,
             std::span<const typename S::Value> vs) {
      { s.combine(k, vs) } -> std::convertible_to<typename S::Value>;
    };

namespace detail {
inline std::uint64_t chunk_input_bytes(const TextChunk& c) noexcept {
  return c.text.size();
}
inline std::uint64_t chunk_input_bytes(const IndexChunk&) noexcept {
  return 0;  // index chunks carry no payload; pass input_bytes explicitly
}

/// Adds the signed difference `now - reported` to `total`.  Emit-time
/// combining never shrinks emitter bytes, but the accounting stays
/// signed-safe so a future in-place compaction cannot silently wrap the
/// meter; debug builds assert the monotone invariant.
inline void apply_bytes_delta(std::atomic<std::uint64_t>& total,
                              std::uint64_t reported,
                              std::uint64_t now) noexcept {
  assert(now >= reported &&
         "emitter bytes must be monotone under emit-time combining");
  if (now >= reported) {
    total.fetch_add(now - reported, std::memory_order_relaxed);
  } else {
    total.fetch_sub(reported - now, std::memory_order_relaxed);
  }
}
}  // namespace detail

template <MapReduceSpec Spec>
class Engine {
 public:
  using Key = typename Spec::Key;
  using Value = typename Spec::Value;
  using Pair = KV<Key, Value>;
  /// Intermediate pairs as the emitter stores them: cached key hash plus
  /// the stored key representation (arena-backed view for string keys).
  using StoredPair = typename Emitter<Key, Value>::Pair;
  using StoredKey = typename Emitter<Key, Value>::StoredKey;
  using Output = std::vector<Pair>;

  explicit Engine(Options options)
      : options_(options), pool_(std::make_unique<ThreadPool>(
                               (options.validate(), options.num_workers))) {}

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The engine's worker pool.  Drivers that do cross-fragment work
  /// between runs (the out-of-core terminal k-way merge) borrow it so the
  /// node's cores never sit behind a second, idle pool.  Only use between
  /// run() calls — run() assumes every pool lane is its own.
  [[nodiscard]] ThreadPool& pool() noexcept { return *pool_; }

  /// Drops the reusable per-worker state (emitters, key arenas, gather
  /// buffers).  The next run() rebuilds it from scratch — the per-run
  /// cost the reuse path exists to avoid; kept callable so drivers can
  /// return memory between jobs and benches can A/B the reuse win.
  void release_worker_state() noexcept {
    worker_state_.clear();
    worker_state_.shrink_to_fit();
  }

  /// Runs the full pipeline over `chunks`.  `input_bytes` is the job's
  /// input size for the memory model; pass 0 to derive it from text
  /// chunks.  `metrics`, when non-null, receives phase timings.
  template <typename Chunk>
    requires MapsChunk<Spec, Chunk>
  Output run(const Spec& spec, const std::vector<Chunk>& chunks,
             std::uint64_t input_bytes = 0, Metrics* metrics = nullptr) {
    Metrics local;
    Metrics& m = metrics ? *metrics : local;
    m = Metrics{};
    m.chunks = chunks.size();

    if (input_bytes == 0) {
      for (const auto& c : chunks) {
        input_bytes += detail::chunk_input_bytes(c);
      }
    }

    MCSD_OBS_SPAN("mr", "mr.run");
    MCSD_OBS_COUNT("mr.jobs", 1);
    MCSD_OBS_COUNT("mr.chunks", chunks.size());
    MCSD_OBS_COUNT("mr.input_bytes", input_bytes);

    const std::size_t workers = options_.num_workers;
    const std::size_t buckets = options_.effective_reduce_buckets();
    const std::uint64_t usable = options_.usable_budget();
    if (usable != 0 && input_bytes > usable) {
      // Even the raw input does not fit the usable budget: fail up front,
      // as Phoenix does when it cannot mmap + mirror the input.
      throw MemoryOverflowError(input_bytes, usable);
    }
    if (input_bytes == 0 && !chunks.empty()) {
      // Index chunks carry no payload, so a derived byte count of zero
      // almost always means the caller forgot to pass input_bytes.  With
      // the memory model armed that silently disables input metering —
      // warn loudly (and trip debug builds) instead of under-counting.
      MCSD_OBS_COUNT("mr.zero_input_byte_jobs", 1);
      if (usable != 0) {
        MCSD_LOG(kWarn, "mr")
            << "memory-budgeted job derived 0 input bytes over "
            << chunks.size()
            << " chunks; pass input_bytes explicitly for index chunks";
        assert(false && "memory model saw 0 input bytes for a non-empty job");
      }
    }

    // ----- map phase (combining happens inside emit) ----------------------
    Stopwatch phase;
    prepare_worker_state(spec, workers, buckets);

    LocalityScheduler scheduler{chunks.size(), workers};
    const std::size_t batch =
        LocalityScheduler::suggested_batch(chunks.size(), workers);
    std::atomic<std::uint64_t> intermediate_bytes{0};
    std::atomic<bool> cancelled{false};
    m.map_workers.assign(workers, MapWorkerStats{});

    {
      MCSD_OBS_SPAN("mr", "mr.map");
      pool_->parallel_for_workers(workers, [&](std::size_t w) {
        MCSD_OBS_SPAN("mr", "mr.map.worker");
        WorkerState& ws = worker_state_[w];
        auto& emitter = ws.emitter;
        MapWorkerStats& stats = m.map_workers[w];
        const bool attribute = options_.attribute_map_cycles;
        Stopwatch wall;
        const double cpu_start = thread_cpu_seconds();
        std::uint64_t reported = 0;
        Stopwatch claim_watch;
        bool stolen = false;
        while (true) {
          if (attribute) claim_watch.restart();
          const auto claimed = scheduler.claim(w, batch, &stolen);
          if (attribute) stats.claim_seconds += claim_watch.elapsed_seconds();
          if (!claimed) break;
          if (stolen) ++stats.steals;
          stats.chunks += claimed->end - claimed->begin;
          for (std::size_t idx = claimed->begin; idx != claimed->end; ++idx) {
            if (cancelled.load(std::memory_order_relaxed)) return;
            spec.map(chunks[idx], emitter);

            const std::uint64_t now = emitter.bytes();
            detail::apply_bytes_delta(intermediate_bytes, reported, now);
            reported = now;
            if (usable != 0 &&
                input_bytes +
                        intermediate_bytes.load(std::memory_order_relaxed) >
                    usable) {
              cancelled.store(true, std::memory_order_relaxed);
              throw MemoryOverflowError(
                  input_bytes +
                      intermediate_bytes.load(std::memory_order_relaxed),
                  usable);
            }
          }
        }
        stats.emits = emitter.count();
        stats.cpu_seconds = thread_cpu_seconds() - cpu_start;
        stats.wall_seconds = wall.elapsed_seconds();
        stats.tokenize_seconds =
            static_cast<double>(ws.attribution.tokenize_ns) * 1e-9;
        stats.hash_seconds =
            static_cast<double>(ws.attribution.hash_ns) * 1e-9;
        stats.probe_seconds =
            static_cast<double>(ws.attribution.probe_ns) * 1e-9;
        // Publish this worker's emitter counters: the emitter itself is
        // the thread-local shard, so the emit hot path never touches obs.
        MCSD_OBS_COUNT("mr.map_emits", emitter.count());
        MCSD_OBS_COUNT("mr.combine_hits", emitter.combine_hits());
        MCSD_OBS_COUNT("mr.intermediate_bytes", emitter.bytes());
        MCSD_OBS_COUNT("mr.map_steals", stats.steals);
        MCSD_OBS_HIST("mr.map_worker_cpu_us", "us",
                      static_cast<std::uint64_t>(stats.cpu_seconds * 1e6));
      });
    }
    m.map_seconds = phase.elapsed_seconds();
    m.peak_intermediate_bytes =
        input_bytes + intermediate_bytes.load(std::memory_order_relaxed);
    for (const auto& ws : worker_state_) {
      m.map_emits += ws.emitter.count();
      m.map_stored_pairs += ws.emitter.stored();
      m.map_combine_hits += ws.emitter.combine_hits();
      m.map_intermediate_bytes += ws.emitter.bytes();
    }
    MCSD_OBS_HIST("mr.map_phase_us", "us",
                  static_cast<std::uint64_t>(m.map_seconds * 1e6));

    // ----- reduce phase (per-bucket gather + sort + group + reduce) -------
    phase.restart();
    std::vector<Output> bucket_outputs(buckets);
    std::atomic<std::size_t> unique_keys{0};
    DynamicScheduler reduce_sched{buckets};

    {
      MCSD_OBS_SPAN("mr", "mr.reduce");
      pool_->parallel_for_workers(workers, [&](std::size_t w) {
        // One gather buffer per worker, reused across every bucket this
        // worker claims (and across runs): no per-bucket construction,
        // no shrink_to_fit churn inside the scheduler loop.
        [[maybe_unused]] std::vector<StoredPair>& gathered =
            worker_state_[w].gather;
        while (auto b = reduce_sched.next()) {
          MCSD_OBS_SPAN("mr", "mr.reduce.bucket");
          if constexpr (kFoldReduce) {
            // Cross-worker fold: absorb every other worker's pairs for
            // this bucket into worker 0's combiner index — O(1) probe per
            // pair on the cached hash — then sort only the surviving
            // unique pairs.  Each value is already the combine-fold of
            // its key's emits, so reduce runs on singleton spans (the
            // combiner contract guarantees the same result).  Worker 0's
            // buckets are disjoint across reduce workers (one claimant
            // per bucket index) and cache-line padded, so concurrent
            // absorbs into different buckets never contend.
            Emitter<Key, Value>& base = worker_state_.front().emitter;
            for (std::size_t src = 1; src < worker_state_.size(); ++src) {
              base.absorb_bucket(*b, worker_state_[src].emitter);
            }
            auto& pairs = base.bucket(*b);
            std::sort(pairs.begin(), pairs.end(), HashThenKeyLess{});
            Output& out = bucket_outputs[*b];
            out.reserve(pairs.size());
            for (auto& p : pairs) {
              Key key{p.key};
              const Value folded = std::move(p.value);
              Value reduced =
                  spec.reduce(key, std::span<const Value>{&folded, 1});
              out.push_back(Pair{std::move(key), std::move(reduced)});
            }
            unique_keys.fetch_add(pairs.size(), std::memory_order_relaxed);
            for (auto& ws : worker_state_) {
              ws.emitter.release_index(*b);
              ws.emitter.bucket(*b).clear();  // keep capacity for next run
            }
          } else {
            gathered.clear();
            std::size_t total = 0;
            for (const auto& ws : worker_state_) {
              total += ws.emitter.bucket(*b).size();
            }
            gathered.reserve(total);
            for (auto& ws : worker_state_) {
              ws.emitter.release_index(*b);
              auto& src = ws.emitter.bucket(*b);
              std::move(src.begin(), src.end(), std::back_inserter(gathered));
              src.clear();  // keep capacity: refilled next run
            }
            if constexpr (HasReduce<Spec>) {
              bucket_outputs[*b] = reduce_bucket(spec, gathered, unique_keys);
            } else {
              unique_keys.fetch_add(gathered.size(),
                                    std::memory_order_relaxed);
              Output& out = bucket_outputs[*b];
              out.reserve(gathered.size());
              for (auto& p : gathered) {
                // Stored keys may be arena views; the output owns its keys.
                out.push_back(Pair{Key(p.key), std::move(p.value)});
              }
            }
          }
        }
      });
    }
    m.reduce_seconds = phase.elapsed_seconds();
    m.unique_keys = unique_keys.load(std::memory_order_relaxed);
    MCSD_OBS_COUNT("mr.unique_keys", m.unique_keys);
    MCSD_OBS_HIST("mr.reduce_phase_us", "us",
                  static_cast<std::uint64_t>(m.reduce_seconds * 1e6));

    // ----- merge phase ----------------------------------------------------
    phase.restart();
    Output merged;
    {
      MCSD_OBS_SPAN("mr", "mr.merge");
      std::vector<std::size_t> offsets(bucket_outputs.size() + 1, 0);
      for (std::size_t b = 0; b < bucket_outputs.size(); ++b) {
        offsets[b + 1] = offsets[b] + bucket_outputs[b].size();
      }
      const std::size_t total = offsets.back();
      // Bucket placement offsets are known up front, so large merges
      // resize the output once and move buckets into place in parallel —
      // the serial append only survives for small outputs (and pair types
      // that cannot be default-constructed for resize()).
      constexpr std::size_t kParallelMergeMin = std::size_t{1} << 15;
      bool merged_parallel = false;
      if constexpr (std::is_default_constructible_v<Pair>) {
        if (workers > 1 && total >= kParallelMergeMin) {
          merged.resize(total);
          DynamicScheduler merge_sched{bucket_outputs.size()};
          pool_->parallel_for_workers(workers, [&](std::size_t) {
            while (auto b = merge_sched.next()) {
              auto& src = bucket_outputs[*b];
              std::move(src.begin(), src.end(), merged.begin() + offsets[*b]);
            }
          });
          merged_parallel = true;
        }
      }
      if (!merged_parallel) {
        merged.reserve(total);
        for (auto& out : bucket_outputs) {
          std::move(out.begin(), out.end(), std::back_inserter(merged));
        }
      }
      if (options_.sort_output_by_key) {
        parallel_sort(merged, *pool_, [](const Pair& a, const Pair& b) {
          return a.key < b.key;
        });
      }
    }
    m.merge_seconds = phase.elapsed_seconds();
    return merged;
  }

 private:
  /// The cross-worker fold reduce applies when the spec has both hooks
  /// (the combiner contract makes singleton-span reduce valid) and values
  /// are copyable (absorb copies first-seen pairs between emitters).
  static constexpr bool kFoldReduce =
      HasReduce<Spec> && HasCombine<Spec> &&
      std::is_copy_constructible_v<Value>;

  /// Per-worker hot state, cache-line padded: worker_state_ is a
  /// contiguous vector, and without the alignas adjacent workers' emit
  /// counters (bumped every emit) would false-share a line.
  struct alignas(64) WorkerState {
    explicit WorkerState(std::size_t buckets) : emitter(buckets) {}
    Emitter<Key, Value> emitter;
    std::vector<StoredPair> gather;  ///< reduce-phase gather buffer
    EmitAttribution attribution;     ///< map-phase cycle sink (opt-in)
  };

  /// Builds or resets the reusable per-worker state and binds `spec`'s
  /// combiner.  Reuse path: every emitter is rewound (arena reset, bucket
  /// capacity kept); rebuild happens only on first use or when the
  /// worker/bucket geometry changed.
  void prepare_worker_state(const Spec& spec, std::size_t workers,
                            std::size_t buckets) {
    const bool geometry_matches =
        worker_state_.size() == workers &&
        (workers == 0 || worker_state_.front().emitter.bucket_count() == buckets);
    if (geometry_matches) {
      for (auto& ws : worker_state_) ws.emitter.reset();
    } else {
      worker_state_.clear();
      worker_state_.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        worker_state_.emplace_back(buckets);
      }
    }
    for (auto& ws : worker_state_) {
      ws.attribution = EmitAttribution{};
      ws.emitter.set_attribution(
          options_.attribute_map_cycles ? &ws.attribution : nullptr);
    }
    if constexpr (HasCombine<Spec>) {
      for (auto& ws : worker_state_) {
        ws.emitter.set_combiner(
            &spec, [](const void* ctx, const StoredKey& key, const Value& acc,
                      const Value& incoming) {
              const Value pairwise[2] = {acc, incoming};
              const auto* s = static_cast<const Spec*>(ctx);
              if constexpr (CombinesStoredKey<Spec, StoredKey>) {
                return s->combine(key, std::span<const Value>{pairwise});
              } else {
                // Fold hook insists on an owned key: materialise one per
                // fold (slow path; string-keyed specs should accept a
                // view, see apps/wordcount.hpp).
                return s->combine(Key(key), std::span<const Value>{pairwise});
              }
            });
      }
    }
  }

  static Output reduce_bucket(const Spec& spec,
                              std::vector<StoredPair>& gathered,
                              std::atomic<std::size_t>& unique_keys)
    requires HasReduce<Spec>
  {
    // Hash-then-key order groups equal keys while replacing nearly every
    // key comparison with one integer compare on the cached hash.
    std::sort(gathered.begin(), gathered.end(), HashThenKeyLess{});
    Output out;
    std::vector<Value> scratch;
    std::size_t i = 0;
    while (i < gathered.size()) {
      std::size_t j = i + 1;
      while (j < gathered.size() && gathered[j].hash == gathered[i].hash &&
             gathered[j].key == gathered[i].key) {
        ++j;
      }
      scratch.clear();
      scratch.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        scratch.push_back(std::move(gathered[k].value));
      }
      // Materialise the owned output key first and hand *it* to the
      // user's reduce: specs keep their `const Key&` signature, and the
      // arena view is copied exactly once, into the output pair.
      Key key{gathered[i].key};
      Value reduced = spec.reduce(key, std::span<const Value>{scratch});
      out.push_back(Pair{std::move(key), std::move(reduced)});
      i = j;
    }
    unique_keys.fetch_add(out.size(), std::memory_order_relaxed);
    return out;
  }

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Reusable per-worker state; persists across run() calls.
  std::vector<WorkerState> worker_state_;
};

}  // namespace mcsd::mr
