// The MapReduce engine: map -> (combine) -> sort/group -> reduce -> merge.
//
// Mirrors Phoenix's runtime structure (paper Fig. 1):
//
//   chunks ── dynamic scheduler ──> map workers ──> per-worker, per-bucket
//   intermediate vectors ──> per-bucket gather + sort + group ──> reduce
//   workers ──> merge (concatenate buckets, optional global key sort).
//
// Threading: one ThreadPool sized to Options.num_workers — the emulated
// core count of the storage node.  Map-side data is strictly
// worker-private; the only cross-thread handoff is the bucket gather at
// the map/reduce barrier, exactly as in Phoenix.
//
// Memory model: when Options.memory_budget_bytes > 0, the engine meters
// input + intermediate bytes and throws MemoryOverflowError once they
// exceed usable_memory_fraction (default 60%) of the budget, reproducing
// the stock-Phoenix failure the paper's partition extension works around.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/stopwatch.hpp"
#include "core/thread_pool.hpp"
#include "mapreduce/emitter.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/sorter.hpp"
#include "mapreduce/splitter.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::mr {

/// Detects an optional `reduce` member.  Specs without one (String Match)
/// run the identity reduce: every emitted pair passes straight through —
/// "Neither sort or the reduce stage is required" (paper Section V-A).
template <typename S>
concept HasReduce = requires(const S& s, const typename S::Key& k,
                             std::span<const typename S::Value> vs) {
  { s.reduce(k, vs) } -> std::convertible_to<typename S::Value>;
};

/// A Spec maps chunks of type C.
template <typename S, typename C>
concept MapsChunk =
    requires(const S& s, const C& c,
             Emitter<typename S::Key, typename S::Value>& e) { s.map(c, e); };

namespace detail {
inline std::uint64_t chunk_input_bytes(const TextChunk& c) noexcept {
  return c.text.size();
}
inline std::uint64_t chunk_input_bytes(const IndexChunk&) noexcept {
  return 0;  // index chunks carry no payload; pass input_bytes explicitly
}

/// Sorts a bucket by key and collapses equal-key runs through `fold`.
/// `fold(key, span<values>) -> value`.
template <typename K, typename V, typename Fold>
void fold_bucket(std::vector<KV<K, V>>& bucket, const Fold& fold) {
  if (bucket.size() < 2) return;
  std::sort(bucket.begin(), bucket.end(),
            [](const KV<K, V>& a, const KV<K, V>& b) { return a.key < b.key; });
  std::vector<KV<K, V>> folded;
  folded.reserve(bucket.size() / 2 + 1);
  std::vector<V> scratch;
  std::size_t i = 0;
  while (i < bucket.size()) {
    std::size_t j = i + 1;
    while (j < bucket.size() && bucket[j].key == bucket[i].key) ++j;
    if (j - i == 1) {
      folded.push_back(std::move(bucket[i]));
    } else {
      scratch.clear();
      scratch.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) scratch.push_back(bucket[k].value);
      V value = fold(bucket[i].key, scratch);
      folded.push_back(KV<K, V>{std::move(bucket[i].key), std::move(value)});
    }
    i = j;
  }
  bucket = std::move(folded);
}
}  // namespace detail

template <MapReduceSpec Spec>
class Engine {
 public:
  using Key = typename Spec::Key;
  using Value = typename Spec::Value;
  using Pair = KV<Key, Value>;
  using Output = std::vector<Pair>;

  explicit Engine(Options options)
      : options_(options), pool_(std::make_unique<ThreadPool>(
                               (options.validate(), options.num_workers))) {}

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Runs the full pipeline over `chunks`.  `input_bytes` is the job's
  /// input size for the memory model; pass 0 to derive it from text
  /// chunks.  `metrics`, when non-null, receives phase timings.
  template <typename Chunk>
    requires MapsChunk<Spec, Chunk>
  Output run(const Spec& spec, const std::vector<Chunk>& chunks,
             std::uint64_t input_bytes = 0, Metrics* metrics = nullptr) {
    Metrics local;
    Metrics& m = metrics ? *metrics : local;
    m = Metrics{};
    m.chunks = chunks.size();

    if (input_bytes == 0) {
      for (const auto& c : chunks) {
        input_bytes += detail::chunk_input_bytes(c);
      }
    }

    const std::size_t workers = options_.num_workers;
    const std::size_t buckets = options_.effective_reduce_buckets();
    const std::uint64_t usable = options_.usable_budget();
    if (usable != 0 && input_bytes > usable) {
      // Even the raw input does not fit the usable budget: fail up front,
      // as Phoenix does when it cannot mmap + mirror the input.
      throw MemoryOverflowError(input_bytes, usable);
    }

    // ----- map phase ------------------------------------------------------
    Stopwatch phase;
    std::vector<Emitter<Key, Value>> emitters;
    emitters.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) emitters.emplace_back(buckets);

    DynamicScheduler scheduler{chunks.size()};
    std::atomic<std::uint64_t> intermediate_bytes{0};
    std::atomic<bool> cancelled{false};

    // Map-side combine cadence: under a memory budget, fold early enough
    // that the budget check below observes *combined* volume (Phoenix
    // likewise folds its per-key value lists as it emits).
    const std::uint64_t combine_trigger =
        usable != 0 ? std::max<std::uint64_t>(
                          std::min<std::uint64_t>(kCombineTriggerBytes,
                                                  usable / 8),
                          16 * 1024)
                    : kCombineTriggerBytes;

    pool_->parallel_for_workers(workers, [&](std::size_t w) {
      auto& emitter = emitters[w];
      std::uint64_t reported = 0;
      while (auto idx = scheduler.next()) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        spec.map(chunks[*idx], emitter);

        // Opportunistic map-side combining keeps worker-local buckets
        // small under heavy emit rates (word count emits one pair per
        // word).
        if constexpr (HasCombine<Spec>) {
          if (emitter.bytes() > reported + combine_trigger) {
            combine_worker(spec, emitter);
          }
        }

        const std::uint64_t now = emitter.bytes();
        if (now >= reported) {
          intermediate_bytes.fetch_add(now - reported,
                                       std::memory_order_relaxed);
        } else {  // a mid-map combine shrank this worker's buckets
          intermediate_bytes.fetch_sub(reported - now,
                                       std::memory_order_relaxed);
        }
        reported = now;
        if (usable != 0 &&
            input_bytes + intermediate_bytes.load(std::memory_order_relaxed) >
                usable) {
          cancelled.store(true, std::memory_order_relaxed);
          throw MemoryOverflowError(
              input_bytes +
                  intermediate_bytes.load(std::memory_order_relaxed),
              usable);
        }
      }
      if constexpr (HasCombine<Spec>) {
        combine_worker(spec, emitter);
        const std::uint64_t now = emitter.bytes();
        // Combining only shrinks; record the delta (signed via two adds).
        intermediate_bytes.fetch_sub(reported - now,
                                     std::memory_order_relaxed);
      }
    });
    m.map_seconds = phase.elapsed_seconds();
    m.peak_intermediate_bytes =
        input_bytes + intermediate_bytes.load(std::memory_order_relaxed);
    for (const auto& e : emitters) m.map_emits += e.count();

    // ----- reduce phase (per-bucket gather + sort + group + reduce) -------
    phase.restart();
    std::vector<Output> bucket_outputs(buckets);
    std::atomic<std::size_t> unique_keys{0};
    DynamicScheduler reduce_sched{buckets};

    pool_->parallel_for_workers(workers, [&](std::size_t) {
      while (auto b = reduce_sched.next()) {
        Output gathered;
        std::size_t total = 0;
        for (auto& e : emitters) total += e.bucket(*b).size();
        gathered.reserve(total);
        for (auto& e : emitters) {
          auto& src = e.bucket(*b);
          std::move(src.begin(), src.end(), std::back_inserter(gathered));
          src.clear();
          src.shrink_to_fit();
        }
        if constexpr (HasReduce<Spec>) {
          bucket_outputs[*b] = reduce_bucket(spec, std::move(gathered),
                                             unique_keys);
        } else {
          unique_keys.fetch_add(gathered.size(), std::memory_order_relaxed);
          bucket_outputs[*b] = std::move(gathered);
        }
      }
    });
    m.reduce_seconds = phase.elapsed_seconds();
    m.unique_keys = unique_keys.load(std::memory_order_relaxed);

    // ----- merge phase ----------------------------------------------------
    phase.restart();
    Output merged;
    std::size_t total = 0;
    for (const auto& out : bucket_outputs) total += out.size();
    merged.reserve(total);
    for (auto& out : bucket_outputs) {
      std::move(out.begin(), out.end(), std::back_inserter(merged));
    }
    if (options_.sort_output_by_key) {
      parallel_sort(merged, *pool_,
                    [](const Pair& a, const Pair& b) { return a.key < b.key; });
    }
    m.merge_seconds = phase.elapsed_seconds();
    return merged;
  }

 private:
  // Map-side combine threshold: past this many intermediate bytes a worker
  // folds its buckets in place.
  static constexpr std::uint64_t kCombineTriggerBytes = 16ULL << 20;

  static void combine_worker(const Spec& spec, Emitter<Key, Value>& emitter)
    requires HasCombine<Spec>
  {
    std::uint64_t bytes = 0;
    std::size_t count = 0;
    for (std::size_t b = 0; b < emitter.bucket_count(); ++b) {
      auto& bucket = emitter.bucket(b);
      detail::fold_bucket(
          bucket, [&spec](const Key& key, const std::vector<Value>& values) {
            return spec.combine(key, std::span<const Value>{values});
          });
      for (const auto& kv : bucket) {
        bytes += sizeof(Pair) + detail::key_bytes(kv.key);
      }
      count += bucket.size();
    }
    emitter.reset_accounting(bytes, count);
  }

  static Output reduce_bucket(const Spec& spec, Output gathered,
                              std::atomic<std::size_t>& unique_keys)
    requires HasReduce<Spec>
  {
    std::sort(gathered.begin(), gathered.end(),
              [](const Pair& a, const Pair& b) { return a.key < b.key; });
    Output out;
    std::vector<Value> scratch;
    std::size_t i = 0;
    while (i < gathered.size()) {
      std::size_t j = i + 1;
      while (j < gathered.size() && gathered[j].key == gathered[i].key) ++j;
      scratch.clear();
      scratch.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        scratch.push_back(std::move(gathered[k].value));
      }
      Value reduced =
          spec.reduce(gathered[i].key, std::span<const Value>{scratch});
      out.push_back(Pair{std::move(gathered[i].key), std::move(reduced)});
      i = j;
    }
    unique_keys.fetch_add(out.size(), std::memory_order_relaxed);
    return out;
  }

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mcsd::mr
