// Dynamic chunk scheduler for the map and reduce phases.
//
// Phoenix schedules map tasks dynamically so fast workers steal slack from
// slow ones (skewed records, page faults).  A single atomic claim counter
// over a pre-split chunk vector gives the same property with no locking on
// the hot path.  Workers claim *batches* of adjacent chunks (next_batch),
// so the claim counter is touched once per batch rather than once per
// chunk, and the scheduler object is cache-line-aligned so its cursor
// never false-shares with whatever the caller stacked next to it.
// `StaticScheduler` exists purely as the ablation baseline
// (bench_ablation_scheduling) — block-cyclic assignment decided up front.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

namespace mcsd::mr {

/// Workers call next() / next_batch() until nullopt; each index is handed
/// out exactly once, in order.  alignas: the atomic cursor owns its cache
/// line (count_ shares it but is written only at construction).
class alignas(64) DynamicScheduler {
 public:
  /// A claimed half-open index range [begin, end).
  struct Batch {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  explicit DynamicScheduler(std::size_t task_count) : count_(task_count) {}

  std::optional<std::size_t> next() noexcept {
    const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= count_) return std::nullopt;
    return idx;
  }

  /// Claims up to `max_count` adjacent tasks with one atomic op.
  std::optional<Batch> next_batch(std::size_t max_count) noexcept {
    if (max_count == 0) max_count = 1;
    const std::size_t begin =
        cursor_.fetch_add(max_count, std::memory_order_relaxed);
    if (begin >= count_) return std::nullopt;
    return Batch{begin, std::min(begin + max_count, count_)};
  }

  /// Batch size balancing claim traffic against stealing granularity:
  /// ~8 batches per worker preserves dynamic load balancing while cutting
  /// shared-cursor traffic by the batch factor.
  [[nodiscard]] static std::size_t suggested_batch(
      std::size_t task_count, std::size_t worker_count) noexcept {
    if (worker_count == 0) worker_count = 1;
    return std::max<std::size_t>(1, task_count / (worker_count * 8));
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }

 private:
  std::atomic<std::size_t> cursor_{0};
  std::size_t count_;
};

/// Static block assignment: worker w owns tasks [w*B, (w+1)*B).  No
/// stealing; a straggler chunk delays the whole phase.  Ablation only.
class StaticScheduler {
 public:
  StaticScheduler(std::size_t task_count, std::size_t worker_count)
      : count_(task_count),
        block_((task_count + worker_count - 1) / (worker_count ? worker_count : 1)) {}

  /// Tasks owned by `worker`: [begin, end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(
      std::size_t worker) const noexcept {
    const std::size_t begin = worker * block_;
    const std::size_t end = begin + block_;
    return {begin < count_ ? begin : count_, end < count_ ? end : count_};
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }

 private:
  std::size_t count_;
  std::size_t block_;
};

}  // namespace mcsd::mr
