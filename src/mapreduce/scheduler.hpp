// Dynamic chunk scheduler for the map and reduce phases.
//
// Phoenix schedules map tasks dynamically so fast workers steal slack from
// slow ones (skewed records, page faults).  A single atomic claim counter
// over a pre-split chunk vector gives the same property with no locking on
// the hot path.  Workers claim *batches* of adjacent chunks (next_batch),
// so the claim counter is touched once per batch rather than once per
// chunk, and the scheduler object is cache-line-aligned so its cursor
// never false-shares with whatever the caller stacked next to it.
//
// `LocalityScheduler` is the map-phase handoff: the chunk index space is
// carved into one contiguous slab per worker, so each worker streams its
// own stretch of the corpus front to back (sequential memory, hardware
// prefetcher friendly) on a cursor nobody else touches.  Only when a slab
// runs dry does a worker steal — from the *back* of a victim's slab, the
// end the owner will reach last, so thief and owner converge instead of
// ping-ponging one shared cursor cache line (the Phoenix-style dynamic
// chunking shape; cf. work-stealing deques' owner-LIFO/thief-FIFO split).
//
// `StaticScheduler` exists purely as the ablation baseline
// (bench_ablation_scheduling) — block-cyclic assignment decided up front.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace mcsd::mr {

/// Workers call next() / next_batch() until nullopt; each index is handed
/// out exactly once, in order.  alignas: the atomic cursor owns its cache
/// line (count_ shares it but is written only at construction).
class alignas(64) DynamicScheduler {
 public:
  /// A claimed half-open index range [begin, end).
  struct Batch {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  explicit DynamicScheduler(std::size_t task_count) : count_(task_count) {}

  std::optional<std::size_t> next() noexcept {
    const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= count_) return std::nullopt;
    return idx;
  }

  /// Claims up to `max_count` adjacent tasks with one atomic op.
  std::optional<Batch> next_batch(std::size_t max_count) noexcept {
    if (max_count == 0) max_count = 1;
    const std::size_t begin =
        cursor_.fetch_add(max_count, std::memory_order_relaxed);
    if (begin >= count_) return std::nullopt;
    return Batch{begin, std::min(begin + max_count, count_)};
  }

  /// Batch size balancing claim traffic against stealing granularity:
  /// ~8 batches per worker preserves dynamic load balancing while cutting
  /// shared-cursor traffic by the batch factor.
  [[nodiscard]] static std::size_t suggested_batch(
      std::size_t task_count, std::size_t worker_count) noexcept {
    if (worker_count == 0) worker_count = 1;
    return std::max<std::size_t>(1, task_count / (worker_count * 8));
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }

 private:
  std::atomic<std::size_t> cursor_{0};
  std::size_t count_;
};

/// Locality-aware map-phase scheduler: contiguous per-worker slabs with
/// owner-front claims and thief-back steals.
///
/// Each slab's state is one packed 64-bit atomic {begin:32, end:32}
/// updated by CAS, padded to its own cache line: the owner's claim loop
/// runs uncontended until thieves arrive, and a steal touches only the
/// victim's line, never a global cursor.  Every index is handed out
/// exactly once; claim() returns contiguous batches so callers keep the
/// one-claim-per-batch amortisation.
class LocalityScheduler {
 public:
  using Batch = DynamicScheduler::Batch;

  LocalityScheduler(std::size_t task_count, std::size_t worker_count)
      : slabs_(worker_count == 0 ? 1 : worker_count),
        count_(task_count) {
    const std::size_t workers = slabs_.size();
    const std::size_t base = task_count / workers;
    const std::size_t extra = task_count % workers;
    std::uint32_t begin = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const auto len =
          static_cast<std::uint32_t>(base + (w < extra ? 1 : 0));
      slabs_[w].range.store(pack(begin, begin + len),
                            std::memory_order_relaxed);
      begin += len;
    }
  }

  /// Claims up to `max_count` adjacent tasks for `worker`: from the front
  /// of its own slab while any remain, then from the back of the fullest
  /// other slab.  Returns nullopt only when every slab is empty.  Sets
  /// `stolen` (when provided) so callers can count steals.
  std::optional<Batch> claim(std::size_t worker, std::size_t max_count,
                             bool* stolen = nullptr) noexcept {
    if (max_count == 0) max_count = 1;
    if (auto own = claim_front(slabs_[worker % slabs_.size()], max_count)) {
      if (stolen != nullptr) *stolen = false;
      return own;
    }
    // Own slab dry: scan victims, preferring the most loaded so steals
    // spread rather than dogpiling one straggler.
    while (true) {
      std::size_t victim = slabs_.size();
      std::size_t victim_left = 0;
      for (std::size_t v = 0; v < slabs_.size(); ++v) {
        const std::uint64_t cur = slabs_[v].range.load(std::memory_order_relaxed);
        const std::size_t left = unpack_end(cur) - std::min<std::size_t>(
                                     unpack_end(cur), unpack_begin(cur));
        if (left > victim_left) {
          victim = v;
          victim_left = left;
        }
      }
      if (victim == slabs_.size()) return std::nullopt;
      // Steal at most half the victim's remainder (leave the owner the
      // front it is already streaming), one batch minimum.
      const std::size_t take =
          std::min(max_count, std::max<std::size_t>(1, victim_left / 2));
      if (auto got = claim_back(slabs_[victim], take)) {
        if (stolen != nullptr) *stolen = true;
        return got;
      }
      // Lost the race for that victim; rescan.
    }
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return slabs_.size();
  }

  /// Batch size for owner claims: ~8 claims per slab keeps the CAS
  /// traffic negligible while leaving thieves half-slabs to take.
  [[nodiscard]] static std::size_t suggested_batch(
      std::size_t task_count, std::size_t worker_count) noexcept {
    return DynamicScheduler::suggested_batch(task_count, worker_count);
  }

 private:
  struct alignas(64) Slab {
    std::atomic<std::uint64_t> range{0};
  };

  static constexpr std::uint64_t pack(std::uint32_t begin,
                                      std::uint32_t end) noexcept {
    return (static_cast<std::uint64_t>(end) << 32) | begin;
  }
  static constexpr std::uint32_t unpack_begin(std::uint64_t packed) noexcept {
    return static_cast<std::uint32_t>(packed);
  }
  static constexpr std::uint32_t unpack_end(std::uint64_t packed) noexcept {
    return static_cast<std::uint32_t>(packed >> 32);
  }

  static std::optional<Batch> claim_front(Slab& slab,
                                          std::size_t max_count) noexcept {
    std::uint64_t cur = slab.range.load(std::memory_order_relaxed);
    while (true) {
      const std::uint32_t begin = unpack_begin(cur);
      const std::uint32_t end = unpack_end(cur);
      if (begin >= end) return std::nullopt;
      const auto take = static_cast<std::uint32_t>(
          std::min<std::size_t>(max_count, end - begin));
      if (slab.range.compare_exchange_weak(cur, pack(begin + take, end),
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        return Batch{begin, begin + take};
      }
    }
  }

  static std::optional<Batch> claim_back(Slab& slab,
                                         std::size_t max_count) noexcept {
    std::uint64_t cur = slab.range.load(std::memory_order_relaxed);
    while (true) {
      const std::uint32_t begin = unpack_begin(cur);
      const std::uint32_t end = unpack_end(cur);
      if (begin >= end) return std::nullopt;
      const auto take = static_cast<std::uint32_t>(
          std::min<std::size_t>(max_count, end - begin));
      if (slab.range.compare_exchange_weak(cur, pack(begin, end - take),
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        return Batch{end - take, end};
      }
    }
  }

  std::vector<Slab> slabs_;
  std::size_t count_;
};

/// Static block assignment: worker w owns tasks [w*B, (w+1)*B).  No
/// stealing; a straggler chunk delays the whole phase.  Ablation only.
class StaticScheduler {
 public:
  StaticScheduler(std::size_t task_count, std::size_t worker_count)
      : count_(task_count),
        block_((task_count + worker_count - 1) / (worker_count ? worker_count : 1)) {}

  /// Tasks owned by `worker`: [begin, end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(
      std::size_t worker) const noexcept {
    const std::size_t begin = worker * block_;
    const std::size_t end = begin + block_;
    return {begin < count_ ? begin : count_, end < count_ ? end : count_};
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }

 private:
  std::size_t count_;
  std::size_t block_;
};

}  // namespace mcsd::mr
