// Dynamic chunk scheduler for the map and reduce phases.
//
// Phoenix schedules map tasks dynamically so fast workers steal slack from
// slow ones (skewed records, page faults).  A single atomic claim counter
// over a pre-split chunk vector gives the same property with no locking on
// the hot path.  `StaticScheduler` exists purely as the ablation baseline
// (bench_ablation_scheduling) — block-cyclic assignment decided up front.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

namespace mcsd::mr {

/// Workers call next() until it returns nullopt; each index is handed out
/// exactly once, in order.
class DynamicScheduler {
 public:
  explicit DynamicScheduler(std::size_t task_count) : count_(task_count) {}

  std::optional<std::size_t> next() noexcept {
    const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= count_) return std::nullopt;
    return idx;
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }

 private:
  std::atomic<std::size_t> cursor_{0};
  std::size_t count_;
};

/// Static block assignment: worker w owns tasks [w*B, (w+1)*B).  No
/// stealing; a straggler chunk delays the whole phase.  Ablation only.
class StaticScheduler {
 public:
  StaticScheduler(std::size_t task_count, std::size_t worker_count)
      : count_(task_count),
        block_((task_count + worker_count - 1) / (worker_count ? worker_count : 1)) {}

  /// Tasks owned by `worker`: [begin, end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(
      std::size_t worker) const noexcept {
    const std::size_t begin = worker * block_;
    const std::size_t end = begin + block_;
    return {begin < count_ ? begin : count_, end < count_ ? end : count_};
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return count_; }

 private:
  std::size_t count_;
  std::size_t block_;
};

}  // namespace mcsd::mr
