// Input splitters: turn a job's input into map chunks.
//
// Phoenix hands the splitter role to the runtime ("user's input data is
// partitioned into M pieces").  Three splitters cover the paper's three
// benchmarks:
//   * TextSplitter  — byte ranges aligned on delimiters (Word Count);
//   * LineSplitter  — byte ranges aligned on newlines (String Match,
//                     which searches line by line);
//   * IndexSplitter — [begin, end) integer ranges (Matrix Multiplication,
//                     which maps over output-row blocks).
//
// Text/Line splitters never cut a record: the chunk boundary slides
// forward to the next delimiter, the same rule the partition module's
// integrity check applies at fragment granularity (paper Fig. 7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/strings.hpp"

namespace mcsd::mr {

/// A map chunk over text input: a view plus its offset in the whole input
/// (offsets let map functions report absolute positions, e.g. SM matches).
struct TextChunk {
  std::string_view text;
  std::size_t offset = 0;

  friend bool operator==(const TextChunk&, const TextChunk&) = default;
};

/// A map chunk over an integer index space.
struct IndexChunk {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  friend bool operator==(const IndexChunk&, const IndexChunk&) = default;
};

/// Splits `input` into chunks of roughly `target_bytes`, each ending on a
/// delimiter boundary (default: ASCII whitespace).  Guarantees:
///  * concatenating all chunks reproduces `input` exactly;
///  * no chunk (except possibly the last) ends mid-record;
///  * every chunk is non-empty.
/// A record longer than `target_bytes` yields an oversized chunk rather
/// than a cut record.
template <typename DelimiterPred>
std::vector<TextChunk> split_text(std::string_view input,
                                  std::size_t target_bytes,
                                  DelimiterPred is_delim) {
  std::vector<TextChunk> chunks;
  if (input.empty()) return chunks;
  if (target_bytes == 0) target_bytes = 1;
  std::size_t pos = 0;
  while (pos < input.size()) {
    std::size_t end = pos + target_bytes;
    if (end >= input.size()) {
      end = input.size();
    } else {
      // Slide forward to the first delimiter at or after the target, so
      // the record spanning the boundary stays whole in this chunk.
      while (end < input.size() && !is_delim(input[end])) ++end;
      // Include the delimiter run itself; keeps the next chunk starting
      // on a record.
      while (end < input.size() && is_delim(input[end])) ++end;
    }
    chunks.push_back(TextChunk{input.substr(pos, end - pos), pos});
    pos = end;
  }
  return chunks;
}

inline std::vector<TextChunk> split_text(std::string_view input,
                                         std::size_t target_bytes) {
  return split_text(input, target_bytes,
                    [](char c) { return is_default_delimiter(c); });
}

/// Newline-aligned split (String Match operates per line).
inline std::vector<TextChunk> split_lines(std::string_view input,
                                          std::size_t target_bytes) {
  return split_text(input, target_bytes, [](char c) { return c == '\n'; });
}

/// Splits [0, count) into at most `pieces` contiguous ranges of nearly
/// equal size.  Used for row-blocked matrix multiplication.
inline std::vector<IndexChunk> split_index(std::size_t count,
                                           std::size_t pieces) {
  std::vector<IndexChunk> chunks;
  if (count == 0) return chunks;
  if (pieces == 0) pieces = 1;
  pieces = pieces > count ? count : pieces;
  const std::size_t base = count / pieces;
  const std::size_t extra = count % pieces;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < pieces; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    chunks.push_back(IndexChunk{begin, begin + len});
    begin += len;
  }
  return chunks;
}

}  // namespace mcsd::mr
