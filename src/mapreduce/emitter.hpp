// Map-side emit sink.
//
// Each map worker owns one Emitter; emits are routed to reduce buckets by
// stable key hash (core/hash.hpp), so there is no cross-thread sharing on
// the map path at all — the reduce phase later gathers bucket b from every
// worker.  The emitter also meters intermediate bytes for the Phoenix
// memory-budget model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hash.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::mr {

namespace detail {
/// Approximate heap footprint of a key for budget accounting.
inline std::uint64_t key_bytes(const std::string& k) noexcept {
  return sizeof(std::string) + k.capacity();
}
template <typename K>
std::uint64_t key_bytes(const K&) noexcept {
  return sizeof(K);
}
}  // namespace detail

template <typename K, typename V>
class Emitter {
 public:
  using Pair = KV<K, V>;

  explicit Emitter(std::size_t num_buckets) : buckets_(num_buckets) {}

  /// Routes one pair to its reduce bucket.
  void emit(K key, V value) {
    const std::size_t b =
        static_cast<std::size_t>(KeyHash<K>{}(key)) % buckets_.size();
    bytes_ += sizeof(Pair) + detail::key_bytes(key);
    ++count_;
    buckets_[b].push_back(Pair{std::move(key), std::move(value)});
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::vector<Pair>& bucket(std::size_t b) { return buckets_[b]; }
  [[nodiscard]] const std::vector<Pair>& bucket(std::size_t b) const {
    return buckets_[b];
  }

  /// Number of pairs emitted so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Approximate intermediate bytes held.
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

  /// Used by the engine after map-side combining shrank the buckets.
  void reset_accounting(std::uint64_t bytes, std::size_t count) noexcept {
    bytes_ = bytes;
    count_ = count;
  }

 private:
  std::vector<std::vector<Pair>> buckets_;
  std::uint64_t bytes_ = 0;
  std::size_t count_ = 0;
};

}  // namespace mcsd::mr
