// Map-side emit sink.
//
// Each map worker owns one Emitter; emits are routed to reduce buckets by
// stable key hash (core/hash.hpp), so there is no cross-thread sharing on
// the map path at all — the reduce phase later gathers bucket b from every
// worker.  The emitter also meters intermediate bytes for the Phoenix
// memory-budget model; its count/stored/bytes members double as the
// per-worker thread-local counters the obs subsystem aggregates (the
// engine publishes them into obs::Registry once per worker, so the emit
// hot path itself carries no instrumentation).
//
// Specs with a `combine` hook fold values *at emit time*: every bucket
// carries an open-addressing index over its pair vector, and a duplicate
// key folds into the stored pair in O(1) amortised instead of being
// appended and sorted away later.
//
// Key storage (string keys): first-insert keys are copied into a
// worker-private bump arena and stored as std::string_view — one pointer
// bump per unique key instead of one std::string heap allocation per
// unique key per bucket, and pairs shrink from 48 to 32 bytes, which the
// reduce-phase gather+sort moves around.  Re-emits of a known key (the
// common case under Zipfian word distributions) never copy at all.  The
// views stay valid until reset(); the engine keeps emitters alive across
// the reduce phase and materialises owned keys only into the final
// output.  reset() rewinds the arena and clears the buckets *keeping
// their capacity*, so per-fragment reuse (the out-of-core driver) costs
// O(buckets) bookkeeping, not an allocator round-trip per key.
#pragma once

#include <cassert>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/arena.hpp"
#include "core/hash.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::mr {

namespace detail {
/// Approximate footprint of a non-string key for budget accounting.
template <typename K>
std::uint64_t key_bytes(const K&) noexcept {
  return sizeof(K);
}

inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}
}  // namespace detail

/// Cycle-attribution sink for the map inner loop, one per worker (see
/// Options.attribute_map_cycles).  The emitter's batched emit path fills
/// hash_ns / probe_ns; the map function owns tokenize_ns (its time
/// outside the emitter).  Plain counters, owner-thread-only.
struct EmitAttribution {
  std::uint64_t tokenize_ns = 0;
  std::uint64_t hash_ns = 0;
  std::uint64_t probe_ns = 0;
};

template <typename K, typename V>
class Emitter {
 public:
  /// String keys are stored as views into the emitter's arena; every
  /// other key type is stored inline in the pair.
  static constexpr bool kArenaKeys = std::is_same_v<K, std::string>;
  using StoredKey = std::conditional_t<kArenaKeys, std::string_view, K>;
  using Pair = HKV<StoredKey, V>;

  /// Binary fold used for emit-time combining: returns the merged value
  /// for `key` given the stored accumulator and one incoming value.
  /// A plain function pointer (plus an opaque spec pointer) keeps the
  /// per-duplicate cost to one indirect call — no std::function, no
  /// allocation.  The key arrives as the *stored* representation (a view
  /// for string keys) so a combine hit never materialises a std::string.
  using CombineFn = V (*)(const void* ctx, const StoredKey& key,
                          const V& accumulated, const V& incoming);

  explicit Emitter(std::size_t num_buckets) : buckets_(num_buckets) {}

  /// Installs the emit-time combiner.  Must be called before the first
  /// emit (or after reset()); `ctx` must outlive the emitter's use (the
  /// engine passes the spec).
  void set_combiner(const void* ctx, CombineFn fn) noexcept {
    assert(count_ == 0 && "combiner must be installed before the first emit");
    combine_ctx_ = ctx;
    combine_ = fn;
  }

  /// Routes one pair to its reduce bucket, folding into an existing pair
  /// when a combiner is installed and the key was seen before.
  void emit(K key, V value) {
    const std::uint64_t h = KeyHash<K>{}(key);
    emit_hashed(std::move(key), std::move(value), h);
  }

  /// String-key fast path: probes with the view and copies the bytes into
  /// the arena only on first insert.  `key` need only stay valid for this
  /// call.
  void emit(std::string_view key, V value)
    requires kArenaKeys
  {
    const std::uint64_t h = KeyHash<K>{}(key);
    emit_hashed(key, std::move(value), h);
  }

  /// Upper bound on emit_batch() input size.
  static constexpr std::size_t kMaxBatch = 64;

  /// Batched string-key emit, all tokens carrying the same value (the
  /// Word Count shape: every token counts 1).  Two passes: (1) hash every
  /// token, four at a time through interleaved FNV-1a streams so the
  /// multiply latency overlaps across tokens instead of serialising per
  /// byte; (2) probe/insert, prefetching each token's slot line a few
  /// tokens ahead so combiner-probe cache misses overlap too.  Emits are
  /// routed and folded exactly as per-token emit() would — same hashes,
  /// same bucket order, same counters.
  void emit_batch(std::span<const std::string_view> tokens, const V& value)
    requires kArenaKeys
  {
    assert(tokens.size() <= kMaxBatch);
    using Clock = std::chrono::steady_clock;
    std::uint64_t hashes[kMaxBatch];
    const auto hash_start = attribution_ ? Clock::now() : Clock::time_point{};
    std::size_t i = 0;
    for (; i + 4 <= tokens.size(); i += 4) {
      fnv1a_x4(tokens.data() + i, hashes + i);
    }
    for (; i < tokens.size(); ++i) hashes[i] = KeyHash<K>{}(tokens[i]);
    Clock::time_point probe_start{};
    if (attribution_ != nullptr) {
      probe_start = Clock::now();
      attribution_->hash_ns += static_cast<std::uint64_t>(
          std::chrono::nanoseconds(probe_start - hash_start).count());
    }
    constexpr std::size_t kPrefetchAhead = 4;
    for (i = 0; i < tokens.size(); ++i) {
      if (i + kPrefetchAhead < tokens.size()) {
        prefetch_slot(hashes[i + kPrefetchAhead]);
      }
      emit_hashed(tokens[i], V(value), hashes[i]);
    }
    if (attribution_ != nullptr) {
      attribution_->probe_ns += static_cast<std::uint64_t>(
          std::chrono::nanoseconds(Clock::now() - probe_start).count());
    }
  }

  /// Installs (or clears) the per-worker attribution sink the batched
  /// emit path reports hash/probe nanoseconds into.  Owned by the engine;
  /// must outlive emits.  Cleared by reset().
  void set_attribution(EmitAttribution* sink) noexcept {
    attribution_ = sink;
  }
  [[nodiscard]] EmitAttribution* attribution() const noexcept {
    return attribution_;
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::vector<Pair>& bucket(std::size_t b) {
    return buckets_[b].pairs;
  }
  [[nodiscard]] const std::vector<Pair>& bucket(std::size_t b) const {
    return buckets_[b].pairs;
  }

  /// Retires bucket b's combiner index for this run.  The slot table's
  /// memory is kept (cleared, not freed) so the next run after reset()
  /// rebuilds it without reallocating.
  void release_index(std::size_t b) noexcept {
    buckets_[b].slots.clear();
    buckets_[b].log2_slots = 0;
  }

  /// Folds every pair of `src`'s bucket `b` into this emitter's bucket
  /// `b` through the installed combiner — the reduce phase's cross-worker
  /// merge.  One O(1) probe per incoming pair replaces the gather+sort
  /// over every worker's pairs; only the surviving unique pairs are ever
  /// sorted.  Absorbed first-seen pairs *share* their key storage: the
  /// views keep pointing into src's arena, which must stay un-reset while
  /// this bucket's pairs are in use (the engine keeps all emitters alive
  /// through reduce/merge).  Counters and byte metering are untouched —
  /// absorb runs after the map-side accounting has been read.
  void absorb_bucket(std::size_t b, const Emitter& src) {
    assert(combine_ != nullptr &&
           "absorb_bucket requires an installed combiner");
    Bucket& dst = buckets_[b];
    for (const Pair& p : src.buckets_[b].pairs) {
      if (dst.slots.empty()) grow(dst);
      std::size_t slot = hash_to_slot(p.hash, dst.log2_slots);
      const std::size_t mask = dst.slots.size() - 1;
      while (true) {
        const std::uint32_t idx = dst.slots[slot];
        if (idx == kEmptySlot) {
          if ((dst.pairs.size() + 1) * 4 > dst.slots.size() * 3) {
            grow(dst);
            slot = hash_to_slot(p.hash, dst.log2_slots);
            while (dst.slots[slot] != kEmptySlot) {
              slot = (slot + 1) & (dst.slots.size() - 1);
            }
          }
          dst.slots[slot] = static_cast<std::uint32_t>(dst.pairs.size());
          dst.pairs.push_back(p);
          break;
        }
        Pair& q = dst.pairs[idx];
        if (q.hash == p.hash && q.key == p.key) {
          q.value = combine_(combine_ctx_, q.key, q.value, p.value);
          break;
        }
        slot = (slot + 1) & mask;
      }
    }
  }

  /// Rewinds the emitter for reuse: buckets and slot tables are cleared
  /// keeping capacity, the key arena is rewound (all stored views become
  /// invalid), counters zero, and the combiner is uninstalled so the next
  /// run can bind a different spec.  Teardown of a fragment's worth of
  /// keys is exactly one arena reset — no per-key frees.
  void reset() noexcept {
    for (Bucket& bucket : buckets_) {
      bucket.pairs.clear();
      bucket.slots.clear();
      bucket.log2_slots = 0;
    }
    arena_.reset();
    combine_ctx_ = nullptr;
    combine_ = nullptr;
    attribution_ = nullptr;
    bytes_ = 0;
    count_ = 0;
    stored_ = 0;
  }

  /// Number of emit calls so far (pre-combining volume).
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Number of pairs currently stored (post-combining volume).
  [[nodiscard]] std::size_t stored() const noexcept { return stored_; }
  /// Emits folded into an existing pair instead of stored — the
  /// per-worker combine-hit counter the obs layer aggregates.
  [[nodiscard]] std::size_t combine_hits() const noexcept {
    return count_ - stored_;
  }
  /// Approximate intermediate bytes held: sizeof(pair) per stored pair
  /// plus, for string keys, the arena bytes the key's copy consumed.
  /// Grows only when a pair is inserted; emit-time combining keeps this
  /// monotone in emit order.
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
  // 256 initial slots: word-count-like keyspaces put hundreds of unique
  // keys in every bucket, so starting at 16 meant four full rehash+
  // reinsert rounds per bucket per fragment.  4 KiB of slack per
  // worker×bucket is noise next to the pair storage it indexes.
  static constexpr unsigned kInitialLog2Slots = 8;

  /// Cache-line-aligned so adjacent buckets in the dense buckets_ vector
  /// never share a line: the probe loop writes slots[] and pairs
  /// metadata, and with 56-byte buckets every write dirtied a neighbour's
  /// line too.
  struct alignas(64) Bucket {
    std::vector<Pair> pairs;
    // Open-addressing index into `pairs`, linear probing, power-of-two
    // size, grown at 3/4 load.  Only populated when a combiner is set.
    std::vector<std::uint32_t> slots;
    unsigned log2_slots = 0;
  };

  /// Warms the slot line a token a few positions ahead will probe.
  void prefetch_slot(std::uint64_t h) const noexcept {
    const Bucket& bucket =
        buckets_[static_cast<std::size_t>(h) % buckets_.size()];
    if (!bucket.slots.empty()) {
      detail::prefetch_read(bucket.slots.data() +
                            hash_to_slot(h, bucket.log2_slots));
    }
  }

  template <typename KeyLike>
  void emit_hashed(KeyLike&& key, V value, std::uint64_t h) {
    Bucket& bucket = buckets_[static_cast<std::size_t>(h) % buckets_.size()];
    ++count_;
    if (combine_ == nullptr) {
      insert(bucket, std::forward<KeyLike>(key), std::move(value), h);
      return;
    }
    if (bucket.slots.empty()) grow(bucket);
    const std::size_t mask = bucket.slots.size() - 1;
    std::size_t slot = hash_to_slot(h, bucket.log2_slots);
    while (true) {
      const std::uint32_t idx = bucket.slots[slot];
      if (idx == kEmptySlot) {
        if ((bucket.pairs.size() + 1) * 4 > bucket.slots.size() * 3) {
          grow(bucket);
          // Re-probe: growth moved every slot.
          slot = hash_to_slot(h, bucket.log2_slots);
          while (bucket.slots[slot] != kEmptySlot) {
            slot = (slot + 1) & (bucket.slots.size() - 1);
          }
        }
        bucket.slots[slot] = static_cast<std::uint32_t>(bucket.pairs.size());
        insert(bucket, std::forward<KeyLike>(key), std::move(value), h);
        return;
      }
      Pair& p = bucket.pairs[idx];
      if (p.hash == h && p.key == key) {
        p.value = combine_(combine_ctx_, p.key, p.value, value);
        return;
      }
      slot = (slot + 1) & mask;
    }
  }

  template <typename KeyLike>
  void insert(Bucket& bucket, KeyLike&& key, V value, std::uint64_t h) {
    if constexpr (kArenaKeys) {
      const std::string_view stored = arena_.store(std::string_view{key});
      bucket.pairs.push_back(Pair{stored, std::move(value), h});
      bytes_ += sizeof(Pair) + stored.size();
    } else {
      bucket.pairs.push_back(
          Pair{K(std::forward<KeyLike>(key)), std::move(value), h});
      bytes_ += sizeof(Pair) + detail::key_bytes(bucket.pairs.back().key);
    }
    ++stored_;
  }

  void grow(Bucket& bucket) {
    bucket.log2_slots = bucket.slots.empty() ? kInitialLog2Slots
                                             : bucket.log2_slots + 1;
    bucket.slots.assign(std::size_t{1} << bucket.log2_slots, kEmptySlot);
    const std::size_t mask = bucket.slots.size() - 1;
    for (std::uint32_t i = 0; i < bucket.pairs.size(); ++i) {
      std::size_t slot = hash_to_slot(bucket.pairs[i].hash, bucket.log2_slots);
      while (bucket.slots[slot] != kEmptySlot) slot = (slot + 1) & mask;
      bucket.slots[slot] = i;
    }
  }

  std::vector<Bucket> buckets_;
  BumpArena arena_;
  const void* combine_ctx_ = nullptr;
  CombineFn combine_ = nullptr;
  EmitAttribution* attribution_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::size_t count_ = 0;
  std::size_t stored_ = 0;
};

}  // namespace mcsd::mr
