// Metrics registry: sharded counters, gauges, and log2-bucket histograms.
//
// The shape follows ScaleStore's profiling split (per-worker counters, a
// separate aggregator) adapted to McSD: the *hot path* is a relaxed
// fetch_add on a cache-line-padded shard owned (statistically) by one
// thread, so instrumented loops never contend; the *cold path* —
// `Registry::snapshot()` — sums shards under no lock at all, tolerating
// the usual monotonic-counter skew.
//
// Lifecycle: metrics are registered once by name (`Registry::counter` et
// al. are find-or-create and return a stable reference), call sites cache
// the reference in a function-local static via the MCSD_OBS_* macros, and
// a reporter (obs/reporter.hpp) renders the snapshot.  Everything
// compiles away when MCSD_OBS_ENABLED is 0 and short-circuits on one
// relaxed bool when runtime-disabled via obs::set_enabled(false).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

// Compile-time switch: build with -DMCSD_OBS_ENABLED=0 (CMake option
// MCSD_ENABLE_OBS=OFF) to compile every instrumentation site out
// entirely — the macros below expand to nothing and the codegen of
// instrumented functions is identical to an uninstrumented build.
#ifndef MCSD_OBS_ENABLED
#define MCSD_OBS_ENABLED 1
#endif

namespace mcsd::obs {

/// Runtime master switch (default on).  A relaxed load; instrumentation
/// macros check it before touching any metric.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Number of counter shards.  A power of two; threads are assigned a
/// shard round-robin on first use, so up to kShards threads increment
/// without sharing a cache line.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
[[nodiscard]] std::size_t this_thread_shard() noexcept;

/// Monotonic counter, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[this_thread_shard()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins signed gauge (not sharded: gauges are set, not
/// accumulated, so sharding would only blur the latest value).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string unit;
  HistogramData data;
};

/// Point-in-time aggregate of every registered metric (names sorted).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Process-wide metric registry.  Registration (find-or-create by name)
/// takes a mutex; returned references are stable for the process
/// lifetime, so the hot path never goes through the registry again.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `unit` annotates reports ("us", "bytes", ...); first registration
  /// wins.
  Histogram& histogram(std::string_view name, std::string_view unit = "");

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (tests and A/B benches).  References
  /// handed out earlier stay valid.
  void reset();

 private:
  Registry() = default;

  struct NamedHistogram {
    std::unique_ptr<Histogram> histogram;
    std::string unit;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, NamedHistogram, std::less<>> histograms_;
};

}  // namespace mcsd::obs

// ---------------------------------------------------------------------------
// Instrumentation macros.  Call sites pay: one static-init guard load, one
// relaxed bool load, one relaxed fetch_add.  With MCSD_OBS_ENABLED=0 the
// argument expressions are left unevaluated (sizeof) so instrumented code
// compiles identically with the subsystem on or off.
// ---------------------------------------------------------------------------
#if MCSD_OBS_ENABLED
#define MCSD_OBS_COUNT(name, n)                                      \
  do {                                                               \
    static ::mcsd::obs::Counter& mcsd_obs_counter_ =                 \
        ::mcsd::obs::Registry::instance().counter(name);             \
    if (::mcsd::obs::enabled()) mcsd_obs_counter_.add(n);            \
  } while (0)
#define MCSD_OBS_GAUGE_SET(name, v)                                  \
  do {                                                               \
    static ::mcsd::obs::Gauge& mcsd_obs_gauge_ =                     \
        ::mcsd::obs::Registry::instance().gauge(name);               \
    if (::mcsd::obs::enabled()) mcsd_obs_gauge_.set(v);              \
  } while (0)
#define MCSD_OBS_HIST(name, unit, v)                                 \
  do {                                                               \
    static ::mcsd::obs::Histogram& mcsd_obs_hist_ =                  \
        ::mcsd::obs::Registry::instance().histogram(name, unit);     \
    if (::mcsd::obs::enabled()) mcsd_obs_hist_.record(v);            \
  } while (0)
#else
#define MCSD_OBS_COUNT(name, n) ((void)sizeof(n))
#define MCSD_OBS_GAUGE_SET(name, v) ((void)sizeof(v))
#define MCSD_OBS_HIST(name, unit, v) ((void)sizeof(v))
#endif
