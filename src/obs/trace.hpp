// Tracing layer: RAII spans into per-thread ring buffers.
//
// A Span stamps steady-clock nanoseconds on construction and pushes one
// complete event on destruction into the calling thread's ring.  Rings
// are fixed-capacity and overwrite oldest (tracing must never grow
// unbounded inside a long daemon run); the registry keeps every ring
// alive past thread exit so a trace written at shutdown still contains
// worker-thread spans.
//
// Export: obs/reporter.hpp merges all rings into chrome://tracing "trace
// event format" JSON (also loadable in Perfetto).  Each ring is guarded
// by its own mutex — uncontended on the hot path because only the owner
// thread pushes; the exporter takes it briefly per ring.  Spans are
// orders of magnitude coarser than counter increments (microseconds of
// work per span), so the ~20 ns uncontended lock is in the noise and
// buys TSan-clean concurrent export.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/counters.hpp"  // MCSD_OBS_ENABLED + obs::enabled()

namespace mcsd::obs {

/// One completed span.  Name and category are copied into fixed buffers:
/// call sites build dynamic names ("fragment-7") and the ring outlives
/// every caller scope.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 48;
  static constexpr std::size_t kCategoryCapacity = 16;

  char name[kNameCapacity] = {};
  char category[kCategoryCapacity] = {};
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Nanoseconds since the process's trace epoch (first use).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Per-thread span ring.  Push is single-producer (the owning thread);
/// the mutex exists for the exporter, which may run concurrently.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 8192;

  explicit TraceRing(std::uint32_t tid) : tid_(tid) {
    events_.resize(kCapacity);
  }

  void push(const TraceEvent& event) {
    std::lock_guard lock{mutex_};
    events_[total_ % kCapacity] = event;
    ++total_;
  }

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<TraceEvent> drain_copy() const {
    std::lock_guard lock{mutex_};
    std::vector<TraceEvent> out;
    const std::uint64_t held = std::min<std::uint64_t>(total_, kCapacity);
    out.reserve(held);
    for (std::uint64_t i = total_ - held; i < total_; ++i) {
      out.push_back(events_[i % kCapacity]);
    }
    return out;
  }

  /// Spans ever pushed (>= held when the ring wrapped).
  [[nodiscard]] std::uint64_t total_pushed() const {
    std::lock_guard lock{mutex_};
    return total_;
  }

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

  /// Forgets all held events (tests); the ring stays registered because
  /// its owning thread holds a pointer to it.
  void reset_for_tests() {
    std::lock_guard lock{mutex_};
    total_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t total_ = 0;
  std::uint32_t tid_;
};

/// Owns one ring per thread that ever opened a span.
class TraceRegistry {
 public:
  static TraceRegistry& instance();

  /// The calling thread's ring (created and registered on first use).
  TraceRing& this_thread_ring();

  /// Stable snapshot of all rings (shared ownership: safe against
  /// concurrent thread creation).
  [[nodiscard]] std::vector<std::shared_ptr<TraceRing>> rings() const;

  /// Total spans recorded across all rings.
  [[nodiscard]] std::uint64_t spans_recorded() const;

  /// Drops all recorded events (tests).  Rings stay registered.
  void clear();

 private:
  TraceRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<TraceRing>> rings_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span.  Does nothing (one relaxed bool load) when tracing is
/// runtime-disabled at construction.
class Span {
 public:
  Span(const char* category, std::string_view name) {
    if (!enabled()) return;
    active_ = true;
    copy_into(event_.name, TraceEvent::kNameCapacity, name);
    copy_into(event_.category, TraceEvent::kCategoryCapacity, category);
    event_.start_ns = trace_now_ns();
  }

  ~Span() {
    if (!active_) return;
    event_.duration_ns = trace_now_ns() - event_.start_ns;
    TraceRegistry::instance().this_thread_ring().push(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static void copy_into(char* dst, std::size_t capacity,
                        std::string_view src) noexcept {
    const std::size_t n = std::min(capacity - 1, src.size());
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  }

  TraceEvent event_;
  bool active_ = false;
};

}  // namespace mcsd::obs

#if MCSD_OBS_ENABLED
#define MCSD_OBS_CONCAT_INNER(a, b) a##b
#define MCSD_OBS_CONCAT(a, b) MCSD_OBS_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define MCSD_OBS_SPAN(category, name) \
  ::mcsd::obs::Span MCSD_OBS_CONCAT(mcsd_obs_span_, __LINE__){category, name}
#else
#define MCSD_OBS_SPAN(category, name) ((void)0)
#endif
