// Aggregation + export: the cold half of the obs subsystem.
//
// Two consumers:
//   * humans — `render_metrics_table` formats a Registry snapshot as an
//     aligned text table (counters, gauges, histogram count/mean/p50/
//     p99/max);
//   * chrome://tracing / Perfetto — `write_trace_json` merges every
//     thread's span ring into "trace event format" JSON.  The metrics
//     snapshot rides along under the non-standard top-level key
//     "mcsdMetrics" (the viewers ignore unknown keys; tools/mcsd_trace
//     reads it back).
#pragma once

#include <filesystem>
#include <string>

#include "core/result.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace mcsd::obs {

/// Formats a snapshot as an aligned table; empty string when nothing was
/// recorded.
[[nodiscard]] std::string render_metrics_table(const MetricsSnapshot& snap);

/// Serialises the merged trace (+ metrics when `include_metrics`) as a
/// chrome://tracing JSON object.
[[nodiscard]] std::string render_chrome_trace(bool include_metrics = true);

/// Writes `render_chrome_trace` output to `path`.
Status write_trace_json(const std::filesystem::path& path,
                        bool include_metrics = true);

/// Tool/example epilogue: when `path` is non-empty, write the trace
/// there, print a one-line confirmation to stdout and a metrics table to
/// stderr.  No-op (returns ok) when `path` is empty.
Status dump_trace_if_requested(const std::string& path);

}  // namespace mcsd::obs
