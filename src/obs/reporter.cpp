#include "obs/reporter.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "core/io.hpp"

namespace mcsd::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control bytes
    out.push_back(c);
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string render_metrics_table(const MetricsSnapshot& snap) {
  if (snap.empty()) return {};
  std::string out;
  char line[256];

  if (!snap.counters.empty() || !snap.gauges.empty()) {
    out += "-- counters ------------------------------------------------\n";
    for (const auto& c : snap.counters) {
      std::snprintf(line, sizeof(line), "%-44s %14llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
    for (const auto& g : snap.gauges) {
      std::snprintf(line, sizeof(line), "%-44s %14lld\n", g.name.c_str(),
                    static_cast<long long>(g.value));
      out += line;
    }
  }
  if (!snap.histograms.empty()) {
    out += "-- histograms (count / mean / p50 / p99 / max) --------------\n";
    for (const auto& h : snap.histograms) {
      const std::string label =
          h.unit.empty() ? h.name : h.name + " [" + h.unit + "]";
      std::snprintf(line, sizeof(line),
                    "%-44s %10llu %10.1f %10llu %10llu %10llu\n",
                    label.c_str(),
                    static_cast<unsigned long long>(h.data.count),
                    h.data.mean(),
                    static_cast<unsigned long long>(h.data.percentile(0.50)),
                    static_cast<unsigned long long>(h.data.percentile(0.99)),
                    static_cast<unsigned long long>(h.data.max));
      out += line;
    }
  }
  return out;
}

std::string render_chrome_trace(bool include_metrics) {
  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;

  const auto rings = TraceRegistry::instance().rings();
  for (const auto& ring : rings) {
    // Thread-name metadata event so the viewer labels each row.
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(ring->tid()) +
           ",\"args\":{\"name\":\"mcsd-thread-" +
           std::to_string(ring->tid()) + "\"}}";
    for (const TraceEvent& e : ring->drain_copy()) {
      out += ",\n{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
             json_escape(e.category) + "\",\"ph\":\"X\",\"ts\":" +
             format_double(static_cast<double>(e.start_ns) / 1000.0) +
             ",\"dur\":" +
             format_double(static_cast<double>(e.duration_ns) / 1000.0) +
             ",\"pid\":1,\"tid\":" + std::to_string(ring->tid()) + "}";
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\"";

  if (include_metrics) {
    const MetricsSnapshot snap = Registry::instance().snapshot();
    out += ",\n\"mcsdMetrics\": {\n\"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + json_escape(snap.counters[i].name) +
             "\": " + std::to_string(snap.counters[i].value);
    }
    out += "},\n\"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + json_escape(snap.gauges[i].name) +
             "\": " + std::to_string(snap.gauges[i].value);
    }
    out += "},\n\"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const auto& h = snap.histograms[i];
      if (i != 0) out += ", ";
      out += "\"" + json_escape(h.name) + "\": {\"unit\": \"" +
             json_escape(h.unit) +
             "\", \"count\": " + std::to_string(h.data.count) +
             ", \"sum\": " + std::to_string(h.data.sum) +
             ", \"mean\": " + format_double(h.data.mean()) +
             ", \"p50\": " + std::to_string(h.data.percentile(0.50)) +
             ", \"p99\": " + std::to_string(h.data.percentile(0.99)) +
             ", \"max\": " + std::to_string(h.data.max) + "}";
    }
    out += "}\n}";
  }
  out += "\n}\n";
  return out;
}

Status write_trace_json(const std::filesystem::path& path,
                        bool include_metrics) {
  return write_file(path, render_chrome_trace(include_metrics));
}

Status dump_trace_if_requested(const std::string& path) {
  if (path.empty()) return Status::ok();
  if (Status s = write_trace_json(path); !s) return s;
  std::printf("trace written to %s (open in chrome://tracing or Perfetto)\n",
              path.c_str());
  const std::string table =
      render_metrics_table(Registry::instance().snapshot());
  if (!table.empty()) std::fputs(table.c_str(), stderr);
  return Status::ok();
}

}  // namespace mcsd::obs
