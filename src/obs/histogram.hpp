// Log2-bucket latency/size histogram with sharded lock-free recording.
//
// Values land in bucket `bit_width(v)` (bucket 0 holds zeros, bucket i>=1
// covers [2^(i-1), 2^i)), the classic HdrHistogram-lite scheme: one
// `bit_width` plus one relaxed fetch_add per record, resolution within 2x
// everywhere — plenty for "where did the milliseconds go" profiling.
// Recording shards per thread like obs::Counter; aggregation sums shards.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace mcsd::obs {

[[nodiscard]] std::size_t this_thread_shard() noexcept;  // counters.hpp

/// Aggregated histogram contents (one snapshot, not thread-safe).
struct HistogramData {
  /// Bucket 0: value 0.  Bucket i (1..64): values in [2^(i-1), 2^i).
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket holding the p-quantile (p in [0, 1]), the
  /// standard conservative estimate for log-bucketed data.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);
  }

  /// Inclusive upper bound of bucket b's value range.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramData::kBuckets;

  void record(std::uint64_t value) noexcept {
    Shard& s = shards_[this_thread_shard() & (kHistShards - 1)];
    s.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    // Racy max update is fine: relaxed CAS loop, monotone.
    std::uint64_t seen = s.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !s.max.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramData aggregate() const noexcept {
    HistogramData data;
    for (const auto& s : shards_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
        data.buckets[b] += n;
        data.count += n;
      }
      data.sum += s.sum.load(std::memory_order_relaxed);
      data.max = std::max(data.max, s.max.load(std::memory_order_relaxed));
    }
    return data;
  }

  void reset() noexcept {
    for (auto& s : shards_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

 private:
  static constexpr std::size_t kHistShards = 8;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  std::array<Shard, kHistShards> shards_{};
};

}  // namespace mcsd::obs
