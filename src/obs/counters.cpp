#include "obs/counters.hpp"

#include "core/fault.hpp"

namespace mcsd::obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_shard{0};

#if MCSD_OBS_ENABLED
// Mirror fault injections into the metric registry as
// `fault.injected_<site>_<kind>` counters.  core/fault cannot link obs
// (obs already links core), so it exposes a sink pointer instead; this
// TU always accompanies any obs use, making registration unconditional.
void count_injection(fault::Site site, fault::Kind kind) {
  if (!enabled()) return;
  Registry::instance()
      .counter("fault.injected_" + std::string{fault::to_string(site)} + "_" +
               std::string{fault::to_string(kind)})
      .add(1);
}

[[maybe_unused]] const bool g_fault_sink_registered = [] {
  fault::set_injection_sink(&count_injection);
  return true;
}();
#endif
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t this_thread_shard() noexcept {
  thread_local const std::size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock{mutex_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock{mutex_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::string_view unit) {
  std::lock_guard lock{mutex_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      NamedHistogram{std::make_unique<Histogram>(),
                                     std::string{unit}})
             .first;
  }
  return *it->second.histogram;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock{mutex_};
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, named] : histograms_) {
    snap.histograms.push_back(
        {name, named.unit, named.histogram->aggregate()});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock{mutex_};
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->set(0);
  for (auto& [name, named] : histograms_) named.histogram->reset();
}

}  // namespace mcsd::obs
