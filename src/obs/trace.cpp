#include "obs/trace.hpp"

#include <chrono>

namespace mcsd::obs {

std::uint64_t trace_now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

TraceRegistry& TraceRegistry::instance() {
  static TraceRegistry registry;
  return registry;
}

TraceRing& TraceRegistry::this_thread_ring() {
  thread_local TraceRing* ring = [this] {
    std::lock_guard lock{mutex_};
    rings_.push_back(std::make_shared<TraceRing>(next_tid_++));
    return rings_.back().get();
  }();
  return *ring;
}

std::vector<std::shared_ptr<TraceRing>> TraceRegistry::rings() const {
  std::lock_guard lock{mutex_};
  return rings_;
}

std::uint64_t TraceRegistry::spans_recorded() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings()) total += ring->total_pushed();
  return total;
}

void TraceRegistry::clear() {
  for (const auto& ring : rings()) ring->reset_for_tests();
}

}  // namespace mcsd::obs
