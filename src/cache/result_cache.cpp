#include "cache/result_cache.hpp"

#include <utility>

#include "storage/identity.hpp"

namespace mcsd::cache {

namespace {

std::string make_slot(std::string_view module, std::string_view params) {
  std::string slot;
  slot.reserve(module.size() + 1 + params.size());
  slot.append(module);
  slot.push_back('\0');
  slot.append(params);
  return slot;
}

}  // namespace

Result<std::uint64_t> fingerprint_inputs(
    const std::vector<std::filesystem::path>& inputs) {
  // Chain the per-file digests in parameter order: fingerprint(a, b) must
  // differ from fingerprint(b, a) because the module sees them in order.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ inputs.size();
  for (const auto& path : inputs) {
    auto id = storage::file_identity(path);
    if (!id) return id.error();
    h ^= id.value().digest() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 29)) * 0xFF51AFD7ED558CCDULL;
    h ^= h >> 32;
  }
  return h;
}

ResultCache::ResultCache(CacheOptions options) : options_(options) {}

std::size_t ResultCache::entry_bytes(const Entry& entry) {
  // List node + two index words + string headers; close enough that the
  // byte budget tracks real footprint instead of payload-only.
  constexpr std::size_t kPerEntryOverhead = 160;
  std::size_t bytes = kPerEntryOverhead + entry.slot.size();
  for (const auto& [key, value] : entry.result.entries()) {
    bytes += key.size() + value.size() + 2 * sizeof(std::string);
  }
  return bytes;
}

void ResultCache::erase_locked(LruList::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(std::string_view{it->slot});
  lru_.erase(it);
}

void ResultCache::make_room_locked(std::size_t need) {
  while (!lru_.empty() && bytes_ + need > options_.capacity_bytes) {
    erase_locked(std::prev(lru_.end()));
    ++evictions_;
  }
}

std::optional<ResultCache::Hit> ResultCache::get(std::string_view module,
                                                 std::string_view params,
                                                 std::uint64_t fingerprint) {
  const std::string slot = make_slot(module, params);
  std::lock_guard lock(mutex_);
  auto found = index_.find(std::string_view{slot});
  if (found == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  auto it = found->second;
  if (it->fingerprint != fingerprint) {
    // The input file changed underneath the entry — every byte of the
    // cached result is derived from data that no longer exists.
    erase_locked(it);
    ++invalidations_;
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it);
  ++hits_;
  return Hit{it->result, it->epoch};
}

std::uint64_t ResultCache::put(std::string_view module, std::string_view params,
                               std::uint64_t fingerprint, KeyValueMap result) {
  Entry entry;
  entry.slot = make_slot(module, params);
  entry.fingerprint = fingerprint;
  entry.result = std::move(result);
  entry.bytes = entry_bytes(entry);

  std::lock_guard lock(mutex_);
  if (entry.bytes > options_.capacity_bytes) {
    ++oversize_rejects_;
    return 0;
  }
  auto found = index_.find(std::string_view{entry.slot});
  if (found != index_.end()) erase_locked(found->second);
  make_room_locked(entry.bytes);
  entry.epoch = ++epoch_;
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_.emplace(std::string_view{lru_.front().slot}, lru_.begin());
  ++inserts_;
  return lru_.front().epoch;
}

void ResultCache::clear() {
  std::lock_guard lock(mutex_);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

CacheStats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.inserts = inserts_;
  stats.oversize_rejects = oversize_rejects_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = options_.capacity_bytes;
  return stats;
}

std::uint64_t ResultCache::epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

}  // namespace mcsd::cache
