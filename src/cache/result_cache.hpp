// The daemon-side module-result cache (ROADMAP item 4, after M3R's
// in-memory job reuse).
//
// Millions of users mostly re-ask hot queries: the same module over the
// same corpus with the same parameters.  Re-running the full map/reduce
// pipeline for each re-ask wastes the storage node's cores; the result is
// already known.  This cache memoises complete module results keyed by
//
//   (module name, canonical parameter serialisation, input fingerprint)
//
// where the fingerprint digests the (inode, mtime_ns, size) identity of
// every input file (storage/identity.hpp) — the same triple the buffer
// pool already trusts for page revalidation — so admission costs three
// stat() calls, never a corpus re-hash.
//
// Invalidation: the fingerprint is part of the key *and* stored on the
// entry.  A lookup that finds its (module, params) slot occupied by a
// different fingerprint erases the stale entry on the spot — the file was
// rewritten, every result derived from the old bytes is garbage — and
// reports a miss.  A rewritten file therefore invalidates eagerly instead
// of leaving dead entries to age out.
//
// Eviction: bounded bytes, LRU.  Zipf-skewed serving traffic keeps the
// hot head resident by construction (every hit front-moves the entry);
// the long cold tail recycles through the LRU end.  Entries larger than
// the whole cache are never admitted.
//
// Epochs: a monotone counter stamped onto each entry at insertion.  A
// response served from the cache carries its entry's epoch, so a client
// (or a test) can tell "the same cached computation" (equal epochs)
// from "recomputed after invalidation" (higher epoch).
//
// Thread safety: all methods are safe from any thread (the daemon's
// dispatch workers probe concurrently); one mutex, microsecond critical
// sections.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"

namespace mcsd::cache {

/// Digests the on-disk identity of `inputs` into one fingerprint.
/// Order-sensitive — callers pass paths in a canonical (parameter) order.
/// Fails if any input cannot be stat'ed (an absent input must not be
/// cached as a fingerprint of "nothing").
Result<std::uint64_t> fingerprint_inputs(
    const std::vector<std::filesystem::path>& inputs);

struct CacheOptions {
  /// Total budget for cached results (keys + payload bytes + per-entry
  /// overhead).  0 is invalid — construct no cache instead.
  std::size_t capacity_bytes = 32ull << 20;
};

/// Monotonic statistics.  hits + misses == lookups; invalidations count
/// entries erased because their fingerprint went stale (a subset of
/// lookups that reported a miss).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t inserts = 0;
  std::uint64_t oversize_rejects = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t capacity_bytes = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  struct Hit {
    KeyValueMap result;
    std::uint64_t epoch = 0;  ///< insertion epoch of the served entry
  };

  /// Probes for (module, params, fingerprint).  `params` is the caller's
  /// canonical serialisation (KeyValueMap::serialize() sorts keys, so
  /// equal maps always produce equal strings).  A slot match with a
  /// different fingerprint invalidates the entry and misses.
  std::optional<Hit> get(std::string_view module, std::string_view params,
                         std::uint64_t fingerprint);

  /// Inserts (replacing any entry in the slot) and returns the new
  /// entry's epoch, or 0 when the entry exceeds capacity and was not
  /// admitted.
  std::uint64_t put(std::string_view module, std::string_view params,
                    std::uint64_t fingerprint, KeyValueMap result);

  /// Drops every entry (stats are kept — they are monotone).
  void clear();

  [[nodiscard]] CacheStats stats() const;

  /// The current epoch counter: the epoch of the most recent insert.
  [[nodiscard]] std::uint64_t epoch() const;

 private:
  struct Entry {
    std::string slot;  ///< module + '\0' + params (the map key, owned here)
    std::uint64_t fingerprint = 0;
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    KeyValueMap result;
  };
  using LruList = std::list<Entry>;

  /// Approximate resident cost of an entry: slot + payload strings plus a
  /// fixed overhead per entry (list/map node bookkeeping).
  static std::size_t entry_bytes(const Entry& entry);

  /// Erases `it` from the index and list.  Caller holds the mutex.
  void erase_locked(LruList::iterator it);

  /// Evicts from the LRU tail until `need` bytes fit.  Caller holds the
  /// mutex; precondition: need <= capacity.
  void make_room_locked(std::size_t need);

  CacheOptions options_;

  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string_view, LruList::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t epoch_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t oversize_rejects_ = 0;
};

}  // namespace mcsd::cache
