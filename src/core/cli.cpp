#include "core/cli.hpp"

#include <charconv>

#include "core/units.hpp"

namespace mcsd {

void CliParser::add_flag(std::string name, std::string help) {
  specs_[std::move(name)] = Spec{true, "", std::move(help)};
}

void CliParser::add_option(std::string name, std::string default_value,
                           std::string help) {
  specs_[std::move(name)] = Spec{false, std::move(default_value),
                                 std::move(help)};
}

Status CliParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string_view arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      return Status{ErrorCode::kUnavailable,
                    usage(argc > 0 ? argv[0] : "program")};
    }
    if (arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string{arg.substr(0, eq)};
      value = std::string{arg.substr(eq + 1)};
    } else {
      name = std::string{arg};
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      return Status{ErrorCode::kInvalidArgument, "unknown option --" + name};
    }
    if (it->second.is_flag) {
      if (value) {
        return Status{ErrorCode::kInvalidArgument,
                      "flag --" + name + " takes no value"};
      }
      values_[name] = "true";
      continue;
    }
    if (!value) {
      if (i + 1 >= argc) {
        return Status{ErrorCode::kInvalidArgument,
                      "option --" + name + " needs a value"};
      }
      value = std::string{argv[++i]};
    }
    values_[name] = std::move(*value);
  }
  return Status::ok();
}

bool CliParser::flag(std::string_view name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second == "true";
}

std::string CliParser::option(std::string_view name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  if (const auto it = specs_.find(name); it != specs_.end()) {
    return it->second.default_value;
  }
  return {};
}

Result<std::int64_t> CliParser::option_int(std::string_view name) const {
  const std::string raw = option(name);
  std::int64_t value = 0;
  const auto [p, e] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (e != std::errc{} || p != raw.data() + raw.size()) {
    return Error{ErrorCode::kInvalidArgument,
                 "--" + std::string{name} + " is not an integer: " + raw};
  }
  return value;
}

Result<std::uint64_t> CliParser::option_bytes(std::string_view name) const {
  auto parsed = parse_bytes(option(name));
  if (!parsed) {
    return Error{ErrorCode::kInvalidArgument,
                 "--" + std::string{name} + ": " +
                     parsed.error().to_string()};
  }
  return parsed;
}

std::string CliParser::usage(std::string_view program) const {
  std::string out = "usage: ";
  out += program;
  out += " [options]\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --";
    out += name;
    if (!spec.is_flag) {
      out += "=<value> (default: ";
      out += spec.default_value.empty() ? "none" : spec.default_value;
      out += ")";
    }
    out += "\n      ";
    out += spec.help;
    out += "\n";
  }
  return out;
}

}  // namespace mcsd
