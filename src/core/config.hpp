// Key=value configuration records.
//
// This doubles as the payload syntax of the smartFAM log-file protocol
// (Section IV-A of the paper: "the host writes the input parameters to the
// log file"): one `key=value` pair per line, `#` comments, values with
// embedded newlines percent-escaped.  Keeping the FAM payload humanly
// readable matches the paper's debugging story — you can inspect a module
// invocation with `cat`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.hpp"

namespace mcsd {

class KeyValueMap {
 public:
  KeyValueMap() = default;

  /// Parses one record.  Lines: `key=value`, blank, or `# comment`.
  /// Keys must be non-empty and contain no '=', whitespace, or '%'.
  static Result<KeyValueMap> parse(std::string_view text);

  /// Serialises deterministically (keys sorted) so identical maps produce
  /// byte-identical log records — watcher change detection relies on it.
  [[nodiscard]] std::string serialize() const;

  void set(std::string key, std::string value);
  void set_int(std::string key, std::int64_t value);
  void set_uint(std::string key, std::uint64_t value);
  void set_double(std::string key, double value);
  void set_bool(std::string key, bool value);

  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  [[nodiscard]] Result<std::int64_t> get_int(std::string_view key) const;
  [[nodiscard]] Result<std::uint64_t> get_uint(std::string_view key) const;
  [[nodiscard]] Result<double> get_double(std::string_view key) const;
  [[nodiscard]] Result<bool> get_bool(std::string_view key) const;

  /// `get` with a fallback when the key is absent (malformed still errors).
  [[nodiscard]] std::string get_or(std::string_view key,
                                   std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int_or(std::string_view key,
                                        std::int64_t fallback) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::map<std::string, std::string>& entries() const noexcept {
    return entries_;
  }

  bool operator==(const KeyValueMap&) const = default;

 private:
  std::map<std::string, std::string> entries_;
};

/// Percent-escapes '%', '\n', '\r', '=' so any byte string survives the
/// line-oriented record format.
std::string escape_value(std::string_view raw);
Result<std::string> unescape_value(std::string_view escaped);

}  // namespace mcsd
