// Bump arena for short byte strings.
//
// The MapReduce emitter copies every first-seen key into a worker-private
// arena and stores a view: one pointer bump per unique key instead of one
// heap allocation, and the whole key set frees in O(blocks) at reset()
// rather than one `operator delete` per key.  Blocks are retained across
// reset() so steady-state use (the out-of-core driver running the engine
// once per fragment) allocates nothing at all after warm-up.
//
// Not thread-safe: one arena per worker, by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace mcsd {

class BumpArena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit BumpArena(std::size_t block_bytes = kDefaultBlockBytes) noexcept
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  BumpArena(BumpArena&&) noexcept = default;
  BumpArena& operator=(BumpArena&&) noexcept = default;
  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Copies `bytes` into the arena and returns a view of the copy.  The
  /// view stays valid until reset().  Inputs larger than the block size
  /// get a dedicated block sized to fit.
  std::string_view store(std::string_view bytes) {
    Block* block = current_ < blocks_.size() ? &blocks_[current_] : nullptr;
    if (block == nullptr || block->size - block->used < bytes.size()) {
      block = next_block(bytes.size());
    }
    char* dst = block->data.get() + block->used;
    std::memcpy(dst, bytes.data(), bytes.size());
    block->used += bytes.size();
    used_ += bytes.size();
    return {dst, bytes.size()};
  }

  /// Invalidates every stored view and rewinds to the first block.  The
  /// blocks themselves are kept for reuse — reset is O(#blocks), with no
  /// frees on the steady-state path.
  void reset() noexcept {
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
    used_ = 0;
  }

  /// Frees every block.  Views are invalidated; the next store()
  /// allocates afresh.
  void release() noexcept {
    blocks_.clear();
    blocks_.shrink_to_fit();
    current_ = 0;
    used_ = 0;
  }

  /// Payload bytes stored since the last reset().
  [[nodiscard]] std::uint64_t bytes_used() const noexcept { return used_; }

  /// Total bytes of block capacity currently held (survives reset()).
  [[nodiscard]] std::uint64_t bytes_reserved() const noexcept {
    std::uint64_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Advances to the next retained block that fits `need`, allocating one
  /// when none does.  Skipped blocks stay retained for the next reset
  /// cycle (they were sized for an earlier, smaller demand).
  Block* next_block(std::size_t need) {
    while (++current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      if (b.size - b.used >= need) return &b;
    }
    const std::size_t size = need > block_bytes_ ? need : block_bytes_;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size, 0});
    current_ = blocks_.size() - 1;
    return &blocks_.back();
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< index of the block being bumped
  std::uint64_t used_ = 0;
};

}  // namespace mcsd
