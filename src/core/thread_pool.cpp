#include "core/thread_pool.hpp"

#include <stdexcept>

namespace mcsd {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    throw std::invalid_argument("ThreadPool needs at least one worker");
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::submit(InlineTask task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
  }
}

void TaskGroup::wait() {
  std::unique_lock lock{mutex_};
  done_.wait(lock, [&] { return pending_ == 0; });
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskGroup::finish_one(std::exception_ptr error) {
  std::lock_guard lock{mutex_};
  if (error && !first_error_) first_error_ = error;
  if (--pending_ == 0) done_.notify_all();
}

}  // namespace mcsd
