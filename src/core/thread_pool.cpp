#include "core/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcsd {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    throw std::invalid_argument("ThreadPool needs at least one worker");
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
  }
}

void ThreadPool::parallel_for_workers(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t pending = count - 1;  // index 0 runs on the caller
  std::exception_ptr first_error;

  for (std::size_t i = 1; i < count; ++i) {
    submit([&, i] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock{mutex};
      if (error && !first_error) first_error = error;
      if (--pending == 0) cv.notify_one();
    });
  }

  try {
    fn(0);
  } catch (...) {
    std::lock_guard lock{mutex};
    if (!first_error) first_error = std::current_exception();
  }

  std::unique_lock lock{mutex};
  cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock{mutex_};
    ++pending_;
  }
  const bool accepted = pool_.submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    finish_one(error);
  });
  if (!accepted) {
    finish_one(std::make_exception_ptr(
        std::runtime_error("TaskGroup::run after pool shutdown")));
  }
}

void TaskGroup::wait() {
  std::unique_lock lock{mutex_};
  done_.wait(lock, [&] { return pending_ == 0; });
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskGroup::finish_one(std::exception_ptr error) {
  std::lock_guard lock{mutex_};
  if (error && !first_error_) first_error_ = error;
  if (--pending_ == 0) done_.notify_all();
}

}  // namespace mcsd
