// Deterministic pseudo-random number generation for data generators and
// simulation.
//
// We use SplitMix64 for seeding and xoshiro256** as the workhorse
// generator: fast, tiny state, and — critically for reproducing the
// paper's benches — identical streams on every platform, unlike
// std::mt19937 + std::uniform_*_distribution whose outputs vary by
// standard library.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace mcsd {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // generators feed synthetic workloads, not cryptography or statistics.
    __extension__ using u128 = unsigned __int128;
    const u128 product = static_cast<u128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s, n) sampler over {0, .., n-1} via inverse-CDF on a precomputed
/// table.  Word frequencies in real text are Zipf-distributed; the WC
/// corpus generator uses this so reduce-key skew resembles real corpora.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank; rank 0 is the most frequent.
  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

inline ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

inline std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // Binary search the CDF.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace mcsd
