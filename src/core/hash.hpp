// Hashing used by the MapReduce intermediate store.
//
// FNV-1a for strings (stable, decent distribution over word keys) plus a
// 64-bit finaliser for integer keys.  Keyspace partitioning across reduce
// workers must be *stable across runs* so tests can assert bucket
// contents; std::hash gives no such guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mcsd {

/// FNV-1a 64-bit over an arbitrary byte range.
constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Stafford's Mix13 finaliser: scrambles integer keys so that sequential
/// row/column ids (matrix multiply) spread across reduce buckets.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// KeyHash: customisation point used by the MapReduce engine.  Specialise
/// or overload `mcsd_key_hash` (found by ADL) for user key types.
constexpr std::uint64_t mcsd_key_hash(std::string_view key) noexcept {
  return fnv1a(key);
}
constexpr std::uint64_t mcsd_key_hash(const std::string& key) noexcept {
  return fnv1a(std::string_view{key});
}
constexpr std::uint64_t mcsd_key_hash(std::uint64_t key) noexcept {
  return mix64(key);
}
constexpr std::uint64_t mcsd_key_hash(std::int64_t key) noexcept {
  return mix64(static_cast<std::uint64_t>(key));
}
constexpr std::uint64_t mcsd_key_hash(std::uint32_t key) noexcept {
  return mix64(key);
}
constexpr std::uint64_t mcsd_key_hash(std::int32_t key) noexcept {
  return mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(key)));
}

template <typename K>
struct KeyHash {
  std::uint64_t operator()(const K& key) const noexcept {
    return mcsd_key_hash(key);
  }
};

/// Transparent for string keys: a std::string_view probe hashes without
/// materialising a std::string, and hashes identically to the owned key —
/// the emitter's combiner relies on this to defer key allocation until a
/// pair is actually inserted.
template <>
struct KeyHash<std::string> {
  using is_transparent = void;
  constexpr std::uint64_t operator()(std::string_view key) const noexcept {
    return fnv1a(key);
  }
};

/// Maps a cached key hash to a slot in a power-of-two table of
/// `1 << log2_slots` entries.  Fibonacci hashing (multiply by 2^64/phi,
/// take the top bits): the reduce-bucket routing `hash % num_buckets`
/// already consumed the hash's low bits, so slot selection must draw on
/// independent bits or every pair in a bucket would probe the same run.
constexpr std::size_t hash_to_slot(std::uint64_t hash,
                                   unsigned log2_slots) noexcept {
  return static_cast<std::size_t>((hash * 0x9E3779B97F4A7C15ULL) >>
                                  (64 - log2_slots));
}

}  // namespace mcsd
