// Hashing used by the MapReduce intermediate store.
//
// FNV-1a for strings (stable, decent distribution over word keys) plus a
// 64-bit finaliser for integer keys.  Keyspace partitioning across reduce
// workers must be *stable across runs* so tests can assert bucket
// contents; std::hash gives no such guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mcsd {

/// FNV-1a 64-bit over an arbitrary byte range.
constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Continues an FNV-1a hash over `bytes` from intermediate state `h`.
constexpr std::uint64_t fnv1a_tail(std::uint64_t h,
                                   std::string_view bytes) noexcept {
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Hashes four byte ranges with interleaved FNV-1a streams.  FNV's
/// per-byte multiply forms a serial dependency chain, so hashing one key
/// at a time leaves the multiplier idle most cycles; four independent
/// chains overlap that latency.  Lanes advance together to the shortest
/// key's length, then each finishes scalar — every lane's result is
/// byte-identical to fnv1a() (the emitter's batched emit path relies on
/// this to reuse the same hash for routing, probes, and reduce grouping).
inline void fnv1a_x4(const std::string_view* keys, std::uint64_t* out) noexcept {
  constexpr std::uint64_t kBasis = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t h0 = kBasis, h1 = kBasis, h2 = kBasis, h3 = kBasis;
  const char* p0 = keys[0].data();
  const char* p1 = keys[1].data();
  const char* p2 = keys[2].data();
  const char* p3 = keys[3].data();
  std::size_t m = keys[0].size();
  for (int l = 1; l < 4; ++l) {
    if (keys[l].size() < m) m = keys[l].size();
  }
  for (std::size_t i = 0; i < m; ++i) {
    h0 = (h0 ^ static_cast<std::uint8_t>(p0[i])) * kPrime;
    h1 = (h1 ^ static_cast<std::uint8_t>(p1[i])) * kPrime;
    h2 = (h2 ^ static_cast<std::uint8_t>(p2[i])) * kPrime;
    h3 = (h3 ^ static_cast<std::uint8_t>(p3[i])) * kPrime;
  }
  out[0] = fnv1a_tail(h0, keys[0].substr(m));
  out[1] = fnv1a_tail(h1, keys[1].substr(m));
  out[2] = fnv1a_tail(h2, keys[2].substr(m));
  out[3] = fnv1a_tail(h3, keys[3].substr(m));
}

/// Stafford's Mix13 finaliser: scrambles integer keys so that sequential
/// row/column ids (matrix multiply) spread across reduce buckets.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// KeyHash: customisation point used by the MapReduce engine.  Specialise
/// or overload `mcsd_key_hash` (found by ADL) for user key types.
constexpr std::uint64_t mcsd_key_hash(std::string_view key) noexcept {
  return fnv1a(key);
}
constexpr std::uint64_t mcsd_key_hash(const std::string& key) noexcept {
  return fnv1a(std::string_view{key});
}
constexpr std::uint64_t mcsd_key_hash(std::uint64_t key) noexcept {
  return mix64(key);
}
constexpr std::uint64_t mcsd_key_hash(std::int64_t key) noexcept {
  return mix64(static_cast<std::uint64_t>(key));
}
constexpr std::uint64_t mcsd_key_hash(std::uint32_t key) noexcept {
  return mix64(key);
}
constexpr std::uint64_t mcsd_key_hash(std::int32_t key) noexcept {
  return mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(key)));
}

template <typename K>
struct KeyHash {
  std::uint64_t operator()(const K& key) const noexcept {
    return mcsd_key_hash(key);
  }
};

/// Transparent for string keys: a std::string_view probe hashes without
/// materialising a std::string, and hashes identically to the owned key —
/// the emitter's combiner relies on this to defer key allocation until a
/// pair is actually inserted.
template <>
struct KeyHash<std::string> {
  using is_transparent = void;
  constexpr std::uint64_t operator()(std::string_view key) const noexcept {
    return fnv1a(key);
  }
};

/// Maps a cached key hash to a slot in a power-of-two table of
/// `1 << log2_slots` entries.  Fibonacci hashing (multiply by 2^64/phi,
/// take the top bits): the reduce-bucket routing `hash % num_buckets`
/// already consumed the hash's low bits, so slot selection must draw on
/// independent bits or every pair in a bucket would probe the same run.
constexpr std::size_t hash_to_slot(std::uint64_t hash,
                                   unsigned log2_slots) noexcept {
  return static_cast<std::size_t>((hash * 0x9E3779B97F4A7C15ULL) >>
                                  (64 - log2_slots));
}

}  // namespace mcsd
