// Filesystem helpers: whole-file read/write, atomic replace, scoped temp
// directories.
//
// The FAM log-file channel depends on two properties these helpers
// provide: (1) `write_file_atomic` makes a log-record update appear all at
// once (write to a sibling temp file, fsync-less rename), so the watcher
// never observes a torn record; (2) `TempDir` gives each test / example an
// isolated stand-in for the NFS-shared log folder.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "core/result.hpp"

namespace mcsd {

/// Reads an entire file into a string.
Result<std::string> read_file(const std::filesystem::path& path);

/// Writes `contents` to `path`, truncating.  Not atomic.
Status write_file(const std::filesystem::path& path, std::string_view contents);

/// Appends `contents` to `path`, creating it if needed.
Status append_file(const std::filesystem::path& path, std::string_view contents);

/// Atomically replaces `path` with `contents` (temp file + rename within
/// the same directory).  Readers see either the old or the new contents,
/// never a prefix.
///
/// Contract: the staging file is named `<filename>.tmp.<n>` — directory
/// watchers (fam::FileWatcher, fam::InotifyWatcher) rely on the ".tmp."
/// infix to ignore in-flight updates.
Status write_file_atomic(const std::filesystem::path& path,
                         std::string_view contents);

/// File size in bytes, or kNotFound.
Result<std::uint64_t> file_size(const std::filesystem::path& path);

/// A uniquely named directory under the system temp dir, removed
/// recursively on destruction.
class TempDir {
 public:
  /// `tag` appears in the directory name for debuggability.
  explicit TempDir(std::string_view tag = "mcsd");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::filesystem::path operator/(std::string_view name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace mcsd
