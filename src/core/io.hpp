// Filesystem helpers: whole-file read/write, atomic replace, scoped temp
// directories.
//
// The FAM log-file channel depends on two properties these helpers
// provide: (1) `write_file_atomic` makes a log-record update appear all at
// once (write to a sibling temp file, fsync-less rename), so the watcher
// never observes a torn record; (2) `TempDir` gives each test / example an
// isolated stand-in for the NFS-shared log folder.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "core/result.hpp"

namespace mcsd {

/// Reads an entire file into a string.
Result<std::string> read_file(const std::filesystem::path& path);

/// Reads everything from byte `offset` to end-of-file — the tail of an
/// append-only log since the last scan.  An offset at (or past) the
/// current size yields an empty string.  Shares read_file's fault site,
/// so an injected torn read hands back a prefix of the tail.
Result<std::string> read_file_from(const std::filesystem::path& path,
                                   std::uint64_t offset);

/// Writes `contents` to `path`, truncating.  Not atomic.
Status write_file(const std::filesystem::path& path, std::string_view contents);

/// Appends `contents` to `path`, creating it if needed.  Fault-
/// instrumented at the same site as write_file_atomic (Site::kWriteFile):
/// injected EIO/ENOSPC fail before touching the file, a torn append
/// silently lands a prefix (corrupting the tail frame of an append-only
/// mailbox — exactly the failure a frame crc exists to catch), a short
/// append lands a prefix *and* reports the error, and a delayed append
/// sleeps before becoming visible.
Status append_file(const std::filesystem::path& path, std::string_view contents);

/// Atomically replaces `path` with `contents` (temp file + rename within
/// the same directory).  Readers see either the old or the new contents,
/// never a prefix.
///
/// Contract: the staging file is named `<filename>.tmp.<n>` — directory
/// watchers (fam::FileWatcher, fam::InotifyWatcher) rely on the ".tmp."
/// infix to ignore in-flight updates.
Status write_file_atomic(const std::filesystem::path& path,
                         std::string_view contents);

/// File size in bytes, or kNotFound.
Result<std::uint64_t> file_size(const std::filesystem::path& path);

/// Positioned-read abstraction: lets ChunkedFileReader pull its refills
/// from something other than an ifstream — in particular from the
/// storage buffer pool (storage::PooledFileSource), so fragment streaming
/// is served from pinned frames that survive across runs.
class RandomAccessSource {
 public:
  virtual ~RandomAccessSource() = default;

  /// Reads up to `len` bytes at absolute `offset` into `dst`.  Returns
  /// the byte count actually read; a short count means end-of-file (a
  /// mid-file short read must be reported as an error instead).
  virtual Result<std::size_t> read_at(std::uint64_t offset, char* dst,
                                      std::size_t len) = 0;

  /// Human-readable identity for error messages.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Streams a file as a sequence of record-aligned fragments without ever
/// holding more than one fragment (plus the bytes carried past its cut)
/// in memory — the I/O half of the out-of-core pipeline.
///
/// Each `next_fragment` call returns ~`target_bytes` of input whose end
/// is aligned exactly like `part::integrity_check` aligns an in-memory
/// draft cut (Fig. 7): the fragment ends after the record spanning the
/// target boundary *and* its trailing delimiter run, so the next fragment
/// starts on a record byte.  Streaming the same file therefore yields
/// byte-identical fragments to `part::partition` over the whole input.
class ChunkedFileReader {
 public:
  /// OS read granularity; fragments are assembled from reads of this size.
  static constexpr std::size_t kDefaultBufferBytes = 256 * 1024;

  /// Attempts per buffer refill.  A transient read failure (an NFS
  /// hiccup, or an injected fault from core/fault) is retried against
  /// the last good offset before the error propagates, so a pipelined
  /// out-of-core run survives sporadic EIO with byte-identical output.
  static constexpr int kReadAttempts = 4;

  /// Opens `path` for streaming; kNotFound when it cannot be opened.
  static Result<ChunkedFileReader> open(
      const std::filesystem::path& path,
      std::size_t buffer_bytes = kDefaultBufferBytes);

  /// Streams from `source` instead of an owned ifstream.  `name` stands
  /// in for the path in error messages and fault-injection filtering
  /// (Site::kRefill consumes steps identically in both modes).
  static Result<ChunkedFileReader> open_with_source(
      std::shared_ptr<RandomAccessSource> source, std::string name,
      std::size_t buffer_bytes = kDefaultBufferBytes);

  ChunkedFileReader(ChunkedFileReader&&) = default;
  ChunkedFileReader& operator=(ChunkedFileReader&&) = default;

  /// Reads the next fragment into `out` (replacing its contents).
  /// `target_bytes` is the draft fragment size; 0 means "the whole
  /// remaining file as one fragment".  Returns true when a non-empty
  /// fragment was produced, false on clean end-of-file, or an IO error.
  Result<bool> next_fragment(std::uint64_t target_bytes,
                             const std::function<bool(char)>& is_delimiter,
                             std::string& out);

  /// Byte offset in the file where the *next* fragment starts (equals the
  /// total bytes handed out so far; carried-over bytes count as unread).
  [[nodiscard]] std::uint64_t next_fragment_offset() const noexcept {
    return next_offset_;
  }

  /// True once the underlying file is fully consumed (the carry buffer
  /// may still hold the tail of the final fragment).
  [[nodiscard]] bool exhausted() const noexcept {
    return eof_ && carry_.empty();
  }

  /// Bytes read past the previous fragment's cut and held for the next
  /// one — the only fragment text resident inside the reader itself.
  [[nodiscard]] std::uint64_t carry_bytes() const noexcept {
    return carry_.size();
  }

 private:
  ChunkedFileReader(std::ifstream in, std::string path,
                    std::size_t buffer_bytes)
      : in_(std::move(in)), path_(std::move(path)),
        buffer_bytes_(buffer_bytes == 0 ? kDefaultBufferBytes : buffer_bytes) {
  }
  ChunkedFileReader(std::shared_ptr<RandomAccessSource> source,
                    std::string name, std::size_t buffer_bytes)
      : path_(std::move(name)),
        buffer_bytes_(buffer_bytes == 0 ? kDefaultBufferBytes : buffer_bytes),
        source_(std::move(source)) {}

  /// Appends up to one buffer of file data to `out`; sets eof_.  Retries
  /// transient failures (kReadAttempts total) from the last good offset.
  Status fill(std::string& out);
  /// One read attempt; the fault-injection site for Site::kRefill.
  Status fill_once(std::string& out);

  std::ifstream in_;
  std::string path_;
  std::size_t buffer_bytes_;
  std::shared_ptr<RandomAccessSource> source_;  ///< non-null in source mode
  std::string carry_;  ///< bytes read past the previous fragment's cut
  std::uint64_t next_offset_ = 0;
  std::uint64_t file_pos_ = 0;  ///< bytes successfully read off the file
  bool eof_ = false;
};

/// A uniquely named directory under the system temp dir, removed
/// recursively on destruction.
class TempDir {
 public:
  /// `tag` appears in the directory name for debuggability.
  explicit TempDir(std::string_view tag = "mcsd");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::filesystem::path operator/(std::string_view name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace mcsd
