// Small string utilities shared across McSD modules.
//
// Nothing here allocates unless the return type requires it; inputs are
// std::string_view throughout (C++ Core Guidelines F.15/F.16).
//
// The SWAR block (word_class_mask8 / to_lower_ascii / for_each_word)
// powers the map-phase inner loops of Word Count and String Match: byte
// classification and lower-casing run 8 bytes per step on plain 64-bit
// registers, with no target-specific intrinsics, and token extraction
// walks a 64-byte bitmask with countr_zero/countr_one instead of a
// per-byte branch.  Property tests (test_core_strings) pin every SWAR
// helper byte-identical to its scalar reference over random and
// adversarial inputs.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace mcsd {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits on any amount of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (the benchmark corpora are ASCII by construction).
std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True for the delimiters the paper's integrity check recognises by
/// default: space, tab, newline, carriage return.
constexpr bool is_default_delimiter(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// True for ASCII alphanumerics (word characters in the WC benchmark).
constexpr bool is_word_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

// ---------------------------------------------------------------------------
// SWAR byte classification (8 bytes per step, no intrinsics).
// ---------------------------------------------------------------------------

namespace swar {

inline constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
inline constexpr std::uint64_t kHigh = 0x8080808080808080ULL;

/// Per-byte `v >= c` for 7-bit byte lanes (callers mask the high bit off
/// first): sets bit 7 of every lane whose value is >= c.  Adding
/// (0x80 - c) pushes exactly the in-range lanes past 0x80, and since every
/// lane sum stays below 0x100 no carry crosses into a neighbour.
constexpr std::uint64_t ge7(std::uint64_t v, unsigned c) noexcept {
  return (v + (0x80u - c) * kOnes) & kHigh;
}

/// Per-byte range test lo <= v <= hi (7-bit lanes, hi <= 0x7E).
constexpr std::uint64_t in_range7(std::uint64_t v, unsigned lo,
                                  unsigned hi) noexcept {
  return ge7(v, lo) & ~ge7(v, hi + 1);
}

/// Sets bit 7 of every byte lane holding an ASCII alphanumeric; bytes
/// >= 0x80 (UTF-8 continuation etc.) always classify as non-word, same as
/// the scalar is_word_char.
constexpr std::uint64_t word_class_mask8(std::uint64_t block) noexcept {
  const std::uint64_t hi = block & kHigh;
  const std::uint64_t v = block & ~kHigh;
  const std::uint64_t cls = in_range7(v, '0', '9') | in_range7(v, 'A', 'Z') |
                            in_range7(v, 'a', 'z');
  return cls & ~hi;
}

/// Compresses a per-byte-bit-7 mask into 8 low bits (bit i = lane i).
/// The multiplier places each lane's bit at position 56 + i; all 64
/// partial products land on distinct bit positions (8i - 7j is injective
/// over i, j in [0,8)), so no carries corrupt the gather.
constexpr std::uint64_t movemask8(std::uint64_t lane_mask) noexcept {
  return ((lane_mask & kHigh) * 0x0002040810204081ULL) >> 56;
}

/// Unaligned 8-byte little-endian load (memcpy compiles to one mov).
inline std::uint64_t load8(const char* p) noexcept {
  std::uint64_t block;
  std::memcpy(&block, p, sizeof(block));
  return block;
}

}  // namespace swar

/// ASCII-lowercases `text` into `out` (resized to match), 8 bytes per
/// step: the uppercase lanes' classification bit, shifted down to 0x20,
/// is OR-ed straight in.  Bytes >= 0x80 pass through untouched, matching
/// std::tolower under the C locale.
void to_lower_ascii(std::string_view text, std::vector<char>& out);

/// Invokes `fn(token)` for every maximal run of ASCII alphanumerics in
/// `text`, in order.  Tokens are views into `text`.  The scan builds a
/// 64-byte word-class bitmask per stripe (8 SWAR blocks + movemask) and
/// extracts runs with countr_zero / countr_one, so cost per byte is a
/// handful of ALU ops instead of two data-dependent branches.
template <typename Fn>
void for_each_word(std::string_view text, Fn&& fn) {
  const char* const data = text.data();
  const std::size_t n = text.size();
  std::size_t pos = 0;
  std::size_t token_start = 0;
  bool open = false;  // a token run extends past the previous stripe

  while (pos + 64 <= n) {
    std::uint64_t mask = 0;
    for (unsigned j = 0; j < 8; ++j) {
      mask |= swar::movemask8(swar::word_class_mask8(swar::load8(
                  data + pos + 8 * j)))
              << (8 * j);
    }
    std::uint64_t m = mask;
    std::size_t base = pos;
    if (open) {
      const unsigned run = static_cast<unsigned>(std::countr_one(m));
      if (run == 64) {
        pos += 64;
        continue;  // token spans the whole stripe; stays open
      }
      fn(std::string_view{data + token_start, base + run - token_start});
      open = false;
      m >>= run;
      base += run;
    }
    while (m != 0) {
      const unsigned skip = static_cast<unsigned>(std::countr_zero(m));
      m >>= skip;
      base += skip;
      const unsigned run = static_cast<unsigned>(std::countr_one(m));
      if (base + run == pos + 64) {
        // Run touches the stripe edge: it may continue into the next
        // stripe (or the tail), so leave it open.
        token_start = base;
        open = true;
        break;
      }
      fn(std::string_view{data + base, run});
      m >>= run;
      base += run;
    }
    pos += 64;
  }

  // Scalar tail (< 64 bytes) plus any still-open token.
  for (; pos < n; ++pos) {
    if (is_word_char(data[pos])) {
      if (!open) {
        token_start = pos;
        open = true;
      }
    } else if (open) {
      fn(std::string_view{data + token_start, pos - token_start});
      open = false;
    }
  }
  if (open) {
    fn(std::string_view{data + token_start, n - token_start});
  }
}

/// Invokes `fn(line, absolute_offset)` for every line in `text`, where
/// `offset_base` is text's position in the whole input.  The final line
/// may lack a trailing newline.  Shared by String Match's map and its
/// sequential reference so both iterate lines identically.
template <typename Fn>
void for_each_line(std::string_view text, std::uint64_t offset_base, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    fn(text.substr(pos, eol - pos), offset_base + pos);
    pos = eol + 1;
  }
}

}  // namespace mcsd
