// Small string utilities shared across McSD modules.
//
// Nothing here allocates unless the return type requires it; inputs are
// std::string_view throughout (C++ Core Guidelines F.15/F.16).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcsd {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits on any amount of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (the benchmark corpora are ASCII by construction).
std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True for the delimiters the paper's integrity check recognises by
/// default: space, tab, newline, carriage return.
constexpr bool is_default_delimiter(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// True for ASCII alphanumerics (word characters in the WC benchmark).
constexpr bool is_word_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

}  // namespace mcsd
