// Minimal command-line parsing for the example and bench binaries.
//
// Supports `--flag`, `--key=value`, `--key value` and positional
// arguments; unknown options are errors (typos should not silently run
// the default experiment).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.hpp"

namespace mcsd {

class CliParser {
 public:
  /// Declares a boolean flag (present/absent).
  void add_flag(std::string name, std::string help);
  /// Declares a valued option with a default.
  void add_option(std::string name, std::string default_value,
                  std::string help);

  /// Parses argv.  On failure returns the error; `--help` is reported as
  /// kUnavailable with the usage text as the message.
  Status parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(std::string_view name) const;
  [[nodiscard]] std::string option(std::string_view name) const;
  [[nodiscard]] Result<std::int64_t> option_int(std::string_view name) const;
  /// Parses the option through parse_bytes ("500M", "1.25G", ...).
  [[nodiscard]] Result<std::uint64_t> option_bytes(std::string_view name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  struct Spec {
    bool is_flag = false;
    std::string default_value;
    std::string help;
  };

  std::map<std::string, Spec, std::less<>> specs_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace mcsd
