// Byte-size units and formatting.
//
// The paper reports data sizes as "500M", "750M", "1G", "1.25G", "2G"
// (decimal-ish labels for binary sizes).  All McSD size arithmetic is in
// plain std::uint64_t bytes; this header supplies the constants, literals,
// parsing for the bench harnesses, and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/result.hpp"

namespace mcsd {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

/// Formats a byte count the way the paper labels data points: "500M",
/// "1.25G".  Chooses the largest unit that keeps the mantissa >= 1.
std::string format_bytes(std::uint64_t bytes);

/// Parses "512", "64K", "500M", "1.25G" (case-insensitive, optional "iB"/"B"
/// suffix) into bytes.  Fractional values are allowed for M and G.
Result<std::uint64_t> parse_bytes(std::string_view text);

}  // namespace mcsd
