// Fixed-size thread pool with task groups.
//
// The MapReduce engine (and the FAM daemon) pin their parallelism to an
// explicit worker count — the paper's whole premise is "N-core storage
// node", so worker count is a *parameter*, never hardware_concurrency()
// implicitly.  TaskGroup lets a phase submit a batch and join it without
// tearing the pool down between phases.
//
// Dispatch is allocation-free on the hot path: tasks travel as
// InlineTask — a move-only, type-erased callable with small-buffer
// storage — so submitting the pointer-sized closures parallel_for_workers
// and TaskGroup produce never touches the heap (std::function's
// small-buffer limit is far below a captured [latch, fn, index] triple).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/mpmc_queue.hpp"

namespace mcsd {

/// Move-only type-erased `void()` callable.  Callables up to kInlineBytes
/// (and nothrow-movable) live inside the object; larger ones fall back to
/// one heap allocation, exactly like std::function past its SBO.
class InlineTask {
 public:
  /// Inline capacity: six pointers covers every closure the pool's own
  /// dispatch paths create (control block + body + index).
  static constexpr std::size_t kInlineBytes = 48;

  InlineTask() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineTask> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      static constexpr Ops ops{
          [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
          [](void* dst, void* src) noexcept {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          [](void* s) noexcept {
            std::launder(reinterpret_cast<Fn*>(s))->~Fn();
          }};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      static constexpr Ops ops{
          [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
          [](void* dst, void* src) noexcept {
            ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
          },
          [](void* s) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(s));
          }};
      ops_ = &ops;
    }
  }

  InlineTask(InlineTask&& other) noexcept { move_from(other); }
  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { destroy(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
  };

  void move_from(InlineTask& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

namespace detail {

/// Joins a fixed batch of pool tasks: counts completions down, keeps the
/// first exception, and rethrows it on the waiting caller.
class TaskLatch {
 public:
  explicit TaskLatch(std::size_t pending) : pending_(pending) {}

  void finish(std::exception_ptr error) noexcept {
    std::lock_guard lock{mutex_};
    if (error && !first_error_) first_error_ = std::move(error);
    if (--pending_ == 0) done_.notify_one();
  }

  /// Records an error from the caller's own lane (no count attached).
  void note_error(std::exception_ptr error) noexcept {
    std::lock_guard lock{mutex_};
    if (!first_error_) first_error_ = std::move(error);
  }

  void wait_and_rethrow() {
    std::unique_lock lock{mutex_};
    done_.wait(lock, [&] { return pending_ == 0; });
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_;
  std::exception_ptr first_error_;
};

}  // namespace detail

class ThreadPool {
 public:
  /// Spawns `worker_count` threads (>= 1).
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a fire-and-forget task.  Returns false after shutdown.
  bool submit(InlineTask task);

  /// Runs `fn(worker_index)` once on each of `count` logical workers and
  /// blocks until all complete.  The calling thread also executes tasks,
  /// so a pool of W threads serves count > W without deadlock.  The first
  /// exception thrown by any task is rethrown on the caller.  Each
  /// dispatched task captures only {latch*, fn*, index} — no per-task
  /// heap allocation.
  template <typename Fn>
    requires std::is_invocable_v<Fn&, std::size_t>
  void parallel_for_workers(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    if (count == 1) {
      fn(0);
      return;
    }

    detail::TaskLatch latch{count - 1};
    Fn& body = fn;  // shared by every lane; outlives the join below
    for (std::size_t i = 1; i < count; ++i) {
      const bool accepted = submit([&latch, &body, i] {
        std::exception_ptr error;
        try {
          body(i);
        } catch (...) {
          error = std::current_exception();
        }
        latch.finish(std::move(error));
      });
      if (!accepted) {
        latch.finish(std::make_exception_ptr(std::runtime_error(
            "parallel_for_workers after pool shutdown")));
      }
    }

    try {
      body(0);
    } catch (...) {
      latch.note_error(std::current_exception());
    }
    latch.wait_and_rethrow();
  }

 private:
  void worker_loop();

  MpmcQueue<InlineTask> tasks_;
  std::vector<std::thread> workers_;
};

/// Joins a dynamically-sized batch of tasks submitted to a ThreadPool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits a task tracked by this group.  Small callables ride the
  /// pool's inline task slots; nothing is heap-allocated for them.
  template <typename Fn>
    requires std::is_invocable_v<std::remove_cvref_t<Fn>&>
  void run(Fn&& task) {
    {
      std::lock_guard lock{mutex_};
      ++pending_;
    }
    const bool accepted =
        pool_.submit([this, task = std::forward<Fn>(task)]() mutable {
          std::exception_ptr error;
          try {
            task();
          } catch (...) {
            error = std::current_exception();
          }
          finish_one(std::move(error));
        });
    if (!accepted) {
      finish_one(std::make_exception_ptr(
          std::runtime_error("TaskGroup::run after pool shutdown")));
    }
  }

  /// Blocks until every task run() so far has finished; rethrows the
  /// first captured exception.
  void wait();

 private:
  void finish_one(std::exception_ptr error);

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace mcsd
