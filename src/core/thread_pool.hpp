// Fixed-size thread pool with task groups.
//
// The MapReduce engine (and the FAM daemon) pin their parallelism to an
// explicit worker count — the paper's whole premise is "N-core storage
// node", so worker count is a *parameter*, never hardware_concurrency()
// implicitly.  TaskGroup lets a phase submit a batch and join it without
// tearing the pool down between phases.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/mpmc_queue.hpp"

namespace mcsd {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads (>= 1).
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a fire-and-forget task.  Returns false after shutdown.
  bool submit(std::function<void()> task);

  /// Runs `fn(worker_index)` once on each of `count` logical workers and
  /// blocks until all complete.  The calling thread also executes tasks,
  /// so a pool of W threads serves count > W without deadlock.  The first
  /// exception thrown by any task is rethrown on the caller.
  void parallel_for_workers(std::size_t count,
                            const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

/// Joins a dynamically-sized batch of tasks submitted to a ThreadPool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits a task tracked by this group.
  void run(std::function<void()> task);

  /// Blocks until every task run() so far has finished; rethrows the
  /// first captured exception.
  void wait();

 private:
  void finish_one(std::exception_ptr error);

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace mcsd
