#include "core/io.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "core/fault.hpp"

namespace mcsd {

namespace fs = std::filesystem;

Result<std::string> read_file(const fs::path& path) {
  const fault::Decision injected =
      fault::check(fault::Site::kReadFile, path.native());
  if (injected.kind == fault::Kind::kEio) {
    return Error{ErrorCode::kIoError,
                 "injected EIO reading " + path.string()};
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return Error{ErrorCode::kNotFound, "cannot open " + path.string()};
  }
  std::string contents;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) {
    return Error{ErrorCode::kIoError, "cannot stat " + path.string()};
  }
  contents.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(contents.data(), size);
  if (!in) {
    return Error{ErrorCode::kIoError, "short read on " + path.string()};
  }
  if (injected.kind == fault::Kind::kTorn && !contents.empty()) {
    // Torn read: the caller silently sees a prefix, as if it raced a
    // non-atomic writer.  Record CRCs are what catch this downstream.
    contents.resize(static_cast<std::size_t>(injected.entropy %
                                             contents.size()));
  }
  return contents;
}

Result<std::string> read_file_from(const fs::path& path,
                                   std::uint64_t offset) {
  const fault::Decision injected =
      fault::check(fault::Site::kReadFile, path.native());
  if (injected.kind == fault::Kind::kEio) {
    return Error{ErrorCode::kIoError,
                 "injected EIO reading " + path.string()};
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return Error{ErrorCode::kNotFound, "cannot open " + path.string()};
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) {
    return Error{ErrorCode::kIoError, "cannot stat " + path.string()};
  }
  const auto size = static_cast<std::uint64_t>(end);
  if (offset >= size) return std::string{};
  std::string contents;
  contents.resize(static_cast<std::size_t>(size - offset));
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!in) {
    return Error{ErrorCode::kIoError, "short read on " + path.string()};
  }
  if (injected.kind == fault::Kind::kTorn && !contents.empty()) {
    contents.resize(static_cast<std::size_t>(injected.entropy %
                                             contents.size()));
  }
  return contents;
}

Status write_file(const fs::path& path, std::string_view contents) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    return Status{ErrorCode::kIoError, "cannot open " + path.string()};
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status{ErrorCode::kIoError, "short write on " + path.string()};
  }
  return Status::ok();
}

Status append_file(const fs::path& path, std::string_view contents) {
  const fault::Decision injected =
      fault::check(fault::Site::kWriteFile, path.native());
  switch (injected.kind) {
    case fault::Kind::kEio:
      return Status{ErrorCode::kIoError,
                    "injected EIO appending to " + path.string()};
    case fault::Kind::kEnospc:
      return Status{ErrorCode::kIoError,
                    "injected ENOSPC (no space left on device) appending to " +
                        path.string()};
    case fault::Kind::kDelayedRename:
      // No rename here, but the same knob models an append whose
      // visibility lags (NFS attribute-cache staleness).
      std::this_thread::sleep_for(fault::Injector::instance().rename_delay());
      break;
    default:
      break;
  }
  std::string_view effective = contents;
  if ((injected.kind == fault::Kind::kTorn ||
       injected.kind == fault::Kind::kShortWrite) &&
      !contents.empty()) {
    effective = contents.substr(
        0, static_cast<std::size_t>(injected.entropy % contents.size()));
  }
  std::ofstream out{path, std::ios::binary | std::ios::app};
  if (!out) {
    return Status{ErrorCode::kIoError, "cannot open " + path.string()};
  }
  out.write(effective.data(), static_cast<std::streamsize>(effective.size()));
  out.flush();
  if (!out) {
    return Status{ErrorCode::kIoError, "short write on " + path.string()};
  }
  if (injected.kind == fault::Kind::kShortWrite) {
    return Status{ErrorCode::kIoError,
                  "injected short append on " + path.string()};
  }
  return Status::ok();
}

Status write_file_atomic(const fs::path& path, std::string_view contents) {
  const fault::Decision injected =
      fault::check(fault::Site::kWriteFile, path.native());
  switch (injected.kind) {
    case fault::Kind::kEio:
      return Status{ErrorCode::kIoError,
                    "injected EIO writing " + path.string()};
    case fault::Kind::kEnospc:
      return Status{ErrorCode::kIoError,
                    "injected ENOSPC (no space left on device) writing " +
                        path.string()};
    default:
      break;
  }
  std::string_view effective = contents;
  if ((injected.kind == fault::Kind::kTorn ||
       injected.kind == fault::Kind::kShortWrite) &&
      !contents.empty()) {
    // The replacement lands, but holds only a prefix — the close-to-open
    // NFS failure mode a record CRC exists to catch.
    effective = contents.substr(
        0, static_cast<std::size_t>(injected.entropy % contents.size()));
  }

  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp =
      path.parent_path() /
      (path.filename().string() + ".tmp." +
       std::to_string(counter.fetch_add(1, std::memory_order_relaxed)));
  if (Status s = write_file(tmp, effective); !s) return s;
  if (injected.kind == fault::Kind::kDelayedRename) {
    std::this_thread::sleep_for(fault::Injector::instance().rename_delay());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status{ErrorCode::kIoError,
                  "rename to " + path.string() + " failed: " + ec.message()};
  }
  if (injected.kind == fault::Kind::kShortWrite) {
    // Unlike kTorn, the failure is *reported* — the caller knows the
    // destination may hold garbage and can rewrite.
    return Status{ErrorCode::kIoError,
                  "injected short write on " + path.string()};
  }
  return Status::ok();
}

Result<ChunkedFileReader> ChunkedFileReader::open(const fs::path& path,
                                                  std::size_t buffer_bytes) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return Error{ErrorCode::kNotFound, "cannot open " + path.string()};
  }
  return ChunkedFileReader{std::move(in), path.string(), buffer_bytes};
}

Result<ChunkedFileReader> ChunkedFileReader::open_with_source(
    std::shared_ptr<RandomAccessSource> source, std::string name,
    std::size_t buffer_bytes) {
  if (!source) {
    return Error{ErrorCode::kInvalidArgument,
                 "open_with_source: null source for " + name};
  }
  return ChunkedFileReader{std::move(source), std::move(name), buffer_bytes};
}

Status ChunkedFileReader::fill_once(std::string& out) {
  if (fault::check(fault::Site::kRefill, path_).kind == fault::Kind::kEio) {
    return Status{ErrorCode::kIoError, "injected EIO on " + path_};
  }
  const std::size_t before = out.size();
  out.resize(before + buffer_bytes_);
  if (source_) {
    auto got = source_->read_at(file_pos_, out.data() + before, buffer_bytes_);
    if (!got.is_ok()) {
      out.resize(before);
      return Status{got.error().code(), got.error().message()};
    }
    out.resize(before + got.value());
    if (got.value() < buffer_bytes_) eof_ = true;  // short read == EOF
    file_pos_ += static_cast<std::uint64_t>(got.value());
    return Status::ok();
  }
  in_.read(out.data() + before, static_cast<std::streamsize>(buffer_bytes_));
  const auto got = in_.gcount();
  out.resize(before + static_cast<std::size_t>(got));
  if (in_.eof()) {
    eof_ = true;
  } else if (!in_) {
    return Status{ErrorCode::kIoError, "read failed on " + path_};
  }
  file_pos_ += static_cast<std::uint64_t>(got);
  return Status::ok();
}

Status ChunkedFileReader::fill(std::string& out) {
  Status last = Status::ok();
  for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
    const std::size_t before = out.size();
    last = fill_once(out);
    if (last.is_ok()) return last;
    // Transient failure: rewind to the last byte known good and retry.
    // (Source mode is positioned — file_pos_ never advanced — so only
    // the ifstream needs its error state cleared and cursor restored.)
    out.resize(before);
    if (!source_) {
      in_.clear();
      in_.seekg(static_cast<std::streamoff>(file_pos_));
    }
  }
  return last;
}

Result<bool> ChunkedFileReader::next_fragment(
    std::uint64_t target_bytes, const std::function<bool(char)>& is_delimiter,
    std::string& out) {
  out.clear();
  std::swap(out, carry_);
  while (!eof_ && (target_bytes == 0 || out.size() < target_bytes)) {
    if (Status s = fill(out); !s) return s.error();
  }
  if (out.empty()) return false;  // clean end-of-file
  if (target_bytes == 0 || out.size() < target_bytes) {
    // The remainder is smaller than one fragment: it becomes the tail
    // fragment verbatim (partition()'s final-fragment behaviour).
    next_offset_ += out.size();
    return true;
  }

  // Integrity-align the cut at the local draft point, refilling whenever
  // the scan runs off the buffered data (a record or delimiter run may
  // span any number of read buffers).
  std::size_t cut = static_cast<std::size_t>(target_bytes);
  if (!is_delimiter(out[cut - 1])) {
    // Walk to the end of the record in progress.
    for (;;) {
      while (cut < out.size() && !is_delimiter(out[cut])) ++cut;
      if (cut < out.size() || eof_) break;
      if (Status s = fill(out); !s) return s.error();
    }
  }
  // Absorb the trailing delimiter run so the next fragment starts on a
  // record byte.
  for (;;) {
    while (cut < out.size() && is_delimiter(out[cut])) ++cut;
    if (cut < out.size() || eof_) break;
    if (Status s = fill(out); !s) return s.error();
  }
  carry_.assign(out, cut, out.size() - cut);
  out.resize(cut);
  next_offset_ += out.size();
  return true;
}

Result<std::uint64_t> file_size(const fs::path& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    return Error{ErrorCode::kNotFound,
                 "file_size(" + path.string() + "): " + ec.message()};
  }
  return static_cast<std::uint64_t>(size);
}

TempDir::TempDir(std::string_view tag) {
  static std::atomic<std::uint64_t> counter{0};
  const auto pid = static_cast<std::uint64_t>(::getpid());
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        fs::temp_directory_path() /
        (std::string{tag} + "-" + std::to_string(pid) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw std::runtime_error("TempDir: cannot create unique directory");
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best effort
  }
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      fs::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

}  // namespace mcsd
