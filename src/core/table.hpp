// ASCII table and CSV rendering for bench harness output.
//
// Every bench binary prints one table per paper table/figure in a stable
// column layout, so EXPERIMENTS.md can quote the output verbatim and CI
// diffs stay readable.
#pragma once

#include <string>
#include <vector>

namespace mcsd {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Monospace box rendering.
  [[nodiscard]] std::string render() const;
  /// RFC-4180-ish CSV (fields containing comma/quote/newline are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcsd
