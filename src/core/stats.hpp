// Descriptive statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mcsd {

/// Streaming mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;   ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample by linear interpolation.  `q` in [0, 1].
/// Precondition: !values.empty().  Copies and sorts internally.
double percentile(std::vector<double> values, double q);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets.  Used by the simulator's latency diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count_in(std::size_t bucket) const {
    return counts_.at(bucket);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// [lo, hi) bounds of a bucket.
  [[nodiscard]] std::pair<double, double> bucket_range(std::size_t bucket) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mcsd
