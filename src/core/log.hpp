// Minimal leveled logger.
//
// The FAM daemon and the bench harnesses run concurrently with worker
// threads, so the sink serialises writes.  Intentionally tiny: no
// formatting library, no global configuration file — a single process-wide
// level and an optional redirect for tests.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mcsd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Process-wide singleton.
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Redirects output into an internal buffer (tests) or back to stderr.
  void capture(bool enabled);
  /// Returns and clears the captured buffer.
  std::string drain_captured();

  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kWarn;
  bool capture_ = false;
  std::string captured_;
  std::mutex mutex_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: MCSD_LOG(kInfo, "fam") << "daemon started, modules=" << n;
#define MCSD_LOG(severity, component)                                     \
  if (::mcsd::Logger::instance().level() <= ::mcsd::LogLevel::severity)   \
  ::mcsd::detail::LogLine(::mcsd::LogLevel::severity, component)

}  // namespace mcsd
