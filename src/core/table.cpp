#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mcsd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table needs at least one column");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line += std::string(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += emit_row(header_);
  out += rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

std::string Table::to_csv() const {
  const auto field = [](const std::string& raw) {
    if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
    std::string quoted = "\"";
    for (char c : raw) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += ',';
      line += field(row[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = emit(header_);
  for (const auto& row : rows_) out += emit(row);
  return out;
}

}  // namespace mcsd
