// Wall-clock stopwatch for calibration and metrics.
#pragma once

#include <chrono>

namespace mcsd {

/// Monotonic stopwatch.  Started on construction; `elapsed_*` may be read
/// repeatedly; `restart` resets the origin.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_);
  }

 private:
  Clock::time_point start_;
};

}  // namespace mcsd
