// Wall-clock stopwatch for calibration and metrics.
#pragma once

#include <chrono>

#if defined(__linux__) || defined(__APPLE__)
#include <ctime>
#endif

namespace mcsd {

/// CPU seconds consumed by the calling thread so far (0.0 where the
/// platform offers no per-thread clock).  Wall time on an oversubscribed
/// host measures time-slicing, not work; per-worker CPU time is what the
/// map-phase scaling attribution compares across worker counts.
inline double thread_cpu_seconds() noexcept {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

/// Monotonic stopwatch.  Started on construction; `elapsed_*` may be read
/// repeatedly; `restart` resets the origin.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_);
  }

 private:
  Clock::time_point start_;
};

}  // namespace mcsd
