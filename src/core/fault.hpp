// Deterministic fault injection at the core/io boundary.
//
// The smartFAM channel is a single-record log file on a shared folder —
// exactly the medium where torn writes, transient EIO, lost watcher
// events, and ENOSPC silently violate the invoke→dispatch→result
// contract.  Rather than waiting for NFS to produce those faults, this
// layer injects them on purpose, scheduled deterministically from a
// seed, so the soak harness (tools/mcsd_soak) and the unit tests can
// replay the exact same fault sequence for a given plan.
//
// Model: every instrumented operation is a *site* (read_file,
// write_file_atomic, ChunkedFileReader refill, watcher change events).
// Each call at a site consumes one step of that site's counter; a
// FaultPlan maps (site, kind, step) to fire/skip either by an explicit
// step schedule ("write.torn=@3") or by a seed-hashed Bernoulli draw
// ("read.eio=0.05").  Decisions depend only on (seed, site, kind, step),
// so a single-threaded caller sees a fully reproducible sequence; under
// concurrency the per-site fault *sequence* is still deterministic while
// which thread absorbs each fault follows the scheduler.
//
// The injector is process-global but dormant by default: when no plan is
// installed the per-site hook is a single relaxed atomic load.  Install
// via FaultScope (tests, soak) or fault::install_from_env (tools, env
// var MCSD_FAULTS).  Injections are counted internally (for soak
// reports) and mirrored into obs counters (`fault.injected_*`) through a
// sink the obs layer registers — core itself never links obs.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"

namespace mcsd::fault {

/// Instrumented operations.
enum class Site : std::uint8_t {
  kReadFile,      ///< core/io read_file
  kWriteFile,     ///< core/io write_file_atomic
  kRefill,        ///< ChunkedFileReader buffer refill
  kWatchEvent,    ///< fam watcher change-event delivery
  kStorageRead,   ///< storage buffer pool page load (pread)
  kStorageWrite,  ///< storage buffer pool dirty-page write-back (pwrite)
};
inline constexpr std::size_t kSiteCount = 6;

/// What goes wrong.  Not every kind applies to every site; FaultPlan
/// parsing rejects impossible pairs.
enum class Kind : std::uint8_t {
  kNone = 0,
  kEio,            ///< operation fails with kIoError (read/write/refill)
  kTorn,           ///< silent truncation: read returns / write lands a prefix
  kShortWrite,     ///< write lands a prefix *and* reports kIoError
  kEnospc,         ///< write fails with an ENOSPC-style kIoError
  kDelayedRename,  ///< atomic-replace rename stalls, then succeeds
  kSuppressEvent,  ///< watcher change event is dropped
};
inline constexpr std::size_t kKindCount = 7;

[[nodiscard]] std::string_view to_string(Site site) noexcept;
[[nodiscard]] std::string_view to_string(Kind kind) noexcept;

/// One scheduling rule: fire `kind` at `site` either on the explicit
/// 1-based `steps` or with `probability` per step (steps win when set).
struct Rule {
  Site site = Site::kReadFile;
  Kind kind = Kind::kNone;
  double probability = 0.0;
  std::vector<std::uint64_t> steps;
};

/// The outcome of a site hook: what to inject (kNone = nothing) plus a
/// deterministic entropy word the site uses for secondary choices (e.g.
/// where to truncate a torn write).
struct Decision {
  Kind kind = Kind::kNone;
  std::uint64_t entropy = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Stall applied by kDelayedRename.
  std::chrono::milliseconds rename_delay{5};
  /// When non-empty, only paths matching the filter are faulted (and
  /// only they consume site steps) — lets a soak target the log folder
  /// while leaving unrelated I/O clean.  The filter is one or more
  /// '|'-separated substring alternatives ("echo.log|shards/"), so a
  /// plan aimed at the sharded mailbox channel can cover every
  /// `shards/shard-<k>.log` and `replies/client-<id>.log` with one
  /// entry instead of naming each file.  '|' rather than ',' because
  /// commas double as record separators in inline specs.
  std::string path_filter;

  /// True when `path` passes the filter (empty filter passes all).
  [[nodiscard]] bool path_matches(std::string_view path) const noexcept;
  std::vector<Rule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }

  /// Parses a plan from key=value records.  Keys:
  ///   seed=<u64>  rename_delay_ms=<int>  path_filter=<substring>
  ///   <site>.<kind>=<probability in [0,1]> | @s1[+s2...]   (1-based steps)
  /// Sites: read write refill watch sread swrite.  Kinds: eio torn short
  /// enospc delay suppress.  Unknown keys or impossible site/kind pairs
  /// error.
  static Result<FaultPlan> from_config(const KeyValueMap& config);

  /// Convenience: "none"/"" (empty plan), "default" (the standard soak
  /// mix), or an inline comma- or newline-separated key=value spec.
  static Result<FaultPlan> from_spec(std::string_view spec);

  /// The standard soak mix: a few percent of EIO/torn/short/ENOSPC on
  /// the io sites, delayed renames, and ~10% suppressed watch events.
  static FaultPlan default_plan(std::uint64_t seed);
};

/// Process-global injector.  install()/uninstall() reset step counters
/// and injection tallies, so every installed plan replays from step 1.
class Injector {
 public:
  static Injector& instance();

  void install(FaultPlan plan);
  void uninstall();

  /// Fast dormancy check — one relaxed load, no plan access.
  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Consumes one step at `site` (when the path passes the filter) and
  /// returns what, if anything, to inject.
  Decision decide(Site site, std::string_view path);

  [[nodiscard]] std::chrono::milliseconds rename_delay() const;

  /// Injection tallies since the last install().
  [[nodiscard]] std::uint64_t injected(Site site, Kind kind) const;
  [[nodiscard]] std::uint64_t total_injected() const;
  /// All non-zero tallies as `fault.injected_<site>_<kind>=<n>` entries.
  [[nodiscard]] KeyValueMap injected_report() const;

 private:
  Injector() = default;

  mutable std::mutex mutex_;  ///< guards plan_
  std::shared_ptr<const FaultPlan> plan_;
  std::atomic<bool> active_{false};
  std::array<std::atomic<std::uint64_t>, kSiteCount> steps_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount * kKindCount> injected_{};
};

/// Site hook used by the instrumented code paths: free when dormant.
inline Decision check(Site site, std::string_view path) {
  Injector& injector = Injector::instance();
  if (!injector.active()) return {};
  return injector.decide(site, path);
}

/// Observer the obs layer registers so injections surface as
/// `fault.injected_*` counters without core depending on obs.
using Sink = void (*)(Site site, Kind kind);
void set_injection_sink(Sink sink) noexcept;

/// RAII plan installation for tests and the soak harness.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) {
    Injector::instance().install(std::move(plan));
  }
  ~FaultScope() { Injector::instance().uninstall(); }

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

/// Installs a plan from the MCSD_FAULTS environment variable (an inline
/// spec, or a path to a key=value file).  No-op when unset; an invalid
/// spec is an error so a typo'd plan never silently runs fault-free.
Status install_from_env();

}  // namespace mcsd::fault
