// Result<T> / Status: lightweight expected-style error handling.
//
// McSD components that cross process or machine boundaries (the FAM
// protocol, file I/O, the out-of-core driver) report failures as values
// rather than exceptions, so callers on the daemon dispatch path can log
// and continue without unwinding the event loop.  Purely in-process
// programming errors still throw (std::logic_error and friends).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mcsd {

/// Coarse error taxonomy shared by every McSD subsystem.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< file / module / key missing
  kOutOfMemory,       ///< exceeded a *modelled* memory budget (not malloc failure)
  kIoError,           ///< filesystem or transport failure
  kProtocolError,     ///< FAM log-file framing violated
  kTimeout,           ///< wait deadline expired
  kUnavailable,       ///< resource busy / daemon not running
  kInternal,          ///< invariant broken; a bug
};

/// Human-readable name for an ErrorCode (stable, used in log files).
constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfMemory: return "out_of_memory";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kProtocolError: return "protocol_error";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Error value: a code plus a context message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string out{mcsd::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Status: success or an Error. Use for operations with no return value.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : error_(std::in_place, code, std::move(message)) {}
  explicit Status(Error error) : error_(std::move(error)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] ErrorCode code() const noexcept {
    return error_ ? error_->code() : ErrorCode::kOk;
  }

  /// Precondition: !is_ok().
  [[nodiscard]] const Error& error() const {
    if (!error_) throw std::logic_error("Status::error() on OK status");
    return *error_;
  }

  [[nodiscard]] std::string to_string() const {
    return error_ ? error_->to_string() : std::string{"ok"};
  }

 private:
  std::optional<Error> error_;
};

/// Result<T>: either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string message)
      : data_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Precondition: is_ok().
  [[nodiscard]] T& value() & {
    check();
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    check();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    check();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

  /// Precondition: !is_ok().
  [[nodiscard]] const Error& error() const {
    if (is_ok()) throw std::logic_error("Result::error() on OK result");
    return std::get<Error>(data_);
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : Status{std::get<Error>(data_)};
  }

 private:
  void check() const {
    if (!is_ok()) {
      throw std::runtime_error("Result::value() on error: " +
                               std::get<Error>(data_).to_string());
    }
  }

  std::variant<T, Error> data_;
};

}  // namespace mcsd
