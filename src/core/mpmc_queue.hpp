// Bounded multi-producer multi-consumer queue.
//
// Mutex + two condition variables.  Lock-free variants buy nothing for
// McSD's usage: queue operations bracket map tasks that each run for
// milliseconds, so queue overhead is noise.  Clarity and provable
// correctness win (Core Guidelines CP.20 ff.).
//
// Storage is a ring buffer over raw slots rather than a std::deque: a
// bounded queue allocates its capacity once at construction and never
// again, and an unbounded queue grows geometrically — so steady-state
// push/pop (the thread pool's task dispatch) touches the allocator not at
// all.  T needs to be movable, but not default-constructible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace mcsd {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` == 0 means unbounded.  Bounded queues reserve their full
  /// capacity up front.
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {
    if (capacity_ != 0) grow_to(capacity_);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  ~MpmcQueue() {
    while (count_ != 0) pop_slot();
    if (slots_ != nullptr) {
      std::allocator<T>{}.deallocate(slots_, slot_count_);
    }
  }

  /// Blocks while full.  Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    push_slot(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push.  Returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock{mutex_};
      if (closed_ || full_locked()) return false;
      push_slot(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return closed_ || count_ != 0; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    std::optional<T> item{pop_slot()};
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock{mutex_};
      if (count_ == 0) return std::nullopt;
      out.emplace(pop_slot());
    }
    not_full_.notify_one();
    return out;
  }

  /// After close(), pushes fail and pops drain the remaining items.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return count_;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  [[nodiscard]] bool full_locked() const {
    return capacity_ != 0 && count_ >= capacity_;
  }

  /// Constructs `item` in the tail slot; grows first when the ring is at
  /// (unbounded) capacity.  Caller holds the lock and has checked bounds.
  void push_slot(T&& item) {
    if (count_ == slot_count_) grow_to(slot_count_ < 8 ? 16 : slot_count_ * 2);
    std::construct_at(slots_ + (head_ + count_) % slot_count_,
                      std::move(item));
    ++count_;
  }

  /// Moves the head item out and destroys its slot.  Caller holds the
  /// lock (or is the destructor) and has checked count_ != 0.
  T pop_slot() {
    T* slot = slots_ + head_;
    T item{std::move(*slot)};
    std::destroy_at(slot);
    head_ = (head_ + 1) % slot_count_;
    --count_;
    return item;
  }

  void grow_to(std::size_t new_count) {
    T* bigger = std::allocator<T>{}.allocate(new_count);
    for (std::size_t i = 0; i < count_; ++i) {
      T* src = slots_ + (head_ + i) % slot_count_;
      std::construct_at(bigger + i, std::move(*src));
      std::destroy_at(src);
    }
    if (slots_ != nullptr) {
      std::allocator<T>{}.deallocate(slots_, slot_count_);
    }
    slots_ = bigger;
    slot_count_ = new_count;
    head_ = 0;
  }

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  T* slots_ = nullptr;            ///< ring storage, raw slots
  std::size_t slot_count_ = 0;    ///< allocated slots (>= count_)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace mcsd
