// Bounded multi-producer multi-consumer queue.
//
// Mutex + two condition variables.  Lock-free variants buy nothing for
// McSD's usage: queue operations bracket map tasks that each run for
// milliseconds, so queue overhead is noise.  Clarity and provable
// correctness win (Core Guidelines CP.20 ff.).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mcsd {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while full.  Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push.  Returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock{mutex_};
      if (closed_ || full_locked()) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock{mutex_};
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// After close(), pushes fail and pops drain the remaining items.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  [[nodiscard]] bool full_locked() const {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mcsd
