#include "core/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/random.hpp"

namespace mcsd::fault {

namespace {

std::atomic<Sink> g_sink{nullptr};

/// Deterministic per-decision draw: depends only on (seed, site, kind,
/// step), never on thread identity or wall time.
std::uint64_t mix(std::uint64_t seed, Site site, Kind kind,
                  std::uint64_t step) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(site) << 8) | static_cast<std::uint64_t>(kind);
  SplitMix64 sm{seed ^ (key * 0xBF58476D1CE4E5B9ULL) ^
                (step * 0x94D049BB133111EBULL)};
  return sm.next();
}

double unit_interval(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::size_t tally_index(Site site, Kind kind) {
  return static_cast<std::size_t>(site) * kKindCount +
         static_cast<std::size_t>(kind);
}

struct SiteKindName {
  std::string_view token;  ///< config-key token ("eio", "torn", ...)
  Kind kind;
};

constexpr SiteKindName kReadKinds[] = {{"eio", Kind::kEio},
                                       {"torn", Kind::kTorn}};
constexpr SiteKindName kWriteKinds[] = {{"eio", Kind::kEio},
                                        {"torn", Kind::kTorn},
                                        {"short", Kind::kShortWrite},
                                        {"enospc", Kind::kEnospc},
                                        {"delay", Kind::kDelayedRename}};
constexpr SiteKindName kRefillKinds[] = {{"eio", Kind::kEio}};
constexpr SiteKindName kWatchKinds[] = {{"suppress", Kind::kSuppressEvent}};
constexpr SiteKindName kStorageReadKinds[] = {{"eio", Kind::kEio}};
constexpr SiteKindName kStorageWriteKinds[] = {{"eio", Kind::kEio},
                                               {"enospc", Kind::kEnospc}};

struct SiteTable {
  std::string_view token;
  Site site;
  const SiteKindName* kinds;
  std::size_t kind_count;
};

constexpr SiteTable kSites[] = {
    {"read", Site::kReadFile, kReadKinds, std::size(kReadKinds)},
    {"write", Site::kWriteFile, kWriteKinds, std::size(kWriteKinds)},
    {"refill", Site::kRefill, kRefillKinds, std::size(kRefillKinds)},
    {"watch", Site::kWatchEvent, kWatchKinds, std::size(kWatchKinds)},
    {"sread", Site::kStorageRead, kStorageReadKinds,
     std::size(kStorageReadKinds)},
    {"swrite", Site::kStorageWrite, kStorageWriteKinds,
     std::size(kStorageWriteKinds)},
};

Result<Rule> parse_rule(std::string_view key, std::string_view value) {
  const std::size_t dot = key.find('.');
  if (dot == std::string_view::npos) {
    return Error{ErrorCode::kInvalidArgument,
                 "fault rule key must be <site>.<kind>: " + std::string{key}};
  }
  const std::string_view site_token = key.substr(0, dot);
  const std::string_view kind_token = key.substr(dot + 1);

  Rule rule;
  bool matched = false;
  for (const SiteTable& site : kSites) {
    if (site.token != site_token) continue;
    for (std::size_t i = 0; i < site.kind_count; ++i) {
      if (site.kinds[i].token != kind_token) continue;
      rule.site = site.site;
      rule.kind = site.kinds[i].kind;
      matched = true;
      break;
    }
    if (!matched) {
      return Error{ErrorCode::kInvalidArgument,
                   "fault kind '" + std::string{kind_token} +
                       "' is not injectable at site '" +
                       std::string{site_token} + "'"};
    }
    break;
  }
  if (!matched) {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown fault rule key: " + std::string{key}};
  }

  if (!value.empty() && value.front() == '@') {
    // Explicit 1-based step schedule: "@3" or "@2+5+9".
    std::string_view rest = value.substr(1);
    while (!rest.empty()) {
      const std::size_t plus = rest.find('+');
      const std::string_view token =
          plus == std::string_view::npos ? rest : rest.substr(0, plus);
      rest = plus == std::string_view::npos ? std::string_view{}
                                            : rest.substr(plus + 1);
      std::uint64_t step = 0;
      for (char c : token) {
        if (c < '0' || c > '9') {
          return Error{ErrorCode::kInvalidArgument,
                       "bad step in fault schedule: " + std::string{value}};
        }
        step = step * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (step == 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault schedule steps are 1-based: " + std::string{value}};
      }
      rule.steps.push_back(step);
    }
    if (rule.steps.empty()) {
      return Error{ErrorCode::kInvalidArgument,
                   "empty fault schedule: " + std::string{key}};
    }
    return rule;
  }

  char* end = nullptr;
  const std::string owned{value};
  rule.probability = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || rule.probability < 0.0 ||
      rule.probability > 1.0) {
    return Error{ErrorCode::kInvalidArgument,
                 "fault probability must be in [0,1]: " + std::string{key} +
                     "=" + owned};
  }
  return rule;
}

}  // namespace

std::string_view to_string(Site site) noexcept {
  switch (site) {
    case Site::kReadFile: return "read";
    case Site::kWriteFile: return "write";
    case Site::kRefill: return "refill";
    case Site::kWatchEvent: return "watch";
    case Site::kStorageRead: return "sread";
    case Site::kStorageWrite: return "swrite";
  }
  return "unknown";
}

std::string_view to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kEio: return "eio";
    case Kind::kTorn: return "torn";
    case Kind::kShortWrite: return "short";
    case Kind::kEnospc: return "enospc";
    case Kind::kDelayedRename: return "delay";
    case Kind::kSuppressEvent: return "suppress";
  }
  return "unknown";
}

bool FaultPlan::path_matches(std::string_view path) const noexcept {
  if (path_filter.empty()) return true;
  std::string_view rest = path_filter;
  while (!rest.empty()) {
    const std::size_t bar = rest.find('|');
    const std::string_view alternative =
        bar == std::string_view::npos ? rest : rest.substr(0, bar);
    rest = bar == std::string_view::npos ? std::string_view{}
                                         : rest.substr(bar + 1);
    if (!alternative.empty() &&
        path.find(alternative) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

Result<FaultPlan> FaultPlan::from_config(const KeyValueMap& config) {
  FaultPlan plan;
  for (const auto& [key, value] : config.entries()) {
    if (key == "seed") {
      auto seed = config.get_uint(key);
      if (!seed) return seed.error();
      plan.seed = seed.value();
    } else if (key == "rename_delay_ms") {
      auto ms = config.get_int(key);
      if (!ms) return ms.error();
      if (ms.value() < 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "rename_delay_ms must be >= 0"};
      }
      plan.rename_delay = std::chrono::milliseconds{ms.value()};
    } else if (key == "path_filter") {
      plan.path_filter = value;
    } else {
      auto rule = parse_rule(key, value);
      if (!rule) return rule.error();
      plan.rules.push_back(std::move(rule).value());
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::from_spec(std::string_view spec) {
  if (spec.empty() || spec == "none") return FaultPlan{};
  if (spec == "default") return default_plan(1);
  // Inline spec: commas double as record separators so a plan fits in
  // one CLI argument / env var.
  std::string text{spec};
  std::replace(text.begin(), text.end(), ',', '\n');
  auto parsed = KeyValueMap::parse(text);
  if (!parsed) return parsed.error();
  return from_config(parsed.value());
}

FaultPlan FaultPlan::default_plan(std::uint64_t seed) {
  const auto parsed = from_spec(
      "read.eio=0.03,read.torn=0.03,"
      "write.eio=0.03,write.torn=0.03,write.short=0.02,write.enospc=0.01,"
      "write.delay=0.05,refill.eio=0.05,watch.suppress=0.10,"
      "sread.eio=0.04,swrite.eio=0.02,swrite.enospc=0.01,"
      "rename_delay_ms=5");
  FaultPlan plan = parsed.value();  // the literal above must parse
  plan.seed = seed;
  return plan;
}

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

void Injector::install(FaultPlan plan) {
  std::lock_guard lock{mutex_};
  for (auto& step : steps_) step.store(0, std::memory_order_relaxed);
  for (auto& count : injected_) count.store(0, std::memory_order_relaxed);
  const bool live = !plan.empty();
  plan_ = std::make_shared<const FaultPlan>(std::move(plan));
  active_.store(live, std::memory_order_release);
}

void Injector::uninstall() {
  std::lock_guard lock{mutex_};
  active_.store(false, std::memory_order_release);
  plan_.reset();
}

Decision Injector::decide(Site site, std::string_view path) {
  std::shared_ptr<const FaultPlan> plan;
  {
    std::lock_guard lock{mutex_};
    plan = plan_;
  }
  if (!plan || plan->empty()) return {};
  if (!plan->path_matches(path)) {
    // Filtered paths do not consume steps: the targeted site's fault
    // sequence stays aligned no matter how much unrelated I/O runs.
    return {};
  }
  const std::uint64_t step =
      steps_[static_cast<std::size_t>(site)].fetch_add(
          1, std::memory_order_relaxed) +
      1;  // 1-based, matching the "@step" schedule syntax

  for (const Rule& rule : plan->rules) {
    if (rule.site != site) continue;
    bool fire = false;
    if (!rule.steps.empty()) {
      fire = std::find(rule.steps.begin(), rule.steps.end(), step) !=
             rule.steps.end();
    } else if (rule.probability > 0.0) {
      fire = unit_interval(mix(plan->seed, site, rule.kind, step)) <
             rule.probability;
    }
    if (!fire) continue;

    injected_[tally_index(site, rule.kind)].fetch_add(
        1, std::memory_order_relaxed);
    if (Sink sink = g_sink.load(std::memory_order_acquire)) {
      sink(site, rule.kind);
    }
    // Second draw: independent entropy for the site's secondary choice
    // (truncation point of a torn write, etc.).
    return Decision{rule.kind, mix(plan->seed ^ 0xD1B54A32D192ED03ULL, site,
                                   rule.kind, step)};
  }
  return {};
}

std::chrono::milliseconds Injector::rename_delay() const {
  std::lock_guard lock{mutex_};
  return plan_ ? plan_->rename_delay : std::chrono::milliseconds{0};
}

std::uint64_t Injector::injected(Site site, Kind kind) const {
  return injected_[tally_index(site, kind)].load(std::memory_order_relaxed);
}

std::uint64_t Injector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

KeyValueMap Injector::injected_report() const {
  KeyValueMap report;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    for (std::size_t k = 0; k < kKindCount; ++k) {
      const auto count = injected_[s * kKindCount + k].load(
          std::memory_order_relaxed);
      if (count == 0) continue;
      report.set_uint("fault.injected_" +
                          std::string{to_string(static_cast<Site>(s))} + "_" +
                          std::string{to_string(static_cast<Kind>(k))},
                      count);
    }
  }
  return report;
}

void set_injection_sink(Sink sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

Status install_from_env() {
  const char* spec = std::getenv("MCSD_FAULTS");
  if (spec == nullptr || *spec == '\0') return Status::ok();

  std::string text{spec};
  if (std::filesystem::exists(text)) {
    std::ifstream in{text};
    std::ostringstream contents;
    contents << in.rdbuf();
    if (!in) {
      return Status{ErrorCode::kIoError, "cannot read MCSD_FAULTS file " + text};
    }
    text = contents.str();
  }
  auto plan = FaultPlan::from_spec(text);
  if (!plan) {
    return Status{plan.error().code(),
                  "MCSD_FAULTS: " + plan.error().message()};
  }
  Injector::instance().install(std::move(plan).value());
  return Status::ok();
}

}  // namespace mcsd::fault
