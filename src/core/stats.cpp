#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mcsd {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("percentile of empty sample");
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram needs hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::pair<double, double> Histogram::bucket_range(std::size_t bucket) const {
  if (bucket >= counts_.size()) {
    throw std::out_of_range("Histogram bucket index");
  }
  const double lo = lo_ + width_ * static_cast<double>(bucket);
  return {lo, lo + width_};
}

}  // namespace mcsd
