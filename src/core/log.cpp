#include "core/log.hpp"

#include <cstdio>

namespace mcsd {

namespace {
constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::capture(bool enabled) {
  std::lock_guard lock{mutex_};
  capture_ = enabled;
  if (!enabled) captured_.clear();
}

std::string Logger::drain_captured() {
  std::lock_guard lock{mutex_};
  std::string out = std::move(captured_);
  captured_.clear();
  return out;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (level < level_) return;
  std::lock_guard lock{mutex_};
  if (capture_) {
    captured_ += '[';
    captured_ += level_name(level);
    captured_ += "] ";
    captured_ += component;
    captured_ += ": ";
    captured_ += message;
    captured_ += '\n';
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(level).size()), level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mcsd
