#include "core/units.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mcsd {

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  const auto emit = [&](double v, const char* unit) {
    // Integral mantissas print without a fraction ("500M"); otherwise two
    // decimals at most, trimmed ("1.25G").
    if (v == std::floor(v)) {
      std::snprintf(buf, sizeof buf, "%.0f%s", v, unit);
    } else {
      std::snprintf(buf, sizeof buf, "%.2f%s", v, unit);
      // trim trailing zero: "1.50G" -> "1.5G"
      std::string s{buf};
      const auto unit_len = std::string_view{unit}.size();
      while (s.size() > unit_len + 1 && s[s.size() - unit_len - 1] == '0' &&
             s[s.size() - unit_len - 2] != '.') {
        s.erase(s.size() - unit_len - 1, 1);
      }
      return s;
    }
    return std::string{buf};
  };
  if (bytes >= kGiB) return emit(static_cast<double>(bytes) / static_cast<double>(kGiB), "G");
  if (bytes >= kMiB) return emit(static_cast<double>(bytes) / static_cast<double>(kMiB), "M");
  if (bytes >= kKiB) return emit(static_cast<double>(bytes) / static_cast<double>(kKiB), "K");
  return emit(static_cast<double>(bytes), "B");
}

Result<std::uint64_t> parse_bytes(std::string_view text) {
  if (text.empty()) {
    return Error{ErrorCode::kInvalidArgument, "empty size string"};
  }
  // Parse the numeric prefix.
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value < 0.0) {
    return Error{ErrorCode::kInvalidArgument,
                 "bad size string: " + std::string{text}};
  }
  std::string_view suffix = text.substr(static_cast<std::size_t>(ptr - begin));
  // Normalise suffix: strip optional trailing "b"/"B" and "i".
  std::string norm;
  for (char c : suffix) {
    norm.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (!norm.empty() && norm.back() == 'b') norm.pop_back();
  if (!norm.empty() && norm.back() == 'i') norm.pop_back();
  std::uint64_t multiplier = 1;
  if (norm.empty()) {
    multiplier = 1;
  } else if (norm == "k") {
    multiplier = kKiB;
  } else if (norm == "m") {
    multiplier = kMiB;
  } else if (norm == "g") {
    multiplier = kGiB;
  } else {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown size suffix: " + std::string{text}};
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(multiplier));
}

}  // namespace mcsd
