#include "core/strings.hpp"

#include <cctype>

namespace mcsd {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

void to_lower_ascii(std::string_view text, std::vector<char>& out) {
  out.resize(text.size());
  const char* src = text.data();
  char* dst = out.data();
  std::size_t i = 0;
  const std::size_t n = text.size();
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t block = swar::load8(src + i);
    const std::uint64_t upper =
        swar::in_range7(block & ~swar::kHigh, 'A', 'Z') & ~(block & swar::kHigh);
    // The classification bit is 0x80 per uppercase lane; >> 2 turns it
    // into the 0x20 case bit.
    const std::uint64_t lowered = block | (upper >> 2);
    std::memcpy(dst + i, &lowered, sizeof(lowered));
  }
  for (; i < n; ++i) {
    const char c = src[i];
    dst[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 0x20) : c;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace mcsd
