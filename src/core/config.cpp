#include "core/config.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "core/strings.hpp"

namespace mcsd {

namespace {
constexpr char kHexDigits[] = "0123456789ABCDEF";

bool needs_escape(char c) {
  return c == '%' || c == '\n' || c == '\r' || c == '=';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool valid_key(std::string_view key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (c == '=' || c == '%' ||
        std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string escape_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (needs_escape(c)) {
      out.push_back('%');
      out.push_back(kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(kHexDigits[static_cast<unsigned char>(c) & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> unescape_value(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      return Error{ErrorCode::kProtocolError, "truncated %-escape"};
    }
    const int hi = hex_value(escaped[i + 1]);
    const int lo = hex_value(escaped[i + 2]);
    if (hi < 0 || lo < 0) {
      return Error{ErrorCode::kProtocolError, "bad %-escape digits"};
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

Result<KeyValueMap> KeyValueMap::parse(std::string_view text) {
  KeyValueMap map;
  std::size_t line_no = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_no;
    // CRLF tolerance for hand-edited files; embedded '\r' in values is
    // %-escaped, so a trailing raw '\r' can only be a line ending.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (trim(line).empty() || trim(line).front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Error{ErrorCode::kProtocolError,
                   "line " + std::to_string(line_no) + ": missing '='"};
    }
    // The key tolerates surrounding whitespace (hand-written files); the
    // value is verbatim so any byte string round-trips through escaping.
    std::string_view key = trim(line.substr(0, eq));
    if (!valid_key(key)) {
      return Error{ErrorCode::kProtocolError,
                   "line " + std::to_string(line_no) + ": bad key"};
    }
    auto value = unescape_value(line.substr(eq + 1));
    if (!value) return value.error();
    map.entries_[std::string{key}] = std::move(value).value();
  }
  return map;
}

std::string KeyValueMap::serialize() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += '=';
    out += escape_value(value);
    out += '\n';
  }
  return out;
}

void KeyValueMap::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

void KeyValueMap::set_int(std::string key, std::int64_t value) {
  set(std::move(key), std::to_string(value));
}

void KeyValueMap::set_uint(std::string key, std::uint64_t value) {
  set(std::move(key), std::to_string(value));
}

void KeyValueMap::set_double(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  set(std::move(key), buf);
}

void KeyValueMap::set_bool(std::string key, bool value) {
  set(std::move(key), value ? "true" : "false");
}

bool KeyValueMap::contains(std::string_view key) const {
  return entries_.find(std::string{key}) != entries_.end();
}

std::optional<std::string> KeyValueMap::get(std::string_view key) const {
  const auto it = entries_.find(std::string{key});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Result<std::int64_t> KeyValueMap::get_int(std::string_view key) const {
  const auto raw = get(key);
  if (!raw) return Error{ErrorCode::kNotFound, "missing key " + std::string{key}};
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    return Error{ErrorCode::kProtocolError,
                 "key " + std::string{key} + " is not an integer: " + *raw};
  }
  return value;
}

Result<std::uint64_t> KeyValueMap::get_uint(std::string_view key) const {
  const auto raw = get(key);
  if (!raw) return Error{ErrorCode::kNotFound, "missing key " + std::string{key}};
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    return Error{ErrorCode::kProtocolError,
                 "key " + std::string{key} + " is not a uint: " + *raw};
  }
  return value;
}

Result<double> KeyValueMap::get_double(std::string_view key) const {
  const auto raw = get(key);
  if (!raw) return Error{ErrorCode::kNotFound, "missing key " + std::string{key}};
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    return Error{ErrorCode::kProtocolError,
                 "key " + std::string{key} + " is not a double: " + *raw};
  }
  return value;
}

Result<bool> KeyValueMap::get_bool(std::string_view key) const {
  const auto raw = get(key);
  if (!raw) return Error{ErrorCode::kNotFound, "missing key " + std::string{key}};
  if (*raw == "true" || *raw == "1") return true;
  if (*raw == "false" || *raw == "0") return false;
  return Error{ErrorCode::kProtocolError,
               "key " + std::string{key} + " is not a bool: " + *raw};
}

std::string KeyValueMap::get_or(std::string_view key,
                                std::string_view fallback) const {
  const auto raw = get(key);
  return raw ? *raw : std::string{fallback};
}

std::int64_t KeyValueMap::get_int_or(std::string_view key,
                                     std::int64_t fallback) const {
  const auto result = get_int(key);
  if (result.is_ok()) return result.value();
  return result.error().code() == ErrorCode::kNotFound
             ? fallback
             : throw std::runtime_error(result.error().to_string());
}

}  // namespace mcsd
