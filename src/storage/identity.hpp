// On-disk file identity: the (inode, mtime_ns, size) triple the storage
// tier already uses to revalidate cached pages (BufferManager::open_file
// drops stale frames when it changes).
//
// Exposed as its own header because the identity doubles as the input
// *fingerprint* of the daemon's result cache (src/cache/): a module
// invocation over an unchanged file can be answered from the cache, and
// any rewrite — new inode from an atomic rename, newer mtime, different
// size — changes the fingerprint and thereby invalidates every cached
// result derived from the old bytes, without re-hashing the corpus.
#pragma once

#include <cstdint>
#include <filesystem>

#include "core/result.hpp"

namespace mcsd::storage {

struct FileIdentity {
  std::uint64_t inode = 0;
  std::uint64_t mtime_ns = 0;
  std::uint64_t size = 0;

  bool operator==(const FileIdentity&) const = default;

  /// Mixes the triple into one 64-bit digest (splitmix-style finalising
  /// of each word).  Not cryptographic — it only needs to change when
  /// the identity changes, which the triple already guarantees up to
  /// 64-bit collisions.
  [[nodiscard]] std::uint64_t digest() const noexcept {
    const auto mix = [](std::uint64_t h, std::uint64_t v) noexcept {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return h ^ (h >> 27);
    };
    std::uint64_t h = 0x243F6A8885A308D3ULL;
    h = mix(h, inode);
    h = mix(h, mtime_ns);
    h = mix(h, size);
    return h;
  }
};

/// Identity of an open descriptor (zeros if fstat fails).
FileIdentity identity_of_fd(int fd) noexcept;

/// Identity of a path; kNotFound / kIoError when it cannot be stat'ed.
Result<FileIdentity> file_identity(const std::filesystem::path& path);

}  // namespace mcsd::storage
