#include "storage/identity.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

namespace mcsd::storage {

namespace {

FileIdentity from_stat(const struct stat& st) noexcept {
  FileIdentity id;
  id.inode = static_cast<std::uint64_t>(st.st_ino);
  id.mtime_ns = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ULL +
                static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  id.size = static_cast<std::uint64_t>(st.st_size);
  return id;
}

}  // namespace

FileIdentity identity_of_fd(int fd) noexcept {
  struct stat st{};
  if (::fstat(fd, &st) != 0) return FileIdentity{};
  return from_stat(st);
}

Result<FileIdentity> file_identity(const std::filesystem::path& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    const int err = errno;
    return Error{err == ENOENT ? ErrorCode::kNotFound : ErrorCode::kIoError,
                 "cannot stat " + path.string() + ": " + std::strerror(err)};
  }
  return from_stat(st);
}

}  // namespace mcsd::storage
