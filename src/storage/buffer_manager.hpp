// The mcsd buffer manager: a fixed pool of page-aligned frames under the
// partition layer (ROADMAP item 3).
//
// The out-of-core path used to stream fragments through a throwaway
// 2-slot prefetcher and forget every byte between runs; a smart-storage
// node re-serving the same corpus re-paid full disk I/O per invocation.
// This pool is the fix: file pages live in pinned-frame DRAM, survive
// across module invocations (the FAM daemon owns a long-lived instance),
// and are replaced by a workload-aware CLOCK sweep.
//
// Shape (after ScaleStore's buffer manager, scaled down to one node):
//   * a fixed frame pool, page-aligned, sized at construction;
//   * a page table (file_id, page_no) -> frame;
//   * RAII pin/unpin FrameGuards — a pinned frame is never evicted and
//     never moves, so guard.bytes() stays valid without copies;
//   * an async read backend: pin() and prefetch() enqueue loads to
//     background I/O threads and completion is signalled per frame, so
//     read-ahead overlaps compute without a per-consumer thread;
//   * a write-back path for spill data: dirty frames are flushed before
//     reuse (pwrite at eviction), with flush() for durability points;
//   * CLOCK eviction honouring pin counts, plus a scan-resistant
//     sequential hint (see AccessHint).
//
// Fault injection: page loads check fault::Site::kStorageRead and dirty
// write-back checks kStorageWrite; transient injections are retried
// (kLoadAttempts / kWriteAttempts) so a soak under the default plan
// still produces byte-identical output.
//
// Thread safety: every public method is safe to call from any thread.
// One mutex guards the page table, frame states, and the CLOCK hand; pin
// counts are atomics so unpin (the hottest call) stays lock-free.  Frame
// *contents* follow the pin: concurrent read pins may share a page, but
// at most one writer (pin_write / mark_dirty) per page at a time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/mpmc_queue.hpp"
#include "core/result.hpp"
#include "storage/page.hpp"

namespace mcsd::storage {

class BufferManager;
class FrameGuard;

struct PoolOptions {
  /// Frame (page) size.  Matches ChunkedFileReader's default read
  /// granularity so one refill is one page.
  std::size_t frame_bytes = 256 * 1024;

  /// Total pool capacity; rounded down to whole frames (at least one).
  std::size_t pool_bytes = 64ull << 20;

  /// Background read threads feeding the pool.
  std::size_t io_threads = 2;
};

/// Monotonic pool statistics.  hits = pins served without initiating
/// disk I/O (resident or already in flight); misses = page loads
/// enqueued, whether pin- or prefetch-initiated — so a fully warm run
/// scores hit_rate() 1.0 and a cold one ~0.5 with read-ahead.
struct PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t resident_frames = 0;
  std::uint64_t pinned_frames = 0;
  std::uint64_t capacity_frames = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A file registered with the pool.  Holds the fd; identity (id) is
/// stable across open_file() calls while the on-disk file is unchanged,
/// which is what lets a daemon-resident pool serve warm re-runs.
class File {
 public:
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool writable() const noexcept { return writable_; }
  /// Logical size: on-disk size at registration, extended by spill
  /// writes (mark_dirty) as they land.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

 private:
  friend class BufferManager;
  File() = default;
  void note_extent(std::uint64_t end) noexcept {
    std::uint64_t cur = size_.load(std::memory_order_relaxed);
    while (cur < end &&
           !size_.compare_exchange_weak(cur, end, std::memory_order_acq_rel)) {
    }
  }

  std::uint64_t id_ = 0;
  int fd_ = -1;
  std::string path_;
  bool writable_ = false;
  std::atomic<std::uint64_t> size_{0};
  // On-disk identity at registration time, for staleness revalidation.
  std::uint64_t inode_ = 0;
  std::uint64_t mtime_ns_ = 0;
  std::uint64_t disk_size_ = 0;
};

/// RAII pin.  While alive the frame cannot be evicted and its bytes are
/// stable.  Default-constructed guards are empty.
class FrameGuard {
 public:
  FrameGuard() noexcept = default;
  FrameGuard(FrameGuard&& other) noexcept
      : mgr_(other.mgr_), frame_(other.frame_) {
    other.mgr_ = nullptr;
  }
  FrameGuard& operator=(FrameGuard&& other) noexcept {
    if (this != &other) {
      release();
      mgr_ = other.mgr_;
      frame_ = other.frame_;
      other.mgr_ = nullptr;
    }
    return *this;
  }
  ~FrameGuard() { release(); }

  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

  [[nodiscard]] explicit operator bool() const noexcept {
    return mgr_ != nullptr;
  }

  /// The valid bytes of the page (file data, or spill data written so
  /// far).  Stable until release().
  [[nodiscard]] std::string_view bytes() const noexcept;

  /// Raw frame storage (capacity() bytes) for spill writers.
  [[nodiscard]] char* data() noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Marks the page dirty with `valid_bytes` of meaningful content; the
  /// pool writes it back before the frame is reused (and on flush()).
  /// Caller contract: one writer per page at a time.
  void mark_dirty(std::size_t valid_bytes) noexcept;

  /// Unpins now (idempotent).
  void release() noexcept;

 private:
  friend class BufferManager;
  FrameGuard(BufferManager* mgr, std::uint32_t frame) noexcept
      : mgr_(mgr), frame_(frame) {}

  BufferManager* mgr_ = nullptr;
  std::uint32_t frame_ = 0;
};

class BufferManager {
 public:
  /// Load / write-back attempts per page before the error surfaces —
  /// mirrors ChunkedFileReader::kReadAttempts so injected transients
  /// never change observable output.
  static constexpr int kLoadAttempts = 4;
  static constexpr int kWriteAttempts = 4;

  explicit BufferManager(PoolOptions options = {});
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Registers `path` for reading (kNotFound if absent).  Re-opening an
  /// unchanged path returns the same File (same id — cached pages hit);
  /// a changed one (size/mtime/inode) drops its stale pages first.
  Result<std::shared_ptr<File>> open_file(const std::filesystem::path& path);

  /// Creates/truncates `path` as a writable spill target.  Any cached
  /// pages of a previous incarnation are discarded, not written back.
  Result<std::shared_ptr<File>> create_file(const std::filesystem::path& path);

  /// Pins a page, loading it (via the I/O threads) on a miss.  Blocks
  /// until the page is resident; kUnavailable when every frame stays
  /// pinned past a deadline, kIoError after kLoadAttempts failed loads.
  /// `throttle_mibps` > 0 pads the *load* to an emulated device rate —
  /// hits are never throttled (they model DRAM).
  Result<FrameGuard> pin(const std::shared_ptr<File>& file,
                         std::uint64_t page_no,
                         AccessHint hint = AccessHint::kNormal,
                         double throttle_mibps = 0.0);

  /// Pins a page of a writable file for filling, without reading disk:
  /// the frame starts zero-length and the caller appends via data() +
  /// mark_dirty().  For fresh spill pages only — prior on-disk content
  /// of the page is not loaded.
  Result<FrameGuard> pin_write(const std::shared_ptr<File>& file,
                               std::uint64_t page_no);

  /// Queues a background load if the page is absent and a frame is
  /// available without write-back or waiting; otherwise does nothing.
  void prefetch(const std::shared_ptr<File>& file, std::uint64_t page_no,
                AccessHint hint = AccessHint::kSequential,
                double throttle_mibps = 0.0);

  /// Writes back every unpinned dirty page of `file` (frames stay
  /// resident).  The durability point for spill data.
  Status flush(const std::shared_ptr<File>& file);

  /// Evicts every frame (writing dirty ones back) — a cold-start reset
  /// for A/B benchmarks.  kUnavailable if any frame is pinned.
  Status drop_cached();

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] std::size_t frame_bytes() const noexcept {
    return options_.frame_bytes;
  }
  [[nodiscard]] std::size_t capacity_frames() const noexcept {
    return frames_.size();
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return frames_.size() * options_.frame_bytes;
  }

 private:
  friend class FrameGuard;

  enum class FrameState : std::uint8_t {
    kFree,     ///< on the free list, unmapped
    kLoading,  ///< owned by an I/O thread, contents undefined
    kReady,    ///< mapped, contents valid (dirty flag may be set)
    kWriting,  ///< write-back in progress; contents valid but frame is
               ///< about to be reused — pinners wait and re-look-up
    kFailed,   ///< load failed; error holds why.  Reclaimable.
  };

  struct Frame {
    PageId page;                      // guarded by mutex_
    FrameState state = FrameState::kFree;  // guarded by mutex_
    bool dirty = false;               // guarded by mutex_ / pin ordering
    bool referenced = false;          // CLOCK bit, guarded by mutex_
    std::shared_ptr<File> file;       // set while mapped, guarded by mutex_
    std::uint32_t valid_bytes = 0;    // written before kReady / by the
                                      // (single) pinned writer
    std::atomic<std::uint32_t> pins{0};
    std::string error;                // load failure, guarded by mutex_
    char* data = nullptr;             // fixed at construction
  };

  struct IoRequest {
    std::uint32_t frame = 0;
    double throttle_mibps = 0.0;
  };

  // FrameGuard backing calls.
  void unpin(std::uint32_t frame) noexcept;
  void guard_mark_dirty(std::uint32_t frame, std::size_t valid_bytes) noexcept;
  [[nodiscard]] std::string_view frame_bytes_view(
      std::uint32_t frame) const noexcept;

  /// Takes a frame off the free list or evicts one (possibly writing it
  /// back with the lock dropped).  On return the lock is held and the
  /// frame is unmapped.  kUnavailable when everything stays pinned.
  Result<std::uint32_t> acquire_frame_locked(std::unique_lock<std::mutex>& lock,
                                             bool allow_writeback,
                                             bool allow_wait);

  /// One pwrite of a dirty frame with fault injection + retries.  Called
  /// with the lock *dropped*; the frame must be in kWriting.
  Status write_frame(const std::shared_ptr<File>& file, std::uint64_t page_no,
                     const char* data, std::size_t len);

  /// Drops every cached page of `file_id`; dirty pages are discarded.
  /// Caller holds the lock.  Returns false if any page is pinned.
  bool drop_file_pages_locked(std::uint64_t file_id);

  void io_loop();

  PoolOptions options_;
  char* pool_ = nullptr;  // page-aligned backing store for all frames
  std::vector<Frame> frames_;

  mutable std::mutex mutex_;
  std::condition_variable frame_done_;  ///< load / write-back completions
  std::unordered_map<PageId, std::uint32_t, PageIdHash> table_;
  std::vector<std::uint32_t> free_;
  std::size_t clock_hand_ = 0;

  // Stats (guarded by mutex_).
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t prefetches_ = 0;
  std::uint64_t read_retries_ = 0;
  std::uint64_t write_retries_ = 0;
  std::uint64_t read_errors_ = 0;
  std::uint64_t write_errors_ = 0;

  /// Emulated-device time cursor for throttled loads: transfer costs are
  /// serialised through this so N I/O threads still model one device.
  std::chrono::steady_clock::time_point device_free_at_{};

  // File registry (guarded by mutex_): normalised path -> File.  Holds
  // strong refs so page identity survives callers dropping theirs —
  // that persistence *is* the warm-re-run feature.  Bounded by the set
  // of distinct files a daemon serves.
  std::unordered_map<std::string, std::shared_ptr<File>> files_;
  std::uint64_t next_file_id_ = 1;

  MpmcQueue<IoRequest> requests_;
  std::vector<std::thread> io_threads_;
};

/// The process-wide default pool, built lazily on first use.  Size comes
/// from MCSD_POOL_BYTES (units accepted, e.g. "128MiB") or
/// PoolOptions{}.pool_bytes.  Tools that want isolation (benchmarks,
/// soaks) construct their own BufferManager instead.
std::shared_ptr<BufferManager> process_pool();

}  // namespace mcsd::storage
