#include "storage/file_source.hpp"

#include <algorithm>
#include <cstring>

namespace mcsd::storage {

Result<std::shared_ptr<PooledFileSource>> PooledFileSource::open(
    std::shared_ptr<BufferManager> pool, const std::filesystem::path& path,
    SourceOptions options) {
  if (!pool) {
    return Error{ErrorCode::kInvalidArgument, "PooledFileSource: null pool"};
  }
  auto file = pool->open_file(path);
  if (!file.is_ok()) return file.error();
  // Cap read-ahead so a deep request can never consume the pool: the
  // consumer's pinned page plus in-flight loads must leave room.
  options.readahead_pages =
      std::min(options.readahead_pages,
               std::max<std::size_t>(1, pool->capacity_frames() / 2) - 1);
  return std::shared_ptr<PooledFileSource>(new PooledFileSource(
      std::move(pool), std::move(file).value(), options));
}

Result<std::size_t> PooledFileSource::read_at(std::uint64_t offset, char* dst,
                                              std::size_t len) {
  const std::uint64_t file_size = file_->size();
  if (offset >= file_size || len == 0) return std::size_t{0};
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(len, file_size - offset));
  const std::size_t frame_bytes = pool_->frame_bytes();
  const std::uint64_t last_page = (file_size - 1) / frame_bytes;

  std::size_t done = 0;
  while (done < want) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t page_no = pos / frame_bytes;
    const std::size_t in_page = static_cast<std::size_t>(pos % frame_bytes);

    if (options_.readahead_pages > 0) {
      // Keep the read-ahead window queued past the last page this call
      // will touch; the pool skips pages already resident or in flight.
      const std::uint64_t end_page = (offset + want - 1) / frame_bytes;
      const std::uint64_t target =
          std::min(end_page + options_.readahead_pages, last_page);
      if (prefetch_cursor_ <= page_no) prefetch_cursor_ = page_no + 1;
      for (; prefetch_cursor_ <= target; ++prefetch_cursor_) {
        pool_->prefetch(file_, prefetch_cursor_, options_.hint,
                        options_.read_throttle_mibps);
      }
    }

    auto guard = pool_->pin(file_, page_no, options_.hint,
                            options_.read_throttle_mibps);
    if (!guard.is_ok()) return guard.error();
    const std::string_view bytes = guard.value().bytes();
    if (in_page >= bytes.size()) break;  // short page: nothing more here
    const std::size_t take = std::min(want - done, bytes.size() - in_page);
    std::memcpy(dst + done, bytes.data() + in_page, take);
    done += take;
    if (in_page + take < frame_bytes) break;  // partial page == EOF
  }
  return done;
}

std::string PooledFileSource::describe() const { return file_->path(); }

Result<SpillWriter> SpillWriter::create(std::shared_ptr<BufferManager> pool,
                                        const std::filesystem::path& path) {
  if (!pool) {
    return Error{ErrorCode::kInvalidArgument, "SpillWriter: null pool"};
  }
  auto file = pool->create_file(path);
  if (!file.is_ok()) return file.error();
  return SpillWriter{std::move(pool), std::move(file).value()};
}

Status SpillWriter::append(std::string_view bytes) {
  const std::size_t frame_bytes = pool_->frame_bytes();
  while (!bytes.empty()) {
    const std::size_t in_page = static_cast<std::size_t>(size_ % frame_bytes);
    if (!current_) {
      auto guard = pool_->pin_write(file_, size_ / frame_bytes);
      if (!guard.is_ok()) {
        return Status{guard.error().code(), guard.error().message()};
      }
      current_ = std::move(guard).value();
    }
    const std::size_t take = std::min(bytes.size(), frame_bytes - in_page);
    std::memcpy(current_.data() + in_page, bytes.data(), take);
    current_.mark_dirty(in_page + take);
    size_ += take;
    bytes.remove_prefix(take);
    if (in_page + take == frame_bytes) current_.release();
  }
  return Status::ok();
}

Status SpillWriter::finish() {
  current_.release();
  return pool_->flush(file_);
}

}  // namespace mcsd::storage
