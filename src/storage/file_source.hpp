// Pool-backed adapters between the buffer manager and the byte-stream
// world the rest of the codebase speaks.
//
//  * PooledFileSource — a core RandomAccessSource whose read_at() is
//    served from pinned frames, with configurable read-ahead queued to
//    the pool's I/O threads.  Plugged into ChunkedFileReader it replaces
//    the ad-hoc per-stream prefetch thread: overlap now comes from the
//    pool, and the pages it loads *stay* loaded for the next run.
//  * SpillWriter — append-only writer that fills pool frames and lets
//    eviction / flush() write them back: spill data transits the same
//    frames and fault sites as everything else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>

#include "core/io.hpp"
#include "core/result.hpp"
#include "storage/buffer_manager.hpp"

namespace mcsd::storage {

struct SourceOptions {
  /// Pages queued ahead of the highest page a read_at() touched.  0
  /// disables read-ahead (the serial A/B baseline).
  std::size_t readahead_pages = 0;

  /// Emulated device rate applied to page *loads* (see
  /// BufferManager::pin); hits are never throttled.
  double read_throttle_mibps = 0.0;

  /// Eviction hint for the pages this source touches.
  AccessHint hint = AccessHint::kSequential;
};

class PooledFileSource final : public RandomAccessSource {
 public:
  /// Registers `path` with `pool` (kNotFound if absent).
  static Result<std::shared_ptr<PooledFileSource>> open(
      std::shared_ptr<BufferManager> pool, const std::filesystem::path& path,
      SourceOptions options = {});

  Result<std::size_t> read_at(std::uint64_t offset, char* dst,
                              std::size_t len) override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::shared_ptr<File>& file() const noexcept {
    return file_;
  }

 private:
  PooledFileSource(std::shared_ptr<BufferManager> pool,
                   std::shared_ptr<File> file, SourceOptions options)
      : pool_(std::move(pool)), file_(std::move(file)), options_(options) {}

  std::shared_ptr<BufferManager> pool_;
  std::shared_ptr<File> file_;
  SourceOptions options_;
  std::uint64_t prefetch_cursor_ = 0;  ///< next page to queue read-ahead for
};

/// Append-only spill writer over pool frames.  Not thread-safe.  Pages
/// are pinned one at a time, filled via mark_dirty, and released at each
/// page boundary, so at most one frame is pinned per writer; finish()
/// flushes everything dirty to disk.
class SpillWriter {
 public:
  static Result<SpillWriter> create(std::shared_ptr<BufferManager> pool,
                                    const std::filesystem::path& path);

  SpillWriter(SpillWriter&&) noexcept = default;
  SpillWriter& operator=(SpillWriter&&) noexcept = default;
  ~SpillWriter() = default;  ///< dropping without finish() leaves dirty
                             ///< frames to write back lazily at eviction

  Status append(std::string_view bytes);

  /// Releases the current frame and writes every dirty page back — the
  /// durability point.
  Status finish();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return size_; }
  [[nodiscard]] const std::shared_ptr<File>& file() const noexcept {
    return file_;
  }

 private:
  SpillWriter(std::shared_ptr<BufferManager> pool, std::shared_ptr<File> file)
      : pool_(std::move(pool)), file_(std::move(file)) {}

  std::shared_ptr<BufferManager> pool_;
  std::shared_ptr<File> file_;
  FrameGuard current_;
  std::uint64_t size_ = 0;
};

}  // namespace mcsd::storage
