// Page identity for the storage buffer pool.
//
// A page is one fixed-size frame's worth of a registered file:
// (file_id, page_no) with page_no in units of the pool's frame size.
// File ids are issued by the BufferManager's file registry and remain
// stable for the life of the pool (re-opening the same unchanged path
// yields the same id — that is what makes warm re-runs hit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mcsd::storage {

struct PageId {
  std::uint64_t file_id = 0;
  std::uint64_t page_no = 0;

  [[nodiscard]] bool operator==(const PageId&) const noexcept = default;
};

struct PageIdHash {
  [[nodiscard]] std::size_t operator()(const PageId& id) const noexcept {
    // SplitMix64 finalizer over the packed pair — cheap and well mixed
    // for the sequential page_no runs a fragment scan produces.
    std::uint64_t x = id.file_id * 0x9E3779B97F4A7C15ULL + id.page_no;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// How the caller expects to touch the page; steers eviction.
enum class AccessHint : std::uint8_t {
  kNormal,      ///< may be re-referenced soon: insert with the CLOCK
                ///< reference bit set
  kSequential,  ///< one-touch scan: insert with the bit clear, so a
                ///< streaming pass recycles its own frames instead of
                ///< flushing re-referenced residents (scan resistance)
};

}  // namespace mcsd::storage
