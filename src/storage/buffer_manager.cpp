#include "storage/buffer_manager.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "core/fault.hpp"
#include "storage/identity.hpp"
#include "core/stopwatch.hpp"
#include "core/units.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace mcsd::storage {

namespace {

using std::chrono::steady_clock;

/// Pins and pool-exhaustion waits give up after this long — a wedged
/// pool surfaces as kUnavailable instead of a hang.
constexpr std::chrono::seconds kWaitDeadline{10};
/// Poll tick for waits whose wakeup (unpin) happens outside the mutex.
constexpr std::chrono::milliseconds kWaitTick{10};

std::string normalize_path(const std::filesystem::path& path) {
  std::error_code ec;
  auto abs = std::filesystem::absolute(path, ec);
  if (ec) return path.string();
  return abs.lexically_normal().string();
}

}  // namespace

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

// ---------------------------------------------------------------------------
// FrameGuard

std::string_view FrameGuard::bytes() const noexcept {
  return mgr_ == nullptr ? std::string_view{} : mgr_->frame_bytes_view(frame_);
}

char* FrameGuard::data() noexcept {
  return mgr_ == nullptr ? nullptr : mgr_->frames_[frame_].data;
}

std::size_t FrameGuard::capacity() const noexcept {
  return mgr_ == nullptr ? 0 : mgr_->options_.frame_bytes;
}

void FrameGuard::mark_dirty(std::size_t valid_bytes) noexcept {
  if (mgr_ != nullptr) mgr_->guard_mark_dirty(frame_, valid_bytes);
}

void FrameGuard::release() noexcept {
  if (mgr_ != nullptr) {
    mgr_->unpin(frame_);
    mgr_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BufferManager

BufferManager::BufferManager(PoolOptions options) : options_(options) {
  if (options_.frame_bytes == 0) options_.frame_bytes = 256 * 1024;
  if (options_.io_threads == 0) options_.io_threads = 1;
  std::size_t count = options_.pool_bytes / options_.frame_bytes;
  if (count == 0) count = 1;

  void* mem = nullptr;
  if (::posix_memalign(&mem, 4096, count * options_.frame_bytes) != 0) {
    throw std::bad_alloc{};
  }
  pool_ = static_cast<char*>(mem);

  frames_ = std::vector<Frame>(count);
  free_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    frames_[i].data = pool_ + i * options_.frame_bytes;
    // LIFO free list: hand frames out from index 0 upward so eviction
    // order (and the tests that rely on it) is deterministic.
    free_.push_back(static_cast<std::uint32_t>(count - 1 - i));
  }

  io_threads_.reserve(options_.io_threads);
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    io_threads_.emplace_back([this] { io_loop(); });
  }
}

BufferManager::~BufferManager() {
  requests_.close();
  for (auto& thread : io_threads_) {
    if (thread.joinable()) thread.join();
  }
  std::free(pool_);
}

Result<std::shared_ptr<File>> BufferManager::open_file(
    const std::filesystem::path& path) {
  const std::string key = normalize_path(path);
  const int fd = ::open(key.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Error{ErrorCode::kNotFound,
                 "cannot open " + key + ": " + std::strerror(errno)};
  }
  const FileIdentity now = identity_of_fd(fd);

  std::lock_guard lock{mutex_};
  auto it = files_.find(key);
  if (it != files_.end()) {
    File& cached = *it->second;
    if (cached.writable_) {
      // The pool is the source of truth for a spill file it wrote; the
      // registered File already sees both resident and flushed pages.
      ::close(fd);
      return it->second;
    }
    if (cached.inode_ == now.inode && cached.mtime_ns_ == now.mtime_ns &&
        cached.disk_size_ == now.size) {
      ::close(fd);
      return it->second;  // unchanged: same id, cached pages stay hot
    }
    // Replaced on disk: stale pages must not serve.
    if (!drop_file_pages_locked(cached.id_)) {
      ::close(fd);
      return Error{ErrorCode::kUnavailable,
                   "file changed on disk while pages are pinned: " + key};
    }
    files_.erase(it);
  }

  auto file = std::shared_ptr<File>(new File());
  file->id_ = next_file_id_++;
  file->fd_ = fd;
  file->path_ = key;
  file->writable_ = false;
  file->size_.store(now.size, std::memory_order_release);
  file->inode_ = now.inode;
  file->mtime_ns_ = now.mtime_ns;
  file->disk_size_ = now.size;
  files_[key] = file;
  return file;
}

Result<std::shared_ptr<File>> BufferManager::create_file(
    const std::filesystem::path& path) {
  const std::string key = normalize_path(path);
  const int fd = ::open(key.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Error{ErrorCode::kIoError,
                 "cannot create " + key + ": " + std::strerror(errno)};
  }

  std::lock_guard lock{mutex_};
  auto it = files_.find(key);
  if (it != files_.end()) {
    // Truncated: a previous incarnation's pages are garbage — discard
    // (never write back) rather than resurrect.
    if (!drop_file_pages_locked(it->second->id_)) {
      ::close(fd);
      return Error{ErrorCode::kUnavailable,
                   "spill file recreated while pages are pinned: " + key};
    }
    files_.erase(it);
  }

  auto file = std::shared_ptr<File>(new File());
  file->id_ = next_file_id_++;
  file->fd_ = fd;
  file->path_ = key;
  file->writable_ = true;
  const FileIdentity now = identity_of_fd(fd);
  file->inode_ = now.inode;
  file->mtime_ns_ = now.mtime_ns;
  file->disk_size_ = 0;
  files_[key] = file;
  return file;
}

Result<FrameGuard> BufferManager::pin(const std::shared_ptr<File>& file,
                                      std::uint64_t page_no, AccessHint hint,
                                      double throttle_mibps) {
  if (!file) {
    return Error{ErrorCode::kInvalidArgument, "pin: null file"};
  }
  const auto deadline = steady_clock::now() + kWaitDeadline;
  const PageId page{file->id(), page_no};
  int load_attempts = 0;
  bool miss_counted = false;

  std::unique_lock lock{mutex_};
  for (;;) {
    auto it = table_.find(page);
    if (it != table_.end()) {
      const std::uint32_t idx = it->second;
      Frame& frame = frames_[idx];
      switch (frame.state) {
        case FrameState::kReady: {
          if (!miss_counted) {
            ++hits_;
            MCSD_OBS_COUNT("storage.hits", 1);
            // Only a *re*-access promotes the CLOCK bit: claiming one's
            // own miss keeps the insert hint, so sequential scans stay
            // first-out while genuinely hot pages get shielded.
            frame.referenced = true;
          }
          frame.pins.fetch_add(1, std::memory_order_acq_rel);
          return FrameGuard{this, idx};
        }
        case FrameState::kLoading:
        case FrameState::kWriting: {
          if (frame_done_.wait_until(lock, deadline) ==
              std::cv_status::timeout) {
            return Error{ErrorCode::kTimeout,
                         "pin: page I/O did not complete in time for " +
                             file->path()};
          }
          continue;  // re-look-up: the frame may have been remapped
        }
        case FrameState::kFailed: {
          if (++load_attempts >= kLoadAttempts) {
            Error why{ErrorCode::kIoError, frame.error};
            if (frame.pins.load(std::memory_order_acquire) == 0) {
              // Reclaim the dead frame so a bad page can't wedge it.
              table_.erase(it);
              frame.file.reset();
              frame.state = FrameState::kFree;
              free_.push_back(idx);
            }
            return why;
          }
          // Transient (likely injected) load failure: retry in place.
          ++read_retries_;
          frame.state = FrameState::kLoading;
          lock.unlock();
          requests_.push(IoRequest{idx, throttle_mibps});
          lock.lock();
          continue;
        }
        case FrameState::kFree:
          // Defensive: a free frame must never stay mapped.
          table_.erase(it);
          continue;
      }
    }

    // Miss: take a frame, map it, and queue the load.
    auto acquired = acquire_frame_locked(lock, /*allow_writeback=*/true,
                                         /*allow_wait=*/true);
    if (!acquired.is_ok()) return acquired.error();
    if (table_.contains(page)) {
      // Someone mapped the page while the lock was dropped for a
      // write-back: give the frame straight back and use theirs.
      frames_[acquired.value()].state = FrameState::kFree;
      free_.push_back(acquired.value());
      continue;
    }
    if (!miss_counted) {
      ++misses_;
      miss_counted = true;
      MCSD_OBS_COUNT("storage.misses", 1);
    }
    const std::uint32_t idx = acquired.value();
    Frame& frame = frames_[idx];
    frame.page = page;
    frame.file = file;
    frame.state = FrameState::kLoading;
    frame.dirty = false;
    frame.referenced = hint != AccessHint::kSequential;
    frame.valid_bytes = 0;
    frame.error.clear();
    table_[page] = idx;
    lock.unlock();
    requests_.push(IoRequest{idx, throttle_mibps});
    lock.lock();
    // Loop back into the kLoading wait.
  }
}

Result<FrameGuard> BufferManager::pin_write(const std::shared_ptr<File>& file,
                                            std::uint64_t page_no) {
  if (!file || !file->writable()) {
    return Error{ErrorCode::kInvalidArgument,
                 "pin_write needs a file from create_file()"};
  }
  const auto deadline = steady_clock::now() + kWaitDeadline;
  const PageId page{file->id(), page_no};

  std::unique_lock lock{mutex_};
  for (;;) {
    auto it = table_.find(page);
    if (it != table_.end()) {
      const std::uint32_t idx = it->second;
      Frame& frame = frames_[idx];
      if (frame.state == FrameState::kReady) {
        ++hits_;
        frame.referenced = true;
        frame.pins.fetch_add(1, std::memory_order_acq_rel);
        return FrameGuard{this, idx};
      }
      if (frame.state == FrameState::kLoading ||
          frame.state == FrameState::kWriting) {
        if (frame_done_.wait_until(lock, deadline) == std::cv_status::timeout) {
          return Error{ErrorCode::kTimeout,
                       "pin_write: page I/O did not complete in time"};
        }
        continue;
      }
      // kFailed: reclaim and fall through to a fresh mapping.
      table_.erase(it);
      frame.file.reset();
      frame.state = FrameState::kFree;
      free_.push_back(idx);
      continue;
    }

    auto acquired = acquire_frame_locked(lock, /*allow_writeback=*/true,
                                         /*allow_wait=*/true);
    if (!acquired.is_ok()) return acquired.error();
    if (table_.contains(page)) {
      frames_[acquired.value()].state = FrameState::kFree;
      free_.push_back(acquired.value());
      continue;
    }
    const std::uint32_t idx = acquired.value();
    Frame& frame = frames_[idx];
    frame.page = page;
    frame.file = file;
    frame.state = FrameState::kReady;  // no read: starts zero-length
    frame.dirty = false;
    frame.referenced = true;
    frame.valid_bytes = 0;
    frame.error.clear();
    frame.pins.store(1, std::memory_order_release);
    table_[page] = idx;
    return FrameGuard{this, idx};
  }
}

void BufferManager::prefetch(const std::shared_ptr<File>& file,
                             std::uint64_t page_no, AccessHint hint,
                             double throttle_mibps) {
  if (!file) return;
  const PageId page{file->id(), page_no};
  std::uint32_t idx = 0;
  {
    std::unique_lock lock{mutex_};
    if (table_.contains(page)) return;  // resident or already in flight
    // Opportunistic only: never write back, never wait — a prefetch that
    // would stall the consumer defeats its purpose.
    auto acquired = acquire_frame_locked(lock, /*allow_writeback=*/false,
                                         /*allow_wait=*/false);
    if (!acquired.is_ok()) return;
    idx = acquired.value();
    Frame& frame = frames_[idx];
    frame.page = page;
    frame.file = file;
    frame.state = FrameState::kLoading;
    frame.dirty = false;
    frame.referenced = hint != AccessHint::kSequential;
    frame.valid_bytes = 0;
    frame.error.clear();
    table_[page] = idx;
    ++misses_;  // a prefetch *is* the I/O initiation for this page
    ++prefetches_;
  }
  MCSD_OBS_COUNT("storage.prefetches", 1);
  requests_.push(IoRequest{idx, throttle_mibps});
}

Status BufferManager::flush(const std::shared_ptr<File>& file) {
  if (!file) {
    return Status{ErrorCode::kInvalidArgument, "flush: null file"};
  }
  std::unique_lock lock{mutex_};
  for (std::uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.state != FrameState::kReady) continue;
    if (frame.page.file_id != file->id()) continue;
    if (frame.pins.load(std::memory_order_acquire) != 0) continue;
    if (!frame.dirty) continue;
    frame.state = FrameState::kWriting;
    ++writebacks_;
    const std::uint64_t page_no = frame.page.page_no;
    const std::size_t len = frame.valid_bytes;
    lock.unlock();
    Status wrote = write_frame(file, page_no, frame.data, len);
    lock.lock();
    frame.state = FrameState::kReady;
    frame_done_.notify_all();
    if (!wrote.is_ok()) {
      ++write_errors_;
      return wrote;
    }
    frame.dirty = false;
  }
  return Status::ok();
}

Status BufferManager::drop_cached() {
  std::unique_lock lock{mutex_};
  const auto deadline = steady_clock::now() + kWaitDeadline;
  for (;;) {
    bool busy = false;
    for (const Frame& frame : frames_) {
      if (frame.state == FrameState::kLoading ||
          frame.state == FrameState::kWriting) {
        busy = true;
        break;
      }
    }
    if (!busy) break;
    if (steady_clock::now() > deadline) {
      return Status{ErrorCode::kTimeout, "drop_cached: I/O still in flight"};
    }
    frame_done_.wait_for(lock, kWaitTick);
  }

  std::uint64_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.state == FrameState::kReady &&
        frame.pins.load(std::memory_order_acquire) != 0) {
      ++pinned;
    }
  }
  if (pinned != 0) {
    return Status{ErrorCode::kUnavailable,
                  "drop_cached: " + std::to_string(pinned) +
                      " frame(s) still pinned"};
  }

  for (std::uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.state != FrameState::kReady &&
        frame.state != FrameState::kFailed) {
      continue;
    }
    if (frame.state == FrameState::kReady && frame.dirty) {
      frame.state = FrameState::kWriting;
      ++writebacks_;
      auto file = frame.file;
      const std::uint64_t page_no = frame.page.page_no;
      const std::size_t len = frame.valid_bytes;
      lock.unlock();
      Status wrote = write_frame(file, page_no, frame.data, len);
      lock.lock();
      frame_done_.notify_all();
      if (!wrote.is_ok()) {
        ++write_errors_;
        frame.state = FrameState::kReady;
        return wrote;
      }
      frame.dirty = false;
    }
    table_.erase(frame.page);
    frame.file.reset();
    frame.state = FrameState::kFree;
    free_.push_back(i);
    ++evictions_;
  }
  return Status::ok();
}

PoolStats BufferManager::stats() const {
  std::lock_guard lock{mutex_};
  PoolStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.writebacks = writebacks_;
  out.prefetches = prefetches_;
  out.read_retries = read_retries_;
  out.write_retries = write_retries_;
  out.read_errors = read_errors_;
  out.write_errors = write_errors_;
  out.capacity_frames = frames_.size();
  for (const Frame& frame : frames_) {
    if (frame.state == FrameState::kReady ||
        frame.state == FrameState::kLoading ||
        frame.state == FrameState::kWriting) {
      ++out.resident_frames;
    }
    if (frame.pins.load(std::memory_order_acquire) != 0) {
      ++out.pinned_frames;
    }
  }
  return out;
}

void BufferManager::unpin(std::uint32_t frame) noexcept {
  if (frames_[frame].pins.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock-free notify; acquire_frame's timed wait tick covers the
    // (benign) lost-wakeup window this leaves open.
    frame_done_.notify_all();
  }
}

void BufferManager::guard_mark_dirty(std::uint32_t frame,
                                     std::size_t valid_bytes) noexcept {
  Frame& f = frames_[frame];
  // Single writer per page (caller contract); eviction/flush only read
  // these after observing pins == 0 with acquire ordering, which the
  // unpin release pairs with.
  const auto clamped = static_cast<std::uint32_t>(
      std::min(valid_bytes, options_.frame_bytes));
  if (clamped > f.valid_bytes) f.valid_bytes = clamped;
  f.dirty = true;
  if (f.file) {
    f.file->note_extent(f.page.page_no * options_.frame_bytes + clamped);
  }
}

std::string_view BufferManager::frame_bytes_view(
    std::uint32_t frame) const noexcept {
  const Frame& f = frames_[frame];
  return std::string_view{f.data, f.valid_bytes};
}

Result<std::uint32_t> BufferManager::acquire_frame_locked(
    std::unique_lock<std::mutex>& lock, bool allow_writeback, bool allow_wait) {
  const auto deadline = steady_clock::now() + kWaitDeadline;
  for (;;) {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }

    // CLOCK sweep: up to two revolutions (the first may only clear
    // reference bits).
    const std::size_t n = frames_.size();
    for (std::size_t step = 0; step < 2 * n; ++step) {
      const auto idx = static_cast<std::uint32_t>(clock_hand_);
      Frame& frame = frames_[clock_hand_];
      clock_hand_ = (clock_hand_ + 1) % n;
      if (frame.pins.load(std::memory_order_acquire) != 0) continue;
      if (frame.state == FrameState::kFailed) {
        // A load result nobody claimed: reclaim without ceremony.
        table_.erase(frame.page);
        frame.file.reset();
        frame.state = FrameState::kFree;
        return idx;
      }
      if (frame.state != FrameState::kReady) continue;
      if (frame.referenced) {
        frame.referenced = false;
        continue;
      }
      if (!frame.dirty) {
        table_.erase(frame.page);
        frame.file.reset();
        frame.state = FrameState::kFree;
        ++evictions_;
        MCSD_OBS_COUNT("storage.evictions", 1);
        return idx;
      }
      if (!allow_writeback) continue;
      // Dirty victim: unpinned dirty frames are written back before
      // reuse.  The lock drops around the pwrite; kWriting keeps pinners
      // waiting and other sweeps away.
      frame.state = FrameState::kWriting;
      ++writebacks_;
      MCSD_OBS_COUNT("storage.writebacks", 1);
      auto file = frame.file;
      const std::uint64_t page_no = frame.page.page_no;
      const std::size_t len = frame.valid_bytes;
      lock.unlock();
      Status wrote = write_frame(file, page_no, frame.data, len);
      lock.lock();
      frame_done_.notify_all();
      if (wrote.is_ok()) {
        frame.dirty = false;
        table_.erase(frame.page);
        frame.file.reset();
        frame.state = FrameState::kFree;
        ++evictions_;
        MCSD_OBS_COUNT("storage.evictions", 1);
        return idx;
      }
      // Write-back failed for good: keep the data (it exists nowhere
      // else), shield it for a revolution, and hunt another victim.
      ++write_errors_;
      frame.state = FrameState::kReady;
      frame.referenced = true;
    }

    if (!allow_wait) {
      return Error{ErrorCode::kUnavailable,
                   "buffer pool has no evictable frame"};
    }
    if (steady_clock::now() > deadline) {
      return Error{ErrorCode::kUnavailable,
                   "buffer pool exhausted: all " +
                       std::to_string(frames_.size()) + " frames pinned"};
    }
    frame_done_.wait_for(lock, kWaitTick);
  }
}

Status BufferManager::write_frame(const std::shared_ptr<File>& file,
                                  std::uint64_t page_no, const char* data,
                                  std::size_t len) {
  MCSD_OBS_SPAN("storage", "storage.writeback");
  Stopwatch watch;
  const std::uint64_t offset = page_no * options_.frame_bytes;
  Status last = Status::ok();
  for (int attempt = 0; attempt < kWriteAttempts; ++attempt) {
    if (attempt > 0) {
      std::lock_guard lock{mutex_};
      ++write_retries_;
    }
    const fault::Decision injected =
        fault::check(fault::Site::kStorageWrite, file->path());
    if (injected.kind == fault::Kind::kEio) {
      last = Status{ErrorCode::kIoError,
                    "injected EIO writing back " + file->path()};
      continue;
    }
    if (injected.kind == fault::Kind::kEnospc) {
      last = Status{ErrorCode::kIoError,
                    "injected ENOSPC writing back " + file->path()};
      continue;
    }
    std::size_t done = 0;
    bool failed = false;
    while (done < len) {
      const ssize_t wrote =
          ::pwrite(file->fd_, data + done, len - done,
                   static_cast<off_t>(offset + done));
      if (wrote < 0) {
        if (errno == EINTR) continue;
        last = Status{ErrorCode::kIoError,
                      "pwrite failed on " + file->path() + ": " +
                          std::strerror(errno)};
        failed = true;
        break;
      }
      done += static_cast<std::size_t>(wrote);
    }
    if (!failed) {
      MCSD_OBS_HIST("storage.writeback_us", "us",
                    static_cast<std::uint64_t>(watch.elapsed_seconds() * 1e6));
      return Status::ok();
    }
  }
  return last;
}

bool BufferManager::drop_file_pages_locked(std::uint64_t file_id) {
  // First pass: refuse if anything of this file is pinned or in flight.
  for (const Frame& frame : frames_) {
    if (frame.state == FrameState::kFree) continue;
    if (frame.page.file_id != file_id) continue;
    if (frame.state != FrameState::kReady &&
        frame.state != FrameState::kFailed) {
      return false;
    }
    if (frame.pins.load(std::memory_order_acquire) != 0) return false;
  }
  for (std::uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.state == FrameState::kFree) continue;
    if (frame.page.file_id != file_id) continue;
    table_.erase(frame.page);
    frame.file.reset();
    frame.dirty = false;  // stale content: discard, never write back
    frame.state = FrameState::kFree;
    free_.push_back(i);
    ++evictions_;
  }
  return true;
}

void BufferManager::io_loop() {
  while (auto request = requests_.pop()) {
    Frame& frame = frames_[request->frame];
    std::shared_ptr<File> file;
    std::uint64_t page_no = 0;
    {
      std::lock_guard lock{mutex_};
      file = frame.file;
      page_no = frame.page.page_no;
    }
    if (!file) continue;  // defensive: request outlived its mapping

    Stopwatch watch;
    Status status = Status::ok();
    std::size_t got = 0;
    const fault::Decision injected =
        fault::check(fault::Site::kStorageRead, file->path());
    if (injected.kind == fault::Kind::kEio) {
      status = Status{ErrorCode::kIoError,
                      "injected EIO loading page " + std::to_string(page_no) +
                          " of " + file->path()};
    } else {
      MCSD_OBS_SPAN("storage", "storage.read");
      const std::uint64_t offset = page_no * options_.frame_bytes;
      const std::size_t want = options_.frame_bytes;
      while (got < want) {
        const ssize_t n = ::pread(file->fd_, frame.data + got, want - got,
                                  static_cast<off_t>(offset + got));
        if (n < 0) {
          if (errno == EINTR) continue;
          status = Status{ErrorCode::kIoError,
                          "pread failed on " + file->path() + ": " +
                              std::strerror(errno)};
          break;
        }
        if (n == 0) break;  // end of file
        got += static_cast<std::size_t>(n);
      }
    }

    if (status.is_ok() && request->throttle_mibps > 0.0 && got > 0) {
      // Emulated device: loads pay a *serialised* transfer cost (one
      // device, however many I/O threads), so pool throughput cannot
      // exceed the modelled rate on misses while hits stay DRAM-fast.
      const auto cost = std::chrono::duration<double>(
          static_cast<double>(got) /
          (request->throttle_mibps * 1024.0 * 1024.0));
      steady_clock::time_point until;
      {
        std::lock_guard lock{mutex_};
        const auto now = steady_clock::now();
        if (device_free_at_ < now) device_free_at_ = now;
        device_free_at_ +=
            std::chrono::duration_cast<steady_clock::duration>(cost);
        until = device_free_at_;
      }
      std::this_thread::sleep_until(until);
    }

    {
      std::lock_guard lock{mutex_};
      if (status.is_ok()) {
        frame.valid_bytes = static_cast<std::uint32_t>(got);
        frame.state = FrameState::kReady;
      } else {
        frame.error = status.error().message();
        frame.state = FrameState::kFailed;
        ++read_errors_;
      }
    }
    MCSD_OBS_HIST("storage.fill_us", "us",
                  static_cast<std::uint64_t>(watch.elapsed_seconds() * 1e6));
    frame_done_.notify_all();
  }
}

std::shared_ptr<BufferManager> process_pool() {
  static std::shared_ptr<BufferManager> pool = [] {
    PoolOptions options;
    if (const char* env = std::getenv("MCSD_POOL_BYTES")) {
      if (auto parsed = parse_bytes(env);
          parsed.is_ok() && parsed.value() > 0) {
        options.pool_bytes = static_cast<std::size_t>(parsed.value());
      }
    }
    return std::make_shared<BufferManager>(options);
  }();
  return pool;
}

}  // namespace mcsd::storage
