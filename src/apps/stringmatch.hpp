// String Match (SM) — the paper's second benchmark application.
//
// "Each Map searches one line in the 'encrypt' file to check whether the
// target string from a 'keys' file is in the line.  Neither sort or the
// reduce stage is required."  (Section V-A)
//
// The spec has *no* reduce member, so the engine runs its identity path —
// matched pairs stream straight to the output, exercising the runtime's
// reduce-less mode exactly as the paper describes.
//
// A match is encoded as key = absolute byte offset of the matching line,
// value = index of the key string that matched.  One line can match
// several keys (one pair per key).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/emitter.hpp"
#include "mapreduce/splitter.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::apps {

/// One match: which line (by byte offset) contained which key.
struct Match {
  std::uint64_t line_offset = 0;
  std::uint32_t key_index = 0;

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match&, const Match&) = default;
};

using MatchPair = mr::KV<std::uint64_t, std::uint32_t>;

struct StringMatchSpec {
  using Key = std::uint64_t;    ///< absolute byte offset of the line
  using Value = std::uint32_t;  ///< index into `keys`

  /// Target strings (the "keys" file).  Views must outlive the run.
  std::vector<std::string> keys;

  /// Chunks must be newline-aligned (mr::split_lines) so every line is
  /// seen exactly once.
  void map(const mr::TextChunk& chunk, mr::Emitter<Key, Value>& emit) const;
};

/// Reference implementation: single-threaded line scan.
std::vector<Match> stringmatch_sequential(std::string_view text,
                                          const std::vector<std::string>& keys);

/// Converts engine output pairs into Match records sorted by
/// (line_offset, key_index) for comparison against the reference.
std::vector<Match> to_sorted_matches(const std::vector<MatchPair>& pairs);

}  // namespace mcsd::apps
