#include "apps/external_sort.hpp"

#include <algorithm>
#include <fstream>
#include <queue>
#include <string>
#include <system_error>
#include <vector>

#include "core/io.hpp"

namespace mcsd::apps {

namespace fs = std::filesystem;

namespace {

/// Buffered line reader over a run file.
class RunReader {
 public:
  explicit RunReader(const fs::path& path) : in_(path, std::ios::binary) {}

  [[nodiscard]] bool ok() const { return in_.good() || in_.eof(); }

  /// Fetches the next line into `line`; false at end of file.
  bool next(std::string& line) { return static_cast<bool>(std::getline(in_, line)); }

 private:
  std::ifstream in_;
};

/// Spills `lines` (sorted in place) as one run file.
Status spill_run(std::vector<std::string>& lines, const fs::path& path) {
  std::sort(lines.begin(), lines.end());
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    return Status{ErrorCode::kIoError, "cannot create run " + path.string()};
  }
  for (const std::string& line : lines) {
    out << line << '\n';
  }
  out.flush();
  if (!out) {
    return Status{ErrorCode::kIoError, "short write on " + path.string()};
  }
  lines.clear();
  return Status::ok();
}

}  // namespace

Result<ExternalSortStats> external_sort_lines(
    const fs::path& input, const fs::path& output,
    const ExternalSortOptions& options) {
  if (input == output) {
    return Error{ErrorCode::kInvalidArgument,
                 "external sort cannot run in place"};
  }
  std::ifstream in{input, std::ios::binary};
  if (!in) {
    return Error{ErrorCode::kNotFound, "cannot open " + input.string()};
  }
  const fs::path temp_dir =
      options.temp_dir.empty() ? output.parent_path() : options.temp_dir;
  const std::uint64_t budget =
      std::max<std::uint64_t>(options.memory_budget_bytes, 64 * 1024);

  ExternalSortStats stats;

  // ----- phase 1: run generation ---------------------------------------
  std::vector<fs::path> run_paths;
  std::vector<std::string> lines;
  std::uint64_t held = 0;
  std::string line;
  const auto run_path = [&](std::size_t i) {
    return temp_dir / (output.filename().string() + ".run." +
                       std::to_string(i));
  };
  while (std::getline(in, line)) {
    ++stats.lines;
    stats.bytes += line.size() + 1;
    held += line.size() + sizeof(std::string);
    lines.push_back(std::move(line));
    if (held >= budget) {
      run_paths.push_back(run_path(run_paths.size()));
      if (Status s = spill_run(lines, run_paths.back()); !s) return s.error();
      held = 0;
    }
  }
  if (!in.eof()) {
    return Error{ErrorCode::kIoError, "read error on " + input.string()};
  }

  const auto cleanup_runs = [&] {
    std::error_code ec;
    for (const auto& p : run_paths) fs::remove(p, ec);
  };

  // Single-run fast path: everything fit in memory.
  if (run_paths.empty()) {
    std::sort(lines.begin(), lines.end());
    std::string joined;
    for (const std::string& l : lines) {
      joined += l;
      joined += '\n';
    }
    if (Status s = write_file(output, joined); !s) return s.error();
    stats.runs = lines.empty() ? 0 : 1;
    return stats;
  }
  if (!lines.empty()) {
    run_paths.push_back(run_path(run_paths.size()));
    if (Status s = spill_run(lines, run_paths.back()); !s) {
      cleanup_runs();
      return s.error();
    }
  }
  stats.runs = run_paths.size();

  // ----- phase 2: k-way merge -------------------------------------------
  std::vector<RunReader> readers;
  readers.reserve(run_paths.size());
  for (const auto& p : run_paths) {
    readers.emplace_back(p);
    if (!readers.back().ok()) {
      cleanup_runs();
      return Error{ErrorCode::kIoError, "cannot reopen run " + p.string()};
    }
  }

  struct HeapItem {
    std::string line;
    std::size_t reader;
    bool operator>(const HeapItem& other) const { return line > other.line; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t r = 0; r < readers.size(); ++r) {
    std::string first;
    if (readers[r].next(first)) {
      heap.push(HeapItem{std::move(first), r});
    }
  }

  std::ofstream out{output, std::ios::binary | std::ios::trunc};
  if (!out) {
    cleanup_runs();
    return Error{ErrorCode::kIoError, "cannot create " + output.string()};
  }
  while (!heap.empty()) {
    HeapItem item = heap.top();
    heap.pop();
    out << item.line << '\n';
    std::string next_line;
    if (readers[item.reader].next(next_line)) {
      heap.push(HeapItem{std::move(next_line), item.reader});
    }
  }
  out.flush();
  const bool write_ok = static_cast<bool>(out);
  out.close();
  cleanup_runs();
  if (!write_ok) {
    return Error{ErrorCode::kIoError, "short write on " + output.string()};
  }
  return stats;
}

}  // namespace mcsd::apps
