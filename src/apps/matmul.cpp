#include "apps/matmul.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mcsd::apps {

void MatMulSpec::map(const mr::IndexChunk& chunk,
                     mr::Emitter<Key, Value>& emit) const {
  if (a == nullptr || b == nullptr) {
    throw std::invalid_argument("MatMulSpec operands not set");
  }
  if (a->cols() != b->rows()) {
    throw std::invalid_argument("MatMulSpec dimension mismatch");
  }
  const std::size_t n = b->cols();
  const std::size_t inner = a->cols();
  std::vector<double> row_acc(n);
  for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
    std::fill(row_acc.begin(), row_acc.end(), 0.0);
    // i-k-j order: streams b row-major, the cache-friendly loop nest.
    for (std::size_t k = 0; k < inner; ++k) {
      const double aik = a->at(i, k);
      for (std::size_t j = 0; j < n; ++j) {
        row_acc[j] += aik * b->at(k, j);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      emit.emit(pack_coord(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j)),
                row_acc[j]);
    }
  }
}

Matrix matmul_sequential(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul dimension mismatch");
  }
  Matrix c{a.rows(), b.cols()};
  const std::size_t n = b.cols();
  const std::size_t inner = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < inner; ++k) {
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix assemble_matrix(const std::vector<CellPair>& cells, std::size_t rows,
                       std::size_t cols) {
  Matrix out{rows, cols};
  std::vector<bool> seen(rows * cols, false);
  for (const auto& cell : cells) {
    const std::size_t r = coord_row(cell.key);
    const std::size_t c = coord_col(cell.key);
    if (r >= rows || c >= cols) {
      throw std::invalid_argument("assemble_matrix: coordinate out of range");
    }
    const std::size_t idx = r * cols + c;
    if (seen[idx]) {
      throw std::invalid_argument(
          "assemble_matrix: duplicate coordinate (" + std::to_string(r) + "," +
          std::to_string(c) + ")");
    }
    seen[idx] = true;
    out.at(r, c) = cell.value;
  }
  return out;
}

}  // namespace mcsd::apps
