// Out-of-core external line sort.
//
// Sort is the third workload of the classic active-disk triad
// (scan/select/sort — Riedel et al., Acharya et al.) and a natural McSD
// preloadable module: the storage node sorts a file far larger than its
// memory by streaming it through bounded-memory run generation and a
// k-way merge, shipping only the (path to the) sorted result back to the
// host.
//
// Algorithm: classic two-phase external merge sort.
//   1. Run generation: read lines until the memory budget fills, sort
//      them, spill a run file.
//   2. Merge: k-way merge all runs with a tournament over buffered run
//      readers into the output.
// Both phases stream; peak memory is O(budget + k * read-buffer).
#pragma once

#include <cstdint>
#include <filesystem>

#include "core/result.hpp"

namespace mcsd::apps {

struct ExternalSortOptions {
  /// In-memory run size cap, bytes of line payload per run.
  std::uint64_t memory_budget_bytes = 4ULL << 20;
  /// Where run files are staged; defaults to the output's directory.
  std::filesystem::path temp_dir;
};

struct ExternalSortStats {
  std::uint64_t lines = 0;
  std::uint64_t bytes = 0;
  std::size_t runs = 0;
};

/// Sorts the lines of `input` lexicographically into `output`.
/// The final line need not be newline-terminated; the output always is
/// (unless empty).  Input and output may not be the same path.
Result<ExternalSortStats> external_sort_lines(
    const std::filesystem::path& input, const std::filesystem::path& output,
    const ExternalSortOptions& options = {});

}  // namespace mcsd::apps
