// FAM-loadable modules for the benchmark applications.
//
// These are the "data-intensive processing modules" preloaded into a McSD
// node (paper Fig. 5): each wraps one application behind the smartFAM
// parameter convention, so a host can offload it with Client::invoke.
//
// Parameter conventions (all paths are within the shared folder):
//   wordcount:    input=<path> [partition_size=<bytes>] [workers=<n>]
//                 [top=<n>] [read_throttle_mibps=<rate>]
//      returns:   unique, total, fragments, top<i>, top<i>_count
//   stringmatch:  input=<path> keys=<comma separated> [workers=<n>]
//                 [read_throttle_mibps=<rate>]
//      returns:   matches
//
// wordcount and stringmatch are pure functions of their input file, so
// they declare it via Module::cache_inputs and the daemon may serve
// repeat invocations from its result cache; they also keep their
// mr::Engine (and its per-worker scratch) resident between invocations.
// The file-writing modules (matmul, select, sort, join) are never cached.
//   matmul:       a=<path> b=<path> out=<path> [workers=<n>]
//                 (matrices in the text format of write_matrix)
//      returns:   rows, cols, checksum
//   select:       input=<path> column=<i> op=(eq|ne|lt|gt|contains)
//                 value=<v> out=<path>  — the paper's future-work
//                 "database operations" extension: a predicate scan over
//                 a CSV-like table, executed on the storage node so only
//                 matching rows cross the network.
//      returns:   rows_in, rows_out, bytes_out
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/matmul.hpp"
#include "apps/wordcount.hpp"
#include "fam/module.hpp"
#include "storage/buffer_manager.hpp"

namespace mcsd::apps {

/// Word count (partition-enabled MapReduce).  `default_workers` is the
/// storage node's core count; requests may lower it via workers=.
/// `pool` serves the out-of-core fragment pages; the daemon passes its
/// long-lived pool so repeat invocations over the same corpus run warm
/// (null falls back to the process-wide pool).
std::shared_ptr<fam::Module> make_wordcount_module(
    std::size_t default_workers,
    std::shared_ptr<storage::BufferManager> pool = nullptr);

/// String match (reduce-less MapReduce).  `pool` as for wordcount.
std::shared_ptr<fam::Module> make_stringmatch_module(
    std::size_t default_workers,
    std::shared_ptr<storage::BufferManager> pool = nullptr);

/// Matrix multiplication; operands and result as on-disk matrix files.
std::shared_ptr<fam::Module> make_matmul_module(std::size_t default_workers);

/// Predicate scan ("select") over a CSV-like table — extension module.
std::shared_ptr<fam::Module> make_select_module(std::size_t default_workers);

/// Out-of-core line sort (apps/external_sort.hpp) — extension module.
///   sort: input=<path> out=<path> [memory_budget=<bytes>]
///   returns: lines, runs, bytes
std::shared_ptr<fam::Module> make_sort_module(std::size_t default_workers);

/// Hash equi-join of two CSV-like tables — extension module (completes
/// the classic active-disk scan/select/sort/join set).
///   join: left=<path> right=<path> left_column=<i> right_column=<j>
///         out=<path>
///   Output rows: left_row,right_row-without-join-column.
///   returns: rows_left, rows_right, rows_out
std::shared_ptr<fam::Module> make_join_module(std::size_t default_workers);

/// Preloads all standard modules into a daemon-side registry consumer.
/// Returns the first error, if any.  `pool` is threaded into the
/// out-of-core modules (wordcount, stringmatch); pass
/// Daemon::buffer_pool() so their corpus pages survive across
/// invocations.
template <typename PreloadFn>
Status preload_standard_modules(
    PreloadFn&& preload, std::size_t default_workers,
    std::shared_ptr<storage::BufferManager> pool = nullptr) {
  for (auto module :
       {make_wordcount_module(default_workers, pool),
        make_stringmatch_module(default_workers, pool),
        make_matmul_module(default_workers),
        make_select_module(default_workers),
        make_sort_module(default_workers),
        make_join_module(default_workers)}) {
    if (Status s = preload(std::move(module)); !s) return s;
  }
  return Status::ok();
}

/// On-disk matrix format: first line "rows cols", then one
/// whitespace-separated row per line ("%.17g" doubles).
Status write_matrix(const std::filesystem::path& path, const Matrix& m);
Result<Matrix> read_matrix(const std::filesystem::path& path);

/// Word-count table wire format used by the wordcount module's
/// full_counts=true mode: one "word count\n" pair per line.
std::string serialize_counts(const std::vector<WordCount>& counts);
Result<std::vector<WordCount>> parse_counts(std::string_view text);

}  // namespace mcsd::apps
