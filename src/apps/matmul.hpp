// Matrix Multiplication (MM) — the paper's third benchmark application.
//
// "Each Map computes multiplication for a set of rows of the output
// matrix.  It outputs multiplication for a row ID and column ID as the
// key and the corresponding result as the value.  The reduce task is just
// the identity function."  (Section V-A)
//
// Keys pack (row, col) into one 64-bit integer; the spec omits `reduce`
// so the engine's identity path runs, matching the paper.  In the McSD
// multi-application experiments MM plays the *computation-intensive*
// partner that stays on the host node while WC/SM offload to the storage
// node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mapreduce/emitter.hpp"
#include "mapreduce/splitter.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::apps {

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Packs an output coordinate into the MapReduce key.
constexpr std::uint64_t pack_coord(std::uint32_t row, std::uint32_t col) noexcept {
  return (static_cast<std::uint64_t>(row) << 32) | col;
}
constexpr std::uint32_t coord_row(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key >> 32);
}
constexpr std::uint32_t coord_col(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key & 0xFFFFFFFFULL);
}

using CellPair = mr::KV<std::uint64_t, double>;

struct MatMulSpec {
  using Key = std::uint64_t;  ///< pack_coord(row, col)
  using Value = double;

  /// Operands; must outlive the run.  a is (m x k), b is (k x n).
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;

  /// `chunk` is a block of output rows (mr::split_index over a->rows()).
  void map(const mr::IndexChunk& chunk, mr::Emitter<Key, Value>& emit) const;
};

/// Reference implementation: blocked i-k-j sequential multiply.
Matrix matmul_sequential(const Matrix& a, const Matrix& b);

/// Assembles engine output pairs into a dense matrix.  Throws
/// std::invalid_argument on out-of-range or duplicate coordinates.
Matrix assemble_matrix(const std::vector<CellPair>& cells, std::size_t rows,
                       std::size_t cols);

}  // namespace mcsd::apps
