#include "apps/modules.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "apps/external_sort.hpp"
#include "apps/stringmatch.hpp"
#include "apps/wordcount.hpp"
#include "core/io.hpp"
#include "core/strings.hpp"
#include "mapreduce/engine.hpp"
#include "partition/outofcore.hpp"

namespace mcsd::apps {

namespace {

/// Worker count for one request: workers= parameter, clamped to
/// [1, default_workers] — a request may use fewer cores than the node
/// has, never more.
std::size_t request_workers(const KeyValueMap& params,
                            std::size_t default_workers) {
  const auto requested = params.get_int_or("workers",
                                           static_cast<std::int64_t>(
                                               default_workers));
  if (requested < 1) return 1;
  return std::min<std::size_t>(static_cast<std::size_t>(requested),
                               default_workers);
}

/// Emulated device read rate for this request (see
/// PipelineOptions::read_throttle_mibps); 0/absent = raw device.
double request_read_throttle(const KeyValueMap& params) {
  auto mibps = params.get_double("read_throttle_mibps");
  return mibps.is_ok() && mibps.value() > 0.0 ? mibps.value() : 0.0;
}

/// Warm execution state, ROADMAP item 4 level (b): one resident
/// mr::Engine per requested worker count, reused across invocations.
/// The engine's per-worker scratch (WorkerState: emitter partitions,
/// gather tables, attribution) then survives between requests instead of
/// being torn down per run, so even a cache *miss* on a warm module skips
/// the allocation/setup cost.  The mutex serialises invocations sharing
/// the state — the smartFAM channel admits one in-flight request per
/// module anyway, so this never blocks independent modules.
template <typename Spec>
struct WarmEngines {
  std::mutex mutex;
  std::map<std::size_t, std::unique_ptr<mr::Engine<Spec>>> by_workers;

  /// Caller holds `mutex` for the whole run.
  mr::Engine<Spec>& acquire(std::size_t workers) {
    auto& slot = by_workers[workers];
    if (!slot) {
      mr::Options opts;
      opts.num_workers = workers;
      slot = std::make_unique<mr::Engine<Spec>>(opts);
    }
    return *slot;
  }
};

/// Cache contract shared by the pure file-scan modules (wordcount,
/// stringmatch): the result is a function of the `input` file's bytes and
/// the parameter map — no output files, no hidden state — so declaring
/// the input path opts them into the daemon's result cache.
std::optional<std::vector<std::filesystem::path>> input_param_cache_inputs(
    const KeyValueMap& params) {
  const auto input = params.get("input");
  if (!input) return std::nullopt;  // the invoke will fail anyway
  return std::vector<std::filesystem::path>{*input};
}

}  // namespace

std::shared_ptr<fam::Module> make_wordcount_module(
    std::size_t default_workers, std::shared_ptr<storage::BufferManager> pool) {
  auto module = std::make_shared<fam::FunctionModule>(
      "wordcount",
      [default_workers, pool = std::move(pool),
       warm = std::make_shared<WarmEngines<WordCountSpec>>()](
          const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto input = params.get("input");
        if (!input) return Error{ErrorCode::kInvalidArgument, "missing input"};

        std::lock_guard warm_lock{warm->mutex};
        mr::Engine<WordCountSpec>& engine =
            warm->acquire(request_workers(params, default_workers));
        // Stream fragments off the file with prefetch + incremental merge
        // (pipeline=false reverts to the serial read-then-run baseline).
        part::PipelineOptions popts;
        popts.partition_size = static_cast<std::uint64_t>(
            params.get_int_or("partition_size", 0));
        popts.prefetch = params.get_bool("pipeline").value_or(true);
        popts.read_throttle_mibps = request_read_throttle(params);
        popts.pool = pool;  // daemon-resident: warm across invocations
        part::TextJob<WordCountSpec> job;
        job.incremental_merge =
            part::sum_incremental<std::string, std::uint64_t>();
        part::OutOfCoreMetrics metrics;
        auto merged = part::run_partitioned_file(engine, WordCountSpec{},
                                                 *input, popts, job, &metrics);
        if (!merged) return merged.error();
        auto counts = std::move(merged).value();
        sort_by_frequency_desc(counts);

        KeyValueMap out;
        out.set_uint("unique", counts.size());
        out.set_uint("total", total_occurrences(counts));
        out.set_uint("fragments", metrics.fragments);
        out.set_uint("pipelined", metrics.pipelined ? 1 : 0);
        out.set_uint("peak_resident_bytes",
                     metrics.peak_resident_fragment_bytes);
        const auto top_n = std::min<std::size_t>(
            counts.size(),
            static_cast<std::size_t>(params.get_int_or("top", 5)));
        for (std::size_t i = 0; i < top_n; ++i) {
          out.set("top" + std::to_string(i), counts[i].key);
          out.set_uint("top" + std::to_string(i) + "_count",
                       counts[i].value);
        }
        // full_counts=true: ship the complete table back (one
        // "word count" pair per line) so a host-side runtime can
        // sum-merge results across several McSD nodes.
        if (params.get_bool("full_counts").value_or(false)) {
          out.set("counts", serialize_counts(counts));
        }
        return out;
      });
  module->set_cache_inputs(input_param_cache_inputs);
  return module;
}

std::shared_ptr<fam::Module> make_stringmatch_module(
    std::size_t default_workers, std::shared_ptr<storage::BufferManager> pool) {
  auto module = std::make_shared<fam::FunctionModule>(
      "stringmatch",
      [default_workers, pool = std::move(pool),
       warm = std::make_shared<WarmEngines<StringMatchSpec>>()](
          const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto input = params.get("input");
        const auto keys_csv = params.get("keys");
        if (!input || !keys_csv) {
          return Error{ErrorCode::kInvalidArgument, "missing input/keys"};
        }

        StringMatchSpec spec;
        for (const auto key : split(*keys_csv, ',')) {
          if (!key.empty()) spec.keys.emplace_back(key);
        }
        if (spec.keys.empty()) {
          return Error{ErrorCode::kInvalidArgument, "empty key list"};
        }
        std::lock_guard warm_lock{warm->mutex};
        mr::Engine<StringMatchSpec>& engine =
            warm->acquire(request_workers(params, default_workers));
        // Line-delimited streaming: fragments never cut a line, and the
        // driver rebases chunk offsets so matches carry absolute offsets.
        part::PipelineOptions popts;
        popts.partition_size = static_cast<std::uint64_t>(
            params.get_int_or("partition_size", 0));
        popts.is_delimiter = part::newline_delimiter();
        popts.prefetch = params.get_bool("pipeline").value_or(true);
        popts.read_throttle_mibps = request_read_throttle(params);
        popts.pool = pool;  // daemon-resident: warm across invocations
        part::TextJob<StringMatchSpec> job;
        job.chunker = [](std::string_view text) {
          return mr::split_lines(text, 64 * 1024);
        };
        job.incremental_merge =
            part::concat_incremental<std::uint64_t, std::uint32_t>();
        part::OutOfCoreMetrics metrics;
        auto pairs = part::run_partitioned_file(engine, spec, *input, popts,
                                                job, &metrics);
        if (!pairs) return pairs.error();

        KeyValueMap out;
        out.set_uint("matches", pairs.value().size());
        out.set_uint("fragments", metrics.fragments);
        return out;
      });
  module->set_cache_inputs(input_param_cache_inputs);
  return module;
}

std::shared_ptr<fam::Module> make_matmul_module(std::size_t default_workers) {
  return std::make_shared<fam::FunctionModule>(
      "matmul",
      [default_workers](const KeyValueMap& params) -> Result<KeyValueMap> {
        const auto a_path = params.get("a");
        const auto b_path = params.get("b");
        const auto out_path = params.get("out");
        if (!a_path || !b_path || !out_path) {
          return Error{ErrorCode::kInvalidArgument, "missing a/b/out"};
        }
        auto a = read_matrix(*a_path);
        if (!a) return a.error();
        auto b = read_matrix(*b_path);
        if (!b) return b.error();
        if (a.value().cols() != b.value().rows()) {
          return Error{ErrorCode::kInvalidArgument, "dimension mismatch"};
        }

        MatMulSpec spec;
        spec.a = &a.value();
        spec.b = &b.value();
        mr::Options opts;
        opts.num_workers = request_workers(params, default_workers);
        mr::Engine<MatMulSpec> engine{opts};
        // Index chunks carry no payload, so the memory model needs the
        // job's real input size (both operand matrices) passed explicitly.
        const std::uint64_t input_bytes =
            (a.value().data().size() + b.value().data().size()) *
            sizeof(double);
        const auto cells = engine.run(
            spec, mr::split_index(a.value().rows(), 4 * opts.num_workers),
            input_bytes);
        const Matrix c =
            assemble_matrix(cells, a.value().rows(), b.value().cols());
        if (Status s = write_matrix(*out_path, c); !s) {
          return Error{s.error().code(), s.to_string()};
        }

        double checksum = 0.0;
        for (double v : c.data()) checksum += v;
        KeyValueMap out;
        out.set_uint("rows", c.rows());
        out.set_uint("cols", c.cols());
        out.set_double("checksum", checksum);
        return out;
      });
}

namespace {

enum class SelectOp { kEq, kNe, kLt, kGt, kContains };

Result<SelectOp> parse_op(std::string_view text) {
  if (text == "eq") return SelectOp::kEq;
  if (text == "ne") return SelectOp::kNe;
  if (text == "lt") return SelectOp::kLt;
  if (text == "gt") return SelectOp::kGt;
  if (text == "contains") return SelectOp::kContains;
  return Error{ErrorCode::kInvalidArgument,
               "unknown op: " + std::string{text}};
}

bool field_matches(std::string_view field, SelectOp op,
                   std::string_view value) {
  switch (op) {
    case SelectOp::kEq: return field == value;
    case SelectOp::kNe: return field != value;
    case SelectOp::kContains:
      return field.find(value) != std::string_view::npos;
    case SelectOp::kLt:
    case SelectOp::kGt: {
      // Numeric when both sides parse; lexicographic otherwise.
      double fa = 0.0;
      double fb = 0.0;
      const auto [pa, ea] =
          std::from_chars(field.data(), field.data() + field.size(), fa);
      const auto [pb, eb] =
          std::from_chars(value.data(), value.data() + value.size(), fb);
      const bool numeric = ea == std::errc{} &&
                           pa == field.data() + field.size() &&
                           eb == std::errc{} &&
                           pb == value.data() + value.size();
      if (numeric) return op == SelectOp::kLt ? fa < fb : fa > fb;
      return op == SelectOp::kLt ? field < value : field > value;
    }
  }
  return false;
}

}  // namespace

std::shared_ptr<fam::Module> make_select_module(std::size_t default_workers) {
  return std::make_shared<fam::FunctionModule>(
      "select",
      [default_workers](const KeyValueMap& params) -> Result<KeyValueMap> {
        (void)default_workers;  // the scan is single-pass streaming
        const auto input = params.get("input");
        const auto out_path = params.get("out");
        const auto op_text = params.get("op");
        const auto value = params.get("value");
        const auto column = params.get_int("column");
        if (!input || !out_path || !op_text || !value || !column) {
          return Error{ErrorCode::kInvalidArgument,
                       "need input, out, column, op, value"};
        }
        if (column.value() < 0) {
          return Error{ErrorCode::kInvalidArgument, "column must be >= 0"};
        }
        auto op = parse_op(*op_text);
        if (!op) return op.error();
        auto text = read_file(*input);
        if (!text) return text.error();

        const auto col = static_cast<std::size_t>(column.value());
        std::string selected;
        std::uint64_t rows_in = 0;
        std::uint64_t rows_out = 0;
        for (std::string_view line : split(text.value(), '\n')) {
          if (line.empty()) continue;
          ++rows_in;
          const auto fields = split(line, ',');
          if (col < fields.size() &&
              field_matches(fields[col], op.value(), *value)) {
            selected += line;
            selected += '\n';
            ++rows_out;
          }
        }
        if (Status s = write_file(*out_path, selected); !s) {
          return Error{s.error().code(), s.to_string()};
        }
        KeyValueMap out;
        out.set_uint("rows_in", rows_in);
        out.set_uint("rows_out", rows_out);
        out.set_uint("bytes_out", selected.size());
        return out;
      });
}

std::shared_ptr<fam::Module> make_sort_module(std::size_t default_workers) {
  return std::make_shared<fam::FunctionModule>(
      "sort",
      [default_workers](const KeyValueMap& params) -> Result<KeyValueMap> {
        (void)default_workers;  // run generation is sequential streaming
        const auto input = params.get("input");
        const auto out_path = params.get("out");
        if (!input || !out_path) {
          return Error{ErrorCode::kInvalidArgument, "need input and out"};
        }
        ExternalSortOptions opts;
        opts.memory_budget_bytes = static_cast<std::uint64_t>(
            params.get_int_or("memory_budget", 4 << 20));
        auto stats = external_sort_lines(*input, *out_path, opts);
        if (!stats) return stats.error();
        KeyValueMap out;
        out.set_uint("lines", stats.value().lines);
        out.set_uint("runs", stats.value().runs);
        out.set_uint("bytes", stats.value().bytes);
        return out;
      });
}

std::shared_ptr<fam::Module> make_join_module(std::size_t default_workers) {
  return std::make_shared<fam::FunctionModule>(
      "join",
      [default_workers](const KeyValueMap& params) -> Result<KeyValueMap> {
        (void)default_workers;  // build+probe is a streaming pass each
        const auto left_path = params.get("left");
        const auto right_path = params.get("right");
        const auto out_path = params.get("out");
        const auto left_col = params.get_int("left_column");
        const auto right_col = params.get_int("right_column");
        if (!left_path || !right_path || !out_path || !left_col ||
            !right_col || left_col.value() < 0 || right_col.value() < 0) {
          return Error{ErrorCode::kInvalidArgument,
                       "need left, right, out, left_column, right_column"};
        }
        auto left = read_file(*left_path);
        if (!left) return left.error();
        auto right = read_file(*right_path);
        if (!right) return right.error();

        // Build side: hash the left table on its join column.
        const auto lcol = static_cast<std::size_t>(left_col.value());
        const auto rcol = static_cast<std::size_t>(right_col.value());
        std::unordered_multimap<std::string_view, std::string_view> build;
        std::uint64_t rows_left = 0;
        for (std::string_view row : split(left.value(), '\n')) {
          if (row.empty()) continue;
          ++rows_left;
          const auto fields = split(row, ',');
          if (lcol < fields.size()) build.emplace(fields[lcol], row);
        }

        // Probe side: stream the right table, emit joined rows.
        std::string joined;
        std::uint64_t rows_right = 0;
        std::uint64_t rows_out = 0;
        for (std::string_view row : split(right.value(), '\n')) {
          if (row.empty()) continue;
          ++rows_right;
          const auto fields = split(row, ',');
          if (rcol >= fields.size()) continue;
          const auto [lo, hi] = build.equal_range(fields[rcol]);
          for (auto it = lo; it != hi; ++it) {
            joined += it->second;
            for (std::size_t f = 0; f < fields.size(); ++f) {
              if (f == rcol) continue;  // drop the duplicated join key
              joined += ',';
              joined += fields[f];
            }
            joined += '\n';
            ++rows_out;
          }
        }
        if (Status s = write_file(*out_path, joined); !s) {
          return Error{s.error().code(), s.to_string()};
        }
        KeyValueMap out;
        out.set_uint("rows_left", rows_left);
        out.set_uint("rows_right", rows_right);
        out.set_uint("rows_out", rows_out);
        return out;
      });
}

std::string serialize_counts(const std::vector<WordCount>& counts) {
  std::string out;
  for (const auto& kv : counts) {
    out += kv.key;
    out += ' ';
    out += std::to_string(kv.value);
    out += '\n';
  }
  return out;
}

Result<std::vector<WordCount>> parse_counts(std::string_view text) {
  std::vector<WordCount> counts;
  for (std::string_view line : split(text, '\n')) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) {
      return Error{ErrorCode::kProtocolError,
                   "bad counts line: " + std::string{line}};
    }
    const std::string_view value_text = line.substr(space + 1);
    std::uint64_t value = 0;
    const auto [p, e] = std::from_chars(
        value_text.data(), value_text.data() + value_text.size(), value);
    if (e != std::errc{} || p != value_text.data() + value_text.size()) {
      return Error{ErrorCode::kProtocolError,
                   "bad count value: " + std::string{line}};
    }
    counts.push_back(WordCount{std::string{line.substr(0, space)}, value});
  }
  return counts;
}

Status write_matrix(const std::filesystem::path& path, const Matrix& m) {
  std::string text = std::to_string(m.rows()) + ' ' + std::to_string(m.cols()) +
                     '\n';
  char buf[64];
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      std::snprintf(buf, sizeof buf, "%.17g", m.at(r, c));
      text += buf;
      text += c + 1 < m.cols() ? ' ' : '\n';
    }
  }
  return write_file(path, text);
}

Result<Matrix> read_matrix(const std::filesystem::path& path) {
  auto text = read_file(path);
  if (!text) return text.error();
  const auto tokens = split_whitespace(text.value());
  if (tokens.size() < 2) {
    return Error{ErrorCode::kProtocolError, "matrix header missing"};
  }
  std::size_t rows = 0;
  std::size_t cols = 0;
  const auto parse_dim = [](std::string_view t, std::size_t& out) {
    const auto [p, e] = std::from_chars(t.data(), t.data() + t.size(), out);
    return e == std::errc{} && p == t.data() + t.size();
  };
  if (!parse_dim(tokens[0], rows) || !parse_dim(tokens[1], cols)) {
    return Error{ErrorCode::kProtocolError, "bad matrix header"};
  }
  if (tokens.size() != 2 + rows * cols) {
    return Error{ErrorCode::kProtocolError,
                 "matrix body has " + std::to_string(tokens.size() - 2) +
                     " values, want " + std::to_string(rows * cols)};
  }
  Matrix m{rows, cols};
  for (std::size_t i = 0; i < rows * cols; ++i) {
    const std::string_view t = tokens[2 + i];
    double v = 0.0;
    const auto [p, e] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (e != std::errc{} || p != t.data() + t.size()) {
      return Error{ErrorCode::kProtocolError,
                   "bad matrix value: " + std::string{t}};
    }
    m.data()[i] = v;
  }
  return m;
}

}  // namespace mcsd::apps
