#include "apps/stringmatch.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace mcsd::apps {

// Line iteration lives in core/strings.hpp (for_each_line), shared with
// the sequential reference so both walk lines identically.

void StringMatchSpec::map(const mr::TextChunk& chunk,
                          mr::Emitter<Key, Value>& emit) const {
  // Lines shorter than every key cannot match; skip them before paying
  // keys.size() substring searches.
  std::size_t min_key_len = std::string_view::npos;
  for (const auto& key : keys) min_key_len = std::min(min_key_len, key.size());
  for_each_line(chunk.text, chunk.offset,
                [&](std::string_view line, std::uint64_t offset) {
                  if (line.size() < min_key_len) return;
                  for (std::size_t k = 0; k < keys.size(); ++k) {
                    if (line.find(keys[k]) != std::string_view::npos) {
                      emit.emit(offset, static_cast<Value>(k));
                    }
                  }
                });
}

std::vector<Match> stringmatch_sequential(
    std::string_view text, const std::vector<std::string>& keys) {
  std::vector<Match> matches;
  for_each_line(text, 0, [&](std::string_view line, std::uint64_t offset) {
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (line.find(keys[k]) != std::string_view::npos) {
        matches.push_back(Match{offset, static_cast<std::uint32_t>(k)});
      }
    }
  });
  std::sort(matches.begin(), matches.end());
  return matches;
}

std::vector<Match> to_sorted_matches(const std::vector<MatchPair>& pairs) {
  std::vector<Match> matches;
  matches.reserve(pairs.size());
  for (const auto& kv : pairs) {
    matches.push_back(Match{kv.key, kv.value});
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace mcsd::apps
