#include "apps/stringmatch.hpp"

#include <algorithm>

namespace mcsd::apps {

namespace {
/// Invokes `fn(line, absolute_offset)` for every line in `text`, where
/// `offset_base` is text's position in the whole input.  The final line
/// may lack a trailing newline.
template <typename Fn>
void for_each_line(std::string_view text, std::uint64_t offset_base, Fn fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    fn(text.substr(pos, eol - pos), offset_base + pos);
    pos = eol + 1;
  }
}
}  // namespace

void StringMatchSpec::map(const mr::TextChunk& chunk,
                          mr::Emitter<Key, Value>& emit) const {
  // Lines shorter than every key cannot match; skip them before paying
  // keys.size() substring searches.
  std::size_t min_key_len = std::string_view::npos;
  for (const auto& key : keys) min_key_len = std::min(min_key_len, key.size());
  for_each_line(chunk.text, chunk.offset,
                [&](std::string_view line, std::uint64_t offset) {
                  if (line.size() < min_key_len) return;
                  for (std::size_t k = 0; k < keys.size(); ++k) {
                    if (line.find(keys[k]) != std::string_view::npos) {
                      emit.emit(offset, static_cast<Value>(k));
                    }
                  }
                });
}

std::vector<Match> stringmatch_sequential(
    std::string_view text, const std::vector<std::string>& keys) {
  std::vector<Match> matches;
  for_each_line(text, 0, [&](std::string_view line, std::uint64_t offset) {
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (line.find(keys[k]) != std::string_view::npos) {
        matches.push_back(Match{offset, static_cast<std::uint32_t>(k)});
      }
    }
  });
  std::sort(matches.begin(), matches.end());
  return matches;
}

std::vector<Match> to_sorted_matches(const std::vector<MatchPair>& pairs) {
  std::vector<Match> matches;
  matches.reserve(pairs.size());
  for (const auto& kv : pairs) {
    matches.push_back(Match{kv.key, kv.value});
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace mcsd::apps
