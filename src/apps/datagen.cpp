#include "apps/datagen.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/random.hpp"

namespace mcsd::apps {

std::vector<std::string> generate_vocabulary(std::size_t count,
                                             std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::string> vocab;
  vocab.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Word lengths 3..12, roughly geometric like English.
    const auto length = static_cast<std::size_t>(3 + rng.next_below(10));
    std::string word;
    word.reserve(length);
    for (std::size_t j = 0; j < length; ++j) {
      word.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    vocab.push_back(std::move(word));
  }
  return vocab;
}

std::string generate_corpus(const CorpusOptions& options) {
  if (options.vocabulary == 0) {
    throw std::invalid_argument("corpus vocabulary must be > 0");
  }
  const std::vector<std::string> vocab =
      generate_vocabulary(options.vocabulary, options.seed ^ 0xC0FFEE);
  const ZipfSampler zipf{options.vocabulary, options.zipf_s};
  Rng rng{options.seed};

  std::string out;
  out.reserve(options.bytes + 16);
  std::size_t words_on_line = 0;
  while (out.size() < options.bytes) {
    const std::string& word = vocab[zipf.sample(rng)];
    out += word;
    ++words_on_line;
    // Lines average words_per_line words (uniform jitter +-50%).
    const std::size_t line_target =
        options.words_per_line / 2 +
        static_cast<std::size_t>(rng.next_below(options.words_per_line + 1));
    if (words_on_line >= std::max<std::size_t>(line_target, 1)) {
      out += '\n';
      words_on_line = 0;
    } else {
      out += ' ';
    }
  }
  if (out.empty() || out.back() != '\n') out += '\n';
  return out;
}

std::string generate_line_file(const LineFileOptions& options) {
  Rng rng{options.seed};
  std::string out;
  out.reserve(options.bytes + options.line_length + 2);
  while (out.size() < options.bytes) {
    // Line lengths jitter +-50% around the average.
    const std::size_t length =
        options.line_length / 2 +
        static_cast<std::size_t>(rng.next_below(options.line_length + 1));
    for (std::size_t i = 0; i < std::max<std::size_t>(length, 1); ++i) {
      out.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> generate_and_plant_keys(std::string& line_file,
                                                 const KeysOptions& options) {
  if (options.key_length == 0 || options.count == 0) {
    throw std::invalid_argument("keys need count > 0 and key_length > 0");
  }
  Rng rng{options.seed};
  std::vector<std::string> keys;
  keys.reserve(options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    std::string key;
    key.reserve(options.key_length);
    // Keys use uppercase so they cannot occur in the lowercase line file
    // by accident — every match is a planted one, making expected match
    // counts exact in tests.
    for (std::size_t j = 0; j < options.key_length; ++j) {
      key.push_back(static_cast<char>('A' + rng.next_below(26)));
    }
    keys.push_back(std::move(key));
  }

  // Walk lines; plant a key into a line with probability plant_rate.
  std::size_t pos = 0;
  while (pos < line_file.size()) {
    std::size_t eol = line_file.find('\n', pos);
    if (eol == std::string::npos) eol = line_file.size();
    const std::size_t line_len = eol - pos;
    if (line_len >= options.key_length &&
        rng.next_double() < options.plant_rate) {
      const std::string& key =
          keys[static_cast<std::size_t>(rng.next_below(options.count))];
      const std::size_t slot = pos + static_cast<std::size_t>(rng.next_below(
                                         line_len - options.key_length + 1));
      line_file.replace(slot, key.size(), key);
    }
    pos = eol + 1;
  }
  return keys;
}

Matrix generate_matrix(std::size_t rows, std::size_t cols,
                       std::uint64_t seed) {
  Matrix m{rows, cols};
  Rng rng{seed};
  for (double& v : m.data()) {
    v = rng.next_double() * 2.0 - 1.0;
  }
  return m;
}

}  // namespace mcsd::apps
