#include "apps/wordcount.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "core/strings.hpp"

namespace mcsd::apps {

namespace {
inline char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

void WordCountSpec::map(const mr::TextChunk& chunk,
                        mr::Emitter<Key, Value>& emit) const {
  const std::string_view text = chunk.text;
  std::size_t i = 0;
  std::string word;  // reused scratch; allocates only for long mixed-case words
  while (i < text.size()) {
    while (i < text.size() && !is_word_char(text[i])) ++i;
    const std::size_t start = i;
    bool has_upper = false;
    while (i < text.size() && is_word_char(text[i])) {
      has_upper |= text[i] >= 'A' && text[i] <= 'Z';
      ++i;
    }
    if (i == start) continue;
    if (!has_upper) {
      // Emit a view straight into the chunk text: the emitter only
      // materialises an owned key on first insert of a new word.
      emit.emit(text.substr(start, i - start), 1);
    } else {
      word.assign(text.substr(start, i - start));
      for (char& c : word) c = lower(c);
      emit.emit(std::string_view{word}, 1);
    }
  }
}

std::vector<WordCount> wordcount_sequential(std::string_view text) {
  std::unordered_map<std::string, std::uint64_t> counts;
  std::size_t i = 0;
  std::string word;
  while (i < text.size()) {
    while (i < text.size() && !is_word_char(text[i])) ++i;
    word.clear();
    while (i < text.size() && is_word_char(text[i])) {
      word.push_back(lower(text[i]));
      ++i;
    }
    if (!word.empty()) ++counts[word];
  }
  std::vector<WordCount> out;
  out.reserve(counts.size());
  for (auto& [word_key, count] : counts) {
    out.push_back(WordCount{word_key, count});
  }
  std::sort(out.begin(), out.end(),
            [](const WordCount& a, const WordCount& b) { return a.key < b.key; });
  return out;
}

void sort_by_frequency_desc(std::vector<WordCount>& counts) {
  std::sort(counts.begin(), counts.end(),
            [](const WordCount& a, const WordCount& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key < b.key;
            });
}

std::uint64_t total_occurrences(const std::vector<WordCount>& counts) {
  std::uint64_t total = 0;
  for (const auto& kv : counts) total += kv.value;
  return total;
}

}  // namespace mcsd::apps
