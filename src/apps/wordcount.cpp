#include "apps/wordcount.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <unordered_map>

#include "core/strings.hpp"

namespace mcsd::apps {

namespace {
inline char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

// The map inner loop is fully SWAR/batched: lower-case the chunk once
// (8 bytes per step), extract word runs from 64-byte class bitmasks, and
// hand tokens to the emitter in batches so key hashing runs four FNV
// streams wide and combiner probes overlap their cache misses.  Output is
// byte-identical to the scalar loop wordcount_sequential keeps as the
// reference (pinned by property tests).
void WordCountSpec::map(const mr::TextChunk& chunk,
                        mr::Emitter<Key, Value>& emit) const {
  using Clock = std::chrono::steady_clock;
  mr::EmitAttribution* attr = emit.attribution();
  const auto map_start = attr ? Clock::now() : Clock::time_point{};
  const std::uint64_t emit_ns_before =
      attr ? attr->hash_ns + attr->probe_ns : 0;

  // One lower-case pass over the whole chunk instead of per-token case
  // fixing; the buffer is worker-private and reused across chunks.  Views
  // into it only need to live through the emit calls below — the emitter
  // copies first-seen keys into its arena.
  thread_local std::vector<char> lowered;
  to_lower_ascii(chunk.text, lowered);
  const std::string_view text{lowered.data(), lowered.size()};

  std::array<std::string_view, mr::Emitter<Key, Value>::kMaxBatch> batch;
  std::size_t filled = 0;
  for_each_word(text, [&](std::string_view token) {
    batch[filled++] = token;
    if (filled == batch.size()) {
      emit.emit_batch(std::span<const std::string_view>{batch.data(), filled},
                      1);
      filled = 0;
    }
  });
  if (filled != 0) {
    emit.emit_batch(std::span<const std::string_view>{batch.data(), filled},
                    1);
  }

  if (attr != nullptr) {
    // Tokenize time = this call's wall time minus what the emitter just
    // booked to hashing and probing.
    const auto total_ns = static_cast<std::uint64_t>(
        std::chrono::nanoseconds(Clock::now() - map_start).count());
    const std::uint64_t emit_ns =
        attr->hash_ns + attr->probe_ns - emit_ns_before;
    attr->tokenize_ns += total_ns > emit_ns ? total_ns - emit_ns : 0;
  }
}

std::vector<WordCount> wordcount_sequential(std::string_view text) {
  std::unordered_map<std::string, std::uint64_t> counts;
  std::size_t i = 0;
  std::string word;
  while (i < text.size()) {
    while (i < text.size() && !is_word_char(text[i])) ++i;
    word.clear();
    while (i < text.size() && is_word_char(text[i])) {
      word.push_back(lower(text[i]));
      ++i;
    }
    if (!word.empty()) ++counts[word];
  }
  std::vector<WordCount> out;
  out.reserve(counts.size());
  for (auto& [word_key, count] : counts) {
    out.push_back(WordCount{word_key, count});
  }
  std::sort(out.begin(), out.end(),
            [](const WordCount& a, const WordCount& b) { return a.key < b.key; });
  return out;
}

void sort_by_frequency_desc(std::vector<WordCount>& counts) {
  std::sort(counts.begin(), counts.end(),
            [](const WordCount& a, const WordCount& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key < b.key;
            });
}

std::uint64_t total_occurrences(const std::vector<WordCount>& counts) {
  std::uint64_t total = 0;
  for (const auto& kv : counts) total += kv.value;
  return total;
}

}  // namespace mcsd::apps
