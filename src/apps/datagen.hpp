// Synthetic workload generators.
//
// The paper feeds WC/SM real multi-hundred-megabyte files; we cannot ship
// those, so these generators produce statistically similar substitutes:
//   * a text corpus with a Zipf word-frequency distribution (real prose is
//     Zipfian, which is what stresses reduce-key skew in WC);
//   * an "encrypt" line file plus a "keys" file with a controllable
//     planted-match rate for SM;
//   * dense uniform random matrices for MM.
// All generators are deterministic in their seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/matmul.hpp"

namespace mcsd::apps {

struct CorpusOptions {
  std::uint64_t bytes = 1 << 20;     ///< approximate output size
  std::size_t vocabulary = 10'000;   ///< distinct words
  double zipf_s = 1.05;              ///< Zipf exponent (≈ natural language)
  std::size_t words_per_line = 12;   ///< average line length
  std::uint64_t seed = 42;
};

/// Generates pseudo-words "w0".."wN" spellings of varying length, so word
/// sizes (and hence key sizes) vary like real text.
std::vector<std::string> generate_vocabulary(std::size_t count,
                                             std::uint64_t seed);

/// A whitespace/newline-separated text corpus, Zipf-distributed words.
/// Output length is within one word of `options.bytes`.
std::string generate_corpus(const CorpusOptions& options);

struct LineFileOptions {
  std::uint64_t bytes = 1 << 20;  ///< approximate output size
  std::size_t line_length = 64;   ///< average characters per line
  std::uint64_t seed = 7;
};

/// The SM "encrypt" file: lines of random lowercase characters.
std::string generate_line_file(const LineFileOptions& options);

struct KeysOptions {
  std::size_t count = 8;         ///< number of target keys
  std::size_t key_length = 6;    ///< characters per key
  double plant_rate = 0.01;      ///< fraction of lines given a planted key
  std::uint64_t seed = 13;
};

/// Generates SM target keys and plants them into `line_file` at the
/// requested rate (so matches exist deterministically).  Returns the keys;
/// `line_file` is modified in place (planting overwrites a key-sized span
/// inside a line, never a newline).
std::vector<std::string> generate_and_plant_keys(std::string& line_file,
                                                 const KeysOptions& options);

/// Dense matrix with entries uniform in [-1, 1).
Matrix generate_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed);

}  // namespace mcsd::apps
