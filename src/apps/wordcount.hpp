// Word Count (WC) — the paper's first benchmark application.
//
// "It counts the frequency of occurrence for each word in a set of files.
// The Map tasks process different sections of the input files and return
// intermediate data <key, value> that consist of a word and a value of 1.
// Then the Reduce tasks add up the values for each identity word.
// Finally, the words are sorted and printed out in accordance with the
// frequency in decreasing order."  (Section V-A)
//
// A word is a maximal run of ASCII alphanumerics, lower-cased.  The spec
// carries a combine hook (sums map-side) so intermediate volume stays
// bounded; the paper's 3x-of-input footprint estimate is modelled in the
// simulator, while the functional engine enforces whatever budget the
// caller sets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/emitter.hpp"
#include "mapreduce/splitter.hpp"
#include "mapreduce/types.hpp"

namespace mcsd::apps {

using WordCount = mr::KV<std::string, std::uint64_t>;

struct WordCountSpec {
  using Key = std::string;
  using Value = std::uint64_t;

  void map(const mr::TextChunk& chunk, mr::Emitter<Key, Value>& emit) const;

  // Takes the word as a view so emit-time combining can fold against the
  // emitter's arena-stored key without materialising a std::string.
  Value combine(std::string_view /*word*/, std::span<const Value> counts) const {
    Value sum = 0;
    for (Value c : counts) sum += c;
    return sum;
  }

  Value reduce(const Key& word, std::span<const Value> counts) const {
    return combine(word, counts);
  }
};

/// Reference implementation: single-threaded hash-map count.
std::vector<WordCount> wordcount_sequential(std::string_view text);

/// Paper output order: frequency decreasing, ties by word ascending.
void sort_by_frequency_desc(std::vector<WordCount>& counts);

/// Total number of word occurrences in `counts` (sum of values).
std::uint64_t total_occurrences(const std::vector<WordCount>& counts);

}  // namespace mcsd::apps
