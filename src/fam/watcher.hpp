// File-alteration monitor.
//
// The paper's smartFAM is built on Linux inotify; over NFS, though,
// inotify only fires for *local* modifications, so real deployments poll
// (which is what NFS-aware FAM implementations, including SGI's original
// `fam`, do for remote files).  We therefore implement the portable
// polling strategy directly: each watched file's (mtime, size, content
// hash) triple is sampled on an interval, and a change fires the
// callback.  The content hash catches same-size same-second rewrites
// that mtime granularity would miss.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcsd::obs {
class Histogram;
}  // namespace mcsd::obs

namespace mcsd::fam {

/// Fired with the path of a created or modified watched file.
using ChangeCallback = std::function<void(const std::filesystem::path&)>;

/// Common interface of the two monitor backends: the portable polling
/// FileWatcher (works over NFS) and the Linux InotifyWatcher (the
/// paper's mechanism; local filesystems only).
class Watcher {
 public:
  virtual ~Watcher() = default;
  virtual void start() = 0;
  virtual void stop() = 0;
  [[nodiscard]] virtual std::uint64_t events_fired() const noexcept = 0;
};

class FileWatcher final : public Watcher {
 public:
  /// Watches files directly inside `directory` (non-recursive, matching
  /// the paper's flat log-file folder).  `poll_interval` trades latency
  /// for syscall load; tests use ~1 ms, deployments a few ms.
  FileWatcher(std::filesystem::path directory,
              std::chrono::milliseconds poll_interval, ChangeCallback on_change);
  ~FileWatcher();

  FileWatcher(const FileWatcher&) = delete;
  FileWatcher& operator=(const FileWatcher&) = delete;

  /// Starts the polling thread.  Idempotent.
  void start() override;
  /// Stops and joins.  Idempotent; called by the destructor.
  void stop() override;

  /// Performs one synchronous poll pass on the caller's thread —
  /// deterministic alternative for tests and single-threaded drivers.
  void poll_once();

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

  /// Number of change events fired so far.
  [[nodiscard]] std::uint64_t events_fired() const noexcept override {
    return events_fired_.load(std::memory_order_relaxed);
  }

 private:
  struct Fingerprint {
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
    std::uint64_t content_hash = 0;

    friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  };

  void run();
  void poll_once_internal(bool fire);
  static Fingerprint fingerprint(const std::filesystem::path& path);

  std::filesystem::path directory_;
  std::chrono::milliseconds poll_interval_;
  ChangeCallback on_change_;
  /// Poll-pass latency histogram, labelled with the configured interval
  /// ("fam.watcher_poll_us(interval=2ms)") so sweeps over the
  /// core/config-exposed interval stay distinguishable in one registry.
  /// Null when the obs subsystem is compiled out.
  obs::Histogram* poll_histogram_ = nullptr;

  std::mutex mutex_;  ///< guards seen_ against start/stop races
  std::map<std::string, Fingerprint> seen_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> events_fired_{0};
};

}  // namespace mcsd::fam
