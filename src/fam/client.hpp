// The host-node side of smartFAM (Fig. 5, "Returning results ... to a
// host node").
//
// Client::invoke writes a request record into the module's log file and
// waits for the daemon's response record with the matching sequence
// number.  One outstanding request per module at a time — the log file
// holds a single record — enforced with a per-module mutex, so concurrent
// callers serialise instead of clobbering each other.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "fam/protocol.hpp"

namespace mcsd::fam {

struct ClientOptions {
  std::filesystem::path log_dir;
  /// How often the host-side watcher re-reads the log file while waiting.
  std::chrono::milliseconds poll_interval{1};
  /// Give up on one attempt after this long without a response.
  std::chrono::milliseconds timeout{10'000};
  /// Total attempts per invoke (>= 1).  A retry re-reads the log to
  /// re-seed the sequence counter, then re-sends under a fresh (higher)
  /// seq — safe because the daemon dedupes by seq and one log file holds
  /// a single in-flight request.  Retries paper over a storage node that
  /// was still booting, a request record lost to a crash or suppressed
  /// watcher event, a response clobbered by another host's request, and
  /// transient I/O failures writing the request itself.  On the sharded
  /// channel a retry simply re-sends under the slot's next seq (no
  /// re-seeding needed: per-client seq spaces cannot collide).
  int max_attempts = 1;
  /// Tenant label stamped on rev-2 requests for daemon-side QoS
  /// accounting ("" = the default tenant).
  std::string tenant;
  /// Pin the rev-1 single-record module-log channel even when the daemon
  /// advertises the sharded mailbox — A/B baselines and the legacy
  /// contention tests.
  bool force_legacy = false;
  /// How many typed retry-after backpressure rejections one invoke
  /// absorbs (honoured with jittered exponential backoff) before
  /// surfacing kUnavailable.  Separate from max_attempts: a rejection is
  /// the daemon talking, not a lost request.
  int max_backpressure_retries = 10;
};

/// Per-invoke metadata the caller may opt into (tools print it, the soak
/// harness asserts on it).  Filled from the successful response record.
struct InvokeInfo {
  /// Result-cache participation reported by the daemon (kNone when the
  /// invocation was not cacheable or the daemon runs without a cache).
  CacheState cache = CacheState::kNone;
  /// Cache entry epoch (0 = absent); see Record::cache_epoch.
  std::uint64_t cache_epoch = 0;
  /// Request write .. response observed, as measured by this client.
  double round_trip_seconds = 0.0;
  /// Rev 2: how many coalesced requests shared this module run (1 =
  /// solo run, 0 = legacy channel / daemon without the field).
  std::uint64_t waiters = 0;
  /// Rev 2: typed backpressure rejections absorbed before this invoke
  /// succeeded.
  int backpressure_retries = 0;
  /// True when the invoke travelled the sharded mailbox channel.
  bool sharded = false;
};

class Client {
 public:
  explicit Client(ClientOptions options);

  /// Offloads one invocation: writes the request, blocks until the
  /// response arrives (or timeout).  Returns the module's result map, or
  /// the module's error / kTimeout / kProtocolError.  `info`, when
  /// non-null, receives per-invoke metadata on success.
  Result<KeyValueMap> invoke(std::string_view module,
                             const KeyValueMap& params,
                             InvokeInfo* info = nullptr);

  /// True if the module's log file exists — i.e. the daemon preloaded it.
  [[nodiscard]] bool module_available(std::string_view module) const;

  [[nodiscard]] std::uint64_t invocations() const noexcept {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  /// Which channel this client speaks — discovered lazily from the
  /// daemon's `channel.mcsd` manifest.
  enum class Channel : std::uint8_t {
    kUnknown,  ///< no manifest seen yet; rev-1 used until one appears
    kLegacy,   ///< forced, or the manifest is unusable
    kSharded,  ///< rev-2 mailbox channel
  };

  /// One concurrent-invoke identity on the sharded channel: a unique
  /// client id (fresh seq space, so cross-client collisions vanish by
  /// construction) plus its private reply file.  Slots are pooled and
  /// reused across invokes; each holds at most one request in flight.
  struct Slot {
    std::uint64_t client_id = 0;
    std::uint64_t next_seq = 1;
    /// Byte cursor into the append-only reply log: replies already
    /// decoded are never re-read.
    std::uint64_t reply_offset = 0;
  };

  /// Reads the current record's seq (0 when the file is empty/comment).
  std::uint64_t current_seq(const std::filesystem::path& log) const;

  /// Probes the channel manifest (result cached once conclusive).
  Channel resolve_channel(std::size_t& shards);

  Result<KeyValueMap> invoke_legacy(std::string_view module,
                                    const KeyValueMap& params,
                                    InvokeInfo* info);
  Result<KeyValueMap> invoke_sharded(std::string_view module,
                                     const KeyValueMap& params,
                                     InvokeInfo* info, std::size_t shards);

  ClientOptions options_;
  std::mutex mutex_;  ///< guards per_module_, channel state, free_slots_
  struct PerModule {
    std::mutex in_flight;
    std::uint64_t next_seq = 0;  ///< 0 = not yet initialised from the file
  };
  std::map<std::string, std::unique_ptr<PerModule>, std::less<>> per_module_;
  Channel channel_ = Channel::kUnknown;
  std::size_t shard_count_ = 0;
  std::vector<std::unique_ptr<Slot>> free_slots_;
  std::atomic<std::uint64_t> invocations_{0};
};

}  // namespace mcsd::fam
