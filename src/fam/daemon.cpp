#include "fam/daemon.hpp"

#include "core/io.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"
#include "core/units.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace mcsd::fam {

namespace fs = std::filesystem;

Result<DaemonOptions> daemon_options_from_config(const KeyValueMap& config) {
  DaemonOptions options;
  for (const auto& [key, value] : config.entries()) {
    if (key == "log_dir") {
      options.log_dir = value;
    } else if (key == "poll_interval_ms") {
      auto ms = config.get_int(key);
      if (!ms) return ms.error();
      if (ms.value() < 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "poll_interval_ms must be >= 1"};
      }
      options.poll_interval = std::chrono::milliseconds{ms.value()};
    } else if (key == "dispatch_threads") {
      auto threads = config.get_int(key);
      if (!threads) return threads.error();
      if (threads.value() < 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "dispatch_threads must be >= 1"};
      }
      options.dispatch_threads = static_cast<std::size_t>(threads.value());
    } else if (key == "pool_bytes") {
      auto bytes = parse_bytes(value);
      if (!bytes) return bytes.error();
      if (bytes.value() == 0) {
        return Error{ErrorCode::kInvalidArgument, "pool_bytes must be > 0"};
      }
      options.pool_bytes = static_cast<std::size_t>(bytes.value());
    } else if (key == "result_cache_bytes") {
      auto bytes = parse_bytes(value);
      if (!bytes) return bytes.error();
      options.result_cache_bytes = static_cast<std::size_t>(bytes.value());
    } else if (key == "backend") {
      if (value == "polling") {
        options.backend = WatcherBackend::kPolling;
      } else if (value == "inotify") {
        options.backend = WatcherBackend::kInotify;
      } else {
        return Error{ErrorCode::kInvalidArgument,
                     "backend must be polling or inotify, got: " + value};
      }
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown daemon config key: " + key};
    }
  }
  return options;
}

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  storage::PoolOptions pool_options;
  if (options_.pool_bytes != 0) pool_options.pool_bytes = options_.pool_bytes;
  pool_ = std::make_shared<storage::BufferManager>(pool_options);
  if (options_.result_cache_bytes != 0) {
    result_cache_ = std::make_unique<cache::ResultCache>(
        cache::CacheOptions{options_.result_cache_bytes});
  }
  fs::create_directories(options_.log_dir);
  const auto callback = [this](const fs::path& path) {
    on_file_change(path);
  };
  if (options_.backend == WatcherBackend::kInotify) {
    auto inotify = InotifyWatcher::create(options_.log_dir, callback);
    if (inotify.is_ok()) {
      watcher_ = std::move(inotify).value();
      active_backend_ = WatcherBackend::kInotify;
      return;
    }
    MCSD_LOG(kWarn, "fam.daemon")
        << "inotify unavailable (" << inotify.error().to_string()
        << "); falling back to polling";
  }
  watcher_ = std::make_unique<FileWatcher>(options_.log_dir,
                                           options_.poll_interval, callback);
  active_backend_ = WatcherBackend::kPolling;
}

Daemon::~Daemon() { stop(); }

Status Daemon::preload(std::shared_ptr<Module> module) {
  if (!module) {
    return Status{ErrorCode::kInvalidArgument, "null module"};
  }
  const std::string name{module->name()};
  if (Status s = registry_.add(std::move(module)); !s) return s;
  const fs::path log = options_.log_dir / log_file_name(name);
  if (!fs::exists(log)) {
    if (Status s = write_file_atomic(log, "# mcsd module log: " + name + "\n");
        !s) {
      return s;
    }
  }
  MCSD_LOG(kInfo, "fam.daemon") << "preloaded module " << name;
  return Status::ok();
}

void Daemon::start() {
  std::lock_guard lock{lifecycle_mutex_};
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < std::max<std::size_t>(options_.dispatch_threads, 1);
       ++i) {
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  }
  watcher_->start();
}

void Daemon::stop() {
  std::lock_guard lock{lifecycle_mutex_};
  if (!started_) return;
  watcher_->stop();
  pending_.close();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  started_ = false;
}

void Daemon::on_file_change(const fs::path& path) {
  auto contents = read_file(path);
  if (!contents) return;  // raced with a writer; next poll retries
  auto record = decode_record(contents.value());
  if (!record) {
    // Comment-only freshly-created log files and torn writes land here.
    return;
  }
  if (record.value().type != RecordType::kRequest) return;
  // Defense in depth against staging/foreign files: the record must live
  // in the log file its module owns.
  if (path.filename().string() != log_file_name(record.value().module)) {
    return;
  }
  enqueue_request(std::move(record).value());
}

void Daemon::enqueue_request(Record request) {
  std::uint64_t stale_last = 0;
  {
    std::lock_guard lock{seq_mutex_};
    auto& last = last_handled_seq_[request.module];
    if (request.seq > last) {
      last = request.seq;
    } else if (request.seq == last) {
      // Duplicate observation of the request currently being handled
      // (watcher fired twice, or the conflict guard rescued a request
      // the watcher had also seen).  Its response is already on the way.
      return;
    } else {
      // The seq went backwards: another host raced past this one on the
      // shared log.  Reply with an error carrying the high-water mark so
      // the loser re-seeds instead of waiting out its timeout.
      stale_last = last;
    }
  }
  if (!pending_.push(Work{std::move(request), stale_last})) {
    // stop() closed the queue; the client recovers by retrying against
    // the restarted daemon.
    dropped_on_shutdown_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.daemon_dropped_on_shutdown", 1);
  }
}

void Daemon::dispatch_loop() {
  while (auto work = pending_.pop()) {
    if (work->stale_last_seq != 0) {
      handle_stale(work->request, work->stale_last_seq);
    } else {
      handle_request(work->request);
    }
  }
}

void Daemon::handle_request(const Record& request) {
  MCSD_OBS_SPAN("fam", "fam.dispatch:" + request.module);
  Stopwatch dispatch;
  Record response;
  response.type = RecordType::kResponse;
  response.seq = request.seq;
  response.module = request.module;

  if (auto module = registry_.find(request.module)) {
    // Result-cache probe.  A module that declares its invocation a pure
    // function of input files (Module::cache_inputs) can have a repeat
    // request answered from memory: fingerprint the inputs' on-disk
    // identity (three stat calls, no corpus read) and look the result up.
    // A fingerprint mismatch inside get() doubles as invalidation.  If an
    // input cannot be stat'ed the probe is skipped and the module runs —
    // it owns reporting the missing file.
    std::optional<std::string> cache_params;
    std::uint64_t fingerprint = 0;
    if (result_cache_) {
      if (auto inputs = module->cache_inputs(request.payload)) {
        if (auto fp = cache::fingerprint_inputs(*inputs)) {
          fingerprint = fp.value();
          cache_params = request.payload.serialize();
          if (auto hit = result_cache_->get(request.module, *cache_params,
                                            fingerprint)) {
            response.ok = true;
            response.payload = std::move(hit->result);
            response.cache = CacheState::kHit;
            response.cache_epoch = hit->epoch;
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            MCSD_OBS_COUNT("fam.cache_hits", 1);
          }
        }
      }
    }

    if (response.cache != CacheState::kHit) {
      // A module that throws must not take the dispatch thread down — the
      // host gets an error response and the daemon keeps serving.
      try {
        auto result = module->invoke(request.payload);
        if (result.is_ok()) {
          response.ok = true;
          response.payload = std::move(result).value();
        } else {
          response.ok = false;
          response.error_message = result.error().to_string();
        }
      } catch (const std::exception& e) {
        response.ok = false;
        response.error_message =
            "module threw: " + std::string{e.what()};
      } catch (...) {
        response.ok = false;
        response.error_message = "module threw a non-std exception";
      }
      if (cache_params) {
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
        MCSD_OBS_COUNT("fam.cache_misses", 1);
        if (response.ok) {
          response.cache = CacheState::kMiss;
          response.cache_epoch = result_cache_->put(
              request.module, *cache_params, fingerprint, response.payload);
          const auto stats = result_cache_->stats();
          MCSD_OBS_GAUGE_SET("fam.cache_bytes",
                             static_cast<std::int64_t>(stats.bytes));
          MCSD_OBS_GAUGE_SET("fam.cache_evictions",
                             static_cast<std::int64_t>(stats.evictions));
        }
      }
    }
  } else {
    response.ok = false;
    response.error_message = "module not preloaded: " + request.module;
  }

  if (!response.ok) {
    errors_returned_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.daemon_errors", 1);
  }
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  MCSD_OBS_COUNT("fam.daemon_requests", 1);
  const auto dispatch_us =
      static_cast<std::uint64_t>(dispatch.elapsed_seconds() * 1e6);
  MCSD_OBS_HIST("fam.dispatch_us", "us", dispatch_us);
  if (response.cache == CacheState::kHit) {
    MCSD_OBS_HIST("fam.dispatch_hit_us", "us", dispatch_us);
  } else {
    MCSD_OBS_HIST("fam.dispatch_cold_us", "us", dispatch_us);
  }

  write_response(response);
}

void Daemon::handle_stale(const Record& request, std::uint64_t last_seq) {
  stale_replies_.fetch_add(1, std::memory_order_relaxed);
  MCSD_OBS_COUNT("fam.daemon_stale_replies", 1);
  Record response;
  response.type = RecordType::kResponse;
  response.seq = request.seq;
  response.module = request.module;
  response.ok = false;
  response.last_seq = last_seq;
  response.error_message =
      "stale request seq " + std::to_string(request.seq) +
      " (daemon already handled seq " + std::to_string(last_seq) + ")";
  write_response(response);
}

void Daemon::write_response(const Record& response) {
  const fs::path log = options_.log_dir / log_file_name(response.module);
  Status last_write = Status::ok();
  for (int attempt = 0; attempt < kResponseWriteAttempts; ++attempt) {
    // Conflict guard: the log is a single-record channel, and the host
    // may have replaced our request with a *newer* one while the module
    // ran.  Writing blindly would destroy that request — and a polling
    // watcher, which samples only the latest state, would never replay
    // it.  Lose gracefully instead: drop this response (its client
    // retries) and put the newer request back through the dispatch gate.
    if (auto contents = read_file(log)) {
      if (auto current = decode_record(contents.value());
          current.is_ok() && current.value().seq > response.seq) {
        response_conflicts_.fetch_add(1, std::memory_order_relaxed);
        MCSD_OBS_COUNT("fam.daemon_response_conflicts", 1);
        if (current.value().type == RecordType::kRequest) {
          // enqueue_request dedupes by seq, so if the watcher also saw
          // this request the double observation cannot double-dispatch.
          enqueue_request(std::move(current).value());
        }
        return;
      }
    }
    // The read-check-write above is not atomic; a request landing inside
    // that window is still clobbered.  The client-side retry covers the
    // residual race — see DESIGN.md's fault model for why the window
    // cannot close without giving up the single-record channel.
    last_write = write_file_atomic(log, encode_record(response));
    if (last_write) return;
  }
  MCSD_LOG(kError, "fam.daemon")
      << "cannot write response for " << response.module << " seq "
      << response.seq << " after " << kResponseWriteAttempts
      << " attempts: " << last_write.to_string();
}

}  // namespace mcsd::fam
