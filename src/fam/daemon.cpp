#include "fam/daemon.hpp"

#include "core/io.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"
#include "core/units.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace mcsd::fam {

namespace fs = std::filesystem;

Result<DaemonOptions> daemon_options_from_config(const KeyValueMap& config) {
  DaemonOptions options;
  for (const auto& [key, value] : config.entries()) {
    if (key == "log_dir") {
      options.log_dir = value;
    } else if (key == "poll_interval_ms") {
      auto ms = config.get_int(key);
      if (!ms) return ms.error();
      if (ms.value() < 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "poll_interval_ms must be >= 1"};
      }
      options.poll_interval = std::chrono::milliseconds{ms.value()};
    } else if (key == "dispatch_threads") {
      auto threads = config.get_int(key);
      if (!threads) return threads.error();
      if (threads.value() < 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "dispatch_threads must be >= 1"};
      }
      options.dispatch_threads = static_cast<std::size_t>(threads.value());
    } else if (key == "pool_bytes") {
      auto bytes = parse_bytes(value);
      if (!bytes) return bytes.error();
      if (bytes.value() == 0) {
        return Error{ErrorCode::kInvalidArgument, "pool_bytes must be > 0"};
      }
      options.pool_bytes = static_cast<std::size_t>(bytes.value());
    } else if (key == "result_cache_bytes") {
      auto bytes = parse_bytes(value);
      if (!bytes) return bytes.error();
      options.result_cache_bytes = static_cast<std::size_t>(bytes.value());
    } else if (key == "channel_shards") {
      auto shards = config.get_int(key);
      if (!shards) return shards.error();
      if (shards.value() < 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "channel_shards must be >= 0"};
      }
      options.channel_shards = static_cast<std::size_t>(shards.value());
    } else if (key == "admission_queue_limit") {
      auto limit = config.get_int(key);
      if (!limit) return limit.error();
      if (limit.value() < 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "admission_queue_limit must be >= 0"};
      }
      options.admission_queue_limit =
          static_cast<std::size_t>(limit.value());
    } else if (key == "drain_interval_ms") {
      auto ms = config.get_int(key);
      if (!ms) return ms.error();
      if (ms.value() < 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "drain_interval_ms must be >= 1"};
      }
      options.drain_interval = std::chrono::milliseconds{ms.value()};
    } else if (key == "backend") {
      if (value == "polling") {
        options.backend = WatcherBackend::kPolling;
      } else if (value == "inotify") {
        options.backend = WatcherBackend::kInotify;
      } else {
        return Error{ErrorCode::kInvalidArgument,
                     "backend must be polling or inotify, got: " + value};
      }
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown daemon config key: " + key};
    }
  }
  return options;
}

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  storage::PoolOptions pool_options;
  if (options_.pool_bytes != 0) pool_options.pool_bytes = options_.pool_bytes;
  pool_ = std::make_shared<storage::BufferManager>(pool_options);
  if (options_.result_cache_bytes != 0) {
    result_cache_ = std::make_unique<cache::ResultCache>(
        cache::CacheOptions{options_.result_cache_bytes});
  }
  fs::create_directories(options_.log_dir);
  if (options_.channel_shards != 0) {
    // The rev-2 sharded mailbox channel (DESIGN.md §13).  Mailboxes and
    // reply files live in subdirectories so the non-recursive rev-1
    // watchers never fingerprint the growing shard files or the per-
    // client reply fleet.
    fs::create_directories(options_.log_dir / kShardDirName);
    fs::create_directories(options_.log_dir / kReplyDirName);
    admission_ = std::make_unique<dispatch::AdmissionQueue>(
        options_.admission_queue_limit);
    shards_.resize(options_.channel_shards);
    for (std::size_t k = 0; k < options_.channel_shards; ++k) {
      shards_[k].path =
          options_.log_dir / kShardDirName / shard_file_name(k);
    }
    ChannelManifest manifest;
    manifest.shards = options_.channel_shards;
    if (Status s = write_file_atomic(options_.log_dir / kManifestFileName,
                                     encode_manifest(manifest));
        !s) {
      // Clients that cannot discover the manifest fall back to the
      // rev-1 channel, which this daemon keeps serving regardless.
      MCSD_LOG(kWarn, "fam.daemon")
          << "cannot write channel manifest: " << s.to_string();
    }
  }
  const auto callback = [this](const fs::path& path) {
    on_file_change(path);
  };
  if (options_.backend == WatcherBackend::kInotify) {
    auto inotify = InotifyWatcher::create(options_.log_dir, callback);
    if (inotify.is_ok()) {
      watcher_ = std::move(inotify).value();
      active_backend_ = WatcherBackend::kInotify;
      return;
    }
    MCSD_LOG(kWarn, "fam.daemon")
        << "inotify unavailable (" << inotify.error().to_string()
        << "); falling back to polling";
  }
  watcher_ = std::make_unique<FileWatcher>(options_.log_dir,
                                           options_.poll_interval, callback);
  active_backend_ = WatcherBackend::kPolling;
}

Daemon::~Daemon() { stop(); }

Status Daemon::preload(std::shared_ptr<Module> module) {
  if (!module) {
    return Status{ErrorCode::kInvalidArgument, "null module"};
  }
  const std::string name{module->name()};
  if (Status s = registry_.add(std::move(module)); !s) return s;
  const fs::path log = options_.log_dir / log_file_name(name);
  if (!fs::exists(log)) {
    if (Status s = write_file_atomic(log, "# mcsd module log: " + name + "\n");
        !s) {
      return s;
    }
  }
  MCSD_LOG(kInfo, "fam.daemon") << "preloaded module " << name;
  return Status::ok();
}

void Daemon::start() {
  std::lock_guard lock{lifecycle_mutex_};
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < std::max<std::size_t>(options_.dispatch_threads, 1);
       ++i) {
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  }
  if (admission_) {
    {
      std::lock_guard stop_lock{drain_stop_mutex_};
      drain_stop_ = false;
    }
    for (std::size_t i = 0;
         i < std::max<std::size_t>(options_.dispatch_threads, 1); ++i) {
      batch_workers_.emplace_back([this] { batch_loop(); });
    }
    drainer_ = std::thread{[this] { drain_loop(); }};
  }
  watcher_->start();
}

void Daemon::stop() {
  std::lock_guard lock{lifecycle_mutex_};
  if (!started_) return;
  watcher_->stop();
  if (admission_) {
    // Stop the drainer; its exit path runs one final pass over every
    // shard, so frames appended before stop() still get admitted, then
    // closes the admission queue so the batch workers drain what was
    // accepted and exit — same "stop() discards nothing" contract as
    // the rev-1 queue below.
    {
      std::lock_guard stop_lock{drain_stop_mutex_};
      drain_stop_ = true;
    }
    drain_stop_cv_.notify_all();
    if (drainer_.joinable()) drainer_.join();
    for (auto& t : batch_workers_) {
      if (t.joinable()) t.join();
    }
    batch_workers_.clear();
  }
  pending_.close();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  started_ = false;
}

void Daemon::on_file_change(const fs::path& path) {
  auto contents = read_file(path);
  if (!contents) return;  // raced with a writer; next poll retries
  auto record = decode_record(contents.value());
  if (!record) {
    // Comment-only freshly-created log files and torn writes land here.
    return;
  }
  if (record.value().type != RecordType::kRequest) return;
  // Defense in depth against staging/foreign files: the record must live
  // in the log file its module owns.
  if (path.filename().string() != log_file_name(record.value().module)) {
    return;
  }
  enqueue_request(std::move(record).value());
}

void Daemon::enqueue_request(Record request) {
  std::uint64_t stale_last = 0;
  {
    std::lock_guard lock{seq_mutex_};
    auto& last = last_handled_seq_[request.module];
    if (request.seq > last) {
      last = request.seq;
    } else if (request.seq == last) {
      // Duplicate observation of the request currently being handled
      // (watcher fired twice, or the conflict guard rescued a request
      // the watcher had also seen).  Its response is already on the way.
      return;
    } else {
      // The seq went backwards: another host raced past this one on the
      // shared log.  Reply with an error carrying the high-water mark so
      // the loser re-seeds instead of waiting out its timeout.
      stale_last = last;
    }
  }
  if (!pending_.push(Work{std::move(request), stale_last})) {
    // stop() closed the queue; the client recovers by retrying against
    // the restarted daemon.
    dropped_on_shutdown_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.daemon_dropped_on_shutdown", 1);
  }
}

void Daemon::dispatch_loop() {
  while (auto work = pending_.pop()) {
    if (work->stale_last_seq != 0) {
      handle_stale(work->request, work->stale_last_seq);
    } else {
      handle_request(work->request);
    }
  }
}

Daemon::ModuleRun Daemon::run_module(const Record& request) {
  ModuleRun run;
  auto module = registry_.find(request.module);
  if (!module) {
    run.ok = false;
    run.error_message = "module not preloaded: " + request.module;
    return run;
  }

  // Result-cache probe.  A module that declares its invocation a pure
  // function of input files (Module::cache_inputs) can have a repeat
  // request answered from memory: fingerprint the inputs' on-disk
  // identity (three stat calls, no corpus read) and look the result up.
  // A fingerprint mismatch inside get() doubles as invalidation.  If an
  // input cannot be stat'ed the probe is skipped and the module runs —
  // it owns reporting the missing file.
  std::optional<std::string> cache_params;
  std::uint64_t fingerprint = 0;
  if (result_cache_) {
    if (auto inputs = module->cache_inputs(request.payload)) {
      if (auto fp = cache::fingerprint_inputs(*inputs)) {
        fingerprint = fp.value();
        cache_params = request.payload.serialize();
        if (auto hit = result_cache_->get(request.module, *cache_params,
                                          fingerprint)) {
          run.ok = true;
          run.payload = std::move(hit->result);
          run.cache = CacheState::kHit;
          run.cache_epoch = hit->epoch;
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          MCSD_OBS_COUNT("fam.cache_hits", 1);
          return run;
        }
      }
    }
  }

  // A module that throws must not take the dispatch thread down — the
  // host gets an error response and the daemon keeps serving.
  try {
    auto result = module->invoke(request.payload);
    if (result.is_ok()) {
      run.ok = true;
      run.payload = std::move(result).value();
    } else {
      run.ok = false;
      run.error_message = result.error().to_string();
    }
  } catch (const std::exception& e) {
    run.ok = false;
    run.error_message = "module threw: " + std::string{e.what()};
  } catch (...) {
    run.ok = false;
    run.error_message = "module threw a non-std exception";
  }
  if (cache_params) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.cache_misses", 1);
    if (run.ok) {
      run.cache = CacheState::kMiss;
      run.cache_epoch = result_cache_->put(request.module, *cache_params,
                                           fingerprint, run.payload);
      const auto stats = result_cache_->stats();
      MCSD_OBS_GAUGE_SET("fam.cache_bytes",
                         static_cast<std::int64_t>(stats.bytes));
      MCSD_OBS_GAUGE_SET("fam.cache_evictions",
                         static_cast<std::int64_t>(stats.evictions));
    }
  }
  return run;
}

void Daemon::handle_request(const Record& request) {
  MCSD_OBS_SPAN("fam", "fam.dispatch:" + request.module);
  Stopwatch dispatch;

  ModuleRun run = run_module(request);

  Record response;
  response.type = RecordType::kResponse;
  response.seq = request.seq;
  response.module = request.module;
  response.ok = run.ok;
  response.error_message = std::move(run.error_message);
  response.payload = std::move(run.payload);
  response.cache = run.cache;
  response.cache_epoch = run.cache_epoch;

  if (!response.ok) {
    errors_returned_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.daemon_errors", 1);
  }
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  MCSD_OBS_COUNT("fam.daemon_requests", 1);
  const auto dispatch_us =
      static_cast<std::uint64_t>(dispatch.elapsed_seconds() * 1e6);
  MCSD_OBS_HIST("fam.dispatch_us", "us", dispatch_us);
  if (response.cache == CacheState::kHit) {
    MCSD_OBS_HIST("fam.dispatch_hit_us", "us", dispatch_us);
  } else {
    MCSD_OBS_HIST("fam.dispatch_cold_us", "us", dispatch_us);
  }

  write_response(response);
}

void Daemon::handle_stale(const Record& request, std::uint64_t last_seq) {
  stale_replies_.fetch_add(1, std::memory_order_relaxed);
  MCSD_OBS_COUNT("fam.daemon_stale_replies", 1);
  Record response;
  response.type = RecordType::kResponse;
  response.seq = request.seq;
  response.module = request.module;
  response.ok = false;
  response.last_seq = last_seq;
  response.error_message =
      "stale request seq " + std::to_string(request.seq) +
      " (daemon already handled seq " + std::to_string(last_seq) + ")";
  write_response(response);
}

void Daemon::write_response(const Record& response) {
  const fs::path log = options_.log_dir / log_file_name(response.module);
  Status last_write = Status::ok();
  for (int attempt = 0; attempt < kResponseWriteAttempts; ++attempt) {
    // Conflict guard: the log is a single-record channel, and the host
    // may have replaced our request with a *newer* one while the module
    // ran.  Writing blindly would destroy that request — and a polling
    // watcher, which samples only the latest state, would never replay
    // it.  Lose gracefully instead: drop this response (its client
    // retries) and put the newer request back through the dispatch gate.
    if (auto contents = read_file(log)) {
      if (auto current = decode_record(contents.value());
          current.is_ok() && current.value().seq > response.seq) {
        response_conflicts_.fetch_add(1, std::memory_order_relaxed);
        MCSD_OBS_COUNT("fam.daemon_response_conflicts", 1);
        if (current.value().type == RecordType::kRequest) {
          // enqueue_request dedupes by seq, so if the watcher also saw
          // this request the double observation cannot double-dispatch.
          enqueue_request(std::move(current).value());
        }
        return;
      }
    }
    // The read-check-write above is not atomic; a request landing inside
    // that window is still clobbered.  The client-side retry covers the
    // residual race — see DESIGN.md's fault model for why the window
    // cannot close without giving up the single-record channel.
    last_write = write_file_atomic(log, encode_record(response));
    if (last_write) return;
  }
  MCSD_LOG(kError, "fam.daemon")
      << "cannot write response for " << response.module << " seq "
      << response.seq << " after " << kResponseWriteAttempts
      << " attempts: " << last_write.to_string();
}

// --- Rev-2 sharded mailbox channel -------------------------------------

std::vector<dispatch::ShardDrain> Daemon::shard_stats() const {
  std::lock_guard lock{shard_mutex_};
  return shards_;
}

void Daemon::drain_loop() {
  std::unique_lock stop_lock{drain_stop_mutex_, std::defer_lock};
  for (;;) {
    stop_lock.lock();
    const bool stopping = drain_stop_cv_.wait_for(
        stop_lock, options_.drain_interval, [this] { return drain_stop_; });
    stop_lock.unlock();
    drain_pass();
    if (stopping) break;  // the pass above was the final one
  }
  admission_->close();
}

void Daemon::drain_pass() {
  MCSD_OBS_SPAN("fam", "fam.serve.drain_pass");
  std::vector<Record> drained;
  {
    // Every wakeup visits every shard in order — round-robin fairness by
    // construction; a hot shard cannot push a quiet one past its next
    // visit.
    std::lock_guard lock{shard_mutex_};
    for (dispatch::ShardDrain& shard : shards_) {
      std::vector<Record> requests = dispatch::drain_shard(shard);
      drained.insert(drained.end(),
                     std::make_move_iterator(requests.begin()),
                     std::make_move_iterator(requests.end()));
    }
  }
  for (Record& request : drained) {
    admit(std::move(request));
  }
  if (admission_) {
    MCSD_OBS_GAUGE_SET("fam.serve.queue_depth",
                       static_cast<std::int64_t>(admission_->depth()));
  }
}

void Daemon::admit(Record request) {
  const std::string tenant{dispatch::tenant_or_default(request.tenant)};

  // The coalescing identity is exactly the result cache's key: module +
  // canonical params + input fingerprint.  Requests that cannot prove
  // input identity (uncacheable modules, un-stat-able inputs) never
  // coalesce — they get their own run.
  std::string coalesce_key;
  if (result_cache_) {
    if (auto module = registry_.find(request.module)) {
      if (auto inputs = module->cache_inputs(request.payload)) {
        if (auto fp = cache::fingerprint_inputs(*inputs)) {
          coalesce_key = request.module;
          coalesce_key += '\n';
          coalesce_key += request.payload.serialize();
          coalesce_key += '\n';
          coalesce_key += std::to_string(fp.value());
        }
      }
    }
  }

  dispatch::PendingRequest pending;
  pending.admitted_at = std::chrono::steady_clock::now();
  const std::uint64_t seq = request.seq;
  const std::uint64_t client = request.client_id;
  const std::string module_name = request.module;
  pending.request = std::move(request);

  switch (admission_->push(std::move(pending), std::move(coalesce_key))) {
    case dispatch::Admission::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      qos_.record_accepted(tenant);
      MCSD_OBS_COUNT("fam.serve.accepted", 1);
      break;
    case dispatch::Admission::kCoalesced:
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      qos_.record_coalesced(tenant);
      MCSD_OBS_COUNT("fam.serve.coalesced", 1);
      break;
    case dispatch::Admission::kSuperseded:
      superseded_.fetch_add(1, std::memory_order_relaxed);
      MCSD_OBS_COUNT("fam.serve.superseded", 1);
      break;
    case dispatch::Admission::kRejected: {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      qos_.record_rejected(tenant);
      MCSD_OBS_COUNT("fam.serve.rejected", 1);
      // Typed backpressure: tell the client how far to back off instead
      // of letting it burn its timeout and hammer the mailbox again.
      Record response;
      response.type = RecordType::kResponse;
      response.seq = seq;
      response.module = module_name;
      response.client_id = client;
      response.ok = false;
      response.retry_after_ms = admission_->retry_after_ms();
      response.error_message =
          "admission queue full; retry after " +
          std::to_string(response.retry_after_ms) + " ms";
      write_reply(response);
      break;
    }
    case dispatch::Admission::kStale:
      // Duplicate or out-of-order frame; the reply (if any is owed) is
      // already on its way.
      break;
    case dispatch::Admission::kClosed:
      dropped_on_shutdown_.fetch_add(1, std::memory_order_relaxed);
      MCSD_OBS_COUNT("fam.daemon_dropped_on_shutdown", 1);
      break;
  }
}

void Daemon::batch_loop() {
  while (auto batch = admission_->pop()) {
    handle_batch(std::move(*batch));
  }
}

void Daemon::handle_batch(dispatch::Batch batch) {
  const auto now = std::chrono::steady_clock::now();

  // Partition the waiters: tombstones (superseded in queue) are skipped
  // outright; requests that overstayed their deadline are shed with an
  // error reply rather than burning a module run whose client has
  // already given up.
  std::vector<dispatch::PendingRequest> live;
  live.reserve(batch.waiters.size());
  for (dispatch::PendingRequest& waiter : batch.waiters) {
    if (waiter.request.client_id == 0) continue;
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - waiter.admitted_at);
    if (waiter.request.deadline_ms != 0 &&
        static_cast<std::uint64_t>(waited.count()) >
            waiter.request.deadline_ms) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      qos_.record_deadline_shed(waiter.request.tenant);
      MCSD_OBS_COUNT("fam.serve.deadline_shed", 1);
      Record response;
      response.type = RecordType::kResponse;
      response.seq = waiter.request.seq;
      response.module = waiter.request.module;
      response.client_id = waiter.request.client_id;
      response.ok = false;
      response.error_message =
          "deadline exceeded in admission queue (" +
          std::to_string(waited.count()) + " ms > " +
          std::to_string(waiter.request.deadline_ms) + " ms)";
      errors_returned_.fetch_add(1, std::memory_order_relaxed);
      requests_handled_.fetch_add(1, std::memory_order_relaxed);
      write_reply(response);
      continue;
    }
    live.push_back(std::move(waiter));
  }
  if (live.empty()) return;

  // Same span name as the rev-1 path: a trace consumer sees one
  // "fam.dispatch:<module>" span per module run regardless of channel.
  MCSD_OBS_SPAN("fam", "fam.dispatch:" + live.front().request.module);
  Stopwatch dispatch_watch;
  // One module run fans out to every coalesced waiter; admission
  // guaranteed their (module, params, fingerprint) identities match, so
  // every waiter's response is byte-identical to the solo run it would
  // have gotten.
  ModuleRun run = run_module(live.front().request);
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  const auto dispatch_us =
      static_cast<std::uint64_t>(dispatch_watch.elapsed_seconds() * 1e6);
  MCSD_OBS_HIST("fam.dispatch_us", "us", dispatch_us);
  MCSD_OBS_HIST("fam.serve.batch_us", "us", dispatch_us);

  for (const dispatch::PendingRequest& waiter : live) {
    Record response;
    response.type = RecordType::kResponse;
    response.seq = waiter.request.seq;
    response.module = waiter.request.module;
    response.client_id = waiter.request.client_id;
    response.ok = run.ok;
    response.error_message = run.error_message;
    response.payload = run.payload;
    response.cache = run.cache;
    response.cache_epoch = run.cache_epoch;
    response.waiters = live.size();
    // Counters land before the reply does: the instant a client observes
    // its reply (and the test harness reads the counters) the request is
    // already counted.
    requests_handled_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.daemon_requests", 1);
    if (!run.ok) {
      errors_returned_.fetch_add(1, std::memory_order_relaxed);
      MCSD_OBS_COUNT("fam.daemon_errors", 1);
    }
    write_reply(response);
    const auto total_us =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - waiter.admitted_at)
                .count());
    qos_.record_completed(waiter.request.tenant, total_us);
  }
}

void Daemon::write_reply(const Record& response) {
  ReplySlot* slot = nullptr;
  {
    std::lock_guard lock{reply_mutex_};
    auto& entry = reply_slots_[response.client_id];
    if (!entry) entry = std::make_unique<ReplySlot>();
    slot = entry.get();
  }
  // Per-client serialisation: replies for one client are written in seq
  // order, and a reply for an older seq than the last one written is
  // suppressed — a late fan-out (the client superseded this request and
  // a newer reply already landed) must not clobber the reply the client
  // is actually polling for.
  std::lock_guard lock{slot->mutex};
  if (response.seq <= slot->last_seq) {
    reply_conflicts_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.serve.reply_conflicts", 1);
    return;
  }
  const fs::path reply = options_.log_dir / kReplyDirName /
                         reply_file_name(response.client_id);
  // Replies are *appended* as CRC-delimited frames, not atomically
  // replaced: an append is one metadata-light write where the
  // temp+rename dance is three, and the reply path is the serving
  // tier's throughput ceiling (every invoke ends in exactly one reply
  // write).  A torn append is caught by the frame CRC; the client skips
  // the corrupt frame, times out, and re-sends under a fresh seq.
  Status last_write = Status::ok();
  Stopwatch write_watch;
  for (int attempt = 0; attempt < kResponseWriteAttempts; ++attempt) {
    last_write = append_file(reply, encode_record(response));
    if (last_write) {
      slot->last_seq = response.seq;
      MCSD_OBS_HIST(
          "fam.serve.reply_write_us", "us",
          static_cast<std::uint64_t>(write_watch.elapsed_seconds() * 1e6));
      return;
    }
  }
  // All attempts failed (injected or real I/O trouble).  The client
  // times out and re-sends under a higher seq; leaving last_seq
  // unchanged keeps that retry's reply admissible.
  MCSD_LOG(kError, "fam.daemon")
      << "cannot write reply for client " << response.client_id << " seq "
      << response.seq << " after " << kResponseWriteAttempts
      << " attempts: " << last_write.to_string();
}

}  // namespace mcsd::fam
