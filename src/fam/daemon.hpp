// The smartFAM daemon: the storage-node side of Fig. 5.
//
// Watches the shared log folder; when a module's log file is changed by
// the host (a new request record), the daemon retrieves the parameters,
// invokes the preloaded module, and writes the results back into the same
// log file as a response record.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "core/config.hpp"
#include "core/mpmc_queue.hpp"
#include "core/result.hpp"
#include "fam/dispatch.hpp"
#include "fam/inotify_watcher.hpp"
#include "fam/module.hpp"
#include "fam/protocol.hpp"
#include "fam/watcher.hpp"
#include "storage/buffer_manager.hpp"

namespace mcsd::fam {

/// Which file-alteration monitor the daemon runs on.
enum class WatcherBackend : std::uint8_t {
  /// Portable mtime/size/hash polling — required when the log folder is
  /// an NFS mount (inotify cannot see remote writes).
  kPolling,
  /// Linux inotify, the paper's mechanism — local/tmpfs folders only.
  /// Falls back to polling if inotify is unavailable.
  kInotify,
};

/// Default watcher polling cadence.  Named (rather than sprinkled as a
/// literal) because the interval is a tuning knob exposed through
/// core/config — it trades invoke latency for syscall load over NFS —
/// and it labels the watcher's poll-latency histogram.
inline constexpr std::chrono::milliseconds kDefaultWatcherPollInterval{2};

struct DaemonOptions {
  std::filesystem::path log_dir;
  /// Watcher polling cadence (kPolling backend).
  std::chrono::milliseconds poll_interval{kDefaultWatcherPollInterval};
  /// Dispatch worker threads — how many modules may run concurrently on
  /// the storage node (<= its core count).
  std::size_t dispatch_threads = 1;
  WatcherBackend backend = WatcherBackend::kPolling;
  /// Capacity of the daemon's buffer pool (storage tier).  0 keeps the
  /// storage::PoolOptions default.  The pool lives as long as the daemon,
  /// so file pages loaded by one module invocation serve the next one
  /// warm — the smart-storage node's DRAM working set.
  std::size_t pool_bytes = 0;
  /// Budget for the module-result cache (ROADMAP item 4).  A repeat
  /// request for a pure module over unchanged inputs is answered from
  /// this cache without dispatching the module.  0 disables caching.
  std::size_t result_cache_bytes = 32ull << 20;
  /// Rev-2 sharded mailbox channel (DESIGN.md §13): how many request
  /// mailboxes the daemon drains.  0 turns the sharded channel off
  /// entirely (rev-1 single-record module logs only).  The daemon always
  /// keeps serving rev-1 module logs too, so legacy clients and tests
  /// coexist with the sharded path.
  std::size_t channel_shards = 8;
  /// Admission-control bound: distinct module runs (batches) the
  /// admission queue holds before rejecting with a typed retry-after
  /// backpressure reply.  Coalesced joiners never count against it.
  /// 0 = unbounded.
  std::size_t admission_queue_limit = 256;
  /// Drainer wakeup cadence: every wakeup drains all shards.
  std::chrono::milliseconds drain_interval{1};
};

/// Builds DaemonOptions from a core/config KeyValueMap (the same
/// key=value record syntax the smartFAM channel itself speaks).
/// Recognised keys, all optional:
///   log_dir=<path>  poll_interval_ms=<int>=2  dispatch_threads=<int>=1
///   backend=polling|inotify  pool_bytes=<bytes, units ok: "128MiB">
///   result_cache_bytes=<bytes, units ok; 0 disables>=32MiB
///   channel_shards=<int; 0 disables the sharded channel>=8
///   admission_queue_limit=<int; 0 = unbounded>=256
///   drain_interval_ms=<int>=1
/// Unknown keys error (a typo must not silently run defaults).
Result<DaemonOptions> daemon_options_from_config(const KeyValueMap& config);

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Preloads a module: registers it and creates its (empty) log file —
  /// "when a new data-intensive module is preloaded to the McSD node, a
  /// corresponding log-file is created" (Section IV-A).
  Status preload(std::shared_ptr<Module> module);

  /// Starts the watcher and dispatch workers.  Idempotent.
  void start();
  /// Stops the watcher, then closes the dispatch queue and joins the
  /// workers.  MpmcQueue::close() lets pops drain what was already
  /// accepted, so every request enqueued before stop() still gets a
  /// response written — stop() discards nothing.  Requests arriving
  /// *after* close (the conflict guard can re-enqueue during drain) are
  /// counted in dropped_on_shutdown(); their clients recover by retry
  /// against the restarted daemon.  Idempotent; destructor calls it.
  void stop();

  [[nodiscard]] const std::filesystem::path& log_dir() const noexcept {
    return options_.log_dir;
  }
  [[nodiscard]] const ModuleRegistry& registry() const noexcept {
    return registry_;
  }

  /// The daemon-lifetime buffer pool.  Thread modules' file I/O through
  /// it (apps::preload_standard_modules takes it) so corpus pages stay
  /// hot across invocations; never null.
  [[nodiscard]] const std::shared_ptr<storage::BufferManager>& buffer_pool()
      const noexcept {
    return pool_;
  }

  /// The module-result cache, or null when result_cache_bytes was 0.
  /// Exposed for tests and tools (stats, explicit clear); the serving
  /// path goes through handle_request.
  [[nodiscard]] cache::ResultCache* result_cache() const noexcept {
    return result_cache_.get();
  }

  /// Counters for tests and monitoring.
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return requests_handled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t errors_returned() const noexcept {
    return errors_returned_.load(std::memory_order_relaxed);
  }
  /// Requests answered straight from the result cache (no module run).
  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Cacheable requests that had to run the module (cold or invalidated).
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// Responses discarded because a newer request had already replaced the
  /// log record this response would have clobbered.
  [[nodiscard]] std::uint64_t response_conflicts() const noexcept {
    return response_conflicts_.load(std::memory_order_relaxed);
  }
  /// Error replies sent for requests whose seq fell behind the daemon's
  /// high-water mark (two hosts colliding on one module log).
  [[nodiscard]] std::uint64_t stale_replies() const noexcept {
    return stale_replies_.load(std::memory_order_relaxed);
  }
  /// Requests observed after stop() closed the dispatch queue.
  [[nodiscard]] std::uint64_t dropped_on_shutdown() const noexcept {
    return dropped_on_shutdown_.load(std::memory_order_relaxed);
  }

  // Sharded-channel counters (all 0 when channel_shards == 0).

  /// Requests admitted as new batches.
  [[nodiscard]] std::uint64_t accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Requests bounced with a retry-after backpressure reply.
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Requests that joined an already-queued compatible batch.
  [[nodiscard]] std::uint64_t coalesced() const noexcept {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// Queued requests replaced by a newer send from the same client.
  [[nodiscard]] std::uint64_t superseded() const noexcept {
    return superseded_.load(std::memory_order_relaxed);
  }
  /// Module runs executed for the sharded channel.
  [[nodiscard]] std::uint64_t batches_run() const noexcept {
    return batches_run_.load(std::memory_order_relaxed);
  }
  /// Requests shed for sitting in the queue past their deadline.
  [[nodiscard]] std::uint64_t deadline_shed() const noexcept {
    return deadline_shed_.load(std::memory_order_relaxed);
  }
  /// Replies suppressed because a newer reply for the client had already
  /// been written (late fan-out after a supersede) — the guard that
  /// makes responses exactly-once per awaited seq.
  [[nodiscard]] std::uint64_t reply_conflicts() const noexcept {
    return reply_conflicts_.load(std::memory_order_relaxed);
  }
  /// Per-shard drain cursors (frames drained / corrupt / suppressed
  /// polls); index = shard number.  Snapshot, safe against the drainer.
  [[nodiscard]] std::vector<dispatch::ShardDrain> shard_stats() const;
  /// Per-tenant QoS snapshot.
  [[nodiscard]] std::vector<dispatch::TenantQos> qos_snapshot() const {
    return qos_.snapshot();
  }
  /// Shard count actually serving (0 = sharded channel off).
  [[nodiscard]] std::size_t channel_shards() const noexcept {
    return options_.channel_shards;
  }

  /// The backend actually in use (inotify may have fallen back).
  [[nodiscard]] WatcherBackend active_backend() const noexcept {
    return active_backend_;
  }

 private:
  /// One dispatch-queue entry.  `stale_last_seq` != 0 marks a request
  /// whose seq fell behind the dedup high-water mark: instead of invoking
  /// the module, the worker replies with an error carrying that mark.
  struct Work {
    Record request;
    std::uint64_t stale_last_seq = 0;
  };

  /// Attempts to land a response before giving up (transient write
  /// failures; each retry re-runs the conflict guard).
  static constexpr int kResponseWriteAttempts = 3;

  /// Outcome of one module execution (shared by the rev-1 single-record
  /// path and the rev-2 batch path).
  struct ModuleRun {
    bool ok = false;
    std::string error_message;
    KeyValueMap payload;
    CacheState cache = CacheState::kNone;
    std::uint64_t cache_epoch = 0;
  };

  void on_file_change(const std::filesystem::path& path);
  /// Routes a decoded request through the seq gate: newer than the high-
  /// water mark -> dispatch, equal -> duplicate observation (dropped),
  /// older -> stale reply.  Used by the watcher callback and by the
  /// conflict guard when it rescues a request it nearly clobbered.
  void enqueue_request(Record request);
  void dispatch_loop();
  void handle_request(const Record& request);
  void handle_stale(const Record& request, std::uint64_t last_seq);
  /// Writes `response` into its module's log unless the log has moved on
  /// to a newer record — the single-record channel must never go
  /// backwards.  A newer *request* found there is re-enqueued (the
  /// watcher may have fingerprinted it away already).
  void write_response(const Record& response);

  /// Runs (or cache-answers) one invocation.  The module-execution core
  /// both channels share.
  ModuleRun run_module(const Record& request);

  // Rev-2 sharded channel.
  void drain_loop();
  /// One pass over every shard: drain new frames and admit them.
  void drain_pass();
  /// Routes one drained request through admission (coalesce / supersede /
  /// reject) and writes the rejection reply when bounced.
  void admit(Record request);
  void batch_loop();
  void handle_batch(dispatch::Batch batch);
  /// Atomically replaces the client's reply file, guarded so a reply for
  /// an older seq never overwrites a newer one.
  void write_reply(const Record& response);

  DaemonOptions options_;
  ModuleRegistry registry_;
  std::shared_ptr<storage::BufferManager> pool_;
  std::unique_ptr<cache::ResultCache> result_cache_;
  std::unique_ptr<Watcher> watcher_;
  WatcherBackend active_backend_ = WatcherBackend::kPolling;
  MpmcQueue<Work> pending_;
  std::vector<std::thread> dispatchers_;
  bool started_ = false;
  std::mutex lifecycle_mutex_;

  std::mutex seq_mutex_;
  std::map<std::string, std::uint64_t> last_handled_seq_;

  // Rev-2 sharded channel state (unused when channel_shards == 0).
  std::unique_ptr<dispatch::AdmissionQueue> admission_;
  dispatch::QosRegistry qos_;
  mutable std::mutex shard_mutex_;  ///< guards shards_
  std::vector<dispatch::ShardDrain> shards_;
  std::thread drainer_;
  std::vector<std::thread> batch_workers_;
  std::mutex drain_stop_mutex_;
  std::condition_variable drain_stop_cv_;
  bool drain_stop_ = false;
  /// Per-client reply-order guard: serialises writes to one reply file
  /// and keeps its seq monotonic.
  struct ReplySlot {
    std::mutex mutex;
    std::uint64_t last_seq = 0;
  };
  std::mutex reply_mutex_;  ///< guards reply_slots_ (the map, not slots)
  std::map<std::uint64_t, std::unique_ptr<ReplySlot>> reply_slots_;

  std::atomic<std::uint64_t> requests_handled_{0};
  std::atomic<std::uint64_t> errors_returned_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> response_conflicts_{0};
  std::atomic<std::uint64_t> stale_replies_{0};
  std::atomic<std::uint64_t> dropped_on_shutdown_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> superseded_{0};
  std::atomic<std::uint64_t> batches_run_{0};
  std::atomic<std::uint64_t> deadline_shed_{0};
  std::atomic<std::uint64_t> reply_conflicts_{0};
};

}  // namespace mcsd::fam
