#include "fam/protocol.hpp"

#include "core/hash.hpp"

namespace mcsd::fam {

namespace {
constexpr std::string_view kTypeKey = "mcsd.type";
constexpr std::string_view kSeqKey = "mcsd.seq";
constexpr std::string_view kModuleKey = "mcsd.module";
constexpr std::string_view kStatusKey = "mcsd.status";
constexpr std::string_view kErrorKey = "mcsd.error";
constexpr std::string_view kLastSeqKey = "mcsd.last";
constexpr std::string_view kCacheKey = "mcsd.cache";
constexpr std::string_view kEpochKey = "mcsd.epoch";
constexpr std::string_view kClientKey = "mcsd.client";
constexpr std::string_view kTenantKey = "mcsd.tenant";
constexpr std::string_view kDeadlineKey = "mcsd.deadline";
constexpr std::string_view kRetryKey = "mcsd.retry";
constexpr std::string_view kWaitersKey = "mcsd.waiters";
constexpr std::string_view kCrcKey = "mcsd.crc";
constexpr std::string_view kManifestRevKey = "mcsd.rev";
constexpr std::string_view kManifestShardsKey = "mcsd.shards";

bool reserved_key(std::string_view key) {
  return key.size() >= 5 && key.substr(0, 5) == "mcsd.";
}
}  // namespace

bool valid_module_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string log_file_name(std::string_view module_name) {
  return std::string{module_name} + ".log";
}

std::string encode_record(const Record& record) {
  KeyValueMap map = record.payload;
  map.set(std::string{kTypeKey},
          record.type == RecordType::kRequest ? "request" : "response");
  map.set_uint(std::string{kSeqKey}, record.seq);
  map.set(std::string{kModuleKey}, record.module);
  if (record.client_id != 0) {
    map.set_uint(std::string{kClientKey}, record.client_id);
  }
  if (!record.tenant.empty()) {
    map.set(std::string{kTenantKey}, record.tenant);
  }
  if (record.deadline_ms != 0) {
    map.set_uint(std::string{kDeadlineKey}, record.deadline_ms);
  }
  if (record.type == RecordType::kResponse) {
    if (record.retry_after_ms != 0) {
      map.set_uint(std::string{kRetryKey}, record.retry_after_ms);
    }
    if (record.waiters != 0) {
      map.set_uint(std::string{kWaitersKey}, record.waiters);
    }
    map.set(std::string{kStatusKey}, record.ok ? "ok" : "error");
    if (!record.ok) {
      map.set(std::string{kErrorKey}, record.error_message);
    }
    if (record.last_seq != 0) {
      map.set_uint(std::string{kLastSeqKey}, record.last_seq);
    }
    if (record.cache != CacheState::kNone) {
      map.set(std::string{kCacheKey},
              record.cache == CacheState::kHit ? "hit" : "miss");
      if (record.cache_epoch != 0) {
        map.set_uint(std::string{kEpochKey}, record.cache_epoch);
      }
    }
  }
  // Checksum covers everything serialised so far; appended as the final
  // line (KeyValueMap sorts keys, but we frame the crc separately so the
  // covered byte range is unambiguous).
  std::string body = map.serialize();
  const std::uint64_t crc = fnv1a(body);
  body += kCrcKey;
  body += '=';
  body += std::to_string(crc);
  body += '\n';
  return body;
}

Result<Record> decode_record(std::string_view text) {
  // Split off the trailing crc line.
  if (text.empty()) {
    return Error{ErrorCode::kProtocolError, "empty record"};
  }
  std::string_view trimmed = text;
  if (trimmed.back() == '\n') trimmed.remove_suffix(1);
  const std::size_t last_line_start = trimmed.rfind('\n');
  const std::string_view crc_line =
      last_line_start == std::string_view::npos
          ? trimmed
          : trimmed.substr(last_line_start + 1);
  const std::string_view body =
      last_line_start == std::string_view::npos
          ? std::string_view{}
          : text.substr(0, last_line_start + 1);

  const std::string crc_prefix = std::string{kCrcKey} + "=";
  if (crc_line.substr(0, crc_prefix.size()) != crc_prefix) {
    return Error{ErrorCode::kProtocolError, "missing crc line"};
  }
  std::uint64_t stated_crc = 0;
  {
    KeyValueMap crc_map;
    auto parsed = KeyValueMap::parse(crc_line);
    if (!parsed) return parsed.error();
    auto crc_value = parsed.value().get_uint(kCrcKey);
    if (!crc_value) return crc_value.error();
    stated_crc = crc_value.value();
  }
  if (fnv1a(body) != stated_crc) {
    return Error{ErrorCode::kProtocolError, "crc mismatch (torn record?)"};
  }

  auto parsed = KeyValueMap::parse(body);
  if (!parsed) return parsed.error();
  KeyValueMap& map = parsed.value();

  Record record;
  const auto type = map.get(kTypeKey);
  if (!type) {
    return Error{ErrorCode::kProtocolError, "missing mcsd.type"};
  }
  if (*type == "request") {
    record.type = RecordType::kRequest;
  } else if (*type == "response") {
    record.type = RecordType::kResponse;
  } else {
    return Error{ErrorCode::kProtocolError, "bad mcsd.type: " + *type};
  }

  auto seq = map.get_uint(kSeqKey);
  if (!seq) return seq.error();
  record.seq = seq.value();

  const auto module = map.get(kModuleKey);
  if (!module || !valid_module_name(*module)) {
    return Error{ErrorCode::kProtocolError, "missing/bad mcsd.module"};
  }
  record.module = *module;

  if (map.get(kClientKey)) {
    auto client = map.get_uint(kClientKey);
    if (!client) return client.error();
    record.client_id = client.value();
  }
  record.tenant = map.get_or(kTenantKey, "");
  if (map.get(kDeadlineKey)) {
    auto deadline = map.get_uint(kDeadlineKey);
    if (!deadline) return deadline.error();
    record.deadline_ms = deadline.value();
  }

  if (record.type == RecordType::kResponse) {
    const auto status = map.get(kStatusKey);
    if (!status || (*status != "ok" && *status != "error")) {
      return Error{ErrorCode::kProtocolError, "missing/bad mcsd.status"};
    }
    record.ok = *status == "ok";
    if (!record.ok) {
      record.error_message = map.get_or(kErrorKey, "");
    }
    if (map.get(kLastSeqKey)) {
      auto last = map.get_uint(kLastSeqKey);
      if (!last) return last.error();
      record.last_seq = last.value();
    }
    if (map.get(kRetryKey)) {
      auto retry = map.get_uint(kRetryKey);
      if (!retry) return retry.error();
      record.retry_after_ms = retry.value();
    }
    if (map.get(kWaitersKey)) {
      auto waiters = map.get_uint(kWaitersKey);
      if (!waiters) return waiters.error();
      record.waiters = waiters.value();
    }
    if (const auto cache = map.get(kCacheKey)) {
      if (*cache == "hit") {
        record.cache = CacheState::kHit;
      } else if (*cache == "miss") {
        record.cache = CacheState::kMiss;
      } else {
        return Error{ErrorCode::kProtocolError, "bad mcsd.cache: " + *cache};
      }
      if (map.get(kEpochKey)) {
        auto epoch = map.get_uint(kEpochKey);
        if (!epoch) return epoch.error();
        record.cache_epoch = epoch.value();
      }
    }
  }

  for (const auto& [key, value] : map.entries()) {
    if (!reserved_key(key)) {
      record.payload.set(key, value);
    }
  }
  return record;
}

std::string shard_file_name(std::size_t shard) {
  return "shard-" + std::to_string(shard) + ".log";
}

std::string reply_file_name(std::uint64_t client_id) {
  return "client-" + std::to_string(client_id) + ".log";
}

std::size_t shard_for_client(std::uint64_t client_id, std::size_t shards) {
  if (shards <= 1) return 0;
  // Fibonacci-style multiplicative mix: sequentially allocated ids must
  // still spread across shards (`id % shards` would pin every client of
  // a striding allocator onto a handful of mailboxes).
  const std::uint64_t mixed = client_id * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>((mixed >> 32) % shards);
}

std::string encode_manifest(const ChannelManifest& manifest) {
  KeyValueMap map;
  map.set_uint(std::string{kManifestRevKey}, manifest.rev);
  map.set_uint(std::string{kManifestShardsKey},
               static_cast<std::uint64_t>(manifest.shards));
  return map.serialize();
}

Result<ChannelManifest> decode_manifest(std::string_view text) {
  auto parsed = KeyValueMap::parse(text);
  if (!parsed) return parsed.error();
  auto rev = parsed.value().get_uint(kManifestRevKey);
  if (!rev) {
    return Error{ErrorCode::kProtocolError, "manifest missing mcsd.rev"};
  }
  auto shards = parsed.value().get_uint(kManifestShardsKey);
  if (!shards) {
    return Error{ErrorCode::kProtocolError, "manifest missing mcsd.shards"};
  }
  if (shards.value() == 0) {
    return Error{ErrorCode::kProtocolError, "manifest advertises 0 shards"};
  }
  ChannelManifest manifest;
  manifest.rev = rev.value();
  manifest.shards = static_cast<std::size_t>(shards.value());
  return manifest;
}

FrameStream decode_frame_stream(std::string_view text) {
  FrameStream stream;
  const std::string crc_prefix = std::string{kCrcKey} + "=";
  std::size_t frame_start = 0;
  std::size_t cursor = 0;
  while (cursor < text.size()) {
    const std::size_t line_end = text.find('\n', cursor);
    if (line_end == std::string_view::npos) break;  // incomplete tail line
    const std::string_view line =
        text.substr(cursor, line_end - cursor);
    cursor = line_end + 1;
    if (line.substr(0, crc_prefix.size()) != crc_prefix) continue;
    // A complete frame: [frame_start, cursor).  Decode; a crc mismatch
    // (torn or interleaved append) drops the frame but still consumes
    // it — the stream resynchronises at the next frame boundary.
    const std::string_view frame =
        text.substr(frame_start, cursor - frame_start);
    if (auto record = decode_record(frame)) {
      stream.records.push_back(std::move(record).value());
    } else {
      ++stream.corrupt;
    }
    frame_start = cursor;
  }
  stream.consumed = frame_start;
  return stream;
}

}  // namespace mcsd::fam
