#include "fam/protocol.hpp"

#include "core/hash.hpp"

namespace mcsd::fam {

namespace {
constexpr std::string_view kTypeKey = "mcsd.type";
constexpr std::string_view kSeqKey = "mcsd.seq";
constexpr std::string_view kModuleKey = "mcsd.module";
constexpr std::string_view kStatusKey = "mcsd.status";
constexpr std::string_view kErrorKey = "mcsd.error";
constexpr std::string_view kLastSeqKey = "mcsd.last";
constexpr std::string_view kCacheKey = "mcsd.cache";
constexpr std::string_view kEpochKey = "mcsd.epoch";
constexpr std::string_view kCrcKey = "mcsd.crc";

bool reserved_key(std::string_view key) {
  return key.size() >= 5 && key.substr(0, 5) == "mcsd.";
}
}  // namespace

bool valid_module_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string log_file_name(std::string_view module_name) {
  return std::string{module_name} + ".log";
}

std::string encode_record(const Record& record) {
  KeyValueMap map = record.payload;
  map.set(std::string{kTypeKey},
          record.type == RecordType::kRequest ? "request" : "response");
  map.set_uint(std::string{kSeqKey}, record.seq);
  map.set(std::string{kModuleKey}, record.module);
  if (record.type == RecordType::kResponse) {
    map.set(std::string{kStatusKey}, record.ok ? "ok" : "error");
    if (!record.ok) {
      map.set(std::string{kErrorKey}, record.error_message);
    }
    if (record.last_seq != 0) {
      map.set_uint(std::string{kLastSeqKey}, record.last_seq);
    }
    if (record.cache != CacheState::kNone) {
      map.set(std::string{kCacheKey},
              record.cache == CacheState::kHit ? "hit" : "miss");
      if (record.cache_epoch != 0) {
        map.set_uint(std::string{kEpochKey}, record.cache_epoch);
      }
    }
  }
  // Checksum covers everything serialised so far; appended as the final
  // line (KeyValueMap sorts keys, but we frame the crc separately so the
  // covered byte range is unambiguous).
  std::string body = map.serialize();
  const std::uint64_t crc = fnv1a(body);
  body += kCrcKey;
  body += '=';
  body += std::to_string(crc);
  body += '\n';
  return body;
}

Result<Record> decode_record(std::string_view text) {
  // Split off the trailing crc line.
  if (text.empty()) {
    return Error{ErrorCode::kProtocolError, "empty record"};
  }
  std::string_view trimmed = text;
  if (trimmed.back() == '\n') trimmed.remove_suffix(1);
  const std::size_t last_line_start = trimmed.rfind('\n');
  const std::string_view crc_line =
      last_line_start == std::string_view::npos
          ? trimmed
          : trimmed.substr(last_line_start + 1);
  const std::string_view body =
      last_line_start == std::string_view::npos
          ? std::string_view{}
          : text.substr(0, last_line_start + 1);

  const std::string crc_prefix = std::string{kCrcKey} + "=";
  if (crc_line.substr(0, crc_prefix.size()) != crc_prefix) {
    return Error{ErrorCode::kProtocolError, "missing crc line"};
  }
  std::uint64_t stated_crc = 0;
  {
    KeyValueMap crc_map;
    auto parsed = KeyValueMap::parse(crc_line);
    if (!parsed) return parsed.error();
    auto crc_value = parsed.value().get_uint(kCrcKey);
    if (!crc_value) return crc_value.error();
    stated_crc = crc_value.value();
  }
  if (fnv1a(body) != stated_crc) {
    return Error{ErrorCode::kProtocolError, "crc mismatch (torn record?)"};
  }

  auto parsed = KeyValueMap::parse(body);
  if (!parsed) return parsed.error();
  KeyValueMap& map = parsed.value();

  Record record;
  const auto type = map.get(kTypeKey);
  if (!type) {
    return Error{ErrorCode::kProtocolError, "missing mcsd.type"};
  }
  if (*type == "request") {
    record.type = RecordType::kRequest;
  } else if (*type == "response") {
    record.type = RecordType::kResponse;
  } else {
    return Error{ErrorCode::kProtocolError, "bad mcsd.type: " + *type};
  }

  auto seq = map.get_uint(kSeqKey);
  if (!seq) return seq.error();
  record.seq = seq.value();

  const auto module = map.get(kModuleKey);
  if (!module || !valid_module_name(*module)) {
    return Error{ErrorCode::kProtocolError, "missing/bad mcsd.module"};
  }
  record.module = *module;

  if (record.type == RecordType::kResponse) {
    const auto status = map.get(kStatusKey);
    if (!status || (*status != "ok" && *status != "error")) {
      return Error{ErrorCode::kProtocolError, "missing/bad mcsd.status"};
    }
    record.ok = *status == "ok";
    if (!record.ok) {
      record.error_message = map.get_or(kErrorKey, "");
    }
    if (map.get(kLastSeqKey)) {
      auto last = map.get_uint(kLastSeqKey);
      if (!last) return last.error();
      record.last_seq = last.value();
    }
    if (const auto cache = map.get(kCacheKey)) {
      if (*cache == "hit") {
        record.cache = CacheState::kHit;
      } else if (*cache == "miss") {
        record.cache = CacheState::kMiss;
      } else {
        return Error{ErrorCode::kProtocolError, "bad mcsd.cache: " + *cache};
      }
      if (map.get(kEpochKey)) {
        auto epoch = map.get_uint(kEpochKey);
        if (!epoch) return epoch.error();
        record.cache_epoch = epoch.value();
      }
    }
  }

  for (const auto& [key, value] : map.entries()) {
    if (!reserved_key(key)) {
      record.payload.set(key, value);
    }
  }
  return record;
}

}  // namespace mcsd::fam
