// Data-intensive processing modules.
//
// Paper Fig. 5: the McSD node holds "preloaded" data-intensive processing
// modules; the daemon invokes one when its log file changes.  A Module is
// the unit of preloading — apps/modules.hpp registers Word Count, String
// Match and Matrix Multiplication implementations.
#pragma once

#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"

namespace mcsd::fam {

/// A named data-intensive operation invocable through smartFAM.
class Module {
 public:
  virtual ~Module() = default;

  /// Stable name; becomes the log-file name (`<name>.log`).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Executes the module.  `params` are the host-passed inputs; the
  /// returned map travels back to the host as results.  Errors are
  /// reported to the host as error responses, not exceptions.
  virtual Result<KeyValueMap> invoke(const KeyValueMap& params) = 0;

  /// Declares whether an invocation with `params` is a pure function of a
  /// set of input files — the contract the daemon's result cache needs.
  /// Return the input paths (in a canonical order) to opt in: the daemon
  /// fingerprints their on-disk identity and may answer a repeat request
  /// from the cache without invoking the module.  Return nullopt (the
  /// default) for modules with side effects (e.g. ones that write output
  /// files), whose results must never be replayed from memory.
  [[nodiscard]] virtual std::optional<std::vector<std::filesystem::path>>
  cache_inputs(const KeyValueMap& params) const {
    (void)params;
    return std::nullopt;
  }
};

/// Adapts a plain function into a Module.
class FunctionModule final : public Module {
 public:
  using Fn = std::function<Result<KeyValueMap>(const KeyValueMap&)>;
  using CacheInputsFn =
      std::function<std::optional<std::vector<std::filesystem::path>>(
          const KeyValueMap&)>;

  FunctionModule(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  Result<KeyValueMap> invoke(const KeyValueMap& params) override {
    return fn_(params);
  }

  /// Opts the module into result caching (see Module::cache_inputs).
  void set_cache_inputs(CacheInputsFn fn) { cache_inputs_ = std::move(fn); }

  [[nodiscard]] std::optional<std::vector<std::filesystem::path>> cache_inputs(
      const KeyValueMap& params) const override {
    return cache_inputs_ ? cache_inputs_(params) : std::nullopt;
  }

 private:
  std::string name_;
  Fn fn_;
  CacheInputsFn cache_inputs_;
};

/// Thread-safe registry of preloaded modules.
class ModuleRegistry {
 public:
  /// Registers a module; fails on duplicate or invalid name.
  Status add(std::shared_ptr<Module> module);

  [[nodiscard]] std::shared_ptr<Module> find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Module>, std::less<>> modules_;
};

}  // namespace mcsd::fam
