// Data-intensive processing modules.
//
// Paper Fig. 5: the McSD node holds "preloaded" data-intensive processing
// modules; the daemon invokes one when its log file changes.  A Module is
// the unit of preloading — apps/modules.hpp registers Word Count, String
// Match and Matrix Multiplication implementations.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"

namespace mcsd::fam {

/// A named data-intensive operation invocable through smartFAM.
class Module {
 public:
  virtual ~Module() = default;

  /// Stable name; becomes the log-file name (`<name>.log`).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Executes the module.  `params` are the host-passed inputs; the
  /// returned map travels back to the host as results.  Errors are
  /// reported to the host as error responses, not exceptions.
  virtual Result<KeyValueMap> invoke(const KeyValueMap& params) = 0;
};

/// Adapts a plain function into a Module.
class FunctionModule final : public Module {
 public:
  using Fn = std::function<Result<KeyValueMap>(const KeyValueMap&)>;

  FunctionModule(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  Result<KeyValueMap> invoke(const KeyValueMap& params) override {
    return fn_(params);
  }

 private:
  std::string name_;
  Fn fn_;
};

/// Thread-safe registry of preloaded modules.
class ModuleRegistry {
 public:
  /// Registers a module; fails on duplicate or invalid name.
  Status add(std::shared_ptr<Module> module);

  [[nodiscard]] std::shared_ptr<Module> find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Module>, std::less<>> modules_;
};

}  // namespace mcsd::fam
