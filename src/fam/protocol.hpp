// smartFAM log-file wire protocol.
//
// Paper Section IV-A: "The log file of each data-intensive module is an
// efficient channel for the host node to communicate with the smart-
// storage node. ... the host writes the input parameters to the log file
// that is monitored and read by the data-intensive module", and results
// travel back through the same file.
//
// A log file holds exactly one record at a time (the latest request or
// response); records are replaced atomically (core/io.hpp) so watchers
// never see torn writes.  Record layout is the key=value format of
// core/config.hpp with reserved `mcsd.` keys:
//
//   mcsd.type   = request | response
//   mcsd.seq    = monotonically increasing per module
//   mcsd.module = module name
//   mcsd.status = ok | error                (responses only)
//   mcsd.error  = message                   (error responses only)
//   mcsd.last   = daemon's last handled seq (stale-reply responses only)
//   mcsd.cache  = hit | miss                (responses via the result cache)
//   mcsd.epoch  = cache insertion epoch     (responses with mcsd.cache)
//   mcsd.crc    = FNV-1a of the payload     (integrity across NFS)
//   <everything else>                       = user parameters / results
//
// Protocol rev 2 (the sharded mailbox channel, DESIGN.md §13) adds:
//
//   mcsd.client   = 64-bit client id        (requests; picks shard + reply)
//   mcsd.tenant   = tenant label            (requests; QoS accounting)
//   mcsd.deadline = request's latency budget in ms (0/absent = none)
//   mcsd.retry    = retry-after hint in ms  (backpressure rejections only)
//   mcsd.waiters  = coalesced fan-out size  (responses; 1 = solo run)
//
// Rev-2 requests travel as *frames* appended to one of K shard mailboxes
// (`shards/shard-<k>.log`); each frame is a full rev-1 record, and the
// trailing `mcsd.crc=` line doubles as the frame delimiter.  Responses
// land in a per-client single-record file (`replies/client-<id>.log`),
// replaced atomically like the rev-1 module log.  The daemon advertises
// the sharded channel through a `channel.mcsd` manifest in the log dir.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"

namespace mcsd::fam {

enum class RecordType : std::uint8_t { kRequest, kResponse };

/// How the daemon's result cache participated in a response.  kNone means
/// the invocation was not cacheable (or the daemon predates the cache);
/// kHit means the payload was served verbatim from the cache without
/// dispatching the module; kMiss means the module ran and the result was
/// (re)admitted.
enum class CacheState : std::uint8_t { kNone, kHit, kMiss };

/// One decoded log-file record.
struct Record {
  RecordType type = RecordType::kRequest;
  std::uint64_t seq = 0;
  std::string module;
  bool ok = true;              ///< responses: module succeeded
  std::string error_message;   ///< responses with ok == false
  /// Responses only, 0 = absent.  When a request's seq falls behind the
  /// daemon's last handled seq (two hosts sharing one module log), the
  /// daemon's error reply carries its high-water mark here so the losing
  /// client can re-seed instead of burning its full timeout.
  std::uint64_t last_seq = 0;
  /// Responses only: result-cache participation (see CacheState).
  CacheState cache = CacheState::kNone;
  /// Responses with cache != kNone: the cache entry's insertion epoch
  /// (0 = absent).  Two hits with equal epochs were served from the same
  /// cached computation; an epoch increase across an identical request
  /// means the entry was invalidated and recomputed in between.
  std::uint64_t cache_epoch = 0;
  /// Rev 2: the sending client's id (0 = legacy rev-1 record).  Chooses
  /// the request shard and names the reply file.
  std::uint64_t client_id = 0;
  /// Rev 2, requests: tenant label for QoS accounting ("" = default).
  std::string tenant;
  /// Rev 2, requests: latency budget in ms; the daemon sheds requests
  /// that sat in the admission queue past it (0 = no deadline).
  std::uint64_t deadline_ms = 0;
  /// Rev 2, responses: non-zero marks a backpressure rejection — the
  /// admission queue was full and the client should back off roughly
  /// this many ms (with jitter) before re-sending.
  std::uint64_t retry_after_ms = 0;
  /// Rev 2, responses: how many coalesced requests this module run fanned
  /// out to (1 = solo, 0 = legacy record without the field).
  std::uint64_t waiters = 0;
  KeyValueMap payload;         ///< user parameters or results
};

/// Serialises a record, computing the integrity checksum.
std::string encode_record(const Record& record);

/// Parses and validates a record (structure + checksum).
Result<Record> decode_record(std::string_view text);

/// The log-file name a module owns inside the shared log folder.
std::string log_file_name(std::string_view module_name);

/// Module names appear in file names: [a-zA-Z0-9_-]+, non-empty.
bool valid_module_name(std::string_view name);

// --- Rev 2: sharded mailbox channel -----------------------------------

/// Subdirectory of the log dir holding the K request mailboxes.  A
/// subdirectory on purpose: the rev-1 watchers iterate the log dir
/// non-recursively, so growing mailboxes and per-client reply files
/// never enter their fingerprint set.
inline constexpr std::string_view kShardDirName = "shards";
/// Subdirectory holding the per-client single-record reply files.
inline constexpr std::string_view kReplyDirName = "replies";
/// Channel manifest file the daemon writes into the log dir so clients
/// can discover the sharded channel (and its shard count).
inline constexpr std::string_view kManifestFileName = "channel.mcsd";
/// Manifest revision this build speaks.
inline constexpr std::uint64_t kChannelRev = 2;

/// `shard-<k>.log`, relative to the shards directory.
std::string shard_file_name(std::size_t shard);
/// `client-<id>.log`, relative to the replies directory.
std::string reply_file_name(std::uint64_t client_id);
/// Which mailbox a client appends to: a mixed hash of the client id so
/// ids cluster uniformly regardless of how they were allocated.
std::size_t shard_for_client(std::uint64_t client_id, std::size_t shards);

/// The daemon's channel advertisement.
struct ChannelManifest {
  std::uint64_t rev = kChannelRev;
  std::size_t shards = 0;
};

/// Serialises / parses the manifest (plain key=value; the file is tiny
/// and replaced atomically, so it needs no frame crc).
std::string encode_manifest(const ChannelManifest& manifest);
Result<ChannelManifest> decode_manifest(std::string_view text);

/// Result of scanning an append-only mailbox tail for complete frames.
struct FrameStream {
  std::vector<Record> records;  ///< frames that decoded and passed crc
  /// Bytes consumed from the front of the input: everything up to and
  /// including the last *complete* frame (valid or corrupt).  The caller
  /// advances its mailbox offset by this much; an incomplete tail frame
  /// (an append still in flight) stays unconsumed for the next pass.
  std::size_t consumed = 0;
  /// Complete frames dropped for failing crc / decode — torn appends or
  /// interleaved writers.  Their senders recover by timeout + re-send.
  std::size_t corrupt = 0;
};

/// Splits `text` into crc-delimited frames and decodes each.  A frame
/// ends at a line starting with `mcsd.crc=`; bytes after the last such
/// line are an in-flight append and are left unconsumed.
FrameStream decode_frame_stream(std::string_view text);

}  // namespace mcsd::fam
