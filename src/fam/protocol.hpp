// smartFAM log-file wire protocol.
//
// Paper Section IV-A: "The log file of each data-intensive module is an
// efficient channel for the host node to communicate with the smart-
// storage node. ... the host writes the input parameters to the log file
// that is monitored and read by the data-intensive module", and results
// travel back through the same file.
//
// A log file holds exactly one record at a time (the latest request or
// response); records are replaced atomically (core/io.hpp) so watchers
// never see torn writes.  Record layout is the key=value format of
// core/config.hpp with reserved `mcsd.` keys:
//
//   mcsd.type   = request | response
//   mcsd.seq    = monotonically increasing per module
//   mcsd.module = module name
//   mcsd.status = ok | error                (responses only)
//   mcsd.error  = message                   (error responses only)
//   mcsd.last   = daemon's last handled seq (stale-reply responses only)
//   mcsd.cache  = hit | miss                (responses via the result cache)
//   mcsd.epoch  = cache insertion epoch     (responses with mcsd.cache)
//   mcsd.crc    = FNV-1a of the payload     (integrity across NFS)
//   <everything else>                       = user parameters / results
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "core/result.hpp"

namespace mcsd::fam {

enum class RecordType : std::uint8_t { kRequest, kResponse };

/// How the daemon's result cache participated in a response.  kNone means
/// the invocation was not cacheable (or the daemon predates the cache);
/// kHit means the payload was served verbatim from the cache without
/// dispatching the module; kMiss means the module ran and the result was
/// (re)admitted.
enum class CacheState : std::uint8_t { kNone, kHit, kMiss };

/// One decoded log-file record.
struct Record {
  RecordType type = RecordType::kRequest;
  std::uint64_t seq = 0;
  std::string module;
  bool ok = true;              ///< responses: module succeeded
  std::string error_message;   ///< responses with ok == false
  /// Responses only, 0 = absent.  When a request's seq falls behind the
  /// daemon's last handled seq (two hosts sharing one module log), the
  /// daemon's error reply carries its high-water mark here so the losing
  /// client can re-seed instead of burning its full timeout.
  std::uint64_t last_seq = 0;
  /// Responses only: result-cache participation (see CacheState).
  CacheState cache = CacheState::kNone;
  /// Responses with cache != kNone: the cache entry's insertion epoch
  /// (0 = absent).  Two hits with equal epochs were served from the same
  /// cached computation; an epoch increase across an identical request
  /// means the entry was invalidated and recomputed in between.
  std::uint64_t cache_epoch = 0;
  KeyValueMap payload;         ///< user parameters or results
};

/// Serialises a record, computing the integrity checksum.
std::string encode_record(const Record& record);

/// Parses and validates a record (structure + checksum).
Result<Record> decode_record(std::string_view text);

/// The log-file name a module owns inside the shared log folder.
std::string log_file_name(std::string_view module_name);

/// Module names appear in file names: [a-zA-Z0-9_-]+, non-empty.
bool valid_module_name(std::string_view name);

}  // namespace mcsd::fam
