#include "fam/watcher.hpp"

#include <system_error>

#include "core/fault.hpp"
#include "core/hash.hpp"
#include "core/io.hpp"
#include "core/log.hpp"
#include "core/stopwatch.hpp"
#include "obs/counters.hpp"

namespace mcsd::fam {

namespace fs = std::filesystem;

FileWatcher::FileWatcher(fs::path directory,
                         std::chrono::milliseconds poll_interval,
                         ChangeCallback on_change)
    : directory_(std::move(directory)),
      poll_interval_(poll_interval),
      on_change_(std::move(on_change)) {
#if MCSD_OBS_ENABLED
  poll_histogram_ = &obs::Registry::instance().histogram(
      "fam.watcher_poll_us(interval=" +
          std::to_string(poll_interval_.count()) + "ms)",
      "us");
#endif
  // Prime the fingerprint table so only *subsequent* changes fire; a
  // daemon attaching to an existing log folder must not replay history.
  poll_once_internal(/*fire=*/false);
}

FileWatcher::~FileWatcher() { stop(); }

void FileWatcher::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { run(); });
}

void FileWatcher::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

void FileWatcher::run() {
  while (running_.load(std::memory_order_relaxed)) {
    poll_once();
    std::this_thread::sleep_for(poll_interval_);
  }
}

void FileWatcher::poll_once() { poll_once_internal(/*fire=*/true); }

FileWatcher::Fingerprint FileWatcher::fingerprint(const fs::path& path) {
  Fingerprint fp;
  std::error_code ec;
  fp.mtime = fs::last_write_time(path, ec);
  fp.size = fs::file_size(path, ec);
  if (auto contents = read_file(path)) {
    fp.content_hash = fnv1a(contents.value());
  }
  return fp;
}

void FileWatcher::poll_once_internal(bool fire) {
  Stopwatch pass;
  std::vector<fs::path> changed;
  {
    std::lock_guard lock{mutex_};
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator{directory_, ec}) {
      if (ec) break;
      if (!entry.is_regular_file(ec)) continue;
      const fs::path& path = entry.path();
      // Skip write_file_atomic staging files: observing one mid-rename
      // would hand the daemon a request the subsequent rename then
      // clobbers the response of — the client would wait forever.
      if (path.filename().string().find(".tmp.") != std::string::npos) {
        continue;
      }
      Fingerprint fp = fingerprint(path);
      auto [it, inserted] = seen_.try_emplace(path.filename().string(), fp);
      if (!inserted && it->second == fp) continue;
      it->second = fp;
      changed.push_back(path);
    }
    if (ec) {
      MCSD_LOG(kWarn, "fam.watcher")
          << "cannot scan " << directory_.string() << ": " << ec.message();
    }
  }
#if MCSD_OBS_ENABLED
  if (poll_histogram_ != nullptr && obs::enabled()) {
    poll_histogram_->record(
        static_cast<std::uint64_t>(pass.elapsed_seconds() * 1e6));
  }
#endif
  if (!fire) return;
  for (const auto& path : changed) {
    // Injected lost event: the fingerprint above already advanced, so
    // this change is never replayed — exactly the NFS-attribute-cache
    // failure mode clients must recover from by re-sending.
    if (fault::check(fault::Site::kWatchEvent, path.native()).kind ==
        fault::Kind::kSuppressEvent) {
      MCSD_OBS_COUNT("fam.watcher_suppressed_events", 1);
      continue;
    }
    events_fired_.fetch_add(1, std::memory_order_relaxed);
    MCSD_OBS_COUNT("fam.watcher_events", 1);
    if (on_change_) on_change_(path);
  }
}

}  // namespace mcsd::fam
