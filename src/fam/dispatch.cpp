#include "fam/dispatch.hpp"

#include <algorithm>

#include "core/fault.hpp"
#include "core/io.hpp"
#include "obs/counters.hpp"

namespace mcsd::fam::dispatch {

Admission AdmissionQueue::push(PendingRequest request,
                               std::string coalesce_key) {
  std::lock_guard lock{mutex_};
  if (closed_) return Admission::kClosed;

  const std::uint64_t client = request.request.client_id;
  const std::uint64_t seq = request.request.seq;
  auto& last_seq = last_admitted_seq_[client];
  if (seq <= last_seq) return Admission::kStale;

  // Supersede: the client re-sent (timeout or backpressure retry, or a
  // whole new invoke after giving up) while its previous request was
  // still queued — the client only awaits its newest seq, so answering
  // the old one is wasted work.  When the new request is byte-compatible
  // with the batch it sits in (same coalesce key, or a solo uncoalesced
  // batch) it replaces the old one in place; otherwise the old waiter is
  // tombstoned (client_id = 0, skipped by the batch worker) and the new
  // request goes through normal admission.  A request whose batch has
  // already been popped is beyond recall; the reply writer's per-client
  // seq guard keeps its late reply from clobbering the retry's.
  bool superseded = false;
  if (const auto queued = queued_clients_.find(client);
      queued != queued_clients_.end()) {
    const std::size_t index = queued->second.batch - popped_;
    if (index < batches_.size() &&
        queued->second.waiter < batches_[index].waiters.size()) {
      Batch& batch = batches_[index];
      const bool compatible = batch.coalesce_key == coalesce_key;
      if (compatible) {
        last_seq = seq;
        batch.waiters[queued->second.waiter] = std::move(request);
        return Admission::kSuperseded;
      }
      batch.waiters[queued->second.waiter].request.client_id = 0;
      superseded = true;
    }
    queued_clients_.erase(queued);
  }

  // Coalesce: an open batch with the same (module, params, fingerprint)
  // identity absorbs this request as one more waiter — one module run,
  // N responses.
  if (!coalesce_key.empty()) {
    if (const auto open = open_batches_.find(coalesce_key);
        open != open_batches_.end()) {
      const std::size_t index = open->second - popped_;
      if (index < batches_.size()) {
        last_seq = seq;
        queued_clients_[client] =
            QueuedAt{open->second, batches_[index].waiters.size()};
        batches_[index].waiters.push_back(std::move(request));
        return Admission::kCoalesced;
      }
      open_batches_.erase(open);
    }
  }

  if (max_batches_ != 0 && batches_.size() >= max_batches_) {
    return Admission::kRejected;
  }

  last_seq = seq;
  Batch batch;
  batch.coalesce_key = coalesce_key;
  batch.waiters.push_back(std::move(request));
  const std::size_t absolute = popped_ + batches_.size();
  if (!coalesce_key.empty()) open_batches_[coalesce_key] = absolute;
  queued_clients_[client] = QueuedAt{absolute, 0};
  batches_.push_back(std::move(batch));
  ready_.notify_one();
  return superseded ? Admission::kSuperseded : Admission::kAccepted;
}

std::optional<Batch> AdmissionQueue::pop() {
  std::unique_lock lock{mutex_};
  ready_.wait(lock, [this] { return closed_ || !batches_.empty(); });
  if (batches_.empty()) return std::nullopt;
  Batch batch = std::move(batches_.front());
  batches_.pop_front();
  ++popped_;
  // The popped batch is closed to coalescing and its waiters are no
  // longer supersedable — drop the bookkeeping that pointed at it.
  if (!batch.coalesce_key.empty()) {
    if (const auto open = open_batches_.find(batch.coalesce_key);
        open != open_batches_.end() && open->second + 1 == popped_) {
      open_batches_.erase(open);
    }
  }
  for (const PendingRequest& waiter : batch.waiters) {
    if (const auto queued =
            queued_clients_.find(waiter.request.client_id);
        queued != queued_clients_.end() && queued->second.batch + 1 == popped_) {
      queued_clients_.erase(queued);
    }
  }
  return batch;
}

void AdmissionQueue::close() {
  std::lock_guard lock{mutex_};
  closed_ = true;
  ready_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard lock{mutex_};
  return batches_.size();
}

std::uint64_t AdmissionQueue::retry_after_ms() const {
  std::lock_guard lock{mutex_};
  // Base hint of a few ms (one drain + dispatch cycle), stretched as the
  // queue deepens; the client adds jitter so rejected herds de-correlate.
  return 2 + static_cast<std::uint64_t>(
                 max_batches_ == 0 ? 0 : batches_.size() / 8);
}

std::vector<Record> drain_shard(ShardDrain& shard) {
  std::vector<Record> requests;
  const auto size = mcsd::file_size(shard.path);
  if (!size.is_ok() || size.value() <= shard.offset) return requests;

  // Growth detected: this is the sharded channel's "change event", and
  // the same fault site the rev-1 watcher exposes.  A suppressed event
  // skips this pass without advancing the cursor — the next pass sees
  // the same growth, so an injected lost wakeup costs latency, never a
  // request.
  if (fault::check(fault::Site::kWatchEvent, shard.path.native()).kind ==
      fault::Kind::kSuppressEvent) {
    ++shard.suppressed;
    return requests;
  }

  auto tail = read_file_from(shard.path, shard.offset);
  if (!tail.is_ok()) return requests;  // transient; next pass retries

  FrameStream stream = decode_frame_stream(tail.value());
  shard.offset += stream.consumed;
  shard.corrupt += stream.corrupt;
  shard.drained += stream.records.size();
  for (Record& record : stream.records) {
    if (record.type != RecordType::kRequest) continue;
    if (record.client_id == 0) continue;  // rev-2 frames carry a client id
    requests.push_back(std::move(record));
  }
  return requests;
}

std::string_view tenant_or_default(std::string_view tenant) noexcept {
  return tenant.empty() ? std::string_view{"default"} : tenant;
}

QosRegistry::Slot& QosRegistry::slot_locked(std::string_view tenant) {
  const auto found = tenants_.find(tenant);
  if (found != tenants_.end()) return found->second;
  return tenants_[std::string{tenant}];
}

namespace {
void bump_obs(std::string_view what, std::string_view tenant) {
  obs::Registry::instance()
      .counter("fam.serve." + std::string{what} +
               "(tenant=" + std::string{tenant} + ")")
      .add(1);
}
}  // namespace

void QosRegistry::record_accepted(std::string_view tenant) {
  tenant = tenant_or_default(tenant);
  {
    std::lock_guard lock{mutex_};
    ++slot_locked(tenant).accepted;
  }
  bump_obs("accepted", tenant);
}

void QosRegistry::record_rejected(std::string_view tenant) {
  tenant = tenant_or_default(tenant);
  {
    std::lock_guard lock{mutex_};
    ++slot_locked(tenant).rejected;
  }
  bump_obs("rejected", tenant);
}

void QosRegistry::record_coalesced(std::string_view tenant) {
  tenant = tenant_or_default(tenant);
  {
    std::lock_guard lock{mutex_};
    ++slot_locked(tenant).coalesced;
  }
  bump_obs("coalesced", tenant);
}

void QosRegistry::record_deadline_shed(std::string_view tenant) {
  tenant = tenant_or_default(tenant);
  {
    std::lock_guard lock{mutex_};
    ++slot_locked(tenant).deadline_shed;
  }
  bump_obs("deadline_shed", tenant);
}

void QosRegistry::record_completed(std::string_view tenant,
                                   std::uint64_t invoke_us) {
  tenant = tenant_or_default(tenant);
  {
    std::lock_guard lock{mutex_};
    Slot& slot = slot_locked(tenant);
    ++slot.completed;
    obs::HistogramData& hist = slot.invoke_us;
    ++hist.buckets[obs::Histogram::bucket_of(invoke_us)];
    ++hist.count;
    hist.sum += invoke_us;
    hist.max = std::max(hist.max, invoke_us);
  }
  obs::Registry::instance()
      .histogram("fam.serve.invoke_us(tenant=" + std::string{tenant} + ")",
                 "us")
      .record(invoke_us);
}

std::vector<TenantQos> QosRegistry::snapshot() const {
  std::vector<TenantQos> out;
  std::lock_guard lock{mutex_};
  out.reserve(tenants_.size());
  for (const auto& [tenant, slot] : tenants_) {
    TenantQos qos;
    qos.tenant = tenant;
    qos.accepted = slot.accepted;
    qos.rejected = slot.rejected;
    qos.coalesced = slot.coalesced;
    qos.completed = slot.completed;
    qos.deadline_shed = slot.deadline_shed;
    qos.invoke_us = slot.invoke_us;
    out.push_back(std::move(qos));
  }
  return out;
}

}  // namespace mcsd::fam::dispatch
