// The daemon-side dispatch layer for the rev-2 sharded mailbox channel
// (DESIGN.md §13 "Serving at scale").
//
// Three pieces, composed by fam::Daemon:
//
//  * ShardDrain — per-mailbox tail cursor.  The daemon's drainer thread
//    polls every shard per wakeup; a drain reads only the bytes appended
//    since the last pass (core/io read_file_from) and splits them into
//    crc-delimited frames (protocol decode_frame_stream).  Round-robin
//    over all shards per wakeup gives fairness by construction: no shard
//    can starve another, because every wakeup visits every mailbox.
//
//  * AdmissionQueue — the bounded in-memory queue between the drainer
//    and the batch workers.  Admission coalesces compatible requests
//    (same module, same canonical params, same input fingerprint — the
//    result cache's identity key) into one batch that a single module
//    run fans back out to every waiter, supersedes an older queued
//    request when the same client re-sends (its client only awaits the
//    newest seq), and rejects with a typed retry-after hint when the
//    batch bound is hit — backpressure the client honours with jittered
//    exponential backoff instead of hammering the mailbox.
//
//  * QosRegistry — per-tenant serving counters (accepted / rejected /
//    coalesced / completed / shed) and an invoke-latency histogram, the
//    numbers an operator needs to see which tenant is eating the node.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fam/protocol.hpp"
#include "obs/histogram.hpp"

namespace mcsd::fam::dispatch {

/// One admitted request awaiting its module run.
struct PendingRequest {
  Record request;
  /// When the drainer admitted it — the deadline clock and the queue-wait
  /// component of the serving latency both start here.
  std::chrono::steady_clock::time_point admitted_at{};
};

/// A unit of work for a batch worker: one module run fanned out to every
/// waiter.  `waiters.front()` supplies the parameters; coalescing
/// guarantees the others are byte-compatible.
struct Batch {
  std::vector<PendingRequest> waiters;
  /// Set when the batch is open for coalescing (cacheable request).
  std::string coalesce_key;
};

/// Admission outcome for one drained request.
enum class Admission : std::uint8_t {
  kAccepted,    ///< new batch queued
  kCoalesced,   ///< joined an already-queued compatible batch
  kSuperseded,  ///< replaced the same client's older queued request
  kRejected,    ///< queue full — reject with retry-after
  kStale,       ///< seq not newer than the client's last admitted — drop
  kClosed,      ///< queue closed (daemon stopping)
};

/// The bounded admission queue.  Thread-safe; one drainer pushes, N batch
/// workers pop.
class AdmissionQueue {
 public:
  /// `max_batches` bounds *batches* (distinct module runs), not waiters:
  /// a coalesced joiner consumes no extra run, so it is always admitted
  /// even at the bound.  0 means unbounded.
  explicit AdmissionQueue(std::size_t max_batches)
      : max_batches_(max_batches) {}

  /// Routes one drained request.  `coalesce_key` is empty for requests
  /// that must not be coalesced (uncacheable modules).  The per-client
  /// seq gate lives here: a request whose seq is not newer than the
  /// client's last admitted seq is dropped as kStale (duplicate frame or
  /// out-of-order re-read), and a newer seq from a client with a request
  /// still queued replaces it in place (kSuperseded) — the client only
  /// polls for its newest seq, so answering the old one is wasted work.
  Admission push(PendingRequest request, std::string coalesce_key);

  /// Blocks for the next batch; nullopt once closed *and* drained.  A
  /// popped batch is closed to further coalescing.
  std::optional<Batch> pop();

  /// Closes the queue: pushes start returning kClosed, pops drain what
  /// was admitted and then return nullopt.
  void close();

  /// Queued batches right now (monitoring gauge).
  [[nodiscard]] std::size_t depth() const;

  /// Suggested client back-off for a rejection: scales with how far the
  /// queue is past its bound so a deeper pile-up pushes clients further
  /// away.
  [[nodiscard]] std::uint64_t retry_after_ms() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Batch> batches_;
  /// coalesce_key -> index into batches_ of the open batch.  Indices stay
  /// valid because pops come off the front and the map is rebuilt (well,
  /// adjusted) as batches shift; see dispatch.cpp.
  std::map<std::string, std::size_t> open_batches_;
  /// client_id -> (batch index, waiter index) of its queued request, for
  /// supersede-in-place.
  struct QueuedAt {
    std::size_t batch = 0;
    std::size_t waiter = 0;
  };
  std::map<std::uint64_t, QueuedAt> queued_clients_;
  /// client_id -> highest seq ever admitted (duplicate-frame gate).
  std::map<std::uint64_t, std::uint64_t> last_admitted_seq_;
  std::size_t max_batches_ = 0;
  std::size_t popped_ = 0;  ///< front-of-deque shift count; see .cpp
  bool closed_ = false;
};

/// Tail cursor over one shard mailbox.
struct ShardDrain {
  std::filesystem::path path;
  std::uint64_t offset = 0;        ///< bytes consumed so far
  std::uint64_t drained = 0;       ///< frames decoded off this shard
  std::uint64_t corrupt = 0;       ///< frames dropped for bad crc
  std::uint64_t suppressed = 0;    ///< polls skipped by injected fault
};

/// Drains whatever `shard` has appended since the last pass.  Consults
/// the kWatchEvent fault site when growth is detected (an injected
/// suppress skips this pass without advancing the cursor, modelling a
/// lost wakeup: latency, never loss) and the kReadFile site via the tail
/// read itself.  Returns the newly decoded requests; the cursor advances
/// only past complete frames, so a torn tail is retried next pass.
std::vector<Record> drain_shard(ShardDrain& shard);

/// Per-tenant QoS counters.  Plain struct snapshot for tools and tests;
/// the live registry also mirrors into obs ("fam.serve.*(tenant=...)").
struct TenantQos {
  std::string tenant;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_shed = 0;
  /// Admission -> reply-written latency distribution, microseconds.
  obs::HistogramData invoke_us;
};

class QosRegistry {
 public:
  void record_accepted(std::string_view tenant);
  void record_rejected(std::string_view tenant);
  void record_coalesced(std::string_view tenant);
  void record_deadline_shed(std::string_view tenant);
  void record_completed(std::string_view tenant, std::uint64_t invoke_us);

  /// Snapshot of every tenant seen so far, sorted by tenant label.
  [[nodiscard]] std::vector<TenantQos> snapshot() const;

 private:
  struct Slot {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_shed = 0;
    obs::HistogramData invoke_us;
  };
  Slot& slot_locked(std::string_view tenant);

  mutable std::mutex mutex_;
  std::map<std::string, Slot, std::less<>> tenants_;
};

/// Canonical tenant label for accounting ("" -> "default").
std::string_view tenant_or_default(std::string_view tenant) noexcept;

}  // namespace mcsd::fam::dispatch
