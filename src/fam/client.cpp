#include "fam/client.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "core/io.hpp"
#include "core/random.hpp"
#include "core/stopwatch.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace mcsd::fam {

namespace fs = std::filesystem;

Client::Client(ClientOptions options) : options_(std::move(options)) {}

bool Client::module_available(std::string_view module) const {
  return fs::exists(options_.log_dir / log_file_name(module));
}

std::uint64_t Client::current_seq(const fs::path& log) const {
  // A failed or undecodable read here is usually transient — a torn read
  // racing write_file_atomic's rename, or an NFS hiccup.  Falling back to
  // 0 on a *populated* log would restart the seq sequence, and the
  // daemon's dedup gate would then silently drop every request until the
  // counter climbed back past its high-water mark.  Retry briefly first.
  constexpr int kSeqReadAttempts = 5;
  for (int attempt = 0; attempt < kSeqReadAttempts; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(std::chrono::milliseconds{1});
    auto contents = read_file(log);
    if (!contents) continue;
    if (contents.value().rfind("# mcsd", 0) == 0) {
      return 0;  // pristine comment-only header: seq genuinely starts at 0
    }
    auto record = decode_record(contents.value());
    if (!record) continue;  // torn write; next read sees a whole record
    return record.value().seq;
  }
  return 0;
}

Client::Channel Client::resolve_channel(std::size_t& shards) {
  std::lock_guard lock{mutex_};
  if (options_.force_legacy) return Channel::kLegacy;
  if (channel_ == Channel::kUnknown) {
    // Probe the daemon's channel advertisement.  An absent or unreadable
    // manifest leaves the mode undecided — this invoke travels rev-1
    // (the daemon, if any, serves it) and the next invoke re-probes, so
    // a client constructed before its daemon still upgrades.  Only a
    // manifest that *reads cleanly* is conclusive.
    if (auto contents = read_file(options_.log_dir / kManifestFileName)) {
      if (auto manifest = decode_manifest(contents.value())) {
        channel_ = Channel::kSharded;
        shard_count_ = manifest.value().shards;
      }
    }
  }
  shards = shard_count_;
  return channel_;
}

Result<KeyValueMap> Client::invoke(std::string_view module,
                                   const KeyValueMap& params,
                                   InvokeInfo* info) {
  MCSD_OBS_SPAN("fam", "fam.invoke:" + std::string{module});
  MCSD_OBS_COUNT("fam.client_invokes", 1);
  if (!valid_module_name(module)) {
    return Error{ErrorCode::kInvalidArgument,
                 "invalid module name: " + std::string{module}};
  }
  std::size_t shards = 0;
  if (resolve_channel(shards) == Channel::kSharded) {
    return invoke_sharded(module, params, info, shards);
  }
  return invoke_legacy(module, params, info);
}

Result<KeyValueMap> Client::invoke_legacy(std::string_view module,
                                          const KeyValueMap& params,
                                          InvokeInfo* info) {
  const fs::path log = options_.log_dir / log_file_name(module);
  if (!fs::exists(log)) {
    return Error{ErrorCode::kNotFound,
                 "module not preloaded (no log file): " + std::string{module}};
  }

  PerModule* state = nullptr;
  {
    std::lock_guard lock{mutex_};
    auto& slot = per_module_[std::string{module}];
    if (!slot) slot = std::make_unique<PerModule>();
    state = slot.get();
    invocations_.fetch_add(1, std::memory_order_relaxed);
  }

  // Serialise outstanding requests per module: the log file is a
  // single-record channel.
  std::lock_guard in_flight{state->in_flight};
  if (state->next_seq == 0) {
    state->next_seq = current_seq(log) + 1;
  }

  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  Error last_error{ErrorCode::kInternal, "unreachable"};
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      MCSD_OBS_COUNT("fam.client_retries", 1);
      // Re-seed before every retry: a timeout may mean another host (or
      // our own lost write) advanced the log past our counter, and
      // re-sending a stale seq would only bounce off the daemon's dedup
      // gate again.  max() keeps the counter monotonic even if the file
      // currently shows an older record (or reads as torn -> 0).
      state->next_seq = std::max(state->next_seq, current_seq(log) + 1);
    }
    const std::uint64_t seq = state->next_seq++;
    Stopwatch round_trip;

    Record request;
    request.type = RecordType::kRequest;
    request.seq = seq;
    request.module = std::string{module};
    request.payload = params;
    if (Status s = write_file_atomic(log, encode_record(request)); !s) {
      // A failed request write (ENOSPC, transient EIO) consumes an
      // attempt rather than failing the invoke: the channel may recover.
      last_error = Error{s.error().code(),
                         "cannot write request: " + s.to_string()};
      continue;
    }

    // Await the matching response (inotify-equivalent: poll the file).
    Stopwatch waited;
    bool next_attempt = false;
    while (!next_attempt) {
      if (auto contents = read_file(log)) {
        if (auto record = decode_record(contents.value())) {
          const Record& r = record.value();
          if (r.type == RecordType::kResponse && r.seq == seq &&
              r.module == module) {
            if (!r.ok && r.last_seq > seq) {
              // Stale-seq reply: the daemon has already handled a higher
              // seq (another host owns the log right now).  Jump past its
              // high-water mark and retry instead of surfacing an error.
              MCSD_OBS_COUNT("fam.client_stale_replies", 1);
              state->next_seq = std::max(state->next_seq, r.last_seq + 1);
              last_error =
                  Error{ErrorCode::kUnavailable,
                        "request lost seq race: " + r.error_message};
              next_attempt = true;
              continue;
            }
            // Round trip = request write .. response observed, the
            // paper's invoke->dispatch->result latency as the host sees
            // it (includes daemon poll + module run).
            const double rt_seconds = round_trip.elapsed_seconds();
            MCSD_OBS_HIST("fam.round_trip_us", "us",
                          static_cast<std::uint64_t>(rt_seconds * 1e6));
            if (info) {
              info->cache = r.cache;
              info->cache_epoch = r.cache_epoch;
              info->round_trip_seconds = rt_seconds;
            }
            if (!r.ok) {
              MCSD_OBS_COUNT("fam.client_module_errors", 1);
              return Error{ErrorCode::kInternal,
                           "module error: " + r.error_message};
            }
            return r.payload;
          }
          if (r.seq > seq) {
            // Someone raced past us (another host process); our response
            // is unrecoverable.  Leapfrog the racer's seq and re-send.
            state->next_seq = std::max(state->next_seq, r.seq + 1);
            last_error =
                Error{ErrorCode::kProtocolError,
                      "response overwritten by newer request (seq " +
                          std::to_string(r.seq) + " > " +
                          std::to_string(seq) + ")"};
            next_attempt = true;
            continue;
          }
        }
      }
      if (waited.elapsed() > options_.timeout) {
        MCSD_OBS_COUNT("fam.client_timeouts", 1);
        last_error = Error{
            ErrorCode::kTimeout,
            "no response from " + std::string{module} + " within " +
                std::to_string(options_.timeout.count()) + " ms (attempt " +
                std::to_string(attempt + 1) + "/" + std::to_string(attempts) +
                ")"};
        next_attempt = true;
      } else {
        std::this_thread::sleep_for(options_.poll_interval);
      }
    }
  }
  return last_error;
}

namespace {

/// Process-unique rev-2 client id.  The pid in the high bits keeps ids
/// from colliding across host processes sharing one log folder; the
/// counter keeps them unique within the process.  Never 0 (0 marks a
/// legacy record / a tombstoned waiter).
std::uint64_t next_client_id() {
  static std::atomic<std::uint64_t> counter{0};
  const auto pid = static_cast<std::uint64_t>(::getpid());
  return (pid << 32) ^
         (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

/// Cheap change detector for the reply file.  The daemon replaces it via
/// write-temp-then-rename, so every reply lands on a fresh inode — one
/// ::stat per poll tells us whether there is anything new to decode.
/// Without this gate, N waiting slots each open+read+decode the reply
/// file every poll interval; at hundreds of concurrent clients that
/// read storm saturates the filesystem and the daemon's reply *writes*
/// queue behind it (measured: ~16 ms per tiny atomic write under a
/// 64-client read storm vs ~0.3 ms unloaded).
struct ReplyFileStamp {
  bool exists = false;
  std::uint64_t ino = 0;
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;

  bool operator==(const ReplyFileStamp&) const = default;
};

ReplyFileStamp stat_reply(const fs::path& path) {
  struct ::stat st{};
  ReplyFileStamp out;
  if (::stat(path.c_str(), &st) != 0) return out;
  out.exists = true;
  out.ino = static_cast<std::uint64_t>(st.st_ino);
  out.size = static_cast<std::uint64_t>(st.st_size);
  out.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                     1'000'000'000 +
                 static_cast<std::int64_t>(st.st_mtim.tv_nsec);
  return out;
}

}  // namespace

Result<KeyValueMap> Client::invoke_sharded(std::string_view module,
                                           const KeyValueMap& params,
                                           InvokeInfo* info,
                                           std::size_t shards) {
  // The hybrid daemon still materialises one rev-1 log per preloaded
  // module, so "no log file" still means "module not preloaded" — fail
  // fast instead of waiting out the timeout for an error reply.
  if (!fs::exists(options_.log_dir / log_file_name(module))) {
    return Error{ErrorCode::kNotFound,
                 "module not preloaded (no log file): " + std::string{module}};
  }

  // Acquire a slot: one per concurrently outstanding invoke.  Unlike the
  // rev-1 channel there is no per-module serialisation — slots write to
  // hashed mailboxes and await private reply files, so N threads invoke
  // N requests in parallel.
  std::unique_ptr<Slot> slot;
  {
    std::lock_guard lock{mutex_};
    invocations_.fetch_add(1, std::memory_order_relaxed);
    if (!free_slots_.empty()) {
      slot = std::move(free_slots_.back());
      free_slots_.pop_back();
    }
  }
  if (!slot) {
    slot = std::make_unique<Slot>();
    slot->client_id = next_client_id();
  }

  const fs::path shard =
      options_.log_dir / kShardDirName /
      shard_file_name(shard_for_client(slot->client_id, shards));
  const fs::path reply_file = options_.log_dir / kReplyDirName /
                              reply_file_name(slot->client_id);
  const auto deadline_ms =
      static_cast<std::uint64_t>(options_.timeout.count());

  // Deterministic per-slot jitter stream for backpressure backoff.
  SplitMix64 jitter{slot->client_id ^ (slot->next_seq * 0x9E3779B97F4A7C15ULL)};

  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  int backpressure_left = options_.max_backpressure_retries < 0
                              ? 0
                              : options_.max_backpressure_retries;
  int backpressure_used = 0;
  Error last_error{ErrorCode::kInternal, "unreachable"};
  auto release_slot = [this, &slot] {
    std::lock_guard lock{mutex_};
    free_slots_.push_back(std::move(slot));
  };

  for (int attempt = 0; attempt < attempts;) {
    const std::uint64_t seq = slot->next_seq++;
    Record request;
    request.type = RecordType::kRequest;
    request.seq = seq;
    request.module = std::string{module};
    request.client_id = slot->client_id;
    request.tenant = options_.tenant;
    request.deadline_ms = deadline_ms;
    request.payload = params;
    if (Status s = append_file(shard, encode_record(request)); !s) {
      // A failed append (ENOSPC, transient EIO) consumes an attempt
      // rather than failing the invoke: the mailbox may recover.  A torn
      // append is silent — the daemon drops the corrupt frame and the
      // timeout below covers it.
      last_error = Error{s.error().code(),
                         "cannot append request: " + s.to_string()};
      ++attempt;
      continue;
    }

    Stopwatch round_trip;
    Stopwatch waited;
    bool next_attempt = false;
    // Read the reply file only when its identity changed since the last
    // decode — see ReplyFileStamp.  `decoded` starts one step behind so
    // the first poll always reads (a reply may already be there when the
    // stat race goes the daemon's way).
    ReplyFileStamp decoded;
    bool force_read = true;
    while (!next_attempt) {
      const ReplyFileStamp current = stat_reply(reply_file);
      const bool changed = force_read || !(current == decoded);
      force_read = false;
      decoded = current;
      // The reply file is an append-only frame log; decode forward from
      // the slot's cursor.  Frames for older seqs (stale fan-outs the
      // daemon's guard admitted before ours) are skipped; r.seq > seq is
      // impossible (the daemon's reply guard is monotonic and this slot
      // owns the file), so no leapfrog handling is needed.  A torn or
      // corrupt frame is skipped by the stream's CRC resync and the
      // timeout below covers the lost reply.
      std::optional<Record> reply;
      if (changed) {
        if (auto tail = read_file_from(reply_file, slot->reply_offset)) {
          FrameStream stream = decode_frame_stream(tail.value());
          slot->reply_offset += stream.consumed;
          for (Record& r : stream.records) {
            if (r.type == RecordType::kResponse && r.seq == seq) {
              reply = std::move(r);
            }
          }
        }
      }
      if (reply) {
        const Record& r = *reply;
        if (r.retry_after_ms != 0) {
          // Typed backpressure: the admission queue bounced us.
          // Honour the hint with jittered exponential backoff (the
          // hint doubles per consecutive rejection, jittered to
          // ±50% so a rejected herd de-correlates) and re-send
          // under a fresh seq — without consuming a timeout
          // attempt: the daemon answered, nothing was lost.
          MCSD_OBS_COUNT("fam.client_backpressure", 1);
          if (backpressure_left == 0) {
            release_slot();
            return Error{ErrorCode::kUnavailable,
                         "backpressure retries exhausted: " +
                             r.error_message};
          }
          --backpressure_left;
          ++backpressure_used;
          const int shift =
              backpressure_used < 6 ? backpressure_used - 1 : 5;
          const std::uint64_t base = r.retry_after_ms << shift;
          const std::uint64_t capped = std::min<std::uint64_t>(
              base, 250);
          // 50%..150% of the capped hint.
          const std::uint64_t delay_ms =
              capped / 2 + jitter.next() % (capped + 1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds{delay_ms});
          next_attempt = true;  // resend (attempt not consumed)
          continue;
        }
        const double rt_seconds = round_trip.elapsed_seconds();
        MCSD_OBS_HIST("fam.round_trip_us", "us",
                      static_cast<std::uint64_t>(rt_seconds * 1e6));
        if (info) {
          info->cache = r.cache;
          info->cache_epoch = r.cache_epoch;
          info->round_trip_seconds = rt_seconds;
          info->waiters = r.waiters;
          info->backpressure_retries = backpressure_used;
          info->sharded = true;
        }
        if (!r.ok) {
          MCSD_OBS_COUNT("fam.client_module_errors", 1);
          release_slot();
          return Error{ErrorCode::kInternal,
                       "module error: " + r.error_message};
        }
        release_slot();
        return r.payload;
      }
      if (waited.elapsed() > options_.timeout) {
        MCSD_OBS_COUNT("fam.client_timeouts", 1);
        last_error = Error{
            ErrorCode::kTimeout,
            "no response from " + std::string{module} + " within " +
                std::to_string(options_.timeout.count()) + " ms (attempt " +
                std::to_string(attempt + 1) + "/" + std::to_string(attempts) +
                ", sharded)"};
        ++attempt;
        next_attempt = true;
      } else {
        std::this_thread::sleep_for(options_.poll_interval);
      }
    }
  }
  release_slot();
  return last_error;
}

}  // namespace mcsd::fam
