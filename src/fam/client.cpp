#include "fam/client.hpp"

#include <algorithm>
#include <thread>

#include "core/io.hpp"
#include "core/stopwatch.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace mcsd::fam {

namespace fs = std::filesystem;

Client::Client(ClientOptions options) : options_(std::move(options)) {}

bool Client::module_available(std::string_view module) const {
  return fs::exists(options_.log_dir / log_file_name(module));
}

std::uint64_t Client::current_seq(const fs::path& log) const {
  // A failed or undecodable read here is usually transient — a torn read
  // racing write_file_atomic's rename, or an NFS hiccup.  Falling back to
  // 0 on a *populated* log would restart the seq sequence, and the
  // daemon's dedup gate would then silently drop every request until the
  // counter climbed back past its high-water mark.  Retry briefly first.
  constexpr int kSeqReadAttempts = 5;
  for (int attempt = 0; attempt < kSeqReadAttempts; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(std::chrono::milliseconds{1});
    auto contents = read_file(log);
    if (!contents) continue;
    if (contents.value().rfind("# mcsd", 0) == 0) {
      return 0;  // pristine comment-only header: seq genuinely starts at 0
    }
    auto record = decode_record(contents.value());
    if (!record) continue;  // torn write; next read sees a whole record
    return record.value().seq;
  }
  return 0;
}

Result<KeyValueMap> Client::invoke(std::string_view module,
                                   const KeyValueMap& params,
                                   InvokeInfo* info) {
  MCSD_OBS_SPAN("fam", "fam.invoke:" + std::string{module});
  MCSD_OBS_COUNT("fam.client_invokes", 1);
  if (!valid_module_name(module)) {
    return Error{ErrorCode::kInvalidArgument,
                 "invalid module name: " + std::string{module}};
  }
  const fs::path log = options_.log_dir / log_file_name(module);
  if (!fs::exists(log)) {
    return Error{ErrorCode::kNotFound,
                 "module not preloaded (no log file): " + std::string{module}};
  }

  PerModule* state = nullptr;
  {
    std::lock_guard lock{mutex_};
    auto& slot = per_module_[std::string{module}];
    if (!slot) slot = std::make_unique<PerModule>();
    state = slot.get();
    ++invocations_;
  }

  // Serialise outstanding requests per module: the log file is a
  // single-record channel.
  std::lock_guard in_flight{state->in_flight};
  if (state->next_seq == 0) {
    state->next_seq = current_seq(log) + 1;
  }

  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  Error last_error{ErrorCode::kInternal, "unreachable"};
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      MCSD_OBS_COUNT("fam.client_retries", 1);
      // Re-seed before every retry: a timeout may mean another host (or
      // our own lost write) advanced the log past our counter, and
      // re-sending a stale seq would only bounce off the daemon's dedup
      // gate again.  max() keeps the counter monotonic even if the file
      // currently shows an older record (or reads as torn -> 0).
      state->next_seq = std::max(state->next_seq, current_seq(log) + 1);
    }
    const std::uint64_t seq = state->next_seq++;
    Stopwatch round_trip;

    Record request;
    request.type = RecordType::kRequest;
    request.seq = seq;
    request.module = std::string{module};
    request.payload = params;
    if (Status s = write_file_atomic(log, encode_record(request)); !s) {
      // A failed request write (ENOSPC, transient EIO) consumes an
      // attempt rather than failing the invoke: the channel may recover.
      last_error = Error{s.error().code(),
                         "cannot write request: " + s.to_string()};
      continue;
    }

    // Await the matching response (inotify-equivalent: poll the file).
    Stopwatch waited;
    bool next_attempt = false;
    while (!next_attempt) {
      if (auto contents = read_file(log)) {
        if (auto record = decode_record(contents.value())) {
          const Record& r = record.value();
          if (r.type == RecordType::kResponse && r.seq == seq &&
              r.module == module) {
            if (!r.ok && r.last_seq > seq) {
              // Stale-seq reply: the daemon has already handled a higher
              // seq (another host owns the log right now).  Jump past its
              // high-water mark and retry instead of surfacing an error.
              MCSD_OBS_COUNT("fam.client_stale_replies", 1);
              state->next_seq = std::max(state->next_seq, r.last_seq + 1);
              last_error =
                  Error{ErrorCode::kUnavailable,
                        "request lost seq race: " + r.error_message};
              next_attempt = true;
              continue;
            }
            // Round trip = request write .. response observed, the
            // paper's invoke->dispatch->result latency as the host sees
            // it (includes daemon poll + module run).
            const double rt_seconds = round_trip.elapsed_seconds();
            MCSD_OBS_HIST("fam.round_trip_us", "us",
                          static_cast<std::uint64_t>(rt_seconds * 1e6));
            if (info) {
              info->cache = r.cache;
              info->cache_epoch = r.cache_epoch;
              info->round_trip_seconds = rt_seconds;
            }
            if (!r.ok) {
              MCSD_OBS_COUNT("fam.client_module_errors", 1);
              return Error{ErrorCode::kInternal,
                           "module error: " + r.error_message};
            }
            return r.payload;
          }
          if (r.seq > seq) {
            // Someone raced past us (another host process); our response
            // is unrecoverable.  Leapfrog the racer's seq and re-send.
            state->next_seq = std::max(state->next_seq, r.seq + 1);
            last_error =
                Error{ErrorCode::kProtocolError,
                      "response overwritten by newer request (seq " +
                          std::to_string(r.seq) + " > " +
                          std::to_string(seq) + ")"};
            next_attempt = true;
            continue;
          }
        }
      }
      if (waited.elapsed() > options_.timeout) {
        MCSD_OBS_COUNT("fam.client_timeouts", 1);
        last_error = Error{
            ErrorCode::kTimeout,
            "no response from " + std::string{module} + " within " +
                std::to_string(options_.timeout.count()) + " ms (attempt " +
                std::to_string(attempt + 1) + "/" + std::to_string(attempts) +
                ")"};
        next_attempt = true;
      } else {
        std::this_thread::sleep_for(options_.poll_interval);
      }
    }
  }
  return last_error;
}

}  // namespace mcsd::fam
