// inotify-based file-alteration monitor (Linux).
//
// The paper's smartFAM is built on "the inotify program - a Linux kernel
// subsystem that provides file system event notification".  This backend
// is the faithful implementation: near-zero-latency events with no
// polling syscall load.  Caveat (why the polling FileWatcher is the
// default): inotify only observes *local* writes — over a real NFS mount
// the storage node never sees the host's writes, so deployments spanning
// NFS must poll.  On a local/tmpfs shared folder (tests, single-machine
// demos) inotify is strictly better.
#pragma once

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>

#include "core/result.hpp"
#include "fam/watcher.hpp"

namespace mcsd::fam {

class InotifyWatcher final : public Watcher {
 public:
  /// Watches regular files directly inside `directory` for close-write,
  /// moved-to (atomic rename lands here) and create events.
  /// Fails with kUnavailable on kernels without inotify support.
  static Result<std::unique_ptr<InotifyWatcher>> create(
      std::filesystem::path directory, ChangeCallback on_change);

  ~InotifyWatcher();

  InotifyWatcher(const InotifyWatcher&) = delete;
  InotifyWatcher& operator=(const InotifyWatcher&) = delete;

  /// Starts the event thread.  Idempotent.
  void start() override;
  /// Stops and joins.  Idempotent; destructor calls it.
  void stop() override;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::uint64_t events_fired() const noexcept override {
    return events_fired_.load(std::memory_order_relaxed);
  }

 private:
  InotifyWatcher(std::filesystem::path directory, ChangeCallback on_change,
                 int inotify_fd, int watch_descriptor);

  void run();

  std::filesystem::path directory_;
  ChangeCallback on_change_;
  int inotify_fd_;
  int watch_descriptor_;
  int wake_pipe_[2] = {-1, -1};  ///< select() wake-up for stop()
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> events_fired_{0};
};

}  // namespace mcsd::fam
