#include "fam/module.hpp"

#include "fam/protocol.hpp"

namespace mcsd::fam {

Status ModuleRegistry::add(std::shared_ptr<Module> module) {
  if (!module) {
    return Status{ErrorCode::kInvalidArgument, "null module"};
  }
  const std::string name{module->name()};
  if (!valid_module_name(name)) {
    return Status{ErrorCode::kInvalidArgument, "invalid module name: " + name};
  }
  std::lock_guard lock{mutex_};
  const auto [it, inserted] = modules_.try_emplace(name, std::move(module));
  if (!inserted) {
    return Status{ErrorCode::kInvalidArgument,
                  "module already registered: " + name};
  }
  return Status::ok();
}

std::shared_ptr<Module> ModuleRegistry::find(std::string_view name) const {
  std::lock_guard lock{mutex_};
  const auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second;
}

std::vector<std::string> ModuleRegistry::names() const {
  std::lock_guard lock{mutex_};
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [name, module] : modules_) out.push_back(name);
  return out;
}

std::size_t ModuleRegistry::size() const {
  std::lock_guard lock{mutex_};
  return modules_.size();
}

}  // namespace mcsd::fam
