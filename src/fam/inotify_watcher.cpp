#include "fam/inotify_watcher.hpp"

#include <poll.h>
#include <sys/inotify.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "core/fault.hpp"
#include "core/log.hpp"

namespace mcsd::fam {

namespace fs = std::filesystem;

Result<std::unique_ptr<InotifyWatcher>> InotifyWatcher::create(
    fs::path directory, ChangeCallback on_change) {
  const int fd = ::inotify_init1(IN_NONBLOCK | IN_CLOEXEC);
  if (fd < 0) {
    return Error{ErrorCode::kUnavailable,
                 std::string{"inotify_init1: "} + std::strerror(errno)};
  }
  // IN_CLOSE_WRITE covers in-place writes; IN_MOVED_TO covers the atomic
  // temp-file-then-rename updates write_file_atomic performs.
  const int wd = ::inotify_add_watch(
      fd, directory.c_str(), IN_CLOSE_WRITE | IN_MOVED_TO | IN_CREATE);
  if (wd < 0) {
    const int err = errno;
    ::close(fd);
    return Error{ErrorCode::kUnavailable,
                 "inotify_add_watch(" + directory.string() +
                     "): " + std::strerror(err)};
  }
  return std::unique_ptr<InotifyWatcher>{
      new InotifyWatcher{std::move(directory), std::move(on_change), fd, wd}};
}

InotifyWatcher::InotifyWatcher(fs::path directory, ChangeCallback on_change,
                               int inotify_fd, int watch_descriptor)
    : directory_(std::move(directory)),
      on_change_(std::move(on_change)),
      inotify_fd_(inotify_fd),
      watch_descriptor_(watch_descriptor) {
  if (::pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

InotifyWatcher::~InotifyWatcher() {
  stop();
  if (watch_descriptor_ >= 0) {
    ::inotify_rm_watch(inotify_fd_, watch_descriptor_);
  }
  if (inotify_fd_ >= 0) ::close(inotify_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void InotifyWatcher::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { run(); });
}

void InotifyWatcher::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
}

void InotifyWatcher::run() {
  std::array<char, 16 * 1024> buffer;
  while (running_.load(std::memory_order_relaxed)) {
    std::array<pollfd, 2> fds{{{inotify_fd_, POLLIN, 0},
                               {wake_pipe_[0], POLLIN, 0}}};
    const int ready =
        ::poll(fds.data(), wake_pipe_[0] >= 0 ? 2 : 1, /*timeout ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check running_
    if (fds[1].revents & POLLIN) continue;  // stop() woke us

    const ssize_t len = ::read(inotify_fd_, buffer.data(), buffer.size());
    if (len <= 0) continue;
    ssize_t offset = 0;
    while (offset < len) {
      const auto* event =
          reinterpret_cast<const inotify_event*>(buffer.data() + offset);
      offset += static_cast<ssize_t>(sizeof(inotify_event)) + event->len;
      if (event->len == 0) continue;              // directory-level event
      if (event->mask & IN_ISDIR) continue;       // subdirectory noise
      const std::string name{event->name};
      if (name.find(".tmp.") != std::string::npos) continue;  // staging
      // Injected lost event: inotify queues can genuinely overflow
      // (IN_Q_OVERFLOW); the channel must survive a dropped delivery.
      if (fault::check(fault::Site::kWatchEvent, name).kind ==
          fault::Kind::kSuppressEvent) {
        continue;
      }
      events_fired_.fetch_add(1, std::memory_order_relaxed);
      if (on_change_) on_change_(directory_ / name);
    }
  }
}

}  // namespace mcsd::fam
