// Analytic resource models of the McSD testbed (paper Table I).
//
// The simulator is deterministic and closed-form: every mechanism that
// shapes the paper's results — core count, per-core speed, memory
// pressure and swap thrash, disk streaming, NIC/NFS transfer — is a small
// model with explicit parameters.  Nothing samples wall clocks, so bench
// output is bit-stable across machines.
//
// Units: seconds, bytes, MiB/s.  "Reference core" = one Core2 E4400 core
// (the paper's SD node); NodeSpec.core_speed scales relative to it.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace mcsd::sim {

inline constexpr double kMiBd = 1024.0 * 1024.0;

/// Rotational-disk model: streaming bandwidth plus a (rarely dominant)
/// seek term; `swap_mbps` is the *effective* paging bandwidth under
/// thrash — far below streaming because page-in/out interleave.
struct DiskModel {
  // Streaming rates are page-cache-assisted: the experiments re-read the
  // same input across trials, so the effective read rate sits above raw
  // platter speed.
  double seq_read_mibps = 150.0;
  double seq_write_mibps = 90.0;
  double swap_mibps = 35.0;
  double seek_seconds = 0.008;

  [[nodiscard]] double read_seconds(std::uint64_t bytes) const noexcept {
    return seek_seconds + static_cast<double>(bytes) / (seq_read_mibps * kMiBd);
  }
  [[nodiscard]] double write_seconds(std::uint64_t bytes) const noexcept {
    return seek_seconds + static_cast<double>(bytes) / (seq_write_mibps * kMiBd);
  }
};

/// Network interface: Gigabit Ethernet in the paper's testbed.
struct NicModel {
  double bandwidth_mbps = 1000.0;  ///< megaBITs per second
  double latency_seconds = 100e-6;

  [[nodiscard]] double raw_mibps() const noexcept {
    return bandwidth_mbps * 1e6 / 8.0 / kMiBd;
  }
};

/// NFS transfer cost between two nodes: payload over the slower NIC
/// degraded by protocol efficiency and by background utilisation of the
/// link (the SMB "routine work"), plus per-request latency.
struct NfsModel {
  double protocol_efficiency = 0.80;  ///< NFSv3-over-TCP goodput fraction
  double per_request_seconds = 0.002; ///< mount/attr round trips per op

  [[nodiscard]] double transfer_seconds(std::uint64_t bytes,
                                        const NicModel& a, const NicModel& b,
                                        double background_utilization) const {
    const double link_mibps =
        (a.raw_mibps() < b.raw_mibps() ? a.raw_mibps() : b.raw_mibps()) *
        protocol_efficiency * (1.0 - background_utilization);
    return per_request_seconds + a.latency_seconds + b.latency_seconds +
           static_cast<double>(bytes) / (link_mibps * kMiBd);
  }
};

/// Memory-pressure model.  When a job's resident footprint exceeds the
/// memory available to it, two different penalties apply:
///
///  * DIRTY pages (hash tables, emitted intermediates) must be written to
///    swap and read back; the amplification grows with the overflow ratio
///    because the working set is re-faulted repeatedly — classic thrash.
///    This is the mechanism behind the paper's 6.8x/17.4x WC blow-ups
///    (Fig. 9) and the nonlinear growth of its non-partitioned runs.
///  * CLEAN pages (the mmapped input) are evicted for free and re-read
///    from the file — a far milder penalty, which is why the SM pair in
///    Fig. 10 stays near 2x even though its 2x-of-input footprint also
///    exceeds node memory: SM's overflow is almost entirely clean input.
struct SwapModel {
  double amplification = 0.45;  ///< dirty re-fault multiplier at ratio 1
  double exponent = 2.5;        ///< growth of amplification with overflow
  double refault_passes = 2.0;  ///< clean input re-read passes under pressure

  /// Legacy all-dirty penalty: every excess byte cycles through swap.
  [[nodiscard]] double thrash_seconds(std::uint64_t footprint_bytes,
                                      std::uint64_t available_bytes,
                                      const DiskModel& disk) const {
    return penalty_seconds(footprint_bytes, footprint_bytes, available_bytes,
                           disk);
  }

  /// Full penalty for a job whose resident demand is `footprint_bytes`,
  /// of which `dirty_bytes` cannot be dropped without a swap write.
  [[nodiscard]] double penalty_seconds(std::uint64_t footprint_bytes,
                                       std::uint64_t dirty_bytes,
                                       std::uint64_t available_bytes,
                                       const DiskModel& disk) const {
    if (footprint_bytes <= available_bytes || available_bytes == 0) return 0.0;
    const double ratio = static_cast<double>(footprint_bytes) /
                         static_cast<double>(available_bytes);
    const auto excess = footprint_bytes - available_bytes;
    const auto dirty_excess = excess < dirty_bytes ? excess : dirty_bytes;
    const auto clean_excess = excess - dirty_excess;
    const double amp = amplification * std::pow(ratio, exponent - 1.0);
    // Dirty excess is paged out and back in, `amp` times over the run.
    const double swap_cost = amp * 2.0 * static_cast<double>(dirty_excess) /
                             (disk.swap_mibps * kMiBd);
    // Clean excess is merely re-read from the input file a few times.
    const double refault_cost = refault_passes *
                                static_cast<double>(clean_excess) /
                                (disk.seq_read_mibps * kMiBd);
    return swap_cost + refault_cost;
  }
};

/// CPU model: `cores` at `core_speed` (relative to the reference core),
/// with an Amdahl-style serial fraction supplied per application.
struct CpuModel {
  std::size_t cores = 2;
  double core_speed = 1.0;

  /// Seconds to execute `ref_core_seconds` of single-reference-core work
  /// with `threads` workers and `parallel_fraction` of it parallelisable.
  [[nodiscard]] double compute_seconds(double ref_core_seconds,
                                       std::size_t threads,
                                       double parallel_fraction) const {
    if (threads == 0) threads = 1;
    const std::size_t usable = threads < cores ? threads : cores;
    const double serial = ref_core_seconds * (1.0 - parallel_fraction);
    const double parallel = ref_core_seconds * parallel_fraction;
    return (serial + parallel / static_cast<double>(usable)) / core_speed;
  }
};

/// One node of the testbed.
struct NodeSpec {
  std::string name;
  CpuModel cpu;
  std::uint64_t memory_bytes = 2ULL << 30;
  std::uint64_t os_reserve_bytes = 200ULL << 20;  ///< kernel + daemons
  DiskModel disk;
  NicModel nic;

  /// Memory usable by applications.
  [[nodiscard]] std::uint64_t usable_memory() const noexcept {
    return memory_bytes > os_reserve_bytes ? memory_bytes - os_reserve_bytes
                                           : 0;
  }
};

}  // namespace mcsd::sim
